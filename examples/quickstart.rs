//! Quickstart: the full OTIF workflow on a small synthetic highway
//! dataset.
//!
//! 1. generate a dataset (train / validation / test splits);
//! 2. prepare OTIF — train proxy + tracker models, select window sizes,
//!    tune the speed–accuracy curve;
//! 3. pick a configuration and extract all tracks from the test split;
//! 4. answer queries by post-processing tracks — no further decoding or
//!    inference.
//!
//! Run with: `cargo run --release --example quickstart`

use otif::core::{Otif, OtifOptions};
use otif::query::TrackQuery;
use otif::sim::{DatasetConfig, DatasetKind, DatasetScale};
use otif::track::Track;
use std::time::Instant;

fn main() {
    // -- 1. dataset -------------------------------------------------------
    let scale = DatasetScale {
        clips_per_split: 3,
        clip_seconds: 8.0,
    };
    println!(
        "Generating synthetic {} dataset ({} clips x {}s per split)...",
        DatasetKind::Caldot1.name(),
        scale.clips_per_split,
        scale.clip_seconds
    );
    let dataset = DatasetConfig::new(DatasetKind::Caldot1, scale, 7).generate();
    let gt_tracks: usize = dataset.test.iter().map(|c| c.gt_tracks.len()).sum();
    println!(
        "  test split: {} clips, {} frames, {} ground-truth tracks",
        dataset.test.len(),
        dataset.split_frames(),
        gt_tracks
    );

    // -- 2. prepare OTIF --------------------------------------------------
    // The user-provided metric (§3.1): here, the path-breakdown query's
    // count accuracy against validation ground truth.
    let query = TrackQuery::path_breakdown(&dataset.scene);
    let val = &dataset.val;
    let q = query.clone();
    let metric = move |tracks: &[Vec<Track>]| q.accuracy(tracks, val);

    println!("\nPreparing OTIF (training proxies + tracker, tuning)...");
    let t0 = Instant::now();
    let otif = Otif::prepare(&dataset, &metric, OtifOptions::fast_test());
    println!(
        "  prepared in {:.1}s wall-clock",
        t0.elapsed().as_secs_f32()
    );
    println!(
        "  theta_best = {} (val accuracy {:.1}%)",
        otif.theta_best.describe(),
        otif.theta_best_accuracy * 100.0
    );
    println!("  tuned speed-accuracy curve:");
    for p in &otif.curve {
        println!(
            "    {:>8.2} sim-s/val-split  acc {:>5.1}%   {}",
            p.val_seconds,
            p.accuracy * 100.0,
            p.config.describe()
        );
    }

    // -- 3. extract all tracks from the test split ------------------------
    let point = otif.pick_config(0.05);
    println!(
        "\nExecuting {} over the test split...",
        point.config.describe()
    );
    let (tracks, ledger) = otif.execute(&point.config, &dataset.test);
    let extracted: usize = tracks.iter().map(|t| t.len()).sum();
    println!(
        "  extracted {extracted} tracks in {:.2} simulated seconds",
        ledger.execution_total()
    );
    for (component, secs) in ledger.breakdown() {
        println!("    {:<10} {:.3}s", component.name(), secs);
    }

    // -- 4. query the tracks ----------------------------------------------
    println!("\nAnswering queries from extracted tracks (no decode, no ML):");
    let t0 = Instant::now();
    let acc = query.accuracy(&tracks, &dataset.test);
    println!(
        "  path-breakdown accuracy vs ground truth: {:.1}%  ({} us)",
        acc * 100.0,
        t0.elapsed().as_micros()
    );

    let braking = TrackQuery::HardBraking { decel: 60.0 };
    let t0 = Instant::now();
    let hits: f32 = tracks
        .iter()
        .zip(&dataset.test)
        .map(|(ts, clip)| braking.run(ts, clip.scene.fps as f32)[0])
        .sum();
    println!(
        "  hard-braking cars found: {hits}  ({} us)",
        t0.elapsed().as_micros()
    );
}
