//! Bring your own camera: define a custom scene, generate a dataset from
//! it, and run the OTIF workflow — the path a downstream user takes to
//! apply the library to footage the built-in dataset configs don't cover.
//!
//! The scene here is a roundabout-style plaza with three entry roads and
//! a pedestrian crossing.
//!
//! Run with: `cargo run --release --example custom_scene`

use otif::core::{Otif, OtifOptions};
use otif::query::TrackQuery;
use otif::sim::{CameraMotion, Clip, DatasetScale, ObjectClass, PathSpec, ScaleProfile, SceneSpec};
use otif::track::Track;
use std::sync::Arc;

/// Build the custom scene. Width/height must be multiples of 32 so the
/// proxy model's cell grid tiles exactly.
fn my_scene() -> SceneSpec {
    let (w, h) = (512.0, 320.0);
    let center = (w / 2.0, h / 2.0);
    SceneSpec {
        name: "roundabout".to_string(),
        width: w as u32,
        height: h as u32,
        fps: 10,
        camera: CameraMotion::Fixed,
        paths: vec![
            // three roads looping through the center
            PathSpec::through(
                "north->east",
                &[
                    (center.0 - 30.0, -20.0),
                    (center.0 - 40.0, center.1),
                    (w + 20.0, center.1 + 40.0),
                ],
                ScaleProfile {
                    start: 0.6,
                    end: 1.0,
                },
                6.0,
                70.0,
            )
            .with_stop_zone(0.3, 0.0),
            PathSpec::through(
                "east->west",
                &[
                    (w + 20.0, center.1 - 20.0),
                    (center.0, center.1 - 40.0),
                    (-20.0, center.1 - 30.0),
                ],
                ScaleProfile::uniform(0.85),
                5.0,
                75.0,
            )
            .with_stop_zone(0.3, 0.5),
            PathSpec::through(
                "west->north",
                &[
                    (-20.0, center.1 + 20.0),
                    (center.0 + 30.0, center.1 + 30.0),
                    (center.0 + 40.0, -20.0),
                ],
                ScaleProfile {
                    start: 1.0,
                    end: 0.6,
                },
                4.0,
                65.0,
            ),
            // pedestrians crossing the plaza
            PathSpec::straight(
                "crossing",
                (center.0 - 120.0, h + 10.0),
                (center.0 - 110.0, -10.0),
                ScaleProfile::uniform(0.9),
                2.0,
                14.0,
            )
            .with_class_mix(vec![(ObjectClass::Pedestrian, 1.0)]),
        ],
        background_level: 0.38,
        noise_sigma: 0.03,
        hard_brake_prob: 0.08,
        signal_cycle_s: 20.0,
    }
}

fn main() {
    let scene = Arc::new(my_scene());
    let scale = DatasetScale {
        clips_per_split: 3,
        clip_seconds: 8.0,
    };
    println!("Simulating the custom '{}' scene...", scene.name);

    // generate splits by hand (DatasetConfig covers only the built-in
    // kinds; custom scenes assemble a Dataset directly)
    let gen = |split: u64| -> Vec<Clip> {
        (0..scale.clips_per_split)
            .map(|i| {
                Clip::simulate(
                    scene.clone(),
                    i,
                    scale.clip_seconds,
                    split * 1000 + i as u64,
                )
            })
            .collect()
    };
    let dataset = otif::sim::Dataset {
        kind: otif::sim::DatasetKind::Amsterdam, // nearest built-in kind: fixed camera
        scale,
        scene: scene.clone(),
        train: gen(1),
        val: gen(2),
        test: gen(3),
    };
    let gt: usize = dataset.test.iter().map(|c| c.gt_tracks.len()).sum();
    println!("  test split holds {gt} ground-truth tracks");

    let query = TrackQuery::path_breakdown(&scene);
    let val = dataset.val.clone();
    let q = query.clone();
    let metric = move |tracks: &[Vec<Track>]| q.accuracy(tracks, &val);
    println!("Preparing OTIF on the custom scene...");
    let otif = Otif::prepare(&dataset, &metric, OtifOptions::fast_test());
    let point = otif.pick_config(0.05);
    let (tracks, ledger) = otif.execute(&point.config, &dataset.test);
    println!(
        "  {} with {:.2} sim-seconds → accuracy {:.1}%",
        point.config.describe(),
        ledger.execution_total(),
        query.accuracy(&tracks, &dataset.test) * 100.0
    );

    if let TrackQuery::PathBreakdown { patterns, .. } = &query {
        println!("\nMovement counts over the test split:");
        let mut totals = vec![0.0; patterns.len()];
        for (ts, clip) in tracks.iter().zip(&dataset.test) {
            for (i, v) in query.run(ts, clip.scene.fps as f32).iter().enumerate() {
                totals[i] += v;
            }
        }
        for (p, t) in patterns.iter().zip(&totals) {
            println!("  {:<14} {t}", p.id);
        }
    }
}
