//! Traffic analytics on a junction camera: turning-movement counts and
//! hard-braking detection — the motivating workloads from the paper's
//! introduction (traffic planning conducts turning movement counts;
//! example query 1 in §3 finds cars that brake hard).
//!
//! The example pre-processes a synthetic Tokyo-style junction once with
//! OTIF, then answers both analytics tasks from the extracted tracks.
//!
//! Run with: `cargo run --release --example traffic_analytics`

use otif::core::{Otif, OtifOptions};
use otif::query::{PathPattern, TrackQuery};
use otif::sim::{DatasetConfig, DatasetKind, DatasetScale};
use otif::track::Track;

fn main() {
    let scale = DatasetScale {
        clips_per_split: 3,
        clip_seconds: 10.0,
    };
    println!("Simulating a Tokyo-style signalized junction (10 turning movements)...");
    let dataset = DatasetConfig::new(DatasetKind::Tokyo, scale, 13).generate();

    let query = TrackQuery::path_breakdown(&dataset.scene);
    let val = &dataset.val;
    let q = query.clone();
    let metric = move |tracks: &[Vec<Track>]| q.accuracy(tracks, val);
    println!("Preparing OTIF...");
    let otif = Otif::prepare(&dataset, &metric, OtifOptions::fast_test());
    let point = otif.pick_config(0.05);
    println!(
        "Chosen configuration: {} ({:.1}% validation accuracy)",
        point.config.describe(),
        point.accuracy * 100.0
    );

    let (tracks, ledger) = otif.execute(&point.config, &dataset.test);
    println!(
        "Extracted tracks from {:.0}s of video in {:.2} simulated seconds\n",
        dataset.scale.split_seconds(),
        ledger.execution_total()
    );

    // -- Turning movement counts -----------------------------------------
    println!("Turning-movement counts (test split totals, estimated vs ground truth):");
    let patterns = PathPattern::from_scene(&dataset.scene);
    let mut est_total = vec![0.0f32; patterns.len()];
    let mut gt_total = vec![0.0f32; patterns.len()];
    for (ts, clip) in tracks.iter().zip(&dataset.test) {
        let est = query.run(ts, clip.scene.fps as f32);
        let gt = query.ground_truth(clip);
        for i in 0..patterns.len() {
            est_total[i] += est[i];
            gt_total[i] += gt[i];
        }
    }
    for (i, p) in patterns.iter().enumerate() {
        println!(
            "  {:<8} estimated {:>4}   ground truth {:>4}",
            p.id, est_total[i], gt_total[i]
        );
    }
    println!(
        "  overall accuracy: {:.1}%",
        query.accuracy(&tracks, &dataset.test) * 100.0
    );

    // -- Hard braking ------------------------------------------------------
    let braking = TrackQuery::HardBraking { decel: 60.0 };
    let est: f32 = tracks
        .iter()
        .zip(&dataset.test)
        .map(|(ts, c)| braking.run(ts, c.scene.fps as f32)[0])
        .sum();
    let gt: f32 = dataset
        .test
        .iter()
        .map(|c| braking.ground_truth(c)[0])
        .sum();
    println!("\nHard-braking cars (>=60 px/s^2): estimated {est}, ground truth {gt}");
    println!("\nBoth analyses ran purely on extracted tracks — no video was re-decoded.");
}
