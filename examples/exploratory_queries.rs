//! Exploratory analytics: pre-process once, then answer many frame-level
//! queries with sub-second latency.
//!
//! This is the paper's central workflow argument (§1): video query
//! optimizers pay a per-query execution phase (minutes of detector
//! inference); OTIF pays pre-processing once and answers every subsequent
//! query by post-processing tracks, in milliseconds.
//!
//! Run with: `cargo run --release --example exploratory_queries`

use otif::core::{Otif, OtifOptions};
use otif::geom::{Point, Polygon};
use otif::query::{FrameLimitQuery, FrameQueryKind, TrackQuery};
use otif::sim::{DatasetConfig, DatasetKind, DatasetScale};
use otif::track::Track;
use std::time::Instant;

fn main() {
    let scale = DatasetScale {
        clips_per_split: 3,
        clip_seconds: 10.0,
    };
    println!("Simulating a Warsaw-style junction...");
    let dataset = DatasetConfig::new(DatasetKind::Warsaw, scale, 23).generate();

    let query = TrackQuery::path_breakdown(&dataset.scene);
    let val = &dataset.val;
    let q = query.clone();
    let metric = move |tracks: &[Vec<Track>]| q.accuracy(tracks, val);
    println!("Pre-processing with OTIF (once)...");
    let otif = Otif::prepare(&dataset, &metric, OtifOptions::fast_test());
    let point = otif.pick_config(0.05);
    let (tracks, ledger) = otif.execute(&point.config, &dataset.test);
    println!(
        "  tracks extracted in {:.2} simulated seconds using {}\n",
        ledger.execution_total(),
        point.config.describe()
    );

    let (w, h) = (dataset.scene.width as f32, dataset.scene.height as f32);
    let queries: Vec<(&str, FrameLimitQuery)> = vec![
        (
            "frames with >= 4 cars",
            FrameLimitQuery {
                kind: FrameQueryKind::Count,
                n: 4,
                limit: 10,
                min_separation_s: 5.0,
            },
        ),
        (
            "frames with >= 2 cars in the junction box",
            FrameLimitQuery {
                kind: FrameQueryKind::Region(Polygon::new(vec![
                    Point::new(w * 0.35, h * 0.35),
                    Point::new(w * 0.65, h * 0.35),
                    Point::new(w * 0.65, h * 0.65),
                    Point::new(w * 0.35, h * 0.65),
                ])),
                n: 2,
                limit: 10,
                min_separation_s: 5.0,
            },
        ),
        (
            "frames with a hot spot of >= 3 cars within 80 px",
            FrameLimitQuery {
                kind: FrameQueryKind::HotSpot { radius: 80.0 },
                n: 3,
                limit: 10,
                min_separation_s: 5.0,
            },
        ),
    ];

    println!("Exploratory frame-level queries over the extracted tracks:");
    for (name, q) in &queries {
        let t0 = Instant::now();
        let outputs = q.execute_on_tracks(&tracks, &dataset.test);
        let elapsed = t0.elapsed();
        let acc = q.accuracy(&outputs, &dataset.test);
        println!(
            "  {:<48} {:>3} frames  acc {:>5.1}%  latency {:?}",
            name,
            outputs.len(),
            acc * 100.0,
            elapsed
        );
        assert!(
            elapsed.as_millis() < 1000,
            "query latency must stay sub-second"
        );
    }
    println!("\nEvery query ran in milliseconds — the video was never touched again.");
}
