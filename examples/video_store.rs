//! The video-store substrate on its own: encode a simulated clip into the
//! GOP/block codec, then demonstrate the decode-cost dynamics that shape
//! OTIF's tuning space — reduced-rate sampling saves *sub-linearly*
//! because P-frame chains must still be decoded from the last keyframe.
//!
//! Run with: `cargo run --release --example video_store`

use otif::codec::{Decoder, EncodedClip, EncoderConfig};
use otif::sim::{DatasetConfig, DatasetKind, DatasetScale};

fn main() {
    let scale = DatasetScale {
        clips_per_split: 1,
        clip_seconds: 10.0,
    };
    let dataset = DatasetConfig::new(DatasetKind::Caldot2, scale, 5).generate();
    let clip = &dataset.test[0];
    println!(
        "Encoding one {}s clip at native {}x{} @ {} fps...",
        clip.duration_s(),
        clip.scene.width,
        clip.scene.height,
        clip.scene.fps
    );

    let enc = EncodedClip::encode_clip(clip, EncoderConfig::default());
    println!(
        "  raw {:.1} MiB -> encoded {:.2} MiB (ratio {:.2})",
        enc.raw_bytes() as f64 / (1 << 20) as f64,
        enc.size_bytes() as f64 / (1 << 20) as f64,
        enc.size_bytes() as f64 / enc.raw_bytes() as f64
    );

    println!("\nDecode cost at different sampling gaps (blocks processed):");
    println!(
        "  {:<6} {:>16} {:>22}",
        "gap", "frames sampled", "blocks per sampled frame"
    );
    for gap in [1usize, 2, 4, 8, 16, 32] {
        let mut dec = Decoder::new(&enc);
        let mut f = 0;
        let mut sampled = 0;
        while f < enc.num_frames() {
            dec.decode(f);
            sampled += 1;
            f += gap;
        }
        println!(
            "  {:<6} {:>16} {:>22.0}",
            gap,
            sampled,
            dec.stats.blocks_processed as f64 / sampled as f64
        );
    }
    println!(
        "\nThe per-sampled-frame cost grows with the gap (keyframe chains),\n\
         so frame skipping saves less than proportionally — the effect the\n\
         OTIF tuner trades off against tracking accuracy."
    );

    // decode-at-detector-resolution check
    let mut dec = Decoder::new(&enc);
    let img = dec.decode_scaled(
        3,
        (clip.scene.width / 2) as usize,
        (clip.scene.height / 2) as usize,
    );
    println!(
        "\nScaled decode of frame 3 -> {}x{} pixels, mean intensity {:.3}",
        img.w,
        img.h,
        img.data.iter().sum::<f32>() / img.data.len() as f32
    );
}
