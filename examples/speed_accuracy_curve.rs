//! Export OTIF's tuned speed–accuracy curve as CSV — the data behind the
//! workflow's "user selects a point along the curve" step (Figure 1).
//!
//! Run with: `cargo run --release --example speed_accuracy_curve`
//! Pipe the output to a file and plot with your tool of choice.

use otif::core::{Otif, OtifOptions};
use otif::query::TrackQuery;
use otif::sim::{DatasetConfig, DatasetKind, DatasetScale};
use otif::track::Track;

fn main() {
    let dataset = DatasetConfig::new(
        DatasetKind::Caldot1,
        DatasetScale {
            clips_per_split: 3,
            clip_seconds: 8.0,
        },
        17,
    )
    .generate();
    let query = TrackQuery::path_breakdown(&dataset.scene);
    let val = dataset.val.clone();
    let q = query.clone();
    let metric = move |tracks: &[Vec<Track>]| q.accuracy(tracks, &val);

    eprintln!("preparing OTIF on caldot1 (stderr; CSV goes to stdout)...");
    let otif = Otif::prepare(&dataset, &metric, OtifOptions::fast_test());

    // CSV header + one row per curve point, evaluated on both splits.
    println!("config,val_seconds,val_accuracy,test_seconds,test_accuracy");
    let hour = dataset.scale.hour_scale();
    for p in &otif.curve {
        let (tracks, ledger) = otif.execute(&p.config, &dataset.test);
        let test_acc = query.accuracy(&tracks, &dataset.test);
        println!(
            "\"{}\",{:.2},{:.4},{:.2},{:.4}",
            p.config.describe(),
            p.val_seconds * hour,
            p.accuracy,
            ledger.execution_total() * hour,
            test_acc
        );
    }
    eprintln!("{} curve points written", otif.curve.len());
}
