//! Cross-crate integration tests: the full OTIF workflow against ground
//! truth, compared with baselines, on small synthetic datasets.

use otif::baselines::common::{pareto, sweep_configs, Baseline};
use otif::baselines::{ChameleonBaseline, MirisBaseline};
use otif::core::{Otif, OtifOptions};
use otif::cv::{CostLedger, CostModel};
use otif::query::{FrameLimitQuery, FrameQueryKind, TrackQuery};
use otif::sim::{DatasetConfig, DatasetKind, DatasetScale};
use otif::track::Track;

fn small_scale() -> DatasetScale {
    DatasetScale {
        clips_per_split: 3,
        clip_seconds: 8.0,
    }
}

fn prepare(kind: DatasetKind, seed: u64) -> (otif::sim::Dataset, Otif, TrackQuery) {
    let dataset = DatasetConfig::new(kind, small_scale(), seed).generate();
    let query = match kind {
        DatasetKind::Amsterdam | DatasetKind::Jackson => TrackQuery::Count,
        _ => TrackQuery::path_breakdown(&dataset.scene),
    };
    let q = query.clone();
    let val_ptr: *const _ = &dataset.val;
    // SAFETY-free alternative: clone the validation clips for the metric.
    let val: Vec<otif::sim::Clip> = dataset.val.clone();
    let _ = val_ptr;
    let metric = move |tracks: &[Vec<Track>]| q.accuracy(tracks, &val);
    let otif = Otif::prepare(&dataset, &metric, OtifOptions::fast_test());
    (dataset, otif, query)
}

#[test]
fn otif_extracts_accurate_tracks_end_to_end() {
    let (dataset, otif, query) = prepare(DatasetKind::Caldot1, 301);
    let point = otif.pick_config(0.05);
    let (tracks, ledger) = otif.execute(&point.config, &dataset.test);
    let acc = query.accuracy(&tracks, &dataset.test);
    assert!(acc > 0.6, "test accuracy {acc}");
    assert!(ledger.execution_total() > 0.0);

    // the tuned curve trades speed for accuracy: fastest point is much
    // faster than the slowest
    let slow = otif.curve.first().unwrap();
    let fast = otif.curve.last().unwrap();
    assert!(
        fast.val_seconds < slow.val_seconds * 0.5,
        "curve should span a wide speed range: {} .. {}",
        slow.val_seconds,
        fast.val_seconds
    );
}

#[test]
fn otif_beats_miris_on_multi_query_cost() {
    // The paper's core claim: OTIF extracts all tracks in time comparable
    // to one Miris query; over 5 queries OTIF wins decisively.
    let (dataset, otif, query) = prepare(DatasetKind::Warsaw, 302);
    let point = otif.pick_config(0.10);
    let (_tracks, ledger) = otif.execute(&point.config, &dataset.test);
    let otif_total = ledger.execution_total();

    let miris = MirisBaseline::new(otif.theta_best.detector, 302, CostModel::default());
    let val = dataset.val.clone();
    let q = query.clone();
    let metric = move |tracks: &[Vec<Track>]| q.accuracy(tracks, &val);
    let sweep = sweep_configs(&miris, &dataset.val, &metric);
    let selected = pareto(&sweep);
    // Miris config with accuracy within 10 % of its own best
    let best_acc = selected.iter().map(|(_, a, _)| *a).fold(f32::MIN, f32::max);
    let (i, _, _) = selected
        .iter()
        .filter(|(_, a, _)| *a >= best_acc - 0.10)
        .min_by(|a, b| a.2.partial_cmp(&b.2).unwrap())
        .copied()
        .unwrap();
    let ledger = CostLedger::new();
    miris.run(i, &dataset.test, &ledger);
    let miris_total = ledger.execution_total();

    assert!(
        otif_total < miris_total * 5.0,
        "5-query OTIF {otif_total:.1}s should beat 5x Miris {:.1}s",
        miris_total * 5.0
    );
}

#[test]
fn frame_queries_answered_from_tracks_with_high_precision() {
    let (dataset, otif, _) = prepare(DatasetKind::Caldot1, 303);
    let point = otif.pick_config(0.05);
    let (tracks, _) = otif.execute(&point.config, &dataset.test);
    let q = FrameLimitQuery {
        kind: FrameQueryKind::Count,
        n: 2,
        limit: 10,
        min_separation_s: 3.0,
    };
    let outputs = q.execute_on_tracks(&tracks, &dataset.test);
    assert!(!outputs.is_empty(), "busy highway must yield matches");
    let acc = q.accuracy(&outputs, &dataset.test);
    assert!(acc > 0.6, "frame query accuracy {acc}");
}

#[test]
fn refinement_improves_path_breakdown_at_high_gap() {
    // Refinement's purpose (§3.4): recover track start/end so spatial
    // predicates classify tracks correctly at large sampling gaps.
    let (dataset, otif, query) = prepare(DatasetKind::Caldot2, 304);
    // pick the largest-gap configuration on the curve
    let point = otif
        .curve
        .iter()
        .max_by_key(|p| p.config.gap)
        .unwrap()
        .clone();
    if point.config.gap < 4 {
        return; // tuner stopped early; nothing to compare
    }
    let mut with = point.config;
    with.refine = true;
    let mut without = point.config;
    without.refine = false;
    let (t_with, _) = otif.execute(&with, &dataset.test);
    let (t_without, _) = otif.execute(&without, &dataset.test);
    let a_with = query.accuracy(&t_with, &dataset.test);
    let a_without = query.accuracy(&t_without, &dataset.test);
    assert!(
        a_with >= a_without - 0.02,
        "refinement must not hurt: with {a_with} vs without {a_without}"
    );
}

#[test]
fn chameleon_pareto_selection_transfers_to_test() {
    // Averaged over three fixed seeds instead of one hand-picked lucky
    // one: the validation split is 3 short clips, and on some seeds a
    // cheap configuration gets a lucky exact count (val accuracy 1.0),
    // wins the Pareto tie-break over genuinely accurate configs, and
    // fails to transfer (seed 305: val 1.00 → test 0.47). Measured
    // val−test gaps on seeds 1/2/3 are −0.01 / 0.08 / 0.35 (mean
    // ≈ 0.14); the mean bound 0.35 holds even if one of the three
    // seeds degenerates to the worst observed single-seed gap (0.53).
    let mut gaps = Vec::new();
    for seed in [1u64, 2, 3] {
        let dataset = DatasetConfig::new(DatasetKind::Jackson, small_scale(), seed).generate();
        let query = TrackQuery::Count;
        let chameleon = ChameleonBaseline::new(seed, CostModel::default());
        let val = dataset.val.clone();
        let q = query.clone();
        let metric = move |tracks: &[Vec<Track>]| q.accuracy(tracks, &val);
        let sweep = sweep_configs(&chameleon, &dataset.val, &metric);
        let selected = pareto(&sweep);
        assert!(
            selected.len() >= 2,
            "seed {seed}: expect a multi-point Pareto set"
        );
        // the slowest Pareto configuration should be reasonably accurate
        // on the held-out test split too
        let (i, val_acc, _) = selected[0];
        let ledger = CostLedger::new();
        let tracks = chameleon.run(i, &dataset.test, &ledger);
        let test_acc = query.accuracy(&tracks, &dataset.test);
        gaps.push(val_acc - test_acc);
    }
    let mean = gaps.iter().sum::<f32>() / gaps.len() as f32;
    assert!(
        mean < 0.35,
        "mean val→test accuracy gap {mean} ({gaps:?}): selection should transfer"
    );
}

#[test]
fn moving_camera_dataset_skips_refinement() {
    let dataset = DatasetConfig::new(DatasetKind::Uav, small_scale(), 306).generate();
    let query = TrackQuery::path_breakdown(&dataset.scene);
    let val = dataset.val.clone();
    let q = query.clone();
    let metric = move |tracks: &[Vec<Track>]| q.accuracy(tracks, &val);
    let otif = Otif::prepare(&dataset, &metric, OtifOptions::fast_test());
    assert!(otif.refine_index.is_none(), "UAV is a moving camera (§3.4)");
    assert!(otif.curve.iter().all(|p| !p.config.refine));
}
