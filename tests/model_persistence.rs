//! Trained models must serialize/deserialize losslessly so a deployment
//! can train once and ship artifacts — the paper's workflow trains per
//! dataset during pre-processing and reuses the models for all execution.

use otif::core::proxy::SegProxyModel;
use otif::cv::{CostLedger, CostModel, Detection};
use otif::geom::Rect;
use otif::sim::{DatasetConfig, DatasetKind, GrayImage, ObjectClass, Renderer};
use otif::track::{RecurrentTracker, Track, TrackerModel};

fn det(x: f32, y: f32) -> Detection {
    Detection {
        rect: Rect::new(x, y, 24.0, 14.0),
        class: ObjectClass::Car,
        confidence: 0.9,
        appearance: vec![0.2; otif::cv::APPEARANCE_DIM],
        debug_gt: None,
    }
}

#[test]
fn proxy_model_roundtrips_through_json() {
    let d = DatasetConfig::small(DatasetKind::Caldot1, 401).generate();
    let clips: Vec<&otif::sim::Clip> = d.train.iter().collect();
    let labels: Vec<Vec<Vec<Detection>>> = d
        .train
        .iter()
        .map(|c| {
            (0..c.num_frames())
                .map(|f| {
                    c.gt_boxes(f)
                        .into_iter()
                        .map(|(_, _, r)| det(r.x, r.y))
                        .collect()
                })
                .collect()
        })
        .collect();
    let mut m = SegProxyModel::new(384, 224, 0.375, 11);
    m.train(&clips, &labels, 150, 0.01, 11);

    let json = serde_json::to_string(&m).expect("serialize proxy");
    let restored: SegProxyModel = serde_json::from_str(&json).expect("deserialize proxy");

    // identical scores on a held-out frame
    let img: GrayImage = Renderer::new(&d.val[0]).render(0, m.in_w, m.in_h);
    let cm = CostModel::default();
    let ledger = CostLedger::new();
    let a = m.score_cells(&img, &cm, &ledger);
    let b = restored.score_cells(&img, &cm, &ledger);
    assert_eq!(a.scores, b.scores);
}

#[test]
fn tracker_model_roundtrips_through_json() {
    let mut model = TrackerModel::new(384.0, 224.0, 12);
    // give it a few gradient steps so weights are non-trivial
    let prefix: Vec<(usize, Detection)> = (0..4)
        .map(|i| (i * 2, det(10.0 + i as f32 * 20.0, 60.0)))
        .collect();
    let pos = det(90.0, 60.0);
    let neg = det(300.0, 180.0);
    for _ in 0..20 {
        model.train_example(&prefix, &[(&pos, 2, true), (&neg, 2, false)], 0.01, true);
    }

    let json = serde_json::to_string(&model).expect("serialize tracker");
    let restored: TrackerModel = serde_json::from_str(&json).expect("deserialize tracker");

    // identical behaviour when driving a tracker
    let run = |m: TrackerModel| -> Vec<Track> {
        let mut t = RecurrentTracker::new(m);
        t.match_threshold = 0.3;
        for f in 0..6usize {
            t.step(
                f * 2,
                vec![
                    det(10.0 + f as f32 * 20.0, 60.0),
                    det(350.0 - f as f32 * 15.0, 150.0),
                ],
            );
        }
        t.finish()
    };
    let a = run(model);
    let b = run(restored);
    assert_eq!(a.len(), b.len());
    for (x, y) in a.iter().zip(&b) {
        assert_eq!(x.dets.len(), y.dets.len());
        for ((fa, da), (fb, db)) in x.dets.iter().zip(&y.dets) {
            assert_eq!(fa, fb);
            assert_eq!(da.rect, db.rect);
        }
    }
}

#[test]
fn detections_and_tracks_serialize() {
    let mut t = Track::new(3, ObjectClass::Bus);
    t.push(0, det(1.0, 2.0));
    t.push(5, det(20.0, 2.0));
    let json = serde_json::to_string(&t).unwrap();
    let back: Track = serde_json::from_str(&json).unwrap();
    assert_eq!(back.id, 3);
    assert_eq!(back.class, ObjectClass::Bus);
    assert_eq!(back.dets.len(), 2);
    assert_eq!(back.dets[1].0, 5);
}
