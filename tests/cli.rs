//! End-to-end tests of the `otif-cli` binary: prepare → persist → execute
//! → query, all through the public command-line surface.

use std::process::Command;

fn cli() -> Command {
    Command::new(env!("CARGO_BIN_EXE_otif-cli"))
}

const DS: [&str; 8] = [
    "--dataset",
    "caldot2",
    "--clips",
    "2",
    "--seconds",
    "6",
    "--seed",
    "3",
];

#[test]
fn generate_reports_dataset_stats() {
    let out = cli().arg("generate").args(DS).output().expect("run cli");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("caldot2"));
    assert!(stdout.contains("ground-truth tracks"));
    assert!(stdout.contains("test:"));
}

#[test]
fn unknown_command_fails_with_usage() {
    let out = cli().arg("frobnicate").output().expect("run cli");
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("usage"));
}

#[test]
fn unknown_dataset_is_a_clean_error() {
    let out = cli()
        .args(["generate", "--dataset", "nowhere"])
        .output()
        .expect("run cli");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown dataset"));
}

#[test]
fn trailing_flag_without_value_is_an_error() {
    let out = cli()
        .args(["generate", "--dataset", "caldot2", "--clips"])
        .output()
        .expect("run cli");
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("--clips is missing a value"),
        "stderr: {stderr}"
    );
}

#[test]
fn flag_directly_followed_by_flag_is_an_error() {
    let out = cli()
        .args(["generate", "--dataset", "--clips", "2"])
        .output()
        .expect("run cli");
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("--dataset is missing a value"),
        "stderr: {stderr}"
    );
}

#[test]
fn unknown_flag_is_an_error_naming_it() {
    let out = cli()
        .args(["generate", "--bogus", "3"])
        .output()
        .expect("run cli");
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("unknown flag --bogus"), "stderr: {stderr}");
    assert!(
        stderr.contains("--dataset"),
        "should list accepted flags: {stderr}"
    );

    // flags accepted by one command are still rejected by another
    let out = cli()
        .args(["generate", "--streams", "2"])
        .output()
        .expect("run cli");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown flag --streams"));
}

#[test]
fn positional_argument_is_an_error() {
    let out = cli()
        .args(["generate", "caldot2"])
        .output()
        .expect("run cli");
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("unexpected positional argument \"caldot2\""),
        "stderr: {stderr}"
    );
}

#[test]
fn prepare_execute_query_roundtrip() {
    let dir = std::env::temp_dir().join(format!("otif-cli-test-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let model = dir.join("model.json");
    let tracks = dir.join("tracks.json");

    let out = cli()
        .arg("prepare")
        .args(DS)
        .args(["--out", model.to_str().unwrap()])
        .output()
        .expect("prepare");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(model.exists());
    assert!(String::from_utf8_lossy(&out.stdout).contains("curve"));

    let out = cli()
        .arg("curve")
        .args(["--model", model.to_str().unwrap()])
        .output()
        .expect("curve");
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).contains("theta_best"));

    let out = cli()
        .arg("execute")
        .args(["--model", model.to_str().unwrap()])
        .args(DS)
        .args(["--out", tracks.to_str().unwrap()])
        .output()
        .expect("execute");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(tracks.exists());

    // multi-stream execution must produce byte-identical tracks
    let tracks2 = dir.join("tracks2.json");
    let out = cli()
        .arg("execute")
        .args(["--model", model.to_str().unwrap()])
        .args(DS)
        .args(["--streams", "2", "--out", tracks2.to_str().unwrap()])
        .output()
        .expect("execute --streams 2");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("engine: 2 streams"),
        "engine stats line expected"
    );
    assert_eq!(
        std::fs::read(&tracks).unwrap(),
        std::fs::read(&tracks2).unwrap(),
        "--streams 2 must write byte-identical tracks"
    );

    // a recoverable injected fault is healed by the retry: exit 0,
    // identical tracks, and the stats file records the failure
    let tracks3 = dir.join("tracks3.json");
    let stats = dir.join("stats.json");
    let out = cli()
        .arg("execute")
        .args(["--model", model.to_str().unwrap()])
        .args(DS)
        .args(["--streams", "2"])
        .args(["--inject-fault", "decode:error:0:0"])
        .args(["--stats", stats.to_str().unwrap()])
        .args(["--out", tracks3.to_str().unwrap()])
        .output()
        .expect("execute with recoverable fault");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("engine health"), "stderr: {stderr}");
    assert!(stderr.contains("[recovered]"), "stderr: {stderr}");
    let stats_json = std::fs::read_to_string(&stats).unwrap();
    assert!(stats_json.contains("\"failed_clips\":1"), "{stats_json}");
    assert!(stats_json.contains("\"retried_clips\":1"), "{stats_json}");
    assert_eq!(
        std::fs::read(&tracks).unwrap(),
        std::fs::read(&tracks3).unwrap(),
        "retried run must write byte-identical tracks"
    );

    // an unrecoverable fault writes partial results and exits non-zero
    let tracks4 = dir.join("tracks4.json");
    let out = cli()
        .arg("execute")
        .args(["--model", model.to_str().unwrap()])
        .args(DS)
        .args(["--streams", "2"])
        .args(["--inject-fault", "decode:panic:0:0"])
        .args(["--out", tracks4.to_str().unwrap()])
        .output()
        .expect("execute with panic fault");
    assert!(!out.status.success(), "panic fault must fail the command");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("partial results"), "stderr: {stderr}");
    assert!(tracks4.exists(), "partial tracks are still written");

    // --fail-fast refuses to write anything on failure
    let tracks5 = dir.join("tracks5.json");
    let out = cli()
        .arg("execute")
        .args(["--model", model.to_str().unwrap()])
        .args(DS)
        .args(["--streams", "2", "--fail-fast"])
        .args(["--inject-fault", "decode:panic:0:0"])
        .args(["--out", tracks5.to_str().unwrap()])
        .output()
        .expect("execute with fail-fast");
    assert!(!out.status.success());
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("fail-fast"),
        "stderr names the flag"
    );
    assert!(!tracks5.exists(), "--fail-fast must not write tracks");

    // malformed fault specs are clean errors
    let out = cli()
        .arg("execute")
        .args(["--model", model.to_str().unwrap()])
        .args(DS)
        .args(["--inject-fault", "decode:boom:0:0"])
        .output()
        .expect("execute with bad fault spec");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown fault kind"));

    for query in ["breakdown", "count", "braking", "volume"] {
        let out = cli()
            .arg("query")
            .args(["--tracks", tracks.to_str().unwrap()])
            .args(DS)
            .args(["--query", query])
            .output()
            .expect("query");
        assert!(
            out.status.success(),
            "query {query}: {}",
            String::from_utf8_lossy(&out.stderr)
        );
        assert!(String::from_utf8_lossy(&out.stdout).contains("accuracy"));
    }

    // mismatched dataset flags are rejected
    let out = cli()
        .arg("query")
        .args(["--tracks", tracks.to_str().unwrap()])
        .args([
            "--dataset",
            "caldot2",
            "--clips",
            "3",
            "--seconds",
            "6",
            "--seed",
            "3",
        ])
        .args(["--query", "count"])
        .output()
        .expect("query mismatch");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("regenerate"));

    std::fs::remove_dir_all(&dir).ok();
}
