//! Determinism guarantees of the multi-stream engine: N-stream output
//! equals the sequential `Pipeline` per clip for the same
//! `(config, seed)`, including with fully trained artifacts (proxy
//! windows, recurrent tracker, refinement), and the shared
//! `DetectorBatcher` never reorders a stream's submissions.

use otif::core::pipeline::ExecutionContext;
use otif::core::{Otif, OtifOptions, Pipeline};
use otif::cv::{Component, CostLedger, CostModel, DetectorArch, DetectorConfig};
use otif::engine::{DetectorBatcher, Engine, EngineOptions};
use otif::sim::{DatasetConfig, DatasetKind, DatasetScale};
use otif::track::Track;
use proptest::prelude::*;
use std::sync::Arc;

fn sequential(
    config: &otif::core::config::OtifConfig,
    ctx: &ExecutionContext,
    clips: &[otif::sim::Clip],
) -> (Vec<Vec<Track>>, CostLedger) {
    let ledger = CostLedger::new();
    let tracks = clips
        .iter()
        .map(|c| Pipeline::run_clip(config, ctx, c, &ledger))
        .collect();
    (tracks, ledger)
}

/// Engine output must be byte-identical (via canonical JSON) to the
/// sequential pipeline with trained proxies, the recurrent tracker and
/// refinement in play — for every curve configuration and several
/// stream counts.
#[test]
fn engine_equals_sequential_with_trained_artifacts() {
    let dataset = DatasetConfig::new(
        DatasetKind::Caldot1,
        DatasetScale {
            clips_per_split: 3,
            clip_seconds: 5.0,
        },
        41,
    )
    .generate();
    let query = otif::query::TrackQuery::path_breakdown(&dataset.scene);
    let val = dataset.val.clone();
    let metric = move |tracks: &[Vec<Track>]| query.accuracy(tracks, &val);
    let otif = Otif::prepare(&dataset, &metric, OtifOptions::fast_test());
    let ctx = otif.context();

    // theta_best plus the extremes of the tuned curve exercise the
    // proxy/recurrent/refine combinations the tuner produced
    let mut configs = vec![otif.theta_best];
    if let (Some(first), Some(last)) = (otif.curve.first(), otif.curve.last()) {
        configs.push(first.config);
        configs.push(last.config);
    }

    for config in configs {
        let (expected, _) = sequential(&config, &ctx, &dataset.test);
        let expected_json = serde_json::to_string(&expected).unwrap();
        for streams in [2usize, 3] {
            let opts = EngineOptions {
                streams,
                ..EngineOptions::default()
            };
            let run = Engine::run(&config, &ctx, &dataset.test, &opts, &CostLedger::new());
            let got = serde_json::to_string(&run.expect_tracks()).unwrap();
            assert_eq!(
                got,
                expected_json,
                "streams={streams} config={}",
                config.describe()
            );
        }
    }
}

/// With a single stream the engine's ledger must match the sequential
/// pipeline's exactly, component by component (same charges, only
/// routed through the batcher).
#[test]
fn single_stream_engine_cost_is_sequential_cost() {
    let dataset = DatasetConfig::small(DatasetKind::Tokyo, 17).generate();
    let config = otif::core::config::OtifConfig {
        detector: DetectorConfig::new(DetectorArch::YoloV3, 0.5),
        proxy: None,
        gap: 3,
        tracker: otif::core::config::TrackerKind::Sort,
        refine: false,
    };
    let ctx = ExecutionContext::bare(CostModel::default(), 17);
    let (_, seq) = sequential(&config, &ctx, &dataset.test);
    let eng = CostLedger::new();
    let opts = EngineOptions {
        streams: 1,
        ..EngineOptions::default()
    };
    Engine::run(&config, &ctx, &dataset.test, &opts, &eng);
    for c in [
        Component::Decode,
        Component::Proxy,
        Component::Detector,
        Component::Tracker,
        Component::Refinement,
    ] {
        assert!(
            (seq.get(c) - eng.get(c)).abs() < 1e-9,
            "{c:?}: sequential {} vs engine {}",
            seq.get(c),
            eng.get(c)
        );
    }
}

// The batcher never reorders a stream's submissions: the j-th
// submission of a stream completes in the j-th round that stream
// participates in, so the round number observed after each submit is
// strictly increasing per stream.
proptest! {
    #[test]
    fn batcher_preserves_per_stream_submission_order(
        streams in 1u64..=4,
        frames in 1u64..=12,
        size_salt in 0u64..=999,
    ) {
        let (streams, frames) = (streams as usize, frames as usize);
        let ledger = CostLedger::new();
        let batcher = Arc::new(DetectorBatcher::new(streams, 1.0, 4, ledger.clone()));
        let mut handles = Vec::new();
        for s in 0..streams {
            let batcher = Arc::clone(&batcher);
            handles.push(std::thread::spawn(move || {
                // uneven lengths and varying window mixes per stream
                let my_frames = frames + s;
                let mut rounds_seen = Vec::with_capacity(my_frames);
                for f in 0..my_frames {
                    let n = 1 + (f + s + size_salt as usize) % 3;
                    let side = 32 * (1 + ((f + size_salt as usize) % 2) as u32);
                    batcher.submit(s, vec![(side, side); n]).unwrap();
                    rounds_seen.push(batcher.rounds());
                }
                batcher.finish(s);
                rounds_seen
            }));
        }
        let mut total_items = 0u64;
        for (s, h) in handles.into_iter().enumerate() {
            let rounds_seen = h.join().unwrap();
            for w in rounds_seen.windows(2) {
                prop_assert!(
                    w[0] < w[1],
                    "stream {s}: submissions completed out of round order ({w:?})"
                );
            }
            for f in 0..frames + s {
                total_items += (1 + (f + s + size_salt as usize) % 3) as u64;
            }
        }
        // every submitted window was flushed exactly once
        prop_assert_eq!(ledger.batch_stats().items, total_items);
    }
}
