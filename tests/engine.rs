//! Determinism guarantees of the multi-stream engine: N-stream output
//! equals the sequential `Pipeline` per clip for the same
//! `(config, seed)`, including with fully trained artifacts (proxy
//! windows, recurrent tracker, refinement), and the shared
//! `DetectorBatcher` never reorders a stream's submissions.

use otif::core::pipeline::ExecutionContext;
use otif::core::{Otif, OtifOptions, Pipeline};
use otif::cv::{Component, CostLedger, CostModel, DetectorArch, DetectorConfig};
use otif::engine::{DetectorBatcher, DetectorExec, Engine, EngineOptions, FaultPlan, StageName};
use otif::sim::{DatasetConfig, DatasetKind, DatasetScale};
use otif::track::Track;
use proptest::prelude::*;
use std::sync::Arc;

fn sequential(
    config: &otif::core::config::OtifConfig,
    ctx: &ExecutionContext,
    clips: &[otif::sim::Clip],
) -> (Vec<Vec<Track>>, CostLedger) {
    let ledger = CostLedger::new();
    let tracks = clips
        .iter()
        .map(|c| Pipeline::run_clip(config, ctx, c, &ledger))
        .collect();
    (tracks, ledger)
}

/// Engine output must be byte-identical (via canonical JSON) to the
/// sequential pipeline with trained proxies, the recurrent tracker and
/// refinement in play — for every curve configuration and several
/// stream counts.
#[test]
fn engine_equals_sequential_with_trained_artifacts() {
    let dataset = DatasetConfig::new(
        DatasetKind::Caldot1,
        DatasetScale {
            clips_per_split: 3,
            clip_seconds: 5.0,
        },
        41,
    )
    .generate();
    let query = otif::query::TrackQuery::path_breakdown(&dataset.scene);
    let val = dataset.val.clone();
    let metric = move |tracks: &[Vec<Track>]| query.accuracy(tracks, &val);
    let otif = Otif::prepare(&dataset, &metric, OtifOptions::fast_test());
    let ctx = otif.context();

    // theta_best plus the extremes of the tuned curve exercise the
    // proxy/recurrent/refine combinations the tuner produced
    let mut configs = vec![otif.theta_best];
    if let (Some(first), Some(last)) = (otif.curve.first(), otif.curve.last()) {
        configs.push(first.config);
        configs.push(last.config);
    }

    for config in configs {
        let (expected, _) = sequential(&config, &ctx, &dataset.test);
        let expected_json = serde_json::to_string(&expected).unwrap();
        for streams in [2usize, 3] {
            let opts = EngineOptions {
                streams,
                ..EngineOptions::default()
            };
            let run = Engine::run(&config, &ctx, &dataset.test, &opts, &CostLedger::new());
            let got = serde_json::to_string(&run.expect_tracks()).unwrap();
            assert_eq!(
                got,
                expected_json,
                "streams={streams} config={}",
                config.describe()
            );
        }
    }
}

/// With a single stream the engine's ledger must match the sequential
/// pipeline's exactly, component by component (same charges, only
/// routed through the batcher).
#[test]
fn single_stream_engine_cost_is_sequential_cost() {
    let dataset = DatasetConfig::small(DatasetKind::Tokyo, 17).generate();
    let config = otif::core::config::OtifConfig {
        detector: DetectorConfig::new(DetectorArch::YoloV3, 0.5),
        proxy: None,
        gap: 3,
        tracker: otif::core::config::TrackerKind::Sort,
        refine: false,
    };
    let ctx = ExecutionContext::bare(CostModel::default(), 17);
    let (_, seq) = sequential(&config, &ctx, &dataset.test);
    let eng = CostLedger::new();
    let opts = EngineOptions {
        streams: 1,
        ..EngineOptions::default()
    };
    Engine::run(&config, &ctx, &dataset.test, &opts, &eng);
    for c in [
        Component::Decode,
        Component::Proxy,
        Component::Detector,
        Component::Tracker,
        Component::Refinement,
    ] {
        assert!(
            (seq.get(c) - eng.get(c)).abs() < 1e-9,
            "{c:?}: sequential {} vs engine {}",
            seq.get(c),
            eng.get(c)
        );
    }
}

// The batcher never reorders a stream's submissions: the j-th
// submission of a stream completes in the j-th round that stream
// participates in, so the round number observed after each submit is
// strictly increasing per stream.
proptest! {
    #[test]
    fn batcher_preserves_per_stream_submission_order(
        streams in 1u64..=4,
        frames in 1u64..=12,
        size_salt in 0u64..=999,
    ) {
        let (streams, frames) = (streams as usize, frames as usize);
        let ledger = CostLedger::new();
        let batcher = Arc::new(DetectorBatcher::new(streams, 1.0, 4, ledger.clone()));
        let mut handles = Vec::new();
        for s in 0..streams {
            let batcher = Arc::clone(&batcher);
            handles.push(std::thread::spawn(move || {
                // uneven lengths and varying window mixes per stream
                let my_frames = frames + s;
                let mut rounds_seen = Vec::with_capacity(my_frames);
                for f in 0..my_frames {
                    let n = 1 + (f + s + size_salt as usize) % 3;
                    let side = 32 * (1 + ((f + size_salt as usize) % 2) as u32);
                    batcher.submit(s, vec![(side, side); n]).unwrap();
                    rounds_seen.push(batcher.rounds());
                }
                batcher.finish(s);
                rounds_seen
            }));
        }
        let mut total_items = 0u64;
        for (s, h) in handles.into_iter().enumerate() {
            let rounds_seen = h.join().unwrap();
            for w in rounds_seen.windows(2) {
                prop_assert!(
                    w[0] < w[1],
                    "stream {s}: submissions completed out of round order ({w:?})"
                );
            }
            for f in 0..frames + s {
                total_items += (1 + (f + s + size_salt as usize) % 3) as u64;
            }
        }
        // every submitted window was flushed exactly once
        prop_assert_eq!(ledger.batch_stats().items, total_items);
    }
}

/// Fault plans the prefetch-invariance property runs under, mirroring
/// `tests/engine_faults.rs`. Track-stage *panics* are excluded: the set
/// of tickets in flight when the track thread dies is timing-dependent
/// (the same reason `faulted_runs_are_deterministic` there pins the
/// detect stage); every other fault leaves the surviving ticket
/// sequences — and therefore the round log — deterministic.
fn prefetch_invariance_plan(idx: usize) -> (FaultPlan, bool) {
    match idx {
        0 => (FaultPlan::default(), false),
        1 => (FaultPlan::panic_at(StageName::Decode, 1, 1), false),
        2 => (FaultPlan::panic_at(StageName::Window, 1, 1), false),
        3 => (FaultPlan::panic_at(StageName::Detect, 1, 1), false),
        4 => (FaultPlan::error_at(StageName::Decode, 0, 2), false),
        5 => (FaultPlan::error_at(StageName::Detect, 2, 0), true),
        6 => (FaultPlan::error_at(StageName::Track, 2, 0), true),
        _ => unreachable!(),
    }
}

// Pipelining is observation-only: for any decode prefetch window and
// any thread interleaving, the batcher's round log and every ledger
// component sum are *bitwise* identical to the prefetch=1 run — healthy
// or under any deterministic fault plan. Only the reported makespan and
// stall accounts may differ.
proptest! {
    #[test]
    fn rounds_and_charges_invariant_under_prefetch(
        prefetch in 1u64..=64,
        plan_idx in 0u64..=6,
    ) {
        let (prefetch, plan_idx) = (prefetch as usize, plan_idx as usize);
        use std::collections::HashMap;
        use std::sync::{Mutex, OnceLock};

        const COMPONENTS: [Component; 5] = [
            Component::Decode,
            Component::Proxy,
            Component::Detector,
            Component::Tracker,
            Component::Refinement,
        ];

        static CLIPS: OnceLock<Vec<otif::sim::Clip>> = OnceLock::new();
        let clips_pool = CLIPS.get_or_init(|| {
            DatasetConfig::new(
                DatasetKind::Caldot1,
                DatasetScale {
                    clips_per_split: 5,
                    clip_seconds: 5.0,
                },
                29,
            )
            .generate()
            .test
        });
        let cfg = otif::core::config::OtifConfig {
            detector: DetectorConfig::new(DetectorArch::YoloV3, 0.5),
            proxy: None,
            gap: 4,
            tracker: otif::core::config::TrackerKind::Sort,
            refine: false,
        };
        let ctx = ExecutionContext::bare(CostModel::default(), 7);

        let run_at = |prefetch: usize| {
            let (faults, no_retry) = prefetch_invariance_plan(plan_idx);
            let ledger = CostLedger::new();
            let opts = EngineOptions {
                faults,
                no_retry,
                prefetch_frames: prefetch,
                ..EngineOptions::with_streams(2)
            };
            let run = Engine::run(&cfg, &ctx, clips_pool, &opts, &ledger);
            let bits: Vec<u64> = COMPONENTS.iter().map(|&c| ledger.get(c).to_bits()).collect();
            (run.rounds, bits, run.stats.serial_seconds.to_bits())
        };

        // Baseline per fault plan: the prefetch=1 run, computed once and
        // shared across cases (the property compares *against* it, so it
        // must not vary with the case's prefetch).
        type Baseline = (Vec<otif::engine::RoundRecord>, Vec<u64>, u64);
        static BASELINES: OnceLock<Mutex<HashMap<usize, Baseline>>> = OnceLock::new();
        let baselines = BASELINES.get_or_init(|| Mutex::new(HashMap::new()));
        let baseline = {
            let mut map = baselines.lock().unwrap();
            map.entry(plan_idx).or_insert_with(|| run_at(1)).clone()
        };

        let (rounds, bits, serial_bits) = run_at(prefetch);
        prop_assert_eq!(
            &rounds, &baseline.0,
            "round log must not depend on prefetch (plan {})", plan_idx
        );
        prop_assert_eq!(
            &bits, &baseline.1,
            "component sums must be bitwise prefetch-independent (plan {})", plan_idx
        );
        prop_assert_eq!(serial_bits, baseline.2, "serial_seconds drifted (plan {})", plan_idx);
    }
}

/// Detector execution is observation-only: `off`, `looped` and
/// `batched` runs produce byte-identical per-clip outcomes, a
/// bitwise-identical ledger and the same round log — at 1, 4 and 16
/// streams, and under injected faults. Looped and batched additionally
/// agree on the surrogate output digest (the bitwise-kernel contract
/// end to end), while `off` reports digest 0 and zero wall-clock.
#[test]
fn detector_exec_modes_are_bitwise_invariant() {
    const COMPONENTS: [Component; 5] = [
        Component::Decode,
        Component::Proxy,
        Component::Detector,
        Component::Tracker,
        Component::Refinement,
    ];
    // 16 short clips so a 16-stream run is not clamped down
    let clips = DatasetConfig::new(
        DatasetKind::Caldot1,
        DatasetScale {
            clips_per_split: 16,
            clip_seconds: 2.0,
        },
        53,
    )
    .generate()
    .test;
    assert_eq!(clips.len(), 16);
    let cfg = otif::core::config::OtifConfig {
        detector: DetectorConfig::new(DetectorArch::YoloV3, 0.25),
        proxy: None,
        gap: 4,
        tracker: otif::core::config::TrackerKind::Sort,
        refine: false,
    };
    let ctx = ExecutionContext::bare(CostModel::default(), 7);

    let run_at = |streams: usize, mode: DetectorExec, plan_idx: usize| {
        let (faults, no_retry) = prefetch_invariance_plan(plan_idx);
        let ledger = CostLedger::new();
        let opts = EngineOptions {
            streams,
            detector_exec: mode,
            faults,
            no_retry,
            ..EngineOptions::new()
        };
        let run = Engine::run(&cfg, &ctx, &clips, &opts, &ledger);
        let outcomes = serde_json::to_string(&run.tracks).unwrap();
        let bits: Vec<u64> = COMPONENTS
            .iter()
            .map(|&c| ledger.get(c).to_bits())
            .collect();
        (outcomes, bits, run.rounds, run.stats)
    };

    // the fault-free plan at every stream count; the injected plans
    // (decode panic, detect error) at 4 streams
    let cases: &[(usize, usize)] = &[(1, 0), (4, 0), (16, 0), (4, 1), (4, 5)];
    for &(streams, plan_idx) in cases {
        let off = run_at(streams, DetectorExec::Off, plan_idx);
        let looped = run_at(streams, DetectorExec::Looped, plan_idx);
        let batched = run_at(streams, DetectorExec::Batched, plan_idx);
        for (name, run) in [("looped", &looped), ("batched", &batched)] {
            assert_eq!(
                run.0, off.0,
                "{name} outcomes differ from off (streams={streams} plan={plan_idx})"
            );
            assert_eq!(
                run.1, off.1,
                "{name} ledger not bitwise off (streams={streams} plan={plan_idx})"
            );
            assert_eq!(
                run.2, off.2,
                "{name} round log differs from off (streams={streams} plan={plan_idx})"
            );
        }
        // the bitwise contract between the two executing paths
        assert_eq!(
            looped.3.detector_digest, batched.3.detector_digest,
            "surrogate digests diverge (streams={streams} plan={plan_idx})"
        );
        assert_ne!(looped.3.detector_digest, 0);
        assert_eq!(off.3.detector_digest, 0);
        assert_eq!(off.3.detector_exec, "off");
        assert_eq!(looped.3.detector_exec, "looped");
        assert_eq!(batched.3.detector_exec, "batched");
        assert_eq!(off.3.detector_wall_seconds, 0.0);
        assert!(looped.3.detector_wall_seconds > 0.0);
        assert!(batched.3.detector_wall_seconds > 0.0);
        // both paths execute the same windows; batching can only merge
        // forwards, never add them
        assert_eq!(
            looped.3.detector_exec_windows,
            batched.3.detector_exec_windows
        );
        assert_eq!(looped.3.detector_forwards, looped.3.detector_exec_windows);
        assert!(batched.3.detector_forwards <= looped.3.detector_forwards);
        if streams > 1 && plan_idx == 0 {
            assert!(
                batched.3.detector_forwards < looped.3.detector_forwards,
                "multi-stream batching must coalesce forwards (streams={streams})"
            );
        }
    }
}
