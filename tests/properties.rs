//! Property-based tests (proptest) over core data structures and
//! invariants that span crates.

use otif::codec::{Decoder, EncodedClip, EncoderConfig};
use otif::core::grouping::group_cells;
use otif::core::windows::WindowSet;
use otif::cv::{nms, Detection};
use otif::geom::{hungarian, GridIndex, Point, Polygon, Polyline, Rect};
use otif::sim::GrayImage;
use otif::sim::ObjectClass;
use otif::track::{stitch_tracks, StitchConfig, Track};
use proptest::prelude::*;

fn rect_strategy() -> impl Strategy<Value = Rect> {
    (
        -50.0f32..400.0,
        -50.0f32..300.0,
        0.1f32..150.0,
        0.1f32..150.0,
    )
        .prop_map(|(x, y, w, h)| Rect::new(x, y, w, h))
}

proptest! {
    #[test]
    fn iou_is_symmetric_and_bounded(a in rect_strategy(), b in rect_strategy()) {
        let ab = a.iou(&b);
        let ba = b.iou(&a);
        prop_assert!((ab - ba).abs() < 1e-5);
        prop_assert!((0.0..=1.0 + 1e-6).contains(&ab));
    }

    #[test]
    fn intersection_is_contained_in_both(a in rect_strategy(), b in rect_strategy()) {
        let i = a.intersection(&b);
        if !i.is_empty() {
            prop_assert!(a.contains_rect(&i));
            prop_assert!(b.contains_rect(&i));
        }
    }

    #[test]
    fn union_contains_both(a in rect_strategy(), b in rect_strategy()) {
        let u = a.union(&b);
        // f32 rounding in x + w can shave a ULP off the union's edges, so
        // test containment of a slightly shrunken copy
        let eps = 1e-3;
        let shrink = |r: &Rect| Rect::new(r.x + eps, r.y + eps, (r.w - 2.0 * eps).max(0.0), (r.h - 2.0 * eps).max(0.0));
        prop_assert!(u.contains_rect(&shrink(&a)));
        prop_assert!(u.contains_rect(&shrink(&b)));
        // relative tolerance: the union's edges are recomputed sums, so
        // its area can round a few ULP below the larger input's
        let biggest = a.area().max(b.area());
        prop_assert!(u.area() >= biggest * (1.0 - 1e-5) - 1e-3);
    }

    #[test]
    fn polygon_contains_matches_rect_contains(
        r in rect_strategy(),
        px in -100.0f32..500.0,
        py in -100.0f32..400.0,
    ) {
        let poly = Polygon::from_rect(&r);
        let p = Point::new(px, py);
        // boundary points may disagree; skip points near the border
        let margin = 1e-3;
        let strictly_in = px > r.x + margin && px < r.x1() - margin
            && py > r.y + margin && py < r.y1() - margin;
        let strictly_out = px < r.x - margin || px > r.x1() + margin
            || py < r.y - margin || py > r.y1() + margin;
        if strictly_in {
            prop_assert!(poly.contains(&p));
        } else if strictly_out {
            prop_assert!(!poly.contains(&p));
        }
    }

    #[test]
    fn resample_preserves_endpoints(
        pts in proptest::collection::vec((0.0f32..500.0, 0.0f32..300.0), 2..12),
        n in 2usize..40,
    ) {
        let line = Polyline::new(pts.iter().map(|&(x, y)| Point::new(x, y)).collect());
        let r = line.resample(n);
        prop_assert_eq!(r.points.len(), n);
        prop_assert!(r.first().dist(&line.first()) < 1e-3);
        prop_assert!(r.last().dist(&line.last()) < 0.5);
        // resampled length never exceeds the original (it's a chord chain)
        prop_assert!(r.length() <= line.length() + 1e-2);
    }

    #[test]
    fn hungarian_matches_are_a_partial_injection(
        costs in proptest::collection::vec(
            proptest::collection::vec(0.0f32..10.0, 4),
            1..6,
        ),
    ) {
        let assign = hungarian(&costs);
        let mut used = std::collections::HashSet::new();
        for a in assign.iter().flatten() {
            prop_assert!(*a < 4);
            prop_assert!(used.insert(*a), "column assigned twice");
        }
        // with cols >= rows, every row is assigned
        if costs.len() <= 4 {
            prop_assert!(assign.iter().all(|a| a.is_some()));
        }
    }

    #[test]
    fn grid_index_radius_query_matches_linear_scan(
        pts in proptest::collection::vec((0.0f32..200.0, 0.0f32..200.0), 0..40),
        qx in 0.0f32..200.0,
        qy in 0.0f32..200.0,
        radius in 1.0f32..80.0,
    ) {
        let mut idx = GridIndex::new(200.0, 200.0, 16.0);
        for (i, &(x, y)) in pts.iter().enumerate() {
            idx.insert(Point::new(x, y), i);
        }
        let q = Point::new(qx, qy);
        let mut got: Vec<usize> = idx.query_radius(&q, radius).into_iter().map(|(_, i)| i).collect();
        got.sort_unstable();
        let mut expect: Vec<usize> = pts
            .iter()
            .enumerate()
            .filter(|(_, &(x, y))| Point::new(x, y).dist(&q) <= radius)
            .map(|(i, _)| i)
            .collect();
        expect.sort_unstable();
        prop_assert_eq!(got, expect);
    }

    #[test]
    fn nms_output_is_conflict_free_and_subset(
        boxes in proptest::collection::vec((0.0f32..300.0, 0.0f32..200.0, 0.5f32..1.0), 0..20),
    ) {
        let dets: Vec<Detection> = boxes
            .iter()
            .map(|&(x, y, c)| Detection {
                rect: Rect::new(x, y, 30.0, 20.0),
                class: ObjectClass::Car,
                confidence: c,
                appearance: vec![],
                debug_gt: None,
            })
            .collect();
        let kept = nms(dets.clone(), 0.5);
        prop_assert!(kept.len() <= dets.len());
        // no two kept detections of the same class overlap above threshold
        for i in 0..kept.len() {
            for j in (i + 1)..kept.len() {
                prop_assert!(kept[i].rect.iou(&kept[j].rect) <= 0.5 + 1e-5);
            }
        }
        // idempotence
        let twice = nms(kept.clone(), 0.5);
        prop_assert_eq!(twice.len(), kept.len());
    }

    #[test]
    fn grouping_always_covers_positive_cells(
        cells in proptest::collection::vec((0usize..12, 0usize..7), 0..30),
    ) {
        let ws = WindowSet::new(
            384.0,
            224.0,
            vec![(384.0, 224.0), (128.0, 96.0), (64.0, 64.0)],
            6.2e-8,
            8.0e-4,
        );
        let mut unique = cells.clone();
        unique.sort_unstable();
        unique.dedup();
        let windows = group_cells(&unique, &ws);
        for (cx, cy) in &unique {
            let center = Point::new(*cx as f32 * 32.0 + 16.0, *cy as f32 * 32.0 + 16.0);
            prop_assert!(
                windows.iter().any(|w| w.contains_point(&center)),
                "cell ({},{}) uncovered", cx, cy
            );
        }
        // all windows use sizes from W
        for w in &windows {
            prop_assert!(ws.sizes.contains(&(w.w, w.h)));
        }
    }

    #[test]
    fn stitching_preserves_detections_and_frame_order(
        specs in proptest::collection::vec(
            // (start frame, length, x0, velocity, y row)
            (0usize..60, 2usize..8, 0.0f32..300.0, -6.0f32..6.0, 0.0f32..180.0),
            0..10,
        ),
    ) {
        let tracks: Vec<Track> = specs
            .iter()
            .enumerate()
            .map(|(i, &(f0, len, x0, v, y))| {
                let mut t = Track::new(i as u32, ObjectClass::Car);
                for k in 0..len {
                    t.push(f0 + k * 2, Detection {
                        rect: Rect::new(x0 + v * (k * 2) as f32, y, 24.0, 14.0),
                        class: ObjectClass::Car,
                        confidence: 0.9,
                        appearance: vec![0.5; otif::cv::APPEARANCE_DIM],
                        debug_gt: None,
                    });
                }
                t
            })
            .collect();
        let total_dets: usize = tracks.iter().map(|t| t.len()).sum();
        let out = stitch_tracks(tracks, StitchConfig::default());
        // stitching never loses or duplicates detections
        let out_dets: usize = out.iter().map(|t| t.len()).sum();
        prop_assert_eq!(out_dets, total_dets);
        // and every output track has strictly increasing frames
        for t in &out {
            prop_assert!(t.dets.windows(2).all(|w| w[0].0 < w[1].0));
        }
    }

    #[test]
    fn codec_roundtrip_error_bounded_by_threshold(
        seed in 0u64..1000,
        gop in 1usize..12,
        threshold in 0u8..20,
    ) {
        // pseudo-random frames with temporal coherence
        let (w, h) = (32usize, 16usize);
        let frames: Vec<GrayImage> = (0..10)
            .map(|t| {
                let mut img = GrayImage::new(w, h);
                for y in 0..h {
                    for x in 0..w {
                        let v = otif::sim::render::hash01(
                            (x / 4) as u64,
                            (y / 4) as u64,
                            seed,
                        ) * 0.5
                            + otif::sim::render::hash01(x as u64, t as u64, seed) * 0.2;
                        img.set(x, y, v);
                    }
                }
                img
            })
            .collect();
        let enc = EncodedClip::encode(&frames, 10, EncoderConfig { gop, skip_threshold: threshold });
        let mut dec = Decoder::new(&enc);
        let tol = threshold as f32 / 255.0 + 1.0 / 255.0 + 1e-5;
        for (t, f) in frames.iter().enumerate() {
            let got = dec.decode(t);
            for (a, b) in got.data.iter().zip(&f.data) {
                prop_assert!((a - b).abs() <= tol, "frame {} error {}", t, (a - b).abs());
            }
        }
    }
}
