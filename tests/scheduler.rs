//! Worker-count elasticity of the task-pool engine: the same run —
//! healthy, faulted, or resumed from a cut journal — produces
//! bitwise-identical ledgers, round logs, deterministic stats and
//! tracks whether it is polled by 1, 2, 4 or 8 worker threads, at
//! every stream count. Worker count is an execution resource, never a
//! run identity.

use otif::core::pipeline::ExecutionContext;
use otif::cv::{Component, CostLedger, CostModel, DetectorArch, DetectorConfig};
use otif::engine::{
    run_manifest, Engine, EngineOptions, FaultKind, FaultPlan, FaultSpec, RealRunIo, RunIo,
    RunJournal, RunSession, StageName, RUN_JOURNAL_FILE,
};
use otif::sim::{Clip, DatasetConfig, DatasetKind, DatasetScale};
use std::sync::Arc;

const COMPONENTS: [Component; 5] = [
    Component::Decode,
    Component::Proxy,
    Component::Detector,
    Component::Tracker,
    Component::Refinement,
];

fn config() -> otif::core::config::OtifConfig {
    otif::core::config::OtifConfig {
        detector: DetectorConfig::new(DetectorArch::YoloV3, 0.25),
        proxy: None,
        gap: 4,
        tracker: otif::core::config::TrackerKind::Sort,
        refine: false,
    }
}

/// 64 short clips so a 64-stream run is not clamped down.
fn clips() -> Vec<Clip> {
    DatasetConfig::new(
        DatasetKind::Caldot1,
        DatasetScale {
            clips_per_split: 64,
            clip_seconds: 1.0,
        },
        61,
    )
    .generate()
    .test
}

/// Everything a run exposes that must not depend on worker count:
/// per-component ledger bit patterns, the batcher round log, the
/// deterministic stats projection (which includes the virtual-time
/// makespan `execution_seconds` bit-for-bit) and the serialized
/// per-clip outcomes.
type Fingerprint = (Vec<u64>, Vec<otif::engine::RoundRecord>, String, String);

fn run_fingerprint(
    cfg: &otif::core::config::OtifConfig,
    ctx: &ExecutionContext,
    clips: &[Clip],
    opts: &EngineOptions,
) -> Fingerprint {
    let ledger = CostLedger::new();
    let run = Engine::run(cfg, ctx, clips, opts, &ledger);
    // scheduler observability must reflect the requested pool
    if opts.workers > 0 {
        assert_eq!(run.stats.workers, opts.workers);
    }
    assert!(run.stats.task_polls > 0, "the pool must have polled tasks");
    assert!(
        run.stats.peak_runnable_tasks <= 4 * run.stats.streams as u64,
        "runnable tasks are bounded by the 4-per-stream state machines"
    );
    let bits = COMPONENTS
        .iter()
        .map(|&c| ledger.get(c).to_bits())
        .collect();
    (
        bits,
        run.rounds.clone(),
        run.stats.deterministic_projection(),
        serde_json::to_string(&run.tracks).unwrap(),
    )
}

/// Healthy runs: for each stream count, every worker count reproduces
/// the 4-worker baseline byte-for-byte. `execution_seconds` living in
/// the deterministic projection makes this the makespan-neutrality
/// check too: the virtual-time pipeline model must not see the pool.
#[test]
fn outputs_bitwise_identical_across_worker_counts() {
    let cfg = config();
    let ctx = ExecutionContext::bare(CostModel::default(), 7);
    let clips = clips();
    for streams in [1usize, 16, 64] {
        let opts_at = |workers: usize| EngineOptions {
            workers,
            ..EngineOptions::with_streams(streams)
        };
        let baseline = run_fingerprint(&cfg, &ctx, &clips, &opts_at(4));
        for workers in [1usize, 2, 8] {
            let got = run_fingerprint(&cfg, &ctx, &clips, &opts_at(workers));
            assert_eq!(
                got, baseline,
                "workers={workers} streams={streams} diverged from the 4-worker run"
            );
        }
    }
}

/// Admission control composes with elasticity: capping the number of
/// concurrently admitted streams changes the round log (it is run
/// identity) but the capped run itself is still worker-count
/// invariant, and its tracks still match the uncapped run's.
#[test]
fn admission_capped_runs_are_worker_count_invariant() {
    let cfg = config();
    let ctx = ExecutionContext::bare(CostModel::default(), 7);
    let clips = clips();
    let opts_at = |workers: usize| EngineOptions {
        workers,
        max_active_streams: 4,
        ..EngineOptions::with_streams(16)
    };
    let uncapped = run_fingerprint(
        &cfg,
        &ctx,
        &clips,
        &EngineOptions {
            workers: 4,
            ..EngineOptions::with_streams(16)
        },
    );
    let baseline = run_fingerprint(&cfg, &ctx, &clips, &opts_at(4));
    assert_eq!(baseline.3, uncapped.3, "admission must not change tracks");
    // The Detector component is excluded: admission reshapes the
    // batcher's round composition, so its per-call overhead legitimately
    // differs (which is why max_active_streams is part of the run
    // manifest). Every other component must not see the cap.
    for (i, &c) in COMPONENTS.iter().enumerate() {
        if c != Component::Detector {
            assert_eq!(
                baseline.0[i], uncapped.0[i],
                "admission must not change {c:?} charges"
            );
        }
    }
    for workers in [1usize, 2, 8] {
        let got = run_fingerprint(&cfg, &ctx, &clips, &opts_at(workers));
        assert_eq!(got, baseline, "workers={workers} capped run diverged");
    }
}

/// Faulted runs: a deterministic fault plan (a detect-stage panic plus
/// a recoverable decode error) perturbs the run identically at every
/// worker count.
#[test]
fn faulted_outputs_bitwise_identical_across_worker_counts() {
    let cfg = config();
    let ctx = ExecutionContext::bare(CostModel::default(), 7);
    let clips = clips();
    let opts_at = |workers: usize| {
        let faults = FaultPlan::panic_at(StageName::Detect, 1, 1).with(FaultSpec {
            stage: StageName::Decode,
            kind: FaultKind::Error,
            clip: 3,
            frame: 2,
            reason: "injected error in decode (clip 3, frame 2)".to_string(),
        });
        EngineOptions {
            workers,
            faults,
            ..EngineOptions::with_streams(16)
        }
    };
    let baseline = run_fingerprint(&cfg, &ctx, &clips, &opts_at(4));
    for workers in [1usize, 2, 8] {
        let got = run_fingerprint(&cfg, &ctx, &clips, &opts_at(workers));
        assert_eq!(got, baseline, "workers={workers} faulted run diverged");
    }
}

/// Kill + `--resume` across worker counts: a journaled 8-worker run is
/// cut mid-journal (crash simulation), resumed on 2 workers, and the
/// stitched result is byte-identical to an uninterrupted 4-worker run.
/// The journal records virtual time, not wall time, so the ghost
/// replay cannot tell the pools apart.
#[test]
fn journal_cut_resume_is_bitwise_identical_across_worker_counts() {
    let cfg = config();
    let ctx = ExecutionContext::bare(CostModel::default(), 7);
    let clips: Vec<Clip> = clips().into_iter().take(16).collect();
    let opts_at = |workers: usize| EngineOptions {
        workers,
        ..EngineOptions::with_streams(8)
    };

    // Uninterrupted, unjournaled baseline on 4 workers.
    let baseline = run_fingerprint(&cfg, &ctx, &clips, &opts_at(4));

    // Journaled run on 8 workers. The manifest is derived from options
    // with workers=2 to prove worker count is no part of run identity.
    let io: Arc<dyn RunIo> = Arc::new(RealRunIo);
    let dir = std::env::temp_dir().join(format!("otif-sched-resume-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let manifest = run_manifest(&cfg, &ctx, &clips, &opts_at(2));
    let journal = Arc::new(RunJournal::create(&dir, Arc::clone(&io), &manifest).unwrap());
    let session = RunSession::fresh(Arc::clone(&journal));
    let led = CostLedger::new();
    let fresh = Engine::run_with_session(&cfg, &ctx, &clips, &opts_at(8), &led, Some(&session));
    assert_eq!(fresh.stats.clips_checkpointed, clips.len() as u64);
    drop(fresh);

    // Crash: keep only the first half of the acknowledged records.
    let journal_path = dir.join(RUN_JOURNAL_FILE);
    let full = std::fs::read(&journal_path).unwrap();
    let lines: Vec<&[u8]> = full.split_inclusive(|&b| b == b'\n').collect();
    assert_eq!(lines.len(), clips.len());
    let k = clips.len() / 2;
    std::fs::write(&journal_path, lines[..k].concat()).unwrap();

    // Resume on 2 workers: half ghost-replayed, half recomputed, all
    // bitwise equal to the uninterrupted baseline.
    let (reopened, replayed) = RunJournal::open(&dir, Arc::clone(&io), &manifest).unwrap();
    let reopened = Arc::new(reopened);
    let recovered = reopened.recover(&replayed, clips.len());
    let session = RunSession::resumed(Arc::clone(&reopened), recovered);
    let led = CostLedger::new();
    let run = Engine::run_with_session(&cfg, &ctx, &clips, &opts_at(2), &led, Some(&session));
    assert_eq!(run.stats.resumed_clips_skipped, k);
    assert_eq!(run.stats.resumed_clips_recomputed, clips.len() - k);
    let bits: Vec<u64> = COMPONENTS.iter().map(|&c| led.get(c).to_bits()).collect();
    assert_eq!(bits, baseline.0, "resumed ledger bits diverged");
    assert_eq!(run.rounds, baseline.1, "resumed round log diverged");
    assert_eq!(
        run.stats.deterministic_projection(),
        baseline.2,
        "resumed deterministic stats diverged"
    );
    assert_eq!(
        serde_json::to_string(&run.tracks).unwrap(),
        baseline.3,
        "resumed tracks diverged"
    );
    std::fs::remove_dir_all(&dir).ok();
}
