//! Fault-tolerance guarantees of the multi-stream engine: an injected
//! panic in any stage kills at most its own stream (no deadlock, no
//! propagation), healthy clips stay byte-identical to the sequential
//! `Pipeline` with their cost charges intact, recoverable errors poison
//! exactly one clip and are healed by the sequential retry, and faulted
//! runs are as deterministic as healthy ones.

use otif::core::config::{OtifConfig, TrackerKind};
use otif::core::pipeline::ExecutionContext;
use otif::core::Pipeline;
use otif::cv::{Component, CostLedger, CostModel, DetectorArch, DetectorConfig};
use otif::engine::{ClipOutcome, Engine, EngineOptions, FaultPlan, StageName};
use otif::sim::{Clip, DatasetConfig, DatasetKind, DatasetScale};
use otif::track::Track;

fn config() -> OtifConfig {
    OtifConfig {
        detector: DetectorConfig::new(DetectorArch::YoloV3, 0.5),
        proxy: None,
        gap: 4,
        tracker: TrackerKind::Sort,
        refine: false,
    }
}

/// Five clips so that with two streams each stream owns several clips
/// (stream 0: clips 0, 2, 4; stream 1: clips 1, 3).
fn clips() -> Vec<Clip> {
    DatasetConfig::new(
        DatasetKind::Caldot1,
        DatasetScale {
            clips_per_split: 5,
            clip_seconds: 5.0,
        },
        29,
    )
    .generate()
    .test
}

/// Sequential reference: per-clip tracks and per-clip ledgers.
fn sequential(
    cfg: &OtifConfig,
    ctx: &ExecutionContext,
    clips: &[Clip],
) -> (Vec<Vec<Track>>, Vec<CostLedger>) {
    let mut tracks = Vec::new();
    let mut ledgers = Vec::new();
    for clip in clips {
        let ledger = CostLedger::new();
        tracks.push(Pipeline::run_clip(cfg, ctx, clip, &ledger));
        ledgers.push(ledger);
    }
    (tracks, ledgers)
}

/// Per-clip detector *pixel* cost: the sequential charge minus the
/// per-frame launch overhead (the engine charges launches through the
/// shared batcher instead).
fn pixel_cost(cfg: &OtifConfig, clip: &Clip, ledger: &CostLedger) -> f64 {
    let sampled = clip.num_frames().div_ceil(cfg.gap.max(1)) as f64;
    ledger.get(Component::Detector) - sampled * cfg.detector.arch.per_call()
}

/// A panic injected into any of the four stages kills only its own
/// stream: the run drains without deadlock, the other stream's clips
/// are byte-identical to sequential with their per-component charges
/// intact, and the stats name exactly the dead stream's clips.
#[test]
fn panic_in_each_stage_is_isolated_to_its_stream() {
    let cfg = config();
    let ctx = ExecutionContext::bare(CostModel::default(), 7);
    let clips = clips();
    let (seq_tracks, seq_ledgers) = sequential(&cfg, &ctx, &clips);
    let streams = 2usize;
    // clip 1 lives on stream 1; frame ordinal 1 so the clip has already
    // charged some work (→ wasted_seconds must be discarded, not kept)
    let target_clip = 1usize;
    let expected_failed: Vec<usize> = (0..clips.len())
        .filter(|i| i % streams == target_clip % streams && *i >= target_clip)
        .collect();

    for stage in StageName::ALL {
        let eng = CostLedger::new();
        let opts = EngineOptions {
            faults: FaultPlan::panic_at(stage, target_clip, 1),
            ..EngineOptions::with_streams(streams)
        };
        let run = Engine::run(&cfg, &ctx, &clips, &opts, &eng);
        let stats = &run.stats;

        // exactly the dead stream's unfinished clips failed
        let failed: Vec<usize> = run.failures().iter().map(|(i, _, _)| *i).collect();
        assert_eq!(failed, expected_failed, "stage={stage}");
        for (_, failed_stage, _) in run.failures() {
            assert_eq!(
                failed_stage, stage,
                "failure attributed to the panicking stage"
            );
        }
        assert_eq!(stats.failed_clips, expected_failed.len(), "stage={stage}");
        assert_eq!(stats.panics, 1, "stage={stage}");
        assert_eq!(stats.retried_clips, 0, "panics are not recoverable");
        assert!(!stats.healthy());
        assert!(stats.wasted_seconds > 0.0, "discarded charges are reported");

        // per-stream health: stream 1 panicked in the injected stage,
        // stream 0 is untouched
        assert!(stats.stream_status[0].healthy(), "stage={stage}");
        let sick = &stats.stream_status[1];
        assert_eq!(sick.clips_failed, expected_failed.len());
        assert_eq!(sick.panicked.as_ref().expect("panic recorded").stage, stage);

        // healthy clips: byte-identical tracks...
        let mut ok_pixel = 0.0f64;
        for (i, outcome) in run.tracks.iter().enumerate() {
            if expected_failed.contains(&i) {
                assert!(!outcome.is_ok(), "clip {i} must fail (stage={stage})");
                continue;
            }
            let got = serde_json::to_string(outcome.tracks().expect("healthy clip")).unwrap();
            let want = serde_json::to_string(&seq_tracks[i]).unwrap();
            assert_eq!(got, want, "clip {i} tracks drifted (stage={stage})");
            ok_pixel += pixel_cost(&cfg, &clips[i], &seq_ledgers[i]);
        }
        // ...and byte-identical per-component charges: every non-detector
        // component equals the sequential sum over surviving clips, and
        // the detector splits into those clips' pixel cost plus the
        // shared batched launches
        for c in [
            Component::Decode,
            Component::Proxy,
            Component::Tracker,
            Component::Refinement,
        ] {
            let want: f64 = (0..clips.len())
                .filter(|i| !expected_failed.contains(i))
                .map(|i| seq_ledgers[i].get(c))
                .sum();
            assert!(
                (eng.get(c) - want).abs() < 1e-9,
                "{c:?} stage={stage}: engine {} vs sequential-over-healthy {want}",
                eng.get(c)
            );
        }
        assert!(
            (eng.get(Component::Detector) - stats.launch_seconds - ok_pixel).abs() < 1e-9,
            "stage={stage}: detector pixel share {} vs sequential {ok_pixel}",
            eng.get(Component::Detector) - stats.launch_seconds
        );
    }
}

/// The same fault plan perturbs the run identically every time: two
/// runs under an injected detect-stage panic serialize to the same
/// outcomes and the same accounting, bit for bit. Gauge-style metrics
/// (peak in-flight, peak queue depths) and the discarded-work total
/// (`wasted_seconds` — how far upstream stages got before noticing the
/// dead stage) are timing observations, not accounting, and are masked
/// before comparing.
#[test]
fn faulted_runs_are_deterministic() {
    let cfg = config();
    let ctx = ExecutionContext::bare(CostModel::default(), 7);
    let clips = clips();
    let run_once = || {
        let opts = EngineOptions {
            faults: FaultPlan::panic_at(StageName::Detect, 1, 1),
            ..EngineOptions::with_streams(2)
        };
        let run = Engine::run(&cfg, &ctx, &clips, &opts, &CostLedger::new());
        let mut stats = run.stats.clone();
        stats.max_frames_in_flight = 0;
        stats.max_queue_depth = [0; 3];
        stats.wasted_seconds = 0.0;
        stats.task_polls = 0;
        stats.task_steals = 0;
        stats.stage_yields = [0; 4];
        stats.peak_runnable_tasks = 0;
        stats.peak_os_threads = 0;
        (
            serde_json::to_string(&run.tracks).unwrap(),
            serde_json::to_string(&stats).unwrap(),
        )
    };
    let (tracks_a, stats_a) = run_once();
    let (tracks_b, stats_b) = run_once();
    assert_eq!(
        tracks_a, tracks_b,
        "outcomes must not depend on interleaving"
    );
    assert_eq!(
        stats_a, stats_b,
        "accounting must not depend on interleaving"
    );
}

/// A recoverable error poisons one clip, the sequential retry heals it:
/// every clip's tracks end up identical to sequential, the failure is
/// reported as recovered, and the healed clip's charges (re-run
/// sequentially) land in the same ledger.
#[test]
fn recoverable_error_is_healed_by_sequential_retry() {
    let cfg = config();
    let ctx = ExecutionContext::bare(CostModel::default(), 7);
    let clips = clips();
    let (seq_tracks, seq_ledgers) = sequential(&cfg, &ctx, &clips);

    let eng = CostLedger::new();
    let opts = EngineOptions {
        faults: FaultPlan::error_at(StageName::Decode, 0, 2),
        ..EngineOptions::with_streams(2)
    };
    let run = Engine::run(&cfg, &ctx, &clips, &opts, &eng);
    let stats = run.stats.clone();

    // the retry restored every clip
    let got = serde_json::to_string(&run.expect_tracks()).unwrap();
    let want = serde_json::to_string(&seq_tracks).unwrap();
    assert_eq!(got, want, "retried run must equal sequential everywhere");

    assert_eq!(stats.failed_clips, 1);
    assert_eq!(stats.retried_clips, 1);
    // the bounded backoff schedule: one attempt, base * 2^0 virtual
    // seconds accounted in the makespan (never in the ledger)
    assert_eq!(stats.retry_attempts, 1);
    let expected_backoff = otif_engine::retry_backoff(opts.retry_backoff_base, 0);
    assert!(
        (stats.retry_backoff_seconds - expected_backoff).abs() < 1e-12,
        "backoff {} != schedule {}",
        stats.retry_backoff_seconds,
        expected_backoff
    );
    assert_eq!(stats.panics, 0);
    assert_eq!(stats.failures.len(), 1);
    assert_eq!(stats.failures[0].clip, 0);
    assert_eq!(stats.failures[0].stage, StageName::Decode);
    assert!(stats.failures[0].recovered);
    // the two decoded-then-discarded frames are accounted as waste
    assert!(stats.wasted_seconds > 0.0);

    // the retry charged the healed clip's full sequential cost into the
    // same ledger: non-detector components match the all-clips totals
    for c in [
        Component::Decode,
        Component::Proxy,
        Component::Tracker,
        Component::Refinement,
    ] {
        let want: f64 = seq_ledgers.iter().map(|l| l.get(c)).sum();
        assert!(
            (eng.get(c) - want).abs() < 1e-9,
            "{c:?}: engine {} vs sequential {want}",
            eng.get(c)
        );
    }
}

/// With the retry disabled, a recoverable error in any stage fails
/// exactly the targeted clip — same-stream siblings (before and after
/// it) still complete byte-identically.
#[test]
fn error_without_retry_poisons_exactly_one_clip() {
    let cfg = config();
    let ctx = ExecutionContext::bare(CostModel::default(), 7);
    let clips = clips();
    let (seq_tracks, _) = sequential(&cfg, &ctx, &clips);
    // clip 2 sits between clips 0 and 4 on stream 0
    let target_clip = 2usize;

    for stage in StageName::ALL {
        let opts = EngineOptions {
            faults: FaultPlan::error_at(stage, target_clip, 0),
            no_retry: true,
            ..EngineOptions::with_streams(2)
        };
        let run = Engine::run(&cfg, &ctx, &clips, &opts, &CostLedger::new());
        let stats = &run.stats;

        assert_eq!(stats.failed_clips, 1, "stage={stage}");
        assert_eq!(stats.retried_clips, 0, "retry disabled");
        assert_eq!(stats.retry_attempts, 0, "no attempts when disabled");
        assert_eq!(stats.retry_backoff_seconds, 0.0, "no backoff scheduled");
        assert_eq!(stats.panics, 0, "errors must not panic (stage={stage})");
        assert_eq!(stats.stream_status[0].clips_failed, 1);
        assert!(stats.stream_status[0].panicked.is_none());
        assert!(stats.stream_status[1].healthy());

        for (i, outcome) in run.tracks.iter().enumerate() {
            if i == target_clip {
                let ClipOutcome::Failed {
                    stage: failed_stage,
                    ..
                } = outcome
                else {
                    panic!("clip {i} must fail (stage={stage})");
                };
                assert_eq!(*failed_stage, stage);
                continue;
            }
            let got = serde_json::to_string(outcome.tracks().expect("sibling clip")).unwrap();
            let want = serde_json::to_string(&seq_tracks[i]).unwrap();
            assert_eq!(got, want, "clip {i} tracks drifted (stage={stage})");
        }
    }
}
