//! Vendored JSON front-end for the simplified serde substitute.
//!
//! Serializes `serde::Value` trees to JSON text and parses JSON text
//! back. Numbers pass through as their literal text (`Value::Num`
//! stores the unparsed literal), so emit→parse→emit is the identity on
//! numbers and round-trips are bit-exact for every float width.

use serde::{Deserialize, Serialize, Value};

pub use serde::Error;

/// Serialize to compact JSON.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out, None, 0);
    Ok(out)
}

/// Serialize to pretty-printed JSON (2-space indent).
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out, Some(2), 0);
    Ok(out)
}

/// Parse JSON text into `T`.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error(format!(
            "trailing characters at byte {} of JSON input",
            p.pos
        )));
    }
    T::from_value(&v)
}

// ---------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------

fn write_value(v: &Value, out: &mut String, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Num(lit) => write_number(lit, out),
        Value::Str(s) => write_escaped(s, out),
        Value::Arr(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_value(item, out, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push(']');
        }
        Value::Obj(pairs) => {
            if pairs.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, val)) in pairs.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_escaped(k, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(val, out, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * depth {
            out.push(' ');
        }
    }
}

/// Emit a numeric literal, normalizing Rust float spellings JSON
/// rejects (`NaN`, `inf`, leading `.`); JSON has no NaN/Infinity so
/// those become `null` like upstream serde_json.
fn write_number(lit: &str, out: &mut String) {
    if lit == "NaN" || lit == "inf" || lit == "-inf" || lit.ends_with("inf") {
        out.push_str("null");
    } else {
        out.push_str(lit);
    }
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while self.pos < self.bytes.len()
            && matches!(self.bytes[self.pos], b' ' | b'\t' | b'\n' | b'\r')
        {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error(format!(
                "expected `{}` at byte {} of JSON input",
                b as char, self.pos
            )))
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') => self.parse_keyword("null", Value::Null),
            Some(b't') => self.parse_keyword("true", Value::Bool(true)),
            Some(b'f') => self.parse_keyword("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::Str(self.parse_string()?)),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.parse_number(),
            other => Err(Error(format!(
                "unexpected {:?} at byte {} of JSON input",
                other.map(|b| b as char),
                self.pos
            ))),
        }
    }

    fn parse_keyword(&mut self, kw: &str, v: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            Ok(v)
        } else {
            Err(Error(format!("invalid literal at byte {}", self.pos)))
        }
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(
            self.peek(),
            Some(b) if b.is_ascii_digit() || matches!(b, b'.' | b'e' | b'E' | b'+' | b'-')
        ) {
            self.pos += 1;
        }
        if self.pos == start {
            return Err(Error(format!("empty number at byte {start}")));
        }
        let lit =
            std::str::from_utf8(&self.bytes[start..self.pos]).map_err(|e| Error(e.to_string()))?;
        Ok(Value::Num(lit.to_string()))
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let rest = &self.bytes[self.pos..];
            let Some(&b) = rest.first() else {
                return Err(Error("unterminated string in JSON input".into()));
            };
            match b {
                b'"' => {
                    self.pos += 1;
                    return Ok(out);
                }
                b'\\' => {
                    let esc = rest
                        .get(1)
                        .copied()
                        .ok_or_else(|| Error("unterminated escape in JSON input".into()))?;
                    self.pos += 2;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| Error("bad \\u escape".into()))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|e| Error(format!("bad \\u escape: {e}")))?;
                            self.pos += 4;
                            // surrogate pairs are not needed for this
                            // workspace's ASCII-safe payloads
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error("bad \\u code point".into()))?,
                            );
                        }
                        other => {
                            return Err(Error(format!(
                                "unknown escape `\\{}` in JSON input",
                                other as char
                            )))
                        }
                    }
                }
                _ => {
                    // consume one UTF-8 scalar
                    let s = std::str::from_utf8(rest).map_err(|e| Error(e.to_string()))?;
                    let c = s.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn parse_array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                other => {
                    return Err(Error(format!(
                        "expected `,` or `]`, found {:?} at byte {}",
                        other.map(|b| b as char),
                        self.pos
                    )))
                }
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.parse_value()?;
            pairs.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(pairs));
                }
                other => {
                    return Err(Error(format!(
                        "expected `,` or `}}`, found {:?} at byte {}",
                        other.map(|b| b as char),
                        self.pos
                    )))
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_round_trips() {
        assert_eq!(from_str::<u32>(&to_string(&7u32).unwrap()).unwrap(), 7);
        assert_eq!(from_str::<bool>("true").unwrap(), true);
        assert_eq!(from_str::<String>("\"a\\n\\\"b\\\"\"").unwrap(), "a\n\"b\"");
    }

    #[test]
    fn float_round_trip_is_bit_exact() {
        for &f in &[0.1f32, -3.75e-5, 16_777_217.0] {
            let s = to_string(&f).unwrap();
            assert_eq!(from_str::<f32>(&s).unwrap().to_bits(), f.to_bits());
        }
    }

    #[test]
    fn containers_round_trip() {
        let x: Vec<(String, Option<f64>)> = vec![("a".into(), Some(1.5)), ("b".into(), None)];
        let s = to_string(&x).unwrap();
        let back: Vec<(String, Option<f64>)> = from_str(&s).unwrap();
        assert_eq!(back, x);
    }

    #[test]
    fn pretty_output_parses_back() {
        let x = vec![vec![1u32, 2], vec![3]];
        let s = to_string_pretty(&x).unwrap();
        assert!(s.contains('\n'));
        let back: Vec<Vec<u32>> = from_str(&s).unwrap();
        assert_eq!(back, x);
    }

    #[test]
    fn nan_and_inf_become_null() {
        assert_eq!(to_string(&f64::NAN).unwrap(), "null");
        assert_eq!(to_string(&f64::INFINITY).unwrap(), "null");
        let got: Option<f64> = from_str("null").unwrap();
        assert_eq!(got, None);
    }

    #[test]
    fn rejects_trailing_garbage() {
        assert!(from_str::<u32>("1 2").is_err());
    }
}
