//! Vendored minimal `proptest` substitute.
//!
//! Supports the subset this workspace uses: the [`proptest!`] macro
//! over `#[test] fn name(binder in strategy, ...)` items, range and
//! tuple strategies, [`collection::vec`] with fixed or ranged sizes,
//! `prop_map`, and [`prop_assert!`]/[`prop_assert_eq!`]. Cases are
//! generated from a deterministic per-test RNG (seeded by the test
//! name), so runs are reproducible. Failing cases report the generated
//! inputs' assertion message but are not shrunk.

pub mod strategy {
    use crate::test_runner::TestRng;

    /// A generator of random values of type `Self::Value`.
    pub trait Strategy {
        /// The type of value this strategy generates.
        type Value;

        /// Draw one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Transform generated values with `f`.
        fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }
    }

    /// Strategy adapter produced by [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;

        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    macro_rules! impl_uint_range {
        ($($t:ty),* $(,)?) => {$(
            impl Strategy for ::std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end - self.start) as u64;
                    self.start + (rng.next_u64() % span) as $t
                }
            }
        )*};
    }

    impl_uint_range!(u8, u16, u32, u64, usize);

    macro_rules! impl_int_range {
        ($($t:ty),* $(,)?) => {$(
            impl Strategy for ::std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i64 - self.start as i64) as u64;
                    (self.start as i64 + (rng.next_u64() % span) as i64) as $t
                }
            }
        )*};
    }

    impl_int_range!(i8, i16, i32, i64, isize);

    macro_rules! impl_float_range {
        ($($t:ty),* $(,)?) => {$(
            impl Strategy for ::std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    self.start + (self.end - self.start) * rng.next_f64() as $t
                }
            }
        )*};
    }

    impl_float_range!(f32, f64);

    impl Strategy for ::std::ops::RangeInclusive<u64> {
        type Value = u64;

        fn generate(&self, rng: &mut TestRng) -> u64 {
            let span = (self.end() - self.start()).wrapping_add(1);
            if span == 0 {
                rng.next_u64()
            } else {
                self.start() + rng.next_u64() % span
            }
        }
    }

    macro_rules! impl_tuple_strategy {
        ($(($($name:ident . $idx:tt),+ $(,)?)),* $(,)?) => {$(
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )*};
    }

    impl_tuple_strategy!(
        (A.0),
        (A.0, B.1),
        (A.0, B.1, C.2),
        (A.0, B.1, C.2, D.3),
        (A.0, B.1, C.2, D.3, E.4),
        (A.0, B.1, C.2, D.3, E.4, F.5),
    );

    /// The `Just` strategy: always yields a clone of the given value.
    #[derive(Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Element-count bounds for [`vec`]: a fixed size or a half-open
    /// range.
    #[derive(Clone, Copy)]
    pub struct SizeRange {
        min: usize,
        /// exclusive
        max: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { min: n, max: n + 1 }
        }
    }

    impl From<::std::ops::Range<usize>> for SizeRange {
        fn from(r: ::std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty vec size range");
            SizeRange {
                min: r.start,
                max: r.end,
            }
        }
    }

    /// Strategy for `Vec`s of values drawn from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// Strategy produced by [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.max - self.size.min) as u64;
            let len = self.size.min + (rng.next_u64() % span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod test_runner {
    use std::fmt;

    /// Number of cases generated per property.
    pub const CASES: usize = 96;

    /// A failed property assertion, carrying its message.
    #[derive(Debug)]
    pub struct TestCaseError(pub String);

    impl fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "{}", self.0)
        }
    }

    /// Deterministic RNG (SplitMix64) seeded from the test name.
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seed from an arbitrary string (FNV-1a hash).
        pub fn from_name(name: &str) -> Self {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
            TestRng { state: h }
        }

        /// Next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }

        /// Uniform in `[0, 1)` with 53 bits of precision.
        pub fn next_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }

    /// Per-test driver: owns the deterministic RNG.
    pub struct TestRunner {
        /// RNG used by strategies for this test.
        pub rng: TestRng,
    }

    impl TestRunner {
        /// Build a runner whose RNG is seeded from the test name.
        pub fn deterministic(name: &str) -> Self {
            TestRunner {
                rng: TestRng::from_name(name),
            }
        }
    }
}

/// Define property tests: each `#[test] fn name(x in strategy, ...)`
/// item becomes a normal `#[test]` running [`test_runner::CASES`]
/// deterministic cases.
#[macro_export]
macro_rules! proptest {
    ($(#[test] fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            #[test]
            fn $name() {
                let mut runner =
                    $crate::test_runner::TestRunner::deterministic(stringify!($name));
                for case in 0..$crate::test_runner::CASES {
                    let ($($arg,)+) = (
                        $($crate::strategy::Strategy::generate(
                            &$strat,
                            &mut runner.rng,
                        ),)+
                    );
                    let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                        (|| {
                            $body
                            ::std::result::Result::Ok(())
                        })();
                    if let ::std::result::Result::Err(e) = outcome {
                        panic!(
                            "proptest `{}` failed at case {}/{}: {}",
                            stringify!($name),
                            case + 1,
                            $crate::test_runner::CASES,
                            e
                        );
                    }
                }
            }
        )*
    };
}

/// Assert a condition inside a [`proptest!`] body; failure aborts the
/// current case with the condition text (or a custom format message).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError(
                format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError(
                format!($($fmt)+),
            ));
        }
    };
}

/// Assert equality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let left = $left;
        let right = $right;
        if !(left == right) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError(
                format!("assertion failed: {:?} != {:?}", left, right),
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let left = $left;
        let right = $right;
        if !(left == right) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError(
                format!($($fmt)+),
            ));
        }
    }};
}

pub mod prelude {
    pub use crate::strategy::{Just, Strategy};
    pub use crate::{prop_assert, prop_assert_eq, proptest};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = crate::test_runner::TestRng::from_name("bounds");
        for _ in 0..1000 {
            let u = Strategy::generate(&(3usize..9), &mut rng);
            assert!((3..9).contains(&u));
            let f = Strategy::generate(&(-2.0f32..5.0), &mut rng);
            assert!((-2.0..5.0).contains(&f));
        }
    }

    #[test]
    fn determinism_same_name_same_stream() {
        let mut a = crate::test_runner::TestRng::from_name("x");
        let mut b = crate::test_runner::TestRng::from_name("x");
        for _ in 0..10 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    proptest! {
        #[test]
        fn vec_sizes_in_range(
            v in crate::collection::vec(0u32..10, 2..5),
            fixed in crate::collection::vec(0.0f64..1.0, 3),
            pair in (0u8..4, -1.0f32..1.0),
        ) {
            prop_assert!(v.len() >= 2 && v.len() < 5);
            prop_assert_eq!(fixed.len(), 3);
            prop_assert!(pair.0 < 4);
            prop_assert!(pair.1 >= -1.0 && pair.1 < 1.0, "pair.1 = {}", pair.1);
        }
    }
}
