//! Vendored minimal `criterion` substitute.
//!
//! Implements the API subset the workspace's microbenches use
//! (`Criterion::default().sample_size(..)`, `bench_function`,
//! `Bencher::iter` / `iter_batched`, `BatchSize`, the
//! `criterion_group!`/`criterion_main!` macros) with plain
//! `std::time::Instant` timing and a one-line-per-benchmark report —
//! no statistics, plotting, or CLI.

use std::time::{Duration, Instant};

/// Prevent the optimizer from discarding a value.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// How batched setup values are grouped; accepted for API
/// compatibility, timing is per-iteration either way.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One setup per iteration.
    PerIteration,
}

/// Benchmark driver: runs each registered function and prints mean
/// wall-clock time per iteration.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 20 }
    }
}

impl Criterion {
    /// Set the number of timed iterations per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Run one benchmark and print its mean iteration time.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            iterations: self.sample_size,
            elapsed: Duration::ZERO,
            timed_iters: 0,
        };
        f(&mut b);
        let mean_ns = if b.timed_iters == 0 {
            0.0
        } else {
            b.elapsed.as_nanos() as f64 / b.timed_iters as f64
        };
        println!("bench {name}: {mean_ns:.0} ns/iter (n={})", b.timed_iters);
        self
    }
}

/// Timing context handed to each benchmark closure.
pub struct Bencher {
    iterations: usize,
    elapsed: Duration,
    timed_iters: u64,
}

impl Bencher {
    /// Time `routine` over the configured number of iterations.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        for _ in 0..self.iterations {
            let t0 = Instant::now();
            black_box(routine());
            self.elapsed += t0.elapsed();
            self.timed_iters += 1;
        }
    }

    /// Time `routine` on fresh inputs from `setup`; setup time is not
    /// counted.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        for _ in 0..self.iterations {
            let input = setup();
            let t0 = Instant::now();
            black_box(routine(input));
            self.elapsed += t0.elapsed();
            self.timed_iters += 1;
        }
    }
}

/// Define a benchmark group: either `criterion_group!(name, fn, ...)`
/// or the `name = ...; config = ...; targets = ...` form.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emit `main` running the given benchmark groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_counts_iterations() {
        let mut c = Criterion::default().sample_size(5);
        let mut calls = 0u32;
        c.bench_function("smoke/iter", |b| b.iter(|| calls += 1));
        assert_eq!(calls, 5);
    }

    #[test]
    fn iter_batched_runs_setup_per_iteration() {
        let mut c = Criterion::default().sample_size(4);
        let mut setups = 0u32;
        c.bench_function("smoke/batched", |b| {
            b.iter_batched(
                || {
                    setups += 1;
                    vec![1u8; 8]
                },
                |v| v.len(),
                BatchSize::SmallInput,
            )
        });
        assert_eq!(setups, 4);
    }
}
