//! Vendored `rand_chacha` substitute: a genuine ChaCha8 keystream
//! generator implementing the vendored `rand` traits.

pub use rand as rand_core;

use rand::{RngCore, SeedableRng};

/// ChaCha with 8 rounds, seeded from a 64-bit seed (the only
/// construction the workspace uses).
#[derive(Debug, Clone)]
pub struct ChaCha8Rng {
    /// Input block: constants, 256-bit key, 64-bit counter, 64-bit nonce.
    state: [u32; 16],
    /// Keystream words from the current block.
    buf: [u32; 16],
    /// Next unread index into `buf` (16 = exhausted).
    idx: usize,
}

const CHACHA_CONSTANTS: [u32; 4] = [0x6170_7865, 0x3320_646e, 0x7962_2d32, 0x6b20_6574];

#[inline(always)]
fn quarter_round(s: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(16);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(12);
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(8);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(7);
}

impl ChaCha8Rng {
    fn refill(&mut self) {
        let mut w = self.state;
        for _ in 0..4 {
            // 8 rounds = 4 double-rounds (column + diagonal)
            quarter_round(&mut w, 0, 4, 8, 12);
            quarter_round(&mut w, 1, 5, 9, 13);
            quarter_round(&mut w, 2, 6, 10, 14);
            quarter_round(&mut w, 3, 7, 11, 15);
            quarter_round(&mut w, 0, 5, 10, 15);
            quarter_round(&mut w, 1, 6, 11, 12);
            quarter_round(&mut w, 2, 7, 8, 13);
            quarter_round(&mut w, 3, 4, 9, 14);
        }
        for i in 0..16 {
            self.buf[i] = w[i].wrapping_add(self.state[i]);
        }
        // advance the 64-bit block counter (words 12-13)
        let (lo, carry) = self.state[12].overflowing_add(1);
        self.state[12] = lo;
        if carry {
            self.state[13] = self.state[13].wrapping_add(1);
        }
        self.idx = 0;
    }
}

impl SeedableRng for ChaCha8Rng {
    fn seed_from_u64(seed: u64) -> Self {
        // Expand the 64-bit seed into a 256-bit key with SplitMix64,
        // mirroring how upstream rand fills seed bytes.
        let mut sm = seed;
        let mut next = || {
            sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        let mut state = [0u32; 16];
        state[..4].copy_from_slice(&CHACHA_CONSTANTS);
        for i in 0..4 {
            let k = next();
            state[4 + 2 * i] = k as u32;
            state[5 + 2 * i] = (k >> 32) as u32;
        }
        // counter = 0, nonce = 0
        ChaCha8Rng {
            state,
            buf: [0; 16],
            idx: 16,
        }
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u32(&mut self) -> u32 {
        if self.idx >= 16 {
            self.refill();
        }
        let v = self.buf[self.idx];
        self.idx += 1;
        v
    }

    fn next_u64(&mut self) -> u64 {
        let lo = self.next_u32() as u64;
        let hi = self.next_u32() as u64;
        (hi << 32) | lo
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn deterministic_and_seed_sensitive() {
        let mut a = ChaCha8Rng::seed_from_u64(10);
        let mut b = ChaCha8Rng::seed_from_u64(10);
        let mut c = ChaCha8Rng::seed_from_u64(11);
        let va: Vec<u32> = (0..40).map(|_| a.next_u32()).collect();
        let vb: Vec<u32> = (0..40).map(|_| b.next_u32()).collect();
        let vc: Vec<u32> = (0..40).map(|_| c.next_u32()).collect();
        assert_eq!(va, vb);
        assert_ne!(va, vc);
    }

    #[test]
    fn keystream_crosses_block_boundaries() {
        let mut r = ChaCha8Rng::seed_from_u64(1);
        // 40 u64 draws consume > 4 blocks
        let vs: Vec<u64> = (0..40).map(|_| r.next_u64()).collect();
        let uniq: std::collections::HashSet<_> = vs.iter().collect();
        assert_eq!(uniq.len(), vs.len());
    }

    #[test]
    fn works_through_rng_helpers() {
        let mut r = ChaCha8Rng::seed_from_u64(2);
        for _ in 0..100 {
            let g = r.gen_range(0.25_f32..0.75);
            assert!((0.25..0.75).contains(&g));
        }
    }
}
