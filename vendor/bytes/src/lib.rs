//! Vendored minimal `bytes` substitute: cheap-to-clone immutable byte
//! buffers and a growable builder, over `Arc<Vec<u8>>`.

use std::ops::Deref;
use std::sync::Arc;

/// An immutable, cheaply clonable byte buffer.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Bytes(Arc<Vec<u8>>);

impl Bytes {
    /// An empty buffer.
    pub fn new() -> Self {
        Bytes::default()
    }

    /// Copy a slice into a new buffer.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes(Arc::new(data.to_vec()))
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }
}

impl Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.0
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Bytes(Arc::new(v))
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

/// A growable byte buffer that freezes into [`Bytes`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BytesMut(Vec<u8>);

impl BytesMut {
    /// An empty builder.
    pub fn new() -> Self {
        BytesMut::default()
    }

    /// Builder with reserved capacity.
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut(Vec::with_capacity(cap))
    }

    /// Append a slice.
    pub fn extend_from_slice(&mut self, data: &[u8]) {
        self.0.extend_from_slice(data);
    }

    /// Append one byte.
    pub fn put_u8(&mut self, b: u8) {
        self.0.push(b);
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Freeze into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes(Arc::new(self.0))
    }
}

impl Deref for BytesMut {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_through_builder() {
        let mut b = BytesMut::with_capacity(4);
        b.extend_from_slice(&[1, 2]);
        b.put_u8(3);
        let frozen = b.freeze();
        assert_eq!(&*frozen, &[1, 2, 3]);
        assert_eq!(frozen.clone(), Bytes::from(vec![1, 2, 3]));
    }
}
