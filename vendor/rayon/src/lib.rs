//! Vendored `rayon` substitute: `par_iter()` et al. return *sequential*
//! std iterators. Call sites compile unchanged; execution order becomes
//! deterministic left-to-right, which only affects wall-clock time (the
//! workspace measures cost through a simulated-seconds ledger, never
//! through wall-clock parallel speedup).

pub mod prelude {
    /// `&collection → par_iter()` — sequential stand-in.
    pub trait IntoParallelRefIterator<'data> {
        /// Element type yielded by the iterator.
        type Item: 'data;
        /// Iterator type (a plain std iterator here).
        type Iter: Iterator<Item = Self::Item>;

        /// Iterate sequentially (parallel upstream).
        fn par_iter(&'data self) -> Self::Iter;
    }

    impl<'data, T: Sync + 'data> IntoParallelRefIterator<'data> for [T] {
        type Item = &'data T;
        type Iter = std::slice::Iter<'data, T>;

        fn par_iter(&'data self) -> Self::Iter {
            self.iter()
        }
    }

    impl<'data, T: Sync + 'data> IntoParallelRefIterator<'data> for Vec<T> {
        type Item = &'data T;
        type Iter = std::slice::Iter<'data, T>;

        fn par_iter(&'data self) -> Self::Iter {
            self.iter()
        }
    }

    /// `&mut collection → par_iter_mut()` — sequential stand-in.
    pub trait IntoParallelRefMutIterator<'data> {
        /// Element type yielded by the iterator.
        type Item: 'data;
        /// Iterator type (a plain std iterator here).
        type Iter: Iterator<Item = Self::Item>;

        /// Iterate sequentially with mutable access.
        fn par_iter_mut(&'data mut self) -> Self::Iter;
    }

    impl<'data, T: Send + 'data> IntoParallelRefMutIterator<'data> for [T] {
        type Item = &'data mut T;
        type Iter = std::slice::IterMut<'data, T>;

        fn par_iter_mut(&'data mut self) -> Self::Iter {
            self.iter_mut()
        }
    }

    impl<'data, T: Send + 'data> IntoParallelRefMutIterator<'data> for Vec<T> {
        type Item = &'data mut T;
        type Iter = std::slice::IterMut<'data, T>;

        fn par_iter_mut(&'data mut self) -> Self::Iter {
            self.iter_mut()
        }
    }

    /// `collection → into_par_iter()` — sequential stand-in.
    pub trait IntoParallelIterator {
        /// Element type yielded by the iterator.
        type Item;
        /// Iterator type (a plain std iterator here).
        type Iter: Iterator<Item = Self::Item>;

        /// Consume into a sequential iterator.
        fn into_par_iter(self) -> Self::Iter;
    }

    impl<T> IntoParallelIterator for Vec<T> {
        type Item = T;
        type Iter = std::vec::IntoIter<T>;

        fn into_par_iter(self) -> Self::Iter {
            self.into_iter()
        }
    }

    impl<T> IntoParallelIterator for std::ops::Range<T>
    where
        std::ops::Range<T>: Iterator<Item = T>,
    {
        type Item = T;
        type Iter = std::ops::Range<T>;

        fn into_par_iter(self) -> Self::Iter {
            self
        }
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn par_iter_matches_iter() {
        let v = vec![1, 2, 3, 4];
        let doubled: Vec<i32> = v.par_iter().map(|x| x * 2).collect();
        assert_eq!(doubled, vec![2, 4, 6, 8]);
    }

    #[test]
    fn par_iter_mut_mutates() {
        let mut v = vec![1, 2, 3];
        v.par_iter_mut().for_each(|x| *x += 10);
        assert_eq!(v, vec![11, 12, 13]);
    }

    #[test]
    fn into_par_iter_consumes() {
        let total: i32 = (0..5).into_par_iter().sum();
        assert_eq!(total, 10);
    }
}
