//! Vendored `#[derive(Serialize, Deserialize)]` for the simplified
//! serde substitute in `vendor/serde`.
//!
//! Implemented directly on `proc_macro::TokenStream` (no syn/quote,
//! which are unavailable offline): the input item is scanned for field
//! and variant *names* only — types never need to be parsed because
//! the generated code calls trait methods whose impls are resolved by
//! inference. Generated impls target `::serde::{Serialize,
//! Deserialize, Value, Error}` with serde_json-compatible shapes:
//! named struct → object, newtype struct → inner value, tuple struct →
//! array, unit variant → `"Name"`, data variant → `{"Name": ...}`.
//! `#[serde(skip)]` omits a field on serialize and fills it with
//! `Default::default()` on deserialize. Generics are not supported
//! (the workspace derives only concrete types).

use proc_macro::{Delimiter, Group, TokenStream, TokenTree};

enum Fields {
    Unit,
    /// Per-element skip flags, in declaration order.
    Tuple(Vec<bool>),
    /// `(name, skip)` per field, in declaration order.
    Named(Vec<(String, bool)>),
}

struct Variant {
    name: String,
    fields: Fields,
}

enum Item {
    Struct {
        name: String,
        fields: Fields,
    },
    Enum {
        name: String,
        variants: Vec<Variant>,
    },
}

/// Derive `::serde::Serialize` (conversion into `::serde::Value`).
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let code = match parse_item(input) {
        Item::Struct { name, fields } => gen_struct_ser(&name, &fields),
        Item::Enum { name, variants } => gen_enum_ser(&name, &variants),
    };
    code.parse()
        .expect("serde_derive generated invalid Serialize impl")
}

/// Derive `::serde::Deserialize` (reconstruction from `::serde::Value`).
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let code = match parse_item(input) {
        Item::Struct { name, fields } => gen_struct_de(&name, &fields),
        Item::Enum { name, variants } => gen_enum_de(&name, &variants),
    };
    code.parse()
        .expect("serde_derive generated invalid Deserialize impl")
}

// ---------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------

fn parse_item(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    // Scan past outer attributes / doc comments / visibility to the
    // `struct` or `enum` keyword.
    let kind = loop {
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                i += 1; // '#'
                if matches!(tokens.get(i), Some(TokenTree::Punct(p2)) if p2.as_char() == '!') {
                    i += 1;
                }
                i += 1; // the [...] group
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                i += 1;
                if matches!(
                    tokens.get(i),
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis
                ) {
                    i += 1;
                }
            }
            Some(TokenTree::Ident(id))
                if id.to_string() == "struct" || id.to_string() == "enum" =>
            {
                break id.to_string();
            }
            Some(_) => i += 1,
            None => panic!("serde_derive: no struct/enum keyword found"),
        }
    };
    i += 1;
    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde_derive: expected type name, found {other:?}"),
    };
    i += 1;
    if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("serde_derive (vendored): generic type `{name}` is not supported");
    }
    if kind == "struct" {
        let fields = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Fields::Named(parse_named_fields(g))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Fields::Tuple(parse_tuple_fields(g))
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Fields::Unit,
            other => panic!("serde_derive: unexpected token after struct name: {other:?}"),
        };
        Item::Struct { name, fields }
    } else {
        let variants = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => parse_variants(g),
            other => panic!("serde_derive: expected enum body, found {other:?}"),
        };
        Item::Enum { name, variants }
    }
}

/// Does this `[...]` attribute group spell `serde(skip)`? Panics on
/// serde attributes this substitute does not implement; non-serde
/// attributes (doc comments, cfg, ...) return false.
fn attr_is_serde_skip(group: &Group) -> bool {
    let tokens: Vec<TokenTree> = group.stream().into_iter().collect();
    match tokens.first() {
        Some(TokenTree::Ident(id)) if id.to_string() == "serde" => {}
        _ => return false,
    }
    let mut skip = false;
    if let Some(TokenTree::Group(args)) = tokens.get(1) {
        for tok in args.stream() {
            if let TokenTree::Ident(id) = tok {
                match id.to_string().as_str() {
                    "skip" => skip = true,
                    other => panic!(
                        "serde_derive (vendored): unsupported serde attribute `{other}` \
                         (only `skip` is implemented)"
                    ),
                }
            }
        }
    }
    skip
}

/// Advance past a run of `#[...]` attributes, returning whether any
/// was `#[serde(skip)]`.
fn consume_attrs(tokens: &[TokenTree], i: &mut usize) -> bool {
    let mut skip = false;
    while matches!(tokens.get(*i), Some(TokenTree::Punct(p)) if p.as_char() == '#') {
        if let Some(TokenTree::Group(g)) = tokens.get(*i + 1) {
            if attr_is_serde_skip(g) {
                skip = true;
            }
        }
        *i += 2;
    }
    skip
}

/// Advance past optional `pub` / `pub(...)` visibility.
fn consume_visibility(tokens: &[TokenTree], i: &mut usize) {
    if matches!(tokens.get(*i), Some(TokenTree::Ident(id)) if id.to_string() == "pub") {
        *i += 1;
        if matches!(
            tokens.get(*i),
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis
        ) {
            *i += 1;
        }
    }
}

/// Advance to just past the next top-level `,`. Tracks `<`/`>` depth so
/// commas inside generic arguments (e.g. `HashMap<String, u32>`) are
/// not treated as separators; bracketed groups are atomic tokens.
fn consume_until_comma(tokens: &[TokenTree], i: &mut usize) {
    let mut depth = 0i32;
    while *i < tokens.len() {
        match &tokens[*i] {
            TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' && depth > 0 => depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => {
                *i += 1;
                return;
            }
            _ => {}
        }
        *i += 1;
    }
}

fn parse_named_fields(group: &Group) -> Vec<(String, bool)> {
    let tokens: Vec<TokenTree> = group.stream().into_iter().collect();
    let mut i = 0;
    let mut out = Vec::new();
    while i < tokens.len() {
        let skip = consume_attrs(&tokens, &mut i);
        consume_visibility(&tokens, &mut i);
        let name = match tokens.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            other => panic!("serde_derive: expected field name, found {other:?}"),
        };
        i += 1; // name
        i += 1; // ':'
        consume_until_comma(&tokens, &mut i);
        out.push((name, skip));
    }
    out
}

fn parse_tuple_fields(group: &Group) -> Vec<bool> {
    let tokens: Vec<TokenTree> = group.stream().into_iter().collect();
    let mut i = 0;
    let mut out = Vec::new();
    while i < tokens.len() {
        let skip = consume_attrs(&tokens, &mut i);
        consume_visibility(&tokens, &mut i);
        consume_until_comma(&tokens, &mut i);
        out.push(skip);
    }
    out
}

fn parse_variants(group: &Group) -> Vec<Variant> {
    let tokens: Vec<TokenTree> = group.stream().into_iter().collect();
    let mut i = 0;
    let mut out = Vec::new();
    while i < tokens.len() {
        consume_attrs(&tokens, &mut i);
        let Some(TokenTree::Ident(id)) = tokens.get(i) else {
            panic!(
                "serde_derive: expected variant name, found {:?}",
                tokens.get(i)
            );
        };
        let name = id.to_string();
        i += 1;
        let fields = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                i += 1;
                Fields::Tuple(parse_tuple_fields(g))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                i += 1;
                Fields::Named(parse_named_fields(g))
            }
            _ => Fields::Unit,
        };
        // past any `= discriminant` to the separating comma
        consume_until_comma(&tokens, &mut i);
        out.push(Variant { name, fields });
    }
    out
}

// ---------------------------------------------------------------------
// Codegen (strings parsed back into TokenStream)
// ---------------------------------------------------------------------

/// Expression serializing the fields as a `Value`, given per-field
/// accessor expressions (`&self.x` for structs, `x0` for match arms).
fn ser_named_body(fields: &[(String, bool)], accessor: &dyn Fn(&str) -> String) -> String {
    let entries: String = fields
        .iter()
        .filter(|(_, skip)| !skip)
        .map(|(n, _)| {
            format!(
                "(\"{n}\".to_string(), ::serde::Serialize::to_value({})),",
                accessor(n)
            )
        })
        .collect();
    format!("::serde::Value::Obj(vec![{entries}])")
}

fn gen_struct_ser(name: &str, fields: &Fields) -> String {
    let body = match fields {
        Fields::Unit => "::serde::Value::Null".to_string(),
        Fields::Tuple(skips) if skips.len() == 1 && !skips[0] => {
            // newtype struct: serialize transparently as the inner value
            "::serde::Serialize::to_value(&self.0)".to_string()
        }
        Fields::Tuple(skips) => {
            let items: String = skips
                .iter()
                .enumerate()
                .filter(|(_, skip)| !**skip)
                .map(|(idx, _)| format!("::serde::Serialize::to_value(&self.{idx}),"))
                .collect();
            format!("::serde::Value::Arr(vec![{items}])")
        }
        Fields::Named(fs) => ser_named_body(fs, &|n| format!("&self.{n}")),
    };
    format!(
        "impl ::serde::Serialize for {name} {{\n\
             fn to_value(&self) -> ::serde::Value {{ {body} }}\n\
         }}"
    )
}

fn gen_struct_de(name: &str, fields: &Fields) -> String {
    let body = match fields {
        Fields::Unit => format!("::core::result::Result::Ok({name})"),
        Fields::Tuple(skips) if skips.len() == 1 && !skips[0] => {
            format!("::core::result::Result::Ok({name}(::serde::Deserialize::from_value(value)?))")
        }
        Fields::Tuple(skips) => {
            let mut ser_idx = 0usize;
            let items: String = skips
                .iter()
                .map(|skip| {
                    if *skip {
                        "::core::default::Default::default(),".to_string()
                    } else {
                        let e = format!("::serde::de_index(value, {ser_idx})?,");
                        ser_idx += 1;
                        e
                    }
                })
                .collect();
            format!("::core::result::Result::Ok({name}({items}))")
        }
        Fields::Named(fs) => {
            let items: String = fs
                .iter()
                .map(|(n, skip)| {
                    if *skip {
                        format!("{n}: ::core::default::Default::default(),")
                    } else {
                        format!("{n}: ::serde::de_field(value, \"{n}\")?,")
                    }
                })
                .collect();
            format!("::core::result::Result::Ok({name} {{ {items} }})")
        }
    };
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
             fn from_value(value: &::serde::Value) -> ::core::result::Result<Self, ::serde::Error> {{\n\
                 let _ = value;\n\
                 {body}\n\
             }}\n\
         }}"
    )
}

fn gen_enum_ser(name: &str, variants: &[Variant]) -> String {
    let arms: String = variants
        .iter()
        .map(|v| {
            let vn = &v.name;
            match &v.fields {
                Fields::Unit => {
                    format!("{name}::{vn} => ::serde::Value::Str(\"{vn}\".to_string()),\n")
                }
                Fields::Tuple(skips) => {
                    let binders: Vec<String> = skips
                        .iter()
                        .enumerate()
                        .map(|(idx, skip)| {
                            if *skip {
                                "_".to_string()
                            } else {
                                format!("x{idx}")
                            }
                        })
                        .collect();
                    let live: Vec<String> = skips
                        .iter()
                        .enumerate()
                        .filter(|(_, skip)| !**skip)
                        .map(|(idx, _)| format!("::serde::Serialize::to_value(x{idx})"))
                        .collect();
                    let inner = if live.len() == 1 && skips.len() == 1 {
                        // newtype variant: inner value unwrapped
                        live[0].clone()
                    } else {
                        format!("::serde::Value::Arr(vec![{}])", live.join(", "))
                    };
                    format!(
                        "{name}::{vn}({binders}) => ::serde::Value::Obj(vec![\
                             (\"{vn}\".to_string(), {inner})]),\n",
                        binders = binders.join(", ")
                    )
                }
                Fields::Named(fs) => {
                    let mut binders: Vec<String> = fs
                        .iter()
                        .filter(|(_, skip)| !skip)
                        .map(|(n, _)| n.clone())
                        .collect();
                    let inner = ser_named_body(fs, &|n| n.to_string());
                    if binders.len() < fs.len() {
                        binders.push("..".to_string());
                    }
                    format!(
                        "{name}::{vn} {{ {binders} }} => ::serde::Value::Obj(vec![\
                             (\"{vn}\".to_string(), {inner})]),\n",
                        binders = binders.join(", ")
                    )
                }
            }
        })
        .collect();
    format!(
        "impl ::serde::Serialize for {name} {{\n\
             fn to_value(&self) -> ::serde::Value {{\n\
                 match self {{ {arms} }}\n\
             }}\n\
         }}"
    )
}

fn gen_enum_de(name: &str, variants: &[Variant]) -> String {
    let unit_arms: String = variants
        .iter()
        .filter(|v| matches!(v.fields, Fields::Unit))
        .map(|v| {
            format!(
                "\"{vn}\" => ::core::result::Result::Ok({name}::{vn}),\n",
                vn = v.name
            )
        })
        .collect();
    let data_arms: String = variants
        .iter()
        .filter(|v| !matches!(v.fields, Fields::Unit))
        .map(|v| {
            let vn = &v.name;
            let ctor = match &v.fields {
                Fields::Unit => unreachable!(),
                Fields::Tuple(skips) if skips.len() == 1 && !skips[0] => {
                    format!("{name}::{vn}(::serde::Deserialize::from_value(inner)?)")
                }
                Fields::Tuple(skips) => {
                    let mut ser_idx = 0usize;
                    let items: String = skips
                        .iter()
                        .map(|skip| {
                            if *skip {
                                "::core::default::Default::default(),".to_string()
                            } else {
                                let e = format!("::serde::de_index(inner, {ser_idx})?,");
                                ser_idx += 1;
                                e
                            }
                        })
                        .collect();
                    format!("{name}::{vn}({items})")
                }
                Fields::Named(fs) => {
                    let items: String = fs
                        .iter()
                        .map(|(n, skip)| {
                            if *skip {
                                format!("{n}: ::core::default::Default::default(),")
                            } else {
                                format!("{n}: ::serde::de_field(inner, \"{n}\")?,")
                            }
                        })
                        .collect();
                    format!("{name}::{vn} {{ {items} }}")
                }
            };
            format!("\"{vn}\" => ::core::result::Result::Ok({ctor}),\n")
        })
        .collect();

    let mut match_arms = String::new();
    if !unit_arms.is_empty() {
        match_arms.push_str(&format!(
            "::serde::Value::Str(s) => match s.as_str() {{\n\
                 {unit_arms}\
                 other => ::core::result::Result::Err(::serde::Error::msg(\
                     format!(\"unknown {name} unit variant `{{}}`\", other))),\n\
             }},\n"
        ));
    }
    if !data_arms.is_empty() {
        match_arms.push_str(&format!(
            "::serde::Value::Obj(pairs) if pairs.len() == 1 => {{\n\
                 let (tag, inner) = &pairs[0];\n\
                 match tag.as_str() {{\n\
                     {data_arms}\
                     other => ::core::result::Result::Err(::serde::Error::msg(\
                         format!(\"unknown {name} variant `{{}}`\", other))),\n\
                 }}\n\
             }},\n"
        ));
    }
    match_arms.push_str(&format!(
        "other => ::core::result::Result::Err(::serde::Error::msg(\
             format!(\"cannot deserialize {name} from {{:?}}\", other))),\n"
    ));

    format!(
        "impl ::serde::Deserialize for {name} {{\n\
             fn from_value(value: &::serde::Value) -> ::core::result::Result<Self, ::serde::Error> {{\n\
                 match value {{ {match_arms} }}\n\
             }}\n\
         }}"
    )
}
