//! Minimal `rand` substitute: the `RngCore`/`SeedableRng`/`Rng` trait
//! stack and a seedable default generator, with the rand 0.8 call-site
//! API (`gen_range`, `gen_bool`, `rngs::StdRng::seed_from_u64`).
//!
//! The generator behind [`rngs::StdRng`] is SplitMix64 feeding
//! xoshiro256++ — deterministic and statistically solid for simulation
//! workloads, though not a bit-for-bit reproduction of upstream rand.

/// Low-level uniform bit source.
pub trait RngCore {
    /// Next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32;

    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;
}

/// Construction of a generator from seed material.
pub trait SeedableRng: Sized {
    /// Build the generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// A range that [`Rng::gen_range`] can sample from, producing `T`.
pub trait SampleRange<T> {
    /// Draw one uniformly distributed value.
    fn sample_in<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty => $wide:ty),* $(,)?) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_in<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty gen_range range");
                let span = (self.end as $wide).wrapping_sub(self.start as $wide);
                let v = rng.next_u64() as $wide % span;
                self.start.wrapping_add(v as $t)
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_in<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty gen_range range");
                let span = (hi as $wide).wrapping_sub(lo as $wide).wrapping_add(1);
                if span == 0 {
                    // full-domain range: every bit pattern is valid
                    return rng.next_u64() as $t;
                }
                let v = rng.next_u64() as $wide % span;
                lo.wrapping_add(v as $t)
            }
        }
    )*};
}

int_sample_range!(
    u8 => u64, u16 => u64, u32 => u64, u64 => u64, usize => u64,
    i8 => u64, i16 => u64, i32 => u64, i64 => u64, isize => u64,
);

macro_rules! float_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_in<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty gen_range range");
                let unit = (rng.next_u64() >> 11) as $t / (1u64 << 53) as $t;
                self.start + (self.end - self.start) * unit
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_in<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty gen_range range");
                let unit = (rng.next_u64() >> 11) as $t / ((1u64 << 53) - 1) as $t;
                lo + (hi - lo) * unit
            }
        }
    )*};
}

float_sample_range!(f32, f64);

/// High-level sampling helpers, blanket-implemented for every bit source.
pub trait Rng: RngCore {
    /// Uniform value in `range` (half-open or inclusive).
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_in(self)
    }

    /// Bernoulli draw with probability `p` of `true`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        debug_assert!((0.0..=1.0).contains(&p), "gen_bool p out of range");
        ((self.next_u64() >> 11) as f64 / (1u64 << 53) as f64) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Built-in generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's default seedable generator: xoshiro256++ seeded
    /// through SplitMix64 (the construction recommended by its authors).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let mut next = || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let mut c = StdRng::seed_from_u64(8);
        let va: Vec<u32> = (0..8).map(|_| a.gen_range(0u32..1000)).collect();
        let vb: Vec<u32> = (0..8).map(|_| b.gen_range(0u32..1000)).collect();
        let vc: Vec<u32> = (0..8).map(|_| c.gen_range(0u32..1000)).collect();
        assert_eq!(va, vb);
        assert_ne!(va, vc);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = StdRng::seed_from_u64(3);
        for _ in 0..2000 {
            let v = r.gen_range(5usize..9);
            assert!((5..9).contains(&v));
            let f = r.gen_range(-1.5f32..2.5);
            assert!((-1.5..2.5).contains(&f));
            let i = r.gen_range(-3i32..=3);
            assert!((-3..=3).contains(&i));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut r = StdRng::seed_from_u64(11);
        let hits = (0..10_000).filter(|_| r.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "hits {hits}");
    }

    #[test]
    fn floats_cover_the_range() {
        let mut r = StdRng::seed_from_u64(5);
        let vs: Vec<f64> = (0..1000).map(|_| r.gen_range(0.0f64..1.0)).collect();
        assert!(vs.iter().any(|&v| v < 0.1));
        assert!(vs.iter().any(|&v| v > 0.9));
    }
}
