//! Vendored simplified `serde` substitute.
//!
//! Instead of upstream serde's visitor-based zero-copy architecture,
//! this crate uses one concrete data model: [`Value`], a JSON-shaped
//! tree whose numbers are kept as *literal strings*. [`Serialize`]
//! converts into a `Value`; [`Deserialize`] reconstructs from one.
//! Keeping numeric literals textual lets each deserialization site
//! parse directly into its target type (`"0.1"` → `f32` without an
//! intermediate `f64` double-rounding), so round-trips are exact.
//!
//! The `#[derive(Serialize, Deserialize)]` macros are re-exported from
//! the dependency-free `serde_derive` proc-macro crate and support
//! named-field structs, unit structs, tuple structs, and enums with
//! unit/tuple/struct variants, plus the `#[serde(skip)]` field
//! attribute (skipped fields deserialize via `Default`).

pub use serde_derive::{Deserialize, Serialize};

use std::collections::HashMap;
use std::fmt;

/// The self-describing data model every value serializes through.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// JSON number, kept as its literal text for exact round-trips.
    Num(String),
    /// JSON string.
    Str(String),
    /// JSON array.
    Arr(Vec<Value>),
    /// JSON object; insertion order is preserved for stable output.
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// Look up a key in an object value.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }
}

/// Deserialization error: a human-readable description of the mismatch.
#[derive(Debug, Clone)]
pub struct Error(pub String);

impl Error {
    /// Build an error from anything displayable.
    pub fn msg(m: impl fmt::Display) -> Self {
        Error(m.to_string())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for Error {}

/// Conversion into the [`Value`] data model.
pub trait Serialize {
    /// Serialize `self` into a [`Value`] tree.
    fn to_value(&self) -> Value;
}

/// Reconstruction from the [`Value`] data model.
pub trait Deserialize: Sized {
    /// Rebuild `Self` from a [`Value`] tree.
    fn from_value(v: &Value) -> Result<Self, Error>;
}

// ---------------------------------------------------------------------
// Derive-macro support helpers
// ---------------------------------------------------------------------

/// Extract and deserialize an object field (derive-macro helper).
/// Missing keys deserialize from `Null` so `Option` fields tolerate
/// older payloads.
pub fn de_field<T: Deserialize>(v: &Value, key: &str) -> Result<T, Error> {
    match v {
        Value::Obj(_) => T::from_value(v.get(key).unwrap_or(&Value::Null))
            .map_err(|e| Error(format!("field `{key}`: {e}"))),
        other => Err(Error(format!(
            "expected object with field `{key}`, got {other:?}"
        ))),
    }
}

/// Extract and deserialize an array element (derive-macro helper for
/// tuple structs / tuple enum variants).
pub fn de_index<T: Deserialize>(v: &Value, idx: usize) -> Result<T, Error> {
    match v {
        Value::Arr(items) => T::from_value(
            items
                .get(idx)
                .ok_or_else(|| Error(format!("missing tuple element {idx}")))?,
        )
        .map_err(|e| Error(format!("element {idx}: {e}"))),
        other if idx == 0 => {
            // single-element tuple variants serialize unwrapped
            T::from_value(other)
        }
        other => Err(Error(format!("expected array, got {other:?}"))),
    }
}

// ---------------------------------------------------------------------
// Primitive impls
// ---------------------------------------------------------------------

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(Error(format!("expected bool, got {other:?}"))),
        }
    }
}

macro_rules! impl_num {
    ($($t:ty),* $(,)?) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Num(format!("{self}"))
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::Num(s) => s.parse::<$t>().map_err(|e| {
                        Error(format!("bad {} literal {s:?}: {e}", stringify!($t)))
                    }),
                    other => Err(Error(format!(
                        "expected {}, got {other:?}", stringify!($t)
                    ))),
                }
            }
        }
    )*};
}

impl_num!(u8, u16, u32, u64, u128, usize, i8, i16, i32, i64, i128, isize, f32, f64);

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            other => Err(Error(format!("expected string, got {other:?}"))),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) if s.chars().count() == 1 => Ok(s.chars().next().unwrap()),
            other => Err(Error(format!("expected single-char string, got {other:?}"))),
        }
    }
}

// ---------------------------------------------------------------------
// Container impls
// ---------------------------------------------------------------------

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            None => Value::Null,
            Some(x) => x.to_value(),
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => Ok(Some(T::from_value(other)?)),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Arr(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Arr(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Arr(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Arr(items) => items.iter().map(T::from_value).collect(),
            other => Err(Error(format!("expected array, got {other:?}"))),
        }
    }
}

impl<T: Deserialize + fmt::Debug, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let items: Vec<T> = Vec::from_value(v)?;
        let n = items.len();
        items
            .try_into()
            .map_err(|_| Error(format!("expected array of length {N}, got {n}")))
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(Box::new(T::from_value(v)?))
    }
}

impl<V: Serialize> Serialize for HashMap<String, V> {
    fn to_value(&self) -> Value {
        // sort keys for deterministic output
        let mut keys: Vec<&String> = self.keys().collect();
        keys.sort();
        Value::Obj(
            keys.into_iter()
                .map(|k| (k.clone(), self[k].to_value()))
                .collect(),
        )
    }
}

impl<V: Deserialize> Deserialize for HashMap<String, V> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Obj(pairs) => pairs
                .iter()
                .map(|(k, val)| Ok((k.clone(), V::from_value(val)?)))
                .collect(),
            other => Err(Error(format!("expected object, got {other:?}"))),
        }
    }
}

macro_rules! impl_tuple {
    ($(($($name:ident . $idx:tt),+ $(,)?)),* $(,)?) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Arr(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::Arr(items) => {
                        let expected = [$($idx),+].len();
                        if items.len() != expected {
                            return Err(Error(format!(
                                "expected {expected}-tuple, got {} elements", items.len()
                            )));
                        }
                        Ok(($($name::from_value(&items[$idx])?,)+))
                    }
                    other => Err(Error(format!("expected tuple array, got {other:?}"))),
                }
            }
        }
    )*};
}

impl_tuple!(
    (A.0),
    (A.0, B.1),
    (A.0, B.1, C.2),
    (A.0, B.1, C.2, D.3),
    (A.0, B.1, C.2, D.3, E.4),
    (A.0, B.1, C.2, D.3, E.4, F.5),
);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn float_literals_round_trip_exactly() {
        // a value whose shortest f32 literal would double-round via f64
        for &f in &[0.1f32, 1.0e-7, 16_777_217.0, f32::MIN_POSITIVE] {
            let v = f.to_value();
            assert_eq!(f32::from_value(&v).unwrap().to_bits(), f.to_bits());
        }
    }

    #[test]
    fn option_null_round_trip() {
        assert_eq!(Option::<u32>::from_value(&Value::Null).unwrap(), None);
        assert_eq!(Some(3u32).to_value(), Value::Num("3".into()));
    }

    #[test]
    fn nested_containers() {
        let x: Vec<(usize, f32)> = vec![(1, 0.5), (2, 1.25)];
        let v = x.to_value();
        let back: Vec<(usize, f32)> = Deserialize::from_value(&v).unwrap();
        assert_eq!(back, x);
    }

    #[test]
    fn hashmap_sorted_deterministically() {
        let mut m = HashMap::new();
        m.insert("b".to_string(), 2u32);
        m.insert("a".to_string(), 1u32);
        match m.to_value() {
            Value::Obj(pairs) => {
                assert_eq!(pairs[0].0, "a");
                assert_eq!(pairs[1].0, "b");
            }
            other => panic!("not an object: {other:?}"),
        }
    }

    #[test]
    fn type_mismatch_is_an_error() {
        assert!(u32::from_value(&Value::Str("hi".into())).is_err());
        assert!(bool::from_value(&Value::Num("1".into())).is_err());
    }
}
