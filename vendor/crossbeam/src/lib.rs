//! Vendored minimal `crossbeam` substitute.
//!
//! Provides [`channel`]: bounded blocking MPMC channels with the
//! crossbeam-channel API subset the workspace uses — `bounded`,
//! cloneable `Sender`/`Receiver`, blocking `send`/`recv` that error on
//! disconnect, `try_recv`, `len`, and receiver iteration. Built on
//! `std::sync::{Mutex, Condvar}`.
//!
//! Also provides [`deque`]: the `crossbeam-deque` work-stealing API
//! subset (`Injector`, `Worker`, `Stealer`, `Steal`) used by the
//! evaluation pool in `otif-core`. The substitute trades the lock-free
//! Chase–Lev algorithm for short mutex-guarded critical sections — the
//! API (owner pops one end, thieves steal the other) and the scheduling
//! behaviour are the same; only the per-operation constant differs,
//! which is negligible against the coarse-grained tasks the workspace
//! schedules (whole-clip pipeline evaluations).

pub mod deque {
    use std::collections::VecDeque;
    use std::sync::{Arc, Mutex};

    /// Outcome of a steal attempt.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum Steal<T> {
        /// The queue was empty.
        Empty,
        /// One task was stolen.
        Success(T),
        /// The attempt lost a race; retry.
        Retry,
    }

    impl<T> Steal<T> {
        /// The stolen task, if any.
        pub fn success(self) -> Option<T> {
            match self {
                Steal::Success(t) => Some(t),
                _ => None,
            }
        }
    }

    /// A global FIFO task injector shared by every worker.
    pub struct Injector<T> {
        q: Mutex<VecDeque<T>>,
    }

    impl<T> Default for Injector<T> {
        fn default() -> Self {
            Self::new()
        }
    }

    impl<T> Injector<T> {
        /// Empty injector.
        pub fn new() -> Self {
            Injector {
                q: Mutex::new(VecDeque::new()),
            }
        }

        /// Push a task onto the global queue.
        pub fn push(&self, task: T) {
            self.q.lock().unwrap().push_back(task);
        }

        /// Steal one task from the front of the global queue.
        pub fn steal(&self) -> Steal<T> {
            match self.q.lock().unwrap().pop_front() {
                Some(t) => Steal::Success(t),
                None => Steal::Empty,
            }
        }

        /// Whether the global queue is currently empty.
        pub fn is_empty(&self) -> bool {
            self.q.lock().unwrap().is_empty()
        }
    }

    /// A worker-owned deque: the owner pushes/pops the front, thieves
    /// steal from the back.
    pub struct Worker<T> {
        q: Arc<Mutex<VecDeque<T>>>,
    }

    impl<T> Worker<T> {
        /// New empty FIFO worker queue.
        pub fn new_fifo() -> Self {
            Worker {
                q: Arc::new(Mutex::new(VecDeque::new())),
            }
        }

        /// Push a task onto the owner's end.
        pub fn push(&self, task: T) {
            self.q.lock().unwrap().push_back(task);
        }

        /// Pop the next task from the owner's end (FIFO order).
        pub fn pop(&self) -> Option<T> {
            self.q.lock().unwrap().pop_front()
        }

        /// Whether the local queue is currently empty.
        pub fn is_empty(&self) -> bool {
            self.q.lock().unwrap().is_empty()
        }

        /// A handle other threads can steal from.
        pub fn stealer(&self) -> Stealer<T> {
            Stealer {
                q: Arc::clone(&self.q),
            }
        }
    }

    /// Thief-side handle to a [`Worker`]'s deque.
    pub struct Stealer<T> {
        q: Arc<Mutex<VecDeque<T>>>,
    }

    impl<T> Clone for Stealer<T> {
        fn clone(&self) -> Self {
            Stealer {
                q: Arc::clone(&self.q),
            }
        }
    }

    impl<T> Stealer<T> {
        /// Steal one task from the victim's back end.
        pub fn steal(&self) -> Steal<T> {
            match self.q.lock().unwrap().pop_back() {
                Some(t) => Steal::Success(t),
                None => Steal::Empty,
            }
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn owner_pops_fifo_thief_steals_back() {
            let w = Worker::new_fifo();
            let s = w.stealer();
            for i in 0..4 {
                w.push(i);
            }
            assert_eq!(w.pop(), Some(0));
            assert_eq!(s.steal(), Steal::Success(3));
            assert_eq!(w.pop(), Some(1));
            assert_eq!(s.steal(), Steal::Success(2));
            assert_eq!(s.steal(), Steal::Empty);
            assert_eq!(w.pop(), None);
        }

        #[test]
        fn injector_is_fifo() {
            let inj = Injector::new();
            inj.push('a');
            inj.push('b');
            assert_eq!(inj.steal(), Steal::Success('a'));
            assert_eq!(inj.steal(), Steal::Success('b'));
            assert_eq!(inj.steal(), Steal::Empty);
            assert!(inj.is_empty());
        }

        #[test]
        fn stealing_across_threads_drains_everything() {
            let inj = Arc::new(Injector::new());
            for i in 0..100 {
                inj.push(i);
            }
            let mut handles = Vec::new();
            for _ in 0..4 {
                let inj = Arc::clone(&inj);
                handles.push(std::thread::spawn(move || {
                    let mut got = Vec::new();
                    while let Steal::Success(t) = inj.steal() {
                        got.push(t);
                    }
                    got
                }));
            }
            let mut all: Vec<i32> = handles
                .into_iter()
                .flat_map(|h| h.join().unwrap())
                .collect();
            all.sort_unstable();
            assert_eq!(all, (0..100).collect::<Vec<_>>());
        }
    }
}

pub mod channel {
    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::{Arc, Condvar, Mutex};

    struct Inner<T> {
        queue: Mutex<Shared<T>>,
        not_empty: Condvar,
        not_full: Condvar,
        cap: usize,
    }

    struct Shared<T> {
        buf: VecDeque<T>,
        senders: usize,
        receivers: usize,
    }

    /// Error returned by [`Sender::send`] when all receivers are gone;
    /// carries the unsent message.
    #[derive(Debug, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    impl<T> fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "sending on a disconnected channel")
        }
    }

    /// Error returned by [`Receiver::recv`] when the channel is empty
    /// and all senders are gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    impl fmt::Display for RecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "receiving on an empty, disconnected channel")
        }
    }

    /// Error returned by [`Receiver::try_recv`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        /// Channel is currently empty.
        Empty,
        /// Channel is empty and all senders are gone.
        Disconnected,
    }

    /// Error returned by [`Sender::send_timeout`]; carries the unsent
    /// message.
    #[derive(Debug, PartialEq, Eq)]
    pub enum SendTimeoutError<T> {
        /// The channel stayed full for the whole timeout.
        Timeout(T),
        /// All receivers are gone.
        Disconnected(T),
    }

    impl<T> fmt::Display for SendTimeoutError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                SendTimeoutError::Timeout(_) => write!(f, "send timed out on a full channel"),
                SendTimeoutError::Disconnected(_) => {
                    write!(f, "sending on a disconnected channel")
                }
            }
        }
    }

    /// Error returned by [`Receiver::recv_timeout`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        /// The channel stayed empty for the whole timeout.
        Timeout,
        /// Channel is empty and all senders are gone.
        Disconnected,
    }

    impl fmt::Display for RecvTimeoutError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                RecvTimeoutError::Timeout => write!(f, "recv timed out on an empty channel"),
                RecvTimeoutError::Disconnected => {
                    write!(f, "receiving on an empty, disconnected channel")
                }
            }
        }
    }

    /// The sending half of a bounded channel.
    pub struct Sender<T> {
        inner: Arc<Inner<T>>,
    }

    /// The receiving half of a bounded channel.
    pub struct Receiver<T> {
        inner: Arc<Inner<T>>,
    }

    /// Create a bounded blocking channel with capacity `cap` (≥ 1).
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        let cap = cap.max(1);
        let inner = Arc::new(Inner {
            queue: Mutex::new(Shared {
                buf: VecDeque::with_capacity(cap),
                senders: 1,
                receivers: 1,
            }),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
            cap,
        });
        (
            Sender {
                inner: Arc::clone(&inner),
            },
            Receiver { inner },
        )
    }

    impl<T> Sender<T> {
        /// Block until there is room, then enqueue `msg`. Errors (and
        /// returns the message) if every receiver has been dropped.
        pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
            let mut shared = self.inner.queue.lock().unwrap();
            loop {
                if shared.receivers == 0 {
                    return Err(SendError(msg));
                }
                if shared.buf.len() < self.inner.cap {
                    shared.buf.push_back(msg);
                    self.inner.not_empty.notify_one();
                    return Ok(());
                }
                shared = self.inner.not_full.wait(shared).unwrap();
            }
        }

        /// Like [`Self::send`], but give up after `timeout` if the
        /// channel stays full — the wedged-pipeline escape hatch for
        /// watchdogged stages.
        pub fn send_timeout(
            &self,
            msg: T,
            timeout: std::time::Duration,
        ) -> Result<(), SendTimeoutError<T>> {
            let deadline = std::time::Instant::now() + timeout;
            let mut shared = self.inner.queue.lock().unwrap();
            loop {
                if shared.receivers == 0 {
                    return Err(SendTimeoutError::Disconnected(msg));
                }
                if shared.buf.len() < self.inner.cap {
                    shared.buf.push_back(msg);
                    self.inner.not_empty.notify_one();
                    return Ok(());
                }
                let Some(remaining) = deadline.checked_duration_since(std::time::Instant::now())
                else {
                    return Err(SendTimeoutError::Timeout(msg));
                };
                let (guard, result) = self.inner.not_full.wait_timeout(shared, remaining).unwrap();
                shared = guard;
                if result.timed_out() && shared.buf.len() >= self.inner.cap && shared.receivers > 0
                {
                    return Err(SendTimeoutError::Timeout(msg));
                }
            }
        }

        /// Number of messages currently queued.
        pub fn len(&self) -> usize {
            self.inner.queue.lock().unwrap().buf.len()
        }

        /// Whether the queue is currently empty.
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.inner.queue.lock().unwrap().senders += 1;
            Sender {
                inner: Arc::clone(&self.inner),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut shared = self.inner.queue.lock().unwrap();
            shared.senders -= 1;
            if shared.senders == 0 {
                self.inner.not_empty.notify_all();
            }
        }
    }

    impl<T> Receiver<T> {
        /// Block until a message arrives. Errors when the channel is
        /// empty and every sender has been dropped.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut shared = self.inner.queue.lock().unwrap();
            loop {
                if let Some(msg) = shared.buf.pop_front() {
                    self.inner.not_full.notify_one();
                    return Ok(msg);
                }
                if shared.senders == 0 {
                    return Err(RecvError);
                }
                shared = self.inner.not_empty.wait(shared).unwrap();
            }
        }

        /// Like [`Self::recv`], but give up after `timeout` if the
        /// channel stays empty with senders still connected.
        pub fn recv_timeout(&self, timeout: std::time::Duration) -> Result<T, RecvTimeoutError> {
            let deadline = std::time::Instant::now() + timeout;
            let mut shared = self.inner.queue.lock().unwrap();
            loop {
                if let Some(msg) = shared.buf.pop_front() {
                    self.inner.not_full.notify_one();
                    return Ok(msg);
                }
                if shared.senders == 0 {
                    return Err(RecvTimeoutError::Disconnected);
                }
                let Some(remaining) = deadline.checked_duration_since(std::time::Instant::now())
                else {
                    return Err(RecvTimeoutError::Timeout);
                };
                let (guard, result) = self
                    .inner
                    .not_empty
                    .wait_timeout(shared, remaining)
                    .unwrap();
                shared = guard;
                if result.timed_out() && shared.buf.is_empty() && shared.senders > 0 {
                    return Err(RecvTimeoutError::Timeout);
                }
            }
        }

        /// Non-blocking receive.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut shared = self.inner.queue.lock().unwrap();
            if let Some(msg) = shared.buf.pop_front() {
                self.inner.not_full.notify_one();
                return Ok(msg);
            }
            if shared.senders == 0 {
                Err(TryRecvError::Disconnected)
            } else {
                Err(TryRecvError::Empty)
            }
        }

        /// Number of messages currently queued.
        pub fn len(&self) -> usize {
            self.inner.queue.lock().unwrap().buf.len()
        }

        /// Whether the queue is currently empty.
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }

        /// Blocking iterator that ends when the channel disconnects.
        pub fn iter(&self) -> Iter<'_, T> {
            Iter { rx: self }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.inner.queue.lock().unwrap().receivers += 1;
            Receiver {
                inner: Arc::clone(&self.inner),
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            let mut shared = self.inner.queue.lock().unwrap();
            shared.receivers -= 1;
            if shared.receivers == 0 {
                self.inner.not_full.notify_all();
            }
        }
    }

    /// Borrowing blocking iterator over received messages.
    pub struct Iter<'a, T> {
        rx: &'a Receiver<T>,
    }

    impl<T> Iterator for Iter<'_, T> {
        type Item = T;

        fn next(&mut self) -> Option<T> {
            self.rx.recv().ok()
        }
    }

    impl<'a, T> IntoIterator for &'a Receiver<T> {
        type Item = T;
        type IntoIter = Iter<'a, T>;

        fn into_iter(self) -> Iter<'a, T> {
            self.iter()
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;
        use std::thread;

        #[test]
        fn fifo_roundtrip() {
            let (tx, rx) = bounded(4);
            for i in 0..4 {
                tx.send(i).unwrap();
            }
            assert_eq!(rx.len(), 4);
            let got: Vec<i32> = (0..4).map(|_| rx.recv().unwrap()).collect();
            assert_eq!(got, vec![0, 1, 2, 3]);
        }

        #[test]
        fn bounded_send_blocks_until_recv() {
            let (tx, rx) = bounded(1);
            tx.send(1).unwrap();
            let h = thread::spawn(move || {
                tx.send(2).unwrap(); // blocks until main recv()s
                tx.send(3).unwrap();
            });
            assert_eq!(rx.recv().unwrap(), 1);
            assert_eq!(rx.recv().unwrap(), 2);
            assert_eq!(rx.recv().unwrap(), 3);
            h.join().unwrap();
        }

        #[test]
        fn disconnect_ends_iteration() {
            let (tx, rx) = bounded(8);
            let h = thread::spawn(move || {
                for i in 0..5 {
                    tx.send(i).unwrap();
                }
                // tx dropped here
            });
            let got: Vec<i32> = rx.iter().collect();
            assert_eq!(got, vec![0, 1, 2, 3, 4]);
            h.join().unwrap();
        }

        #[test]
        fn send_to_dropped_receiver_errors() {
            let (tx, rx) = bounded::<i32>(1);
            drop(rx);
            assert_eq!(tx.send(7), Err(SendError(7)));
        }

        #[test]
        fn send_timeout_times_out_on_full_channel_only() {
            use std::time::Duration;
            let (tx, rx) = bounded(1);
            tx.send(1).unwrap();
            assert_eq!(
                tx.send_timeout(2, Duration::from_millis(10)),
                Err(SendTimeoutError::Timeout(2))
            );
            assert_eq!(rx.recv().unwrap(), 1);
            tx.send_timeout(3, Duration::from_millis(10)).unwrap();
            drop(rx);
            assert_eq!(
                tx.send_timeout(4, Duration::from_millis(10)),
                Err(SendTimeoutError::Disconnected(4))
            );
        }

        #[test]
        fn recv_timeout_times_out_on_empty_channel_only() {
            use std::time::Duration;
            let (tx, rx) = bounded::<i32>(2);
            assert_eq!(
                rx.recv_timeout(Duration::from_millis(10)),
                Err(RecvTimeoutError::Timeout)
            );
            tx.send(9).unwrap();
            assert_eq!(rx.recv_timeout(Duration::from_millis(10)), Ok(9));
            drop(tx);
            assert_eq!(
                rx.recv_timeout(Duration::from_millis(10)),
                Err(RecvTimeoutError::Disconnected)
            );
        }

        #[test]
        fn try_recv_distinguishes_empty_and_disconnected() {
            let (tx, rx) = bounded::<i32>(1);
            assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
            tx.send(1).unwrap();
            assert_eq!(rx.try_recv(), Ok(1));
            drop(tx);
            assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
        }
    }
}
