//! Minimal `parking_lot` substitute backed by `std::sync`.
//!
//! Same surface as the parts of parking_lot this workspace uses:
//! `Mutex`/`RwLock` whose guards are obtained without a poisoning
//! `Result`, plus a `Condvar` matching the parking_lot signature
//! (`wait(&mut guard)`).

use std::sync::{self, MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// A mutual-exclusion lock whose `lock()` never returns a poison error.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Create a new mutex.
    pub const fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking the current thread.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// A reader-writer lock whose guards are obtained without a `Result`.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Create a new reader-writer lock.
    pub const fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquire an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }
}

/// Outcome of a timed condition-variable wait (parking_lot signature).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WaitTimeoutResult(bool);

impl WaitTimeoutResult {
    /// Whether the wait ended because the timeout elapsed (rather than
    /// a notification).
    pub fn timed_out(&self) -> bool {
        self.0
    }
}

/// A condition variable compatible with [`Mutex`] guards.
#[derive(Debug, Default)]
pub struct Condvar(sync::Condvar);

impl Condvar {
    /// Create a new condition variable.
    pub const fn new() -> Self {
        Condvar(sync::Condvar::new())
    }

    /// Block until notified, releasing the guard while waiting.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        // Safety dance: std's API consumes the guard; parking_lot's takes
        // &mut. Re-create the &mut contract by replacing the guard.
        take_mut(guard, |g| self.0.wait(g).unwrap_or_else(|e| e.into_inner()));
    }

    /// Block until notified or until `timeout` elapses, releasing the
    /// guard while waiting. Spurious wakeups are possible, exactly as
    /// with [`Self::wait`] — callers must re-check their predicate.
    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: std::time::Duration,
    ) -> WaitTimeoutResult {
        let mut timed_out = false;
        take_mut(guard, |g| {
            let (g, result) = self
                .0
                .wait_timeout(g, timeout)
                .unwrap_or_else(|e| e.into_inner());
            timed_out = result.timed_out();
            g
        });
        WaitTimeoutResult(timed_out)
    }

    /// Wake one waiting thread.
    pub fn notify_one(&self) -> bool {
        self.0.notify_one();
        true
    }

    /// Wake all waiting threads.
    pub fn notify_all(&self) -> usize {
        self.0.notify_all();
        0
    }
}

/// Replace `*slot` through a consuming closure (no unwind safety needed:
/// `Condvar::wait` aborts the process if `f` panics, which it cannot).
fn take_mut<T, F: FnOnce(T) -> T>(slot: &mut T, f: F) {
    unsafe {
        let old = std::ptr::read(slot);
        let new = f(old);
        std::ptr::write(slot, new);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_locks_and_mutates() {
        let m = Mutex::new(1);
        *m.lock() += 41;
        assert_eq!(*m.lock(), 42);
    }

    #[test]
    fn rwlock_read_write() {
        let l = RwLock::new(5);
        assert_eq!(*l.read(), 5);
        *l.write() = 6;
        assert_eq!(*l.read(), 6);
    }

    #[test]
    fn condvar_wait_for_times_out_and_wakes() {
        use std::time::Duration;
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        // no notifier: the wait must end by timeout
        {
            let (m, cv) = &*pair;
            let mut done = m.lock();
            let r = cv.wait_for(&mut done, Duration::from_millis(10));
            assert!(r.timed_out());
        }
        // with a notifier: the wait ends early
        let p2 = Arc::clone(&pair);
        let h = std::thread::spawn(move || {
            let (m, cv) = &*p2;
            let mut done = m.lock();
            while !*done {
                let r = cv.wait_for(&mut done, Duration::from_secs(30));
                assert!(!r.timed_out(), "notification must beat the timeout");
            }
        });
        std::thread::sleep(Duration::from_millis(5));
        *pair.0.lock() = true;
        pair.1.notify_all();
        h.join().unwrap();
    }

    #[test]
    fn condvar_wakes_waiter() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = Arc::clone(&pair);
        let h = std::thread::spawn(move || {
            let (m, cv) = &*p2;
            let mut done = m.lock();
            while !*done {
                cv.wait(&mut done);
            }
        });
        *pair.0.lock() = true;
        pair.1.notify_all();
        h.join().unwrap();
    }
}
