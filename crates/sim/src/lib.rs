#![warn(missing_docs)]

//! Synthetic video-scene simulator.
//!
//! The OTIF paper evaluates on seven real video datasets (California DOT
//! highway cameras, Tokyo/Warsaw city junctions, an aerial drone, an
//! Amsterdam riverside plaza and the Jackson Hole town square). None of
//! that video is available here, so this crate provides the closest
//! synthetic equivalent that exercises the same code paths:
//!
//! - objects (cars, buses, trucks, pedestrians) spawn on **path graphs**
//!   with Poisson arrivals, follow the path with smoothly varying speed,
//!   occasionally stop (junction signal phases) or brake hard, and shrink
//!   toward the horizon (perspective scale profiles);
//! - every clip carries exact **ground-truth tracks** — the "hand labels"
//!   the paper's accuracy metrics are computed against;
//! - a **renderer** produces real grayscale pixel frames at any requested
//!   resolution, used to train and run the segmentation proxy model on
//!   actual pixels;
//! - the seven [`dataset::DatasetKind`]s are configured to reproduce the
//!   qualitative properties the paper's results depend on (busy vs sparse
//!   scenes, small vs large objects, fixed vs moving camera).
//!
//! Sizes are configurable through [`dataset::DatasetScale`] so unit tests
//! run on seconds of video while experiment harnesses use larger profiles;
//! measured *simulated* costs are scaled to a one-hour dataset when
//! reporting paper-comparable numbers.

pub mod clip;
pub mod dataset;
pub mod path;
pub mod render;
pub mod scene;

pub use clip::{Clip, FrameState, GtTrack, ObjState};
pub use dataset::{Dataset, DatasetConfig, DatasetKind, DatasetScale};
pub use path::{PathSpec, ScaleProfile, StopZone};
pub use render::{GrayImage, Renderer};
pub use scene::{CameraMotion, ObjectClass, SceneSpec};
