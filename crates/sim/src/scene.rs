//! Scene specifications: frame geometry, object classes, camera motion.

use crate::path::PathSpec;
use serde::{Deserialize, Serialize};

/// Category of a simulated object. Mirrors the COCO classes the paper's
/// queries use (cars are the query subject in §4; other classes add
/// distractors the detector must tell apart).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ObjectClass {
    /// Passenger car.
    Car,
    /// Bus (largest box).
    Bus,
    /// Truck.
    Truck,
    /// Pedestrian (tall, slow).
    Pedestrian,
}

impl ObjectClass {
    /// Base bounding-box size (w, h) in native pixels at perspective scale
    /// 1.0.
    pub fn base_size(&self) -> (f32, f32) {
        match self {
            ObjectClass::Car => (36.0, 22.0),
            ObjectClass::Bus => (64.0, 30.0),
            ObjectClass::Truck => (52.0, 28.0),
            ObjectClass::Pedestrian => (10.0, 22.0),
        }
    }

    /// Rendered intensity in `[0, 1]`; classes differ so appearance features
    /// carry signal for the tracker.
    pub fn intensity(&self) -> f32 {
        match self {
            ObjectClass::Car => 0.85,
            ObjectClass::Bus => 0.95,
            ObjectClass::Truck => 0.75,
            ObjectClass::Pedestrian => 0.60,
        }
    }

    /// All object classes.
    pub const ALL: [ObjectClass; 4] = [
        ObjectClass::Car,
        ObjectClass::Bus,
        ObjectClass::Truck,
        ObjectClass::Pedestrian,
    ];
}

/// Camera motion model. All the paper's datasets are fixed cameras except
/// UAV, which is an aerial drone; the paper notes refinement only applies
/// to fixed cameras.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum CameraMotion {
    /// Stationary camera.
    Fixed,
    /// Slow sinusoidal drift with the given amplitude (native px) and
    /// period (seconds), approximating drone hover drift.
    Drift {
        /// Horizontal drift amplitude in native px.
        amp_x: f32,
        /// Vertical drift amplitude in native px.
        amp_y: f32,
        /// Drift period in seconds.
        period_s: f32,
    },
}

impl CameraMotion {
    /// Camera offset at time `t` seconds.
    pub fn offset(&self, t: f32) -> (f32, f32) {
        match self {
            CameraMotion::Fixed => (0.0, 0.0),
            CameraMotion::Drift {
                amp_x,
                amp_y,
                period_s,
            } => {
                let ph = 2.0 * std::f32::consts::PI * t / period_s;
                (amp_x * ph.sin(), amp_y * (ph * 0.7).cos() - amp_y)
            }
        }
    }
}

/// A complete scene specification: everything needed to simulate and render
/// clips of one dataset.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SceneSpec {
    /// Dataset name (also seeds the background texture).
    pub name: String,
    /// Native frame width in pixels (multiple of 32 so the proxy-model cell
    /// grid tiles exactly).
    pub width: u32,
    /// Native frame height in pixels (multiple of 32).
    pub height: u32,
    /// Native frames per second.
    pub fps: u32,
    /// Camera motion model.
    pub camera: CameraMotion,
    /// The traffic paths objects travel along.
    pub paths: Vec<PathSpec>,
    /// Background brightness in `[0, 1]`.
    pub background_level: f32,
    /// Standard deviation of per-frame sensor noise.
    pub noise_sigma: f32,
    /// Probability that a spawned object performs one hard-braking event
    /// somewhere along its path (used by the hard-braking example query).
    pub hard_brake_prob: f32,
    /// Traffic-signal cycle length in seconds (0 disables signals). Stop
    /// zones hold objects during the "red" half of the cycle.
    pub signal_cycle_s: f32,
}

impl SceneSpec {
    /// Number of 32×32 proxy-model cells horizontally.
    pub fn cells_x(&self) -> usize {
        (self.width as usize) / 32
    }

    /// Number of 32×32 proxy-model cells vertically.
    pub fn cells_y(&self) -> usize {
        (self.height as usize) / 32
    }

    /// The full frame as a rectangle.
    pub fn frame_rect(&self) -> otif_geom::Rect {
        otif_geom::Rect::new(0.0, 0.0, self.width as f32, self.height as f32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn class_sizes_ordered_sensibly() {
        let (cw, _) = ObjectClass::Car.base_size();
        let (bw, _) = ObjectClass::Bus.base_size();
        let (pw, ph) = ObjectClass::Pedestrian.base_size();
        assert!(bw > cw);
        assert!(ph > pw, "pedestrians are taller than wide");
    }

    #[test]
    fn fixed_camera_never_moves() {
        let c = CameraMotion::Fixed;
        assert_eq!(c.offset(0.0), (0.0, 0.0));
        assert_eq!(c.offset(100.0), (0.0, 0.0));
    }

    #[test]
    fn drift_is_bounded_and_time_varying() {
        let c = CameraMotion::Drift {
            amp_x: 10.0,
            amp_y: 5.0,
            period_s: 30.0,
        };
        let (x0, y0) = c.offset(0.0);
        let (x1, y1) = c.offset(7.0);
        assert!((x0, y0) != (x1, y1));
        for i in 0..100 {
            let (x, y) = c.offset(i as f32);
            assert!(x.abs() <= 10.0 + 1e-4);
            assert!(y.abs() <= 10.0 + 1e-4);
        }
    }
}
