//! Frame rendering: turn simulated object states into grayscale pixels.
//!
//! The renderer produces frames at any requested resolution directly (the
//! scene is vector data), so the proxy model can be trained and run on
//! real pixels without paying for full-resolution rendering. Backgrounds
//! use stable block noise anchored in native coordinates so the same scene
//! content appears at every resolution, as a camera would see it.

use crate::clip::Clip;
use serde::{Deserialize, Serialize};

/// A grayscale image with `f32` intensities in `[0, 1]`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GrayImage {
    /// Width in pixels.
    pub w: usize,
    /// Height in pixels.
    pub h: usize,
    /// Row-major intensities in [0, 1].
    pub data: Vec<f32>,
}

impl GrayImage {
    /// All-black image.
    pub fn new(w: usize, h: usize) -> Self {
        GrayImage {
            w,
            h,
            data: vec![0.0; w * h],
        }
    }

    #[inline]
    /// Read pixel (x, y).
    pub fn get(&self, x: usize, y: usize) -> f32 {
        self.data[y * self.w + x]
    }

    #[inline]
    /// Write pixel (x, y).
    pub fn set(&mut self, x: usize, y: usize, v: f32) {
        self.data[y * self.w + x] = v;
    }

    /// Mean intensity over a pixel rectangle (clamped to bounds).
    pub fn mean_in(&self, x0: usize, y0: usize, x1: usize, y1: usize) -> f32 {
        let x1 = x1.min(self.w);
        let y1 = y1.min(self.h);
        if x0 >= x1 || y0 >= y1 {
            return 0.0;
        }
        let mut acc = 0.0;
        for y in y0..y1 {
            for x in x0..x1 {
                acc += self.get(x, y);
            }
        }
        acc / ((x1 - x0) * (y1 - y0)) as f32
    }

    /// Quantize to `u8` (for the codec).
    pub fn to_u8(&self) -> Vec<u8> {
        self.data
            .iter()
            .map(|v| (v.clamp(0.0, 1.0) * 255.0).round() as u8)
            .collect()
    }

    /// Build from quantized bytes.
    pub fn from_u8(w: usize, h: usize, data: &[u8]) -> Self {
        assert_eq!(data.len(), w * h);
        GrayImage {
            w,
            h,
            data: data.iter().map(|&b| b as f32 / 255.0).collect(),
        }
    }
}

/// Deterministic integer hash → `[0, 1)` (SplitMix64 finalizer).
#[inline]
pub fn hash01(a: u64, b: u64, c: u64) -> f32 {
    let mut z = a
        .wrapping_mul(0x9E3779B97F4A7C15)
        .wrapping_add(b.wrapping_mul(0xBF58476D1CE4E5B9))
        .wrapping_add(c.wrapping_mul(0x94D049BB133111EB));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^= z >> 31;
    (z >> 40) as f32 / (1u64 << 24) as f32
}

/// Renders frames of a [`Clip`].
pub struct Renderer<'a> {
    clip: &'a Clip,
}

impl<'a> Renderer<'a> {
    /// Create a renderer for a clip.
    pub fn new(clip: &'a Clip) -> Self {
        Renderer { clip }
    }

    /// Render frame `frame` at `w × h` pixels.
    pub fn render(&self, frame: usize, w: usize, h: usize) -> GrayImage {
        let scene = &self.clip.scene;
        let sx = scene.width as f32 / w as f32; // native px per target px
        let sy = scene.height as f32 / h as f32;
        let bg_seed = scene
            .name
            .bytes()
            .fold(0u64, |acc, b| acc.wrapping_mul(31).wrapping_add(b as u64));
        let fs = &self.clip.frames[frame];
        let cam = fs.cam_offset;

        let mut img = GrayImage::new(w, h);
        // Background: level + vertical gradient + 8×8 native-block static
        // noise (shifted by camera motion so drone footage "moves").
        for y in 0..h {
            let ny = y as f32 * sy + cam.1;
            for x in 0..w {
                let nx = x as f32 * sx + cam.0;
                let block = hash01(
                    (nx / 8.0).floor() as i64 as u64,
                    (ny / 8.0).floor() as i64 as u64,
                    bg_seed,
                );
                let v = scene.background_level + 0.10 * (ny / scene.height as f32) + 0.08 * block;
                img.set(x, y, v);
            }
        }

        // Objects: filled boxes with per-object tone and a simple two-band
        // texture (roof vs body) so appearance features carry signal.
        for o in &fs.objs {
            let tone = o.class.intensity() * (0.85 + 0.3 * hash01(o.track_id as u64, 17, bg_seed));
            let x0 = ((o.rect.x / sx).floor().max(0.0)) as usize;
            let y0 = ((o.rect.y / sy).floor().max(0.0)) as usize;
            let x1 = ((o.rect.x1() / sx).ceil().min(w as f32)) as usize;
            let y1 = ((o.rect.y1() / sy).ceil().min(h as f32)) as usize;
            for y in y0..y1 {
                let band = if (y as f32 - o.rect.y / sy) < (o.rect.h / sy) * 0.4 {
                    0.85
                } else {
                    1.0
                };
                for x in x0..x1 {
                    img.set(x, y, (tone * band).clamp(0.0, 1.0));
                }
            }
        }

        // Sensor noise, varying per frame.
        if scene.noise_sigma > 0.0 {
            let amp = scene.noise_sigma;
            for y in 0..h {
                for x in 0..w {
                    let n = hash01(x as u64, y as u64, frame as u64 ^ (bg_seed << 1)) - 0.5;
                    let i = y * w + x;
                    img.data[i] = (img.data[i] + 2.0 * amp * n).clamp(0.0, 1.0);
                }
            }
        }
        img
    }

    /// Render the native-coordinate region `(rx, ry, rw, rh)` of frame
    /// `frame` at `w × h` pixels — the crop a detector sees for one
    /// window, resampled to its input resolution.
    ///
    /// Shares [`Self::render`]'s scene content (background anchored in
    /// native coordinates, objects as filled boxes), deterministically
    /// per `(frame, region, resolution)`. Kept as a separate method so
    /// the full-frame path — whose bits feed proxy training — stays
    /// untouched.
    #[allow(clippy::too_many_arguments)]
    pub fn render_region(
        &self,
        frame: usize,
        rx: f32,
        ry: f32,
        rw: f32,
        rh: f32,
        w: usize,
        h: usize,
    ) -> GrayImage {
        let scene = &self.clip.scene;
        let sx = rw / w as f32; // native px per target px
        let sy = rh / h as f32;
        let bg_seed = scene
            .name
            .bytes()
            .fold(0u64, |acc, b| acc.wrapping_mul(31).wrapping_add(b as u64));
        let fs = &self.clip.frames[frame];
        let cam = fs.cam_offset;

        let mut img = GrayImage::new(w, h);
        for y in 0..h {
            let ny = ry + y as f32 * sy + cam.1;
            for x in 0..w {
                let nx = rx + x as f32 * sx + cam.0;
                let block = hash01(
                    (nx / 8.0).floor() as i64 as u64,
                    (ny / 8.0).floor() as i64 as u64,
                    bg_seed,
                );
                let v = scene.background_level + 0.10 * (ny / scene.height as f32) + 0.08 * block;
                img.set(x, y, v);
            }
        }

        for o in &fs.objs {
            let tone = o.class.intensity() * (0.85 + 0.3 * hash01(o.track_id as u64, 17, bg_seed));
            let ox = (o.rect.x - rx) / sx;
            let oy = (o.rect.y - ry) / sy;
            let x0 = ox.floor().max(0.0) as usize;
            let y0 = oy.floor().max(0.0) as usize;
            let x1 = (((o.rect.x1() - rx) / sx).ceil().min(w as f32).max(0.0)) as usize;
            let y1 = (((o.rect.y1() - ry) / sy).ceil().min(h as f32).max(0.0)) as usize;
            for y in y0..y1 {
                let band = if (y as f32 - oy) < (o.rect.h / sy) * 0.4 {
                    0.85
                } else {
                    1.0
                };
                for x in x0..x1 {
                    img.set(x, y, (tone * band).clamp(0.0, 1.0));
                }
            }
        }

        if scene.noise_sigma > 0.0 {
            let amp = scene.noise_sigma;
            for y in 0..h {
                for x in 0..w {
                    let n = hash01(x as u64, y as u64, frame as u64 ^ (bg_seed << 1)) - 0.5;
                    let i = y * w + x;
                    img.data[i] = (img.data[i] + 2.0 * amp * n).clamp(0.0, 1.0);
                }
            }
        }
        img
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::path::{PathSpec, ScaleProfile};
    use crate::scene::{CameraMotion, SceneSpec};
    use std::sync::Arc;

    fn clip() -> Clip {
        let scene = Arc::new(SceneSpec {
            name: "render-test".into(),
            width: 320,
            height: 192,
            fps: 10,
            camera: CameraMotion::Fixed,
            paths: vec![PathSpec::straight(
                "w->e",
                (-40.0, 96.0),
                (360.0, 96.0),
                ScaleProfile::uniform(1.0),
                40.0,
                80.0,
            )],
            background_level: 0.3,
            noise_sigma: 0.0,
            hard_brake_prob: 0.0,
            signal_cycle_s: 0.0,
        });
        Clip::simulate(scene, 0, 6.0, 21)
    }

    #[test]
    fn rendering_is_deterministic() {
        let c = clip();
        let r = Renderer::new(&c);
        let a = r.render(3, 160, 96);
        let b = r.render(3, 160, 96);
        assert_eq!(a, b);
    }

    #[test]
    fn objects_are_brighter_than_background() {
        let c = clip();
        let r = Renderer::new(&c);
        // find a frame with an object well inside the frame
        let (f, rect) = c
            .frames
            .iter()
            .enumerate()
            .find_map(|(f, fs)| {
                fs.objs
                    .iter()
                    .find(|o| o.rect.x > 40.0 && o.rect.x1() < 280.0)
                    .map(|o| (f, o.rect))
            })
            .expect("an interior object");
        let img = r.render(f, 320, 192);
        let obj_mean = img.mean_in(
            rect.x as usize + 1,
            rect.y as usize + 1,
            rect.x1() as usize - 1,
            rect.y1() as usize - 1,
        );
        // background patch far from the road
        let bg_mean = img.mean_in(10, 10, 40, 30);
        assert!(
            obj_mean > bg_mean + 0.2,
            "object {obj_mean} vs background {bg_mean}"
        );
    }

    #[test]
    fn low_resolution_preserves_scene_content() {
        let c = clip();
        let r = Renderer::new(&c);
        let hi = r.render(2, 320, 192);
        let lo = r.render(2, 80, 48);
        // Same scene: overall brightness should be close.
        let mean = |img: &GrayImage| img.data.iter().sum::<f32>() / img.data.len() as f32;
        assert!((mean(&hi) - mean(&lo)).abs() < 0.05);
    }

    #[test]
    fn u8_roundtrip_is_close() {
        let c = clip();
        let img = Renderer::new(&c).render(0, 64, 48);
        let bytes = img.to_u8();
        let back = GrayImage::from_u8(64, 48, &bytes);
        for (a, b) in img.data.iter().zip(&back.data) {
            assert!((a - b).abs() < 1.0 / 255.0 + 1e-6);
        }
    }

    #[test]
    fn region_render_matches_full_frame_content() {
        let c = clip();
        let r = Renderer::new(&c);
        // full-frame region at native resolution ≡ plain render
        let full = r.render(2, 320, 192);
        let via_region = r.render_region(2, 0.0, 0.0, 320.0, 192.0, 320, 192);
        assert_eq!(full, via_region);
        // a native-aligned crop at native sampling equals the same pixels
        // of the full frame
        let crop = r.render_region(2, 64.0, 32.0, 128.0, 96.0, 128, 96);
        for y in 0..96 {
            for x in 0..128 {
                assert_eq!(
                    crop.get(x, y),
                    full.get(x + 64, y + 32),
                    "crop diverges at ({x},{y})"
                );
            }
        }
        // deterministic
        assert_eq!(
            r.render_region(1, 10.0, 5.0, 50.0, 40.0, 25, 20),
            r.render_region(1, 10.0, 5.0, 50.0, 40.0, 25, 20)
        );
    }

    #[test]
    fn hash01_in_range_and_deterministic() {
        for i in 0..1000u64 {
            let v = hash01(i, i * 3, 7);
            assert!((0.0..1.0).contains(&v));
        }
        assert_eq!(hash01(1, 2, 3), hash01(1, 2, 3));
        assert_ne!(hash01(1, 2, 3), hash01(1, 2, 4));
    }
}
