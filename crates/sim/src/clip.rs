//! Clip simulation: spawning, kinematics and ground-truth track recording.

use crate::path::PathSpec;
use crate::scene::{ObjectClass, SceneSpec};
use otif_geom::{Point, Rect};
use rand::Rng;
use rand_chacha::rand_core::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// One object's state in one frame (frame coordinates, i.e. after camera
/// motion is applied).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ObjState {
    /// Ground-truth object id.
    pub track_id: u32,
    /// Object category.
    pub class: ObjectClass,
    /// Bounding box in frame coordinates.
    pub rect: Rect,
    /// Index of the path the object travels (into `SceneSpec::paths`).
    pub path_idx: usize,
    /// Instantaneous speed in native px/s (used to derive deceleration for
    /// the hard-braking query's ground truth).
    pub speed: f32,
}

/// All object states visible in one frame.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct FrameState {
    /// Time of this frame in seconds.
    pub time_s: f32,
    /// Camera offset applied this frame.
    pub cam_offset: (f32, f32),
    /// Visible objects.
    pub objs: Vec<ObjState>,
}

/// Ground-truth track: the exact trajectory of one simulated object, in
/// frame coordinates, restricted to frames where it is visible.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct GtTrack {
    /// Ground-truth object id.
    pub id: u32,
    /// Object category.
    pub class: ObjectClass,
    /// Path id (e.g. `"north->south"`) for path-breakdown ground truth.
    pub path_id: String,
    /// Index of the path into `SceneSpec::paths`.
    pub path_idx: usize,
    /// `(frame index, bounding box)` for each visible frame, ordered.
    pub states: Vec<(usize, Rect)>,
    /// Whether this object performed a hard-braking maneuver while visible.
    pub braked_hard: bool,
}

impl GtTrack {
    /// First frame where the object is visible.
    pub fn first_frame(&self) -> usize {
        self.states.first().map(|(f, _)| *f).unwrap_or(0)
    }

    /// Last frame where the object is visible.
    pub fn last_frame(&self) -> usize {
        self.states.last().map(|(f, _)| *f).unwrap_or(0)
    }

    /// Centers of the track as a polyline (for path classification).
    pub fn center_polyline(&self) -> otif_geom::Polyline {
        otif_geom::Polyline::new(self.states.iter().map(|(_, r)| r.center()).collect())
    }
}

/// A simulated video clip: per-frame object states (for rendering and
/// detector simulation) plus ground-truth tracks (for evaluation).
#[derive(Debug, Clone)]
pub struct Clip {
    /// Index of the clip within its dataset split.
    pub id: usize,
    /// The scene this clip was simulated from.
    pub scene: Arc<SceneSpec>,
    /// Per-frame object states.
    pub frames: Vec<FrameState>,
    /// Exact ground-truth tracks.
    pub gt_tracks: Vec<GtTrack>,
    /// Seed the clip was simulated with.
    pub seed: u64,
}

impl Clip {
    /// Number of frames.
    pub fn num_frames(&self) -> usize {
        self.frames.len()
    }

    /// Duration in seconds.
    pub fn duration_s(&self) -> f32 {
        self.frames.len() as f32 / self.scene.fps as f32
    }

    /// Ground-truth boxes visible in one frame.
    pub fn gt_boxes(&self, frame: usize) -> Vec<(u32, ObjectClass, Rect)> {
        self.frames[frame]
            .objs
            .iter()
            .map(|o| (o.track_id, o.class, o.rect))
            .collect()
    }

    /// Simulate a clip of `duration_s` seconds.
    ///
    /// The simulation warms up before frame zero so the scene is already
    /// populated at clip start (real clips are sampled from continuous
    /// footage).
    pub fn simulate(scene: Arc<SceneSpec>, id: usize, duration_s: f32, seed: u64) -> Clip {
        let fps = scene.fps as f32;
        let n_frames = (duration_s * fps).round() as usize;
        let dt = 1.0 / fps;
        let mut rng = ChaCha8Rng::seed_from_u64(seed);

        // Warm-up long enough for the slowest object to cross the scene.
        let warmup_s = scene
            .paths
            .iter()
            .map(|p| p.length() / (p.speed_px_s * 0.5))
            .fold(10.0_f32, f32::max)
            .min(120.0);

        let mut next_id: u32 = 0;
        let mut spawned: Vec<SimObject> = Vec::new();
        for (path_idx, path) in scene.paths.iter().enumerate() {
            let rate_per_s = path.arrivals_per_min / 60.0;
            if rate_per_s <= 0.0 {
                continue;
            }
            let mut t = -warmup_s;
            loop {
                // Exponential inter-arrival times.
                let u: f32 = rng.gen_range(1e-6..1.0);
                t += -u.ln() / rate_per_s;
                if t >= duration_s {
                    break;
                }
                let class = path.sample_class(rng.gen_range(0.0..1.0));
                let speed_factor = 1.0 + path.speed_jitter * rng.gen_range(-1.0_f32..1.0);
                let lat = rng.gen_range(-4.0_f32..4.0);
                let brake_at = if rng.gen_range(0.0..1.0_f32) < scene.hard_brake_prob {
                    Some(rng.gen_range(0.25_f32..0.75))
                } else {
                    None
                };
                spawned.push(SimObject {
                    id: {
                        let i = next_id;
                        next_id += 1;
                        i
                    },
                    path_idx,
                    class,
                    spawn_t: t,
                    cruise: path.speed_px_s * speed_factor.max(0.2),
                    lateral: lat,
                    brake_at_frac: brake_at,
                });
            }
        }

        let mut frames = vec![FrameState::default(); n_frames];
        for (f, fr) in frames.iter_mut().enumerate() {
            let t = f as f32 * dt;
            fr.time_s = t;
            fr.cam_offset = scene.camera.offset(t);
        }

        let frame_rect = scene.frame_rect();
        let mut gt_tracks = Vec::new();
        for obj in &spawned {
            let path = &scene.paths[obj.path_idx];
            let track = obj.roll_forward(path, &scene, n_frames, dt, frame_rect);
            if let Some((track, states_per_frame)) = track {
                for (f, st) in states_per_frame {
                    frames[f].objs.push(st);
                }
                gt_tracks.push(track);
            }
        }
        gt_tracks.sort_by_key(|t| t.id);

        Clip {
            id,
            scene,
            frames,
            gt_tracks,
            seed,
        }
    }
}

/// Internal: a spawned object before kinematic roll-out.
struct SimObject {
    id: u32,
    path_idx: usize,
    class: ObjectClass,
    /// Spawn time in seconds relative to clip start (may be negative).
    spawn_t: f32,
    /// Cruise speed in px/s.
    cruise: f32,
    /// Lateral offset from the path centerline, in native px at scale 1.
    lateral: f32,
    /// If set, the arc-length fraction at which a hard-brake event starts.
    brake_at_frac: Option<f32>,
}

impl SimObject {
    /// Integrate the object's motion and emit its per-frame states and
    /// ground-truth track. Returns `None` if it is never visible in-clip.
    fn roll_forward(
        &self,
        path: &PathSpec,
        scene: &SceneSpec,
        n_frames: usize,
        dt: f32,
        frame_rect: Rect,
    ) -> Option<(GtTrack, Vec<(usize, ObjState)>)> {
        let len = path.length();
        let accel = self.cruise * 0.8; // px/s² gentle acceleration
        let decel = self.cruise * 1.5;
        let hard_decel = self.cruise * 4.0;

        let mut u = 0.0_f32; // arc length traveled
        let mut v = self.cruise;
        let mut t = self.spawn_t;
        let mut braked = false;

        let mut states = Vec::new();
        let mut gt_states = Vec::new();

        // step until the object exits the path or the clip ends
        let max_t = n_frames as f32 * dt + dt;
        while u <= len && t < max_t {
            // choose target speed for this step
            let frac = u / len;
            let mut target = self.cruise;
            let mut max_decel = decel;
            if let Some(bf) = self.brake_at_frac {
                // hard-brake window covers ~8 % of the path
                if frac >= bf && frac < bf + 0.08 {
                    target = self.cruise * 0.15;
                    max_decel = hard_decel;
                    braked = true;
                }
            }
            if let Some(sz) = path.stop_zone {
                if scene.signal_cycle_s > 0.0 {
                    let phase = (t / scene.signal_cycle_s + sz.phase).rem_euclid(1.0);
                    let red = phase < 0.45;
                    let stop_u = sz.at_frac * len;
                    if red && u < stop_u && stop_u - u < v.max(20.0) * 2.0 {
                        target = 0.0;
                        max_decel = decel;
                    }
                }
            }
            // integrate speed with accel/decel limits
            let dv = (target - v).clamp(-max_decel * dt, accel * dt);
            v = (v + dv).max(0.0);
            u += v * dt;
            t += dt;

            // emit a state if this instant lands on a clip frame
            let fidx = (t / dt).round() as i64;
            if fidx >= 0 && (fidx as usize) < n_frames && (t - fidx as f32 * dt).abs() < dt * 0.5 {
                let f = fidx as usize;
                let frac = (u / len).clamp(0.0, 1.0);
                let center = self.position(path, frac);
                let scale = path.scale.at(frac);
                let (bw, bh) = self.class.base_size();
                let (w, h) = (bw * scale, bh * scale);
                let cam = scene.camera.offset(f as f32 * dt);
                let rect = Rect::new(center.x - w / 2.0 - cam.0, center.y - h / 2.0 - cam.1, w, h);
                if u <= len && rect.intersects(&frame_rect) {
                    states.push((
                        f,
                        ObjState {
                            track_id: self.id,
                            class: self.class,
                            rect,
                            path_idx: self.path_idx,
                            speed: v,
                        },
                    ));
                    gt_states.push((f, rect));
                }
            }
        }

        if gt_states.is_empty() {
            return None;
        }
        let visible_braked = braked;
        Some((
            GtTrack {
                id: self.id,
                class: self.class,
                path_id: path.id.clone(),
                path_idx: self.path_idx,
                states: gt_states,
                braked_hard: visible_braked,
            },
            states,
        ))
    }

    /// World-space center position at arc-length fraction `frac`,
    /// including the lateral lane offset.
    fn position(&self, path: &PathSpec, frac: f32) -> Point {
        let p = path.route.point_at(frac);
        // approximate tangent by finite difference
        let q = path.route.point_at((frac + 0.01).min(1.0));
        let r = path.route.point_at((frac - 0.01).max(0.0));
        let d = q - r;
        let n = d.norm();
        if n < 1e-6 {
            return p;
        }
        let normal = Point::new(-d.y / n, d.x / n);
        let scale = path.scale.at(frac);
        p + normal * (self.lateral * scale)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::path::ScaleProfile;
    use crate::scene::CameraMotion;

    fn test_scene() -> Arc<SceneSpec> {
        Arc::new(SceneSpec {
            name: "test".into(),
            width: 320,
            height: 192,
            fps: 10,
            camera: CameraMotion::Fixed,
            paths: vec![PathSpec::straight(
                "west->east",
                (-40.0, 96.0),
                (360.0, 96.0),
                ScaleProfile::uniform(1.0),
                30.0,
                80.0,
            )],
            background_level: 0.3,
            noise_sigma: 0.02,
            hard_brake_prob: 0.0,
            signal_cycle_s: 0.0,
        })
    }

    #[test]
    fn simulation_is_deterministic() {
        let scene = test_scene();
        let a = Clip::simulate(scene.clone(), 0, 10.0, 42);
        let b = Clip::simulate(scene, 0, 10.0, 42);
        assert_eq!(a.gt_tracks.len(), b.gt_tracks.len());
        for (x, y) in a.gt_tracks.iter().zip(&b.gt_tracks) {
            assert_eq!(x.states.len(), y.states.len());
            assert_eq!(x.states.first(), y.states.first());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let scene = test_scene();
        let a = Clip::simulate(scene.clone(), 0, 10.0, 1);
        let b = Clip::simulate(scene, 0, 10.0, 2);
        // With 30 arrivals/min over 10 s the traffic pattern will differ.
        let sig_a: Vec<usize> = a.gt_tracks.iter().map(|t| t.states.len()).collect();
        let sig_b: Vec<usize> = b.gt_tracks.iter().map(|t| t.states.len()).collect();
        assert_ne!(sig_a, sig_b);
    }

    #[test]
    fn warmup_populates_first_frame() {
        let scene = test_scene();
        let c = Clip::simulate(scene, 0, 10.0, 7);
        // At 30 arrivals/min and a 5 s crossing time, frame 0 should
        // usually contain at least one object thanks to warm-up.
        assert!(
            !c.frames[0].objs.is_empty(),
            "expected warm-up traffic in frame 0"
        );
    }

    #[test]
    fn objects_move_left_to_right() {
        let scene = test_scene();
        let c = Clip::simulate(scene, 0, 20.0, 3);
        let t = c
            .gt_tracks
            .iter()
            .find(|t| t.states.len() > 10)
            .expect("some long track");
        let first = t.states.first().unwrap().1.center();
        let last = t.states.last().unwrap().1.center();
        assert!(last.x > first.x, "track should move east");
        // speed ≈ 80 px/s ± jitter: displacement per frame ~8 px
        let frames = (t.last_frame() - t.first_frame()) as f32;
        let px_per_frame = (last.x - first.x) / frames;
        assert!(
            (4.0..16.0).contains(&px_per_frame),
            "px/frame = {px_per_frame}"
        );
    }

    #[test]
    fn boxes_always_intersect_frame() {
        let scene = test_scene();
        let c = Clip::simulate(scene.clone(), 0, 10.0, 9);
        let fr = scene.frame_rect();
        for f in &c.frames {
            for o in &f.objs {
                assert!(o.rect.intersects(&fr));
            }
        }
    }

    #[test]
    fn gt_tracks_match_frame_states() {
        let scene = test_scene();
        let c = Clip::simulate(scene, 0, 10.0, 11);
        // Every ground-truth state appears in the corresponding frame.
        for t in &c.gt_tracks {
            for (f, r) in &t.states {
                let found = c.frames[*f]
                    .objs
                    .iter()
                    .any(|o| o.track_id == t.id && o.rect == *r);
                assert!(found, "missing state for track {} frame {f}", t.id);
            }
        }
        // Frame counts agree in total.
        let total_frame_objs: usize = c.frames.iter().map(|f| f.objs.len()).sum();
        let total_gt_states: usize = c.gt_tracks.iter().map(|t| t.states.len()).sum();
        assert_eq!(total_frame_objs, total_gt_states);
    }

    #[test]
    fn stop_zone_halts_traffic_during_red() {
        let mut scene = (*test_scene()).clone();
        scene.signal_cycle_s = 20.0;
        scene.paths[0] = scene.paths[0].clone().with_stop_zone(0.5, 0.0);
        let c = Clip::simulate(Arc::new(scene), 0, 20.0, 5);
        // Some object should come to (near) rest at some point.
        let any_stopped = c
            .frames
            .iter()
            .any(|f| f.objs.iter().any(|o| o.speed < 1.0));
        assert!(any_stopped, "no object ever stopped at the signal");
    }

    #[test]
    fn hard_brake_flag_set_when_enabled() {
        let mut scene = (*test_scene()).clone();
        scene.hard_brake_prob = 1.0;
        let c = Clip::simulate(Arc::new(scene), 0, 20.0, 5);
        assert!(c.gt_tracks.iter().any(|t| t.braked_hard));
    }

    #[test]
    fn moving_camera_shifts_boxes() {
        let mut scene = (*test_scene()).clone();
        scene.camera = CameraMotion::Drift {
            amp_x: 15.0,
            amp_y: 8.0,
            period_s: 10.0,
        };
        let c = Clip::simulate(Arc::new(scene), 0, 10.0, 13);
        assert!(c.frames.iter().any(|f| f.cam_offset.0.abs() > 1.0));
    }
}
