//! The seven benchmark datasets and train/validation/test splits.

use crate::clip::Clip;
use crate::path::{PathSpec, ScaleProfile};
use crate::scene::{CameraMotion, ObjectClass, SceneSpec};
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// The seven datasets in the paper's evaluation (§4).
///
/// Each maps to a synthetic scene configured to reproduce the properties
/// the paper's results hinge on:
///
/// - **Caldot1/Caldot2** — small-resolution highway cameras; traffic
///   spread across the frame (little headroom for the proxy model on
///   Caldot1, per Table 4).
/// - **Tokyo** — a city junction with 10 distinct turning paths (the
///   paper's path-breakdown query counts all 10).
/// - **Warsaw** — a busy junction concentrated in the frame center with
///   large empty margins (the proxy model gives ~1.5× there, per Table 4).
/// - **UAV** — aerial drone with camera drift (no refinement, §3.4).
/// - **Amsterdam** — sparse riverside plaza with idle periods (NoScope's
///   frame skipping is competitive there, §4.1).
/// - **Jackson** — light night-time junction traffic.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DatasetKind {
    /// California DOT highway camera 1 (busy).
    Caldot1,
    /// California DOT highway camera 2 (lighter traffic).
    Caldot2,
    /// City junction with 10 turning movements.
    Tokyo,
    /// Aerial drone with camera drift.
    Uav,
    /// Busy compact junction with empty margins.
    Warsaw,
    /// Sparse riverside plaza.
    Amsterdam,
    /// Light night-time junction traffic.
    Jackson,
}

impl DatasetKind {
    /// All seven datasets, in the paper's order.
    pub const ALL: [DatasetKind; 7] = [
        DatasetKind::Caldot1,
        DatasetKind::Caldot2,
        DatasetKind::Tokyo,
        DatasetKind::Uav,
        DatasetKind::Warsaw,
        DatasetKind::Amsterdam,
        DatasetKind::Jackson,
    ];

    /// Lowercase dataset name as used in the paper's tables.
    pub fn name(&self) -> &'static str {
        match self {
            DatasetKind::Caldot1 => "caldot1",
            DatasetKind::Caldot2 => "caldot2",
            DatasetKind::Tokyo => "tokyo",
            DatasetKind::Uav => "uav",
            DatasetKind::Warsaw => "warsaw",
            DatasetKind::Amsterdam => "amsterdam",
            DatasetKind::Jackson => "jackson",
        }
    }

    /// Whether the camera is fixed (refinement applies) or moving.
    pub fn fixed_camera(&self) -> bool {
        !matches!(self, DatasetKind::Uav)
    }

    /// Build the scene specification for this dataset.
    pub fn scene(&self) -> SceneSpec {
        match self {
            DatasetKind::Caldot1 => highway_scene("caldot1", 20.0, 110.0, 0.06),
            DatasetKind::Caldot2 => highway_scene("caldot2", 9.0, 140.0, 0.04),
            DatasetKind::Tokyo => junction_scene("tokyo", 640, 384, 3.5, 0.30, false),
            DatasetKind::Uav => uav_scene(),
            DatasetKind::Warsaw => junction_scene("warsaw", 640, 384, 7.0, 0.30, true),
            DatasetKind::Amsterdam => plaza_scene(),
            DatasetKind::Jackson => junction_scene("jackson", 640, 384, 1.2, 0.15, false),
        }
    }
}

fn highway_scene(name: &str, per_lane_per_min: f32, speed: f32, brake: f32) -> SceneSpec {
    // 384×224 ≈ the paper's 720×480 Caldot feeds at half scale.
    let paths = vec![
        PathSpec::straight(
            "west->east-l1",
            (-60.0, 118.0),
            (440.0, 128.0),
            ScaleProfile {
                start: 0.8,
                end: 1.0,
            },
            per_lane_per_min,
            speed,
        ),
        PathSpec::straight(
            "west->east-l2",
            (-60.0, 146.0),
            (440.0, 158.0),
            ScaleProfile {
                start: 0.9,
                end: 1.1,
            },
            per_lane_per_min * 0.9,
            speed * 0.92,
        ),
        PathSpec::straight(
            "east->west-l1",
            (440.0, 84.0),
            (-60.0, 76.0),
            ScaleProfile {
                start: 0.8,
                end: 0.6,
            },
            per_lane_per_min * 0.9,
            speed * 1.05,
        ),
        PathSpec::straight(
            "east->west-l2",
            (440.0, 104.0),
            (-60.0, 96.0),
            ScaleProfile {
                start: 0.9,
                end: 0.7,
            },
            per_lane_per_min * 0.8,
            speed,
        ),
    ];
    SceneSpec {
        name: name.to_string(),
        width: 384,
        height: 224,
        fps: 10,
        camera: CameraMotion::Fixed,
        paths,
        background_level: 0.30,
        noise_sigma: 0.03,
        hard_brake_prob: brake,
        signal_cycle_s: 0.0,
    }
}

/// Build a four-road junction with 10 turning paths (N/S/E/W through and
/// turn movements), as in the paper's Tokyo query. If `compact`, roads are
/// squeezed into the frame center leaving large empty margins (Warsaw).
fn junction_scene(
    name: &str,
    width: u32,
    height: u32,
    per_path_per_min: f32,
    bg: f32,
    compact: bool,
) -> SceneSpec {
    let w = width as f32;
    let h = height as f32;
    let (cx, cy) = (w / 2.0, h / 2.0);
    // entry/exit points per road; compact scenes pull them toward center
    let m = if compact { 0.62 } else { 1.0 };
    let n_in = (cx - 24.0, -20.0 * m + cy * (1.0 - m));
    let n_out = (cx + 24.0, -20.0 * m + cy * (1.0 - m));
    let s_in = (cx + 24.0, h + 20.0 * m - (h - cy) * (1.0 - m) * 0.0);
    let s_out = (cx - 24.0, h + 20.0 * m);
    let e_in = (w + 20.0 * m - (w - cx) * (1.0 - m), cy - 20.0);
    let e_out = (w + 20.0 * m - (w - cx) * (1.0 - m), cy + 20.0);
    let w_in = (cx * (1.0 - m) - 20.0 * m, cy + 20.0);
    let w_out = (cx * (1.0 - m) - 20.0 * m, cy - 20.0);
    let s_in = if compact {
        (cx + 24.0, cy + (h - cy) * m + 10.0)
    } else {
        s_in
    };
    let s_out2 = if compact {
        (cx - 24.0, cy + (h - cy) * m + 10.0)
    } else {
        s_out
    };

    // perspective: roads from the top are farther away
    let far = ScaleProfile {
        start: 0.55,
        end: 1.0,
    };
    let near = ScaleProfile {
        start: 1.0,
        end: 0.55,
    };
    let level = ScaleProfile::uniform(0.8);
    let c = (cx, cy);
    let r = per_path_per_min;
    let mk = |id: &str, pts: &[(f32, f32)], sc: ScaleProfile, phase: f32| {
        PathSpec::through(id, pts, sc, r, 85.0).with_stop_zone(0.35, phase)
    };
    let paths = vec![
        mk("n->s", &[n_in, c, s_out2], far, 0.0),
        mk("s->n", &[s_in, c, n_out], near, 0.0),
        mk("e->w", &[e_in, c, w_out], level, 0.5),
        mk("w->e", &[w_in, c, e_out], level, 0.5),
        mk("n->e", &[n_in, (cx - 10.0, cy - 10.0), e_out], far, 0.0),
        mk("n->w", &[n_in, (cx - 20.0, cy), w_out], far, 0.0),
        mk("s->e", &[s_in, (cx + 20.0, cy), e_out], near, 0.0),
        mk("e->s", &[e_in, (cx + 10.0, cy + 10.0), s_out2], level, 0.5),
        mk("w->n", &[w_in, (cx - 10.0, cy + 10.0), n_out], level, 0.5),
        mk("w->s", &[w_in, (cx, cy + 15.0), s_out2], level, 0.5),
    ];
    SceneSpec {
        name: name.to_string(),
        width,
        height,
        fps: 10,
        camera: CameraMotion::Fixed,
        paths,
        background_level: bg,
        noise_sigma: if name == "jackson" { 0.05 } else { 0.03 },
        hard_brake_prob: 0.06,
        signal_cycle_s: 24.0,
    }
}

fn uav_scene() -> SceneSpec {
    // Aerial view: small objects, two crossing roads, drifting camera.
    let paths = vec![
        PathSpec::straight(
            "sw->ne",
            (-40.0, 320.0),
            (560.0, -30.0),
            ScaleProfile::uniform(0.5),
            7.0,
            90.0,
        ),
        PathSpec::straight(
            "ne->sw",
            (560.0, 20.0),
            (-40.0, 300.0),
            ScaleProfile::uniform(0.5),
            6.0,
            95.0,
        ),
        PathSpec::straight(
            "w->e",
            (-40.0, 200.0),
            (560.0, 210.0),
            ScaleProfile::uniform(0.55),
            5.0,
            80.0,
        )
        .with_class_mix(vec![
            (ObjectClass::Car, 0.7),
            (ObjectClass::Truck, 0.2),
            (ObjectClass::Pedestrian, 0.1),
        ]),
        PathSpec::straight(
            "footpath",
            (100.0, -20.0),
            (140.0, 320.0),
            ScaleProfile::uniform(0.6),
            3.0,
            16.0,
        )
        .with_class_mix(vec![(ObjectClass::Pedestrian, 1.0)]),
    ];
    SceneSpec {
        name: "uav".to_string(),
        width: 512,
        height: 288,
        fps: 5,
        camera: CameraMotion::Drift {
            amp_x: 18.0,
            amp_y: 10.0,
            period_s: 45.0,
        },
        paths,
        background_level: 0.35,
        noise_sigma: 0.03,
        hard_brake_prob: 0.05,
        signal_cycle_s: 0.0,
    }
}

fn plaza_scene() -> SceneSpec {
    // Sparse riverside plaza: occasional cars on a road, slow pedestrians;
    // long idle periods so classification proxies can skip frames.
    let paths = vec![
        PathSpec::straight(
            "road-w->e",
            (-60.0, 300.0),
            (700.0, 310.0),
            ScaleProfile::uniform(1.0),
            2.2,
            70.0,
        ),
        PathSpec::straight(
            "road-e->w",
            (700.0, 330.0),
            (-60.0, 340.0),
            ScaleProfile::uniform(1.0),
            1.8,
            75.0,
        ),
        PathSpec::straight(
            "promenade",
            (-20.0, 180.0),
            (660.0, 170.0),
            ScaleProfile::uniform(0.9),
            2.0,
            14.0,
        )
        .with_class_mix(vec![(ObjectClass::Pedestrian, 1.0)]),
        PathSpec::straight(
            "crossing",
            (320.0, 120.0),
            (340.0, 400.0),
            ScaleProfile::uniform(0.9),
            1.0,
            13.0,
        )
        .with_class_mix(vec![(ObjectClass::Pedestrian, 1.0)]),
    ];
    SceneSpec {
        name: "amsterdam".to_string(),
        width: 640,
        height: 384,
        fps: 15,
        camera: CameraMotion::Fixed,
        paths,
        background_level: 0.45,
        noise_sigma: 0.025,
        hard_brake_prob: 0.04,
        signal_cycle_s: 0.0,
    }
}

/// How much video a dataset contains. The paper samples one hour (60
/// one-minute clips) per split; scaled profiles keep unit tests fast while
/// experiment harnesses report costs scaled to the one-hour equivalent.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DatasetScale {
    /// Clips per train/val/test split.
    pub clips_per_split: usize,
    /// Seconds per clip.
    pub clip_seconds: f32,
}

impl DatasetScale {
    /// The paper's full scale: 60 one-minute clips per split.
    pub const PAPER: DatasetScale = DatasetScale {
        clips_per_split: 60,
        clip_seconds: 60.0,
    };

    /// Experiment-harness scale: enough video for stable statistics while
    /// keeping harness runtime reasonable.
    pub const EXPERIMENT: DatasetScale = DatasetScale {
        clips_per_split: 10,
        clip_seconds: 20.0,
    };

    /// Unit-test scale.
    pub const TINY: DatasetScale = DatasetScale {
        clips_per_split: 2,
        clip_seconds: 6.0,
    };

    /// Total seconds of video per split.
    pub fn split_seconds(&self) -> f32 {
        self.clips_per_split as f32 * self.clip_seconds
    }

    /// Multiplier converting measured simulated cost on one split to the
    /// one-hour-dataset equivalent the paper reports.
    pub fn hour_scale(&self) -> f64 {
        3600.0 / self.split_seconds() as f64
    }
}

/// Configuration for generating a dataset.
#[derive(Debug, Clone, Copy)]
pub struct DatasetConfig {
    /// Which dataset to generate.
    pub kind: DatasetKind,
    /// How much video per split.
    pub scale: DatasetScale,
    /// Master seed.
    pub seed: u64,
}

impl DatasetConfig {
    /// Bundle a dataset configuration.
    pub fn new(kind: DatasetKind, scale: DatasetScale, seed: u64) -> Self {
        DatasetConfig { kind, scale, seed }
    }

    /// Small configuration for tests and examples.
    pub fn small(kind: DatasetKind, seed: u64) -> Self {
        DatasetConfig::new(kind, DatasetScale::TINY, seed)
    }

    /// Generate the train/validation/test splits.
    pub fn generate(&self) -> Dataset {
        let scene = Arc::new(self.kind.scene());
        let gen_split = |split: u64| -> Vec<Clip> {
            (0..self.scale.clips_per_split)
                .map(|i| {
                    Clip::simulate(
                        scene.clone(),
                        i,
                        self.scale.clip_seconds,
                        self.seed
                            .wrapping_mul(0x9E3779B97F4A7C15)
                            .wrapping_add(split * 1_000_003 + i as u64),
                    )
                })
                .collect()
        };
        let (train, val, test) = (gen_split(1), gen_split(2), gen_split(3));
        Dataset {
            kind: self.kind,
            scale: self.scale,
            scene,
            train,
            val,
            test,
        }
    }
}

/// A generated dataset: shared scene plus three clip splits, mirroring the
/// paper's training / validation / hidden-test protocol (§4).
pub struct Dataset {
    /// Which dataset this is.
    pub kind: DatasetKind,
    /// The scale it was generated at.
    pub scale: DatasetScale,
    /// The shared scene specification.
    pub scene: Arc<SceneSpec>,
    /// Training split (model training).
    pub train: Vec<Clip>,
    /// Validation split (parameter tuning).
    pub val: Vec<Clip>,
    /// Hidden test split (reporting).
    pub test: Vec<Clip>,
}

impl Dataset {
    /// Total frames in one split.
    pub fn split_frames(&self) -> usize {
        self.test.iter().map(|c| c.num_frames()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_scenes_build_with_cell_aligned_dims() {
        for kind in DatasetKind::ALL {
            let s = kind.scene();
            assert_eq!(s.width % 32, 0, "{kind:?}");
            assert_eq!(s.height % 32, 0, "{kind:?}");
            assert!(!s.paths.is_empty());
        }
    }

    #[test]
    fn tokyo_has_ten_turning_paths() {
        let s = DatasetKind::Tokyo.scene();
        assert_eq!(s.paths.len(), 10);
        let mut ids: Vec<&str> = s.paths.iter().map(|p| p.id.as_str()).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), 10, "path ids must be distinct");
    }

    #[test]
    fn uav_is_the_only_moving_camera() {
        for kind in DatasetKind::ALL {
            let moving = matches!(kind.scene().camera, CameraMotion::Drift { .. });
            assert_eq!(moving, !kind.fixed_camera(), "{kind:?}");
        }
    }

    #[test]
    fn dataset_generation_produces_three_splits() {
        let d = DatasetConfig::small(DatasetKind::Caldot1, 5).generate();
        assert_eq!(d.train.len(), 2);
        assert_eq!(d.val.len(), 2);
        assert_eq!(d.test.len(), 2);
        // splits differ (different seeds)
        let count = |clips: &[Clip]| -> usize { clips.iter().map(|c| c.gt_tracks.len()).sum() };
        assert!(count(&d.train) > 0);
        let sig_train: Vec<usize> = d.train.iter().map(|c| c.gt_tracks.len()).collect();
        let sig_val: Vec<usize> = d.val.iter().map(|c| c.gt_tracks.len()).collect();
        assert_ne!(sig_train, sig_val);
    }

    #[test]
    fn amsterdam_has_idle_frames() {
        // Averaged over three fixed seeds: at TINY scale any single
        // draw can miss (or overdraw) idle stretches, but the mean
        // empty-frame fraction is stable.
        let mut fracs = Vec::new();
        for seed in [14u64, 15, 16] {
            let d = DatasetConfig::new(DatasetKind::Amsterdam, DatasetScale::TINY, seed).generate();
            let empty: usize = d
                .test
                .iter()
                .flat_map(|c| c.frames.iter())
                .filter(|f| f.objs.is_empty())
                .count();
            let total: usize = d.test.iter().map(|c| c.num_frames()).sum();
            fracs.push(empty as f64 / total as f64);
        }
        // Measured per-seed fractions: ~[0.36, 0.33, 0.0] — one draw
        // can legitimately contain no idle frames at this scale, which
        // is what made the single-seed assert flaky; the mean is ~0.23.
        let mean = fracs.iter().sum::<f64>() / fracs.len() as f64;
        assert!(
            mean > 0.1,
            "expected ≥10 % empty frames in amsterdam on average, got {fracs:?}"
        );
    }

    #[test]
    fn warsaw_busier_than_jackson() {
        let w = DatasetConfig::small(DatasetKind::Warsaw, 9).generate();
        let j = DatasetConfig::small(DatasetKind::Jackson, 9).generate();
        let density = |d: &Dataset| -> f32 {
            let objs: usize = d
                .test
                .iter()
                .flat_map(|c| c.frames.iter())
                .map(|f| f.objs.len())
                .sum();
            let frames: usize = d.test.iter().map(|c| c.num_frames()).sum();
            objs as f32 / frames as f32
        };
        assert!(density(&w) > density(&j) * 2.0);
    }

    #[test]
    fn hour_scale_math() {
        assert!((DatasetScale::PAPER.hour_scale() - 1.0).abs() < 1e-9);
        let s = DatasetScale {
            clips_per_split: 10,
            clip_seconds: 36.0,
        };
        assert!((s.hour_scale() - 10.0).abs() < 1e-9);
    }
}
