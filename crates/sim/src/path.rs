//! Traffic paths: where objects travel and how they appear along the way.

use crate::scene::ObjectClass;
use otif_geom::{Point, Polyline};
use serde::{Deserialize, Serialize};

/// Perspective scale along a path: objects are drawn at
/// `lerp(start, end, u / length)` times their base size, so paths leading
/// away from the camera shrink objects toward the horizon.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ScaleProfile {
    /// Scale at the path start.
    pub start: f32,
    /// Scale at the path end.
    pub end: f32,
}

impl ScaleProfile {
    /// Constant scale along the whole path.
    pub const fn uniform(s: f32) -> Self {
        ScaleProfile { start: s, end: s }
    }

    /// Scale at arc-length fraction `frac` (clamped to [0, 1]).
    pub fn at(&self, frac: f32) -> f32 {
        self.start + (self.end - self.start) * frac.clamp(0.0, 1.0)
    }
}

/// A region along the path (by arc-length fraction) where objects must stop
/// during the red phase of the scene's signal cycle — models junction
/// queues and the stop-and-go motion real trackers must survive.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StopZone {
    /// Arc-length fraction where the stop line sits.
    pub at_frac: f32,
    /// Phase offset into the signal cycle, in `[0, 1)`; paths from
    /// different roads get different phases.
    pub phase: f32,
}

/// One traffic path through the scene.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PathSpec {
    /// Stable identifier used by path-breakdown queries (e.g.
    /// `"north->south"`). Paths with distinct ids are distinct "turning
    /// directions" in the paper's Tokyo query.
    pub id: String,
    /// The route in native frame coordinates. Endpoints may lie outside the
    /// frame (objects enter/leave the frame boundary) or inside it
    /// (objects appear/disappear at an occlusion or the horizon).
    pub route: Polyline,
    /// Perspective scale profile.
    pub scale: ScaleProfile,
    /// Mean arrivals per minute (Poisson).
    pub arrivals_per_min: f32,
    /// Base speed in native pixels per second.
    pub speed_px_s: f32,
    /// Relative speed jitter (e.g. 0.2 = ±20 % per object).
    pub speed_jitter: f32,
    /// Class mix as (class, weight) pairs; weights need not sum to 1.
    pub class_mix: Vec<(ObjectClass, f32)>,
    /// Optional stop zone for signal-controlled junctions.
    pub stop_zone: Option<StopZone>,
}

impl PathSpec {
    /// Convenience constructor for a straight path between two points with
    /// a car-dominated class mix.
    pub fn straight(
        id: &str,
        from: (f32, f32),
        to: (f32, f32),
        scale: ScaleProfile,
        arrivals_per_min: f32,
        speed_px_s: f32,
    ) -> Self {
        PathSpec {
            id: id.to_string(),
            route: Polyline::new(vec![Point::new(from.0, from.1), Point::new(to.0, to.1)]),
            scale,
            arrivals_per_min,
            speed_px_s,
            speed_jitter: 0.2,
            class_mix: vec![
                (ObjectClass::Car, 0.85),
                (ObjectClass::Truck, 0.10),
                (ObjectClass::Bus, 0.05),
            ],
            stop_zone: None,
        }
    }

    /// A turning path through a set of waypoints.
    pub fn through(
        id: &str,
        waypoints: &[(f32, f32)],
        scale: ScaleProfile,
        arrivals_per_min: f32,
        speed_px_s: f32,
    ) -> Self {
        PathSpec {
            id: id.to_string(),
            route: Polyline::new(waypoints.iter().map(|&(x, y)| Point::new(x, y)).collect()),
            scale,
            arrivals_per_min,
            speed_px_s,
            speed_jitter: 0.2,
            class_mix: vec![
                (ObjectClass::Car, 0.85),
                (ObjectClass::Truck, 0.10),
                (ObjectClass::Bus, 0.05),
            ],
            stop_zone: None,
        }
    }

    /// Add a signal-controlled stop zone.
    pub fn with_stop_zone(mut self, at_frac: f32, phase: f32) -> Self {
        self.stop_zone = Some(StopZone { at_frac, phase });
        self
    }

    /// Replace the class mix.
    pub fn with_class_mix(mut self, mix: Vec<(ObjectClass, f32)>) -> Self {
        self.class_mix = mix;
        self
    }

    /// Replace the per-object speed jitter.
    pub fn with_speed_jitter(mut self, jitter: f32) -> Self {
        self.speed_jitter = jitter;
        self
    }

    /// Arc length of the route in native pixels.
    pub fn length(&self) -> f32 {
        self.route.length()
    }

    /// Sample a class from the mix given a uniform random draw in `[0, 1)`.
    pub fn sample_class(&self, u: f32) -> ObjectClass {
        let total: f32 = self.class_mix.iter().map(|(_, w)| w).sum();
        let mut target = u * total;
        for (c, w) in &self.class_mix {
            if target < *w {
                return *c;
            }
            target -= w;
        }
        self.class_mix
            .last()
            .map(|(c, _)| *c)
            .unwrap_or(ObjectClass::Car)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_profile_interpolates() {
        let p = ScaleProfile {
            start: 1.0,
            end: 0.5,
        };
        assert_eq!(p.at(0.0), 1.0);
        assert_eq!(p.at(1.0), 0.5);
        assert_eq!(p.at(0.5), 0.75);
        // clamped outside [0,1]
        assert_eq!(p.at(2.0), 0.5);
        assert_eq!(p.at(-1.0), 1.0);
    }

    #[test]
    fn straight_path_length() {
        let p = PathSpec::straight(
            "a",
            (0.0, 0.0),
            (30.0, 40.0),
            ScaleProfile::uniform(1.0),
            10.0,
            50.0,
        );
        assert!((p.length() - 50.0).abs() < 1e-4);
    }

    #[test]
    fn sample_class_respects_weights() {
        let p = PathSpec::straight(
            "a",
            (0.0, 0.0),
            (1.0, 0.0),
            ScaleProfile::uniform(1.0),
            1.0,
            1.0,
        )
        .with_class_mix(vec![(ObjectClass::Car, 1.0), (ObjectClass::Bus, 1.0)]);
        assert_eq!(p.sample_class(0.0), ObjectClass::Car);
        assert_eq!(p.sample_class(0.49), ObjectClass::Car);
        assert_eq!(p.sample_class(0.51), ObjectClass::Bus);
        assert_eq!(p.sample_class(0.99), ObjectClass::Bus);
    }

    #[test]
    fn sample_class_single_entry() {
        let p = PathSpec::straight(
            "a",
            (0.0, 0.0),
            (1.0, 0.0),
            ScaleProfile::uniform(1.0),
            1.0,
            1.0,
        )
        .with_class_mix(vec![(ObjectClass::Pedestrian, 0.3)]);
        for u in [0.0, 0.5, 0.999] {
            assert_eq!(p.sample_class(u), ObjectClass::Pedestrian);
        }
    }
}
