//! Axis-aligned rectangles (bounding boxes).

use crate::Point;
use serde::{Deserialize, Serialize};

/// An axis-aligned rectangle `(x, y, w, h)` in frame coordinates.
///
/// `(x, y)` is the top-left corner. Rectangles with non-positive width or
/// height are treated as empty (zero area, no intersection).
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Rect {
    /// Left edge.
    pub x: f32,
    /// Top edge.
    pub y: f32,
    /// Width.
    pub w: f32,
    /// Height.
    pub h: f32,
}

impl Rect {
    /// Construct a rectangle from its top-left corner and size.
    pub const fn new(x: f32, y: f32, w: f32, h: f32) -> Self {
        Rect { x, y, w, h }
    }

    /// Construct from corner points `(x0, y0)`–`(x1, y1)`.
    pub fn from_corners(x0: f32, y0: f32, x1: f32, y1: f32) -> Self {
        let (x0, x1) = if x0 <= x1 { (x0, x1) } else { (x1, x0) };
        let (y0, y1) = if y0 <= y1 { (y0, y1) } else { (y1, y0) };
        Rect::new(x0, y0, x1 - x0, y1 - y0)
    }

    /// Right edge (`x + w`).
    pub fn x1(&self) -> f32 {
        self.x + self.w
    }

    /// Bottom edge (`y + h`).
    pub fn y1(&self) -> f32 {
        self.y + self.h
    }

    /// Area; 0 for degenerate rectangles.
    pub fn area(&self) -> f32 {
        if self.w <= 0.0 || self.h <= 0.0 {
            0.0
        } else {
            self.w * self.h
        }
    }

    /// Center point.
    pub fn center(&self) -> Point {
        Point::new(self.x + self.w / 2.0, self.y + self.h / 2.0)
    }

    /// Whether width or height is non-positive.
    pub fn is_empty(&self) -> bool {
        self.w <= 0.0 || self.h <= 0.0
    }

    /// Intersection rectangle (empty if the rectangles do not overlap).
    pub fn intersection(&self, other: &Rect) -> Rect {
        let x0 = self.x.max(other.x);
        let y0 = self.y.max(other.y);
        let x1 = self.x1().min(other.x1());
        let y1 = self.y1().min(other.y1());
        Rect::new(x0, y0, x1 - x0, y1 - y0)
    }

    /// Smallest rectangle containing both.
    pub fn union(&self, other: &Rect) -> Rect {
        if self.is_empty() {
            return *other;
        }
        if other.is_empty() {
            return *self;
        }
        let x0 = self.x.min(other.x);
        let y0 = self.y.min(other.y);
        let x1 = self.x1().max(other.x1());
        let y1 = self.y1().max(other.y1());
        Rect::from_corners(x0, y0, x1, y1)
    }

    /// Intersection-over-union; 0 for disjoint or empty rectangles.
    ///
    /// ```
    /// use otif_geom::Rect;
    /// let a = Rect::new(0.0, 0.0, 10.0, 10.0);
    /// assert_eq!(a.iou(&a), 1.0);
    /// assert_eq!(a.iou(&Rect::new(20.0, 0.0, 10.0, 10.0)), 0.0);
    /// ```
    pub fn iou(&self, other: &Rect) -> f32 {
        let inter = self.intersection(other).area();
        if inter <= 0.0 {
            return 0.0;
        }
        let union = self.area() + other.area() - inter;
        if union <= 0.0 {
            0.0
        } else {
            inter / union
        }
    }

    /// Whether the rectangles overlap with positive area.
    pub fn intersects(&self, other: &Rect) -> bool {
        !self.intersection(other).is_empty()
    }

    /// Whether the point lies inside (half-open on the far edges).
    pub fn contains_point(&self, p: &Point) -> bool {
        p.x >= self.x && p.x < self.x1() && p.y >= self.y && p.y < self.y1()
    }

    /// Whether `other` lies entirely inside `self`.
    pub fn contains_rect(&self, other: &Rect) -> bool {
        other.x >= self.x && other.y >= self.y && other.x1() <= self.x1() && other.y1() <= self.y1()
    }

    /// Rectangle scaled around the origin by independent x/y factors; used
    /// to map boxes between frame resolutions.
    pub fn scale(&self, sx: f32, sy: f32) -> Rect {
        Rect::new(self.x * sx, self.y * sy, self.w * sx, self.h * sy)
    }

    /// Clamp the rectangle to lie within `bounds`.
    pub fn clamp_to(&self, bounds: &Rect) -> Rect {
        self.intersection(bounds)
    }

    /// Translate by a vector.
    pub fn translate(&self, d: Point) -> Rect {
        Rect::new(self.x + d.x, self.y + d.y, self.w, self.h)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn iou_identical_is_one() {
        let r = Rect::new(10.0, 10.0, 20.0, 30.0);
        assert!((r.iou(&r) - 1.0).abs() < 1e-6);
    }

    #[test]
    fn iou_disjoint_is_zero() {
        let a = Rect::new(0.0, 0.0, 5.0, 5.0);
        let b = Rect::new(10.0, 10.0, 5.0, 5.0);
        assert_eq!(a.iou(&b), 0.0);
        assert!(!a.intersects(&b));
    }

    #[test]
    fn iou_half_overlap() {
        let a = Rect::new(0.0, 0.0, 10.0, 10.0);
        let b = Rect::new(5.0, 0.0, 10.0, 10.0);
        // intersection 50, union 150.
        assert!((a.iou(&b) - 1.0 / 3.0).abs() < 1e-6);
    }

    #[test]
    fn union_contains_both() {
        let a = Rect::new(0.0, 0.0, 5.0, 5.0);
        let b = Rect::new(10.0, 2.0, 3.0, 9.0);
        let u = a.union(&b);
        assert!(u.contains_rect(&a));
        assert!(u.contains_rect(&b));
        assert_eq!(u, Rect::from_corners(0.0, 0.0, 13.0, 11.0));
    }

    #[test]
    fn union_with_empty_is_identity() {
        let a = Rect::new(1.0, 2.0, 3.0, 4.0);
        let e = Rect::new(5.0, 5.0, 0.0, 0.0);
        assert_eq!(a.union(&e), a);
        assert_eq!(e.union(&a), a);
    }

    #[test]
    fn contains_point_is_half_open() {
        let r = Rect::new(0.0, 0.0, 10.0, 10.0);
        assert!(r.contains_point(&Point::new(0.0, 0.0)));
        assert!(!r.contains_point(&Point::new(10.0, 10.0)));
        assert!(r.contains_point(&Point::new(9.9, 9.9)));
    }

    #[test]
    fn scale_and_clamp() {
        let r = Rect::new(2.0, 4.0, 6.0, 8.0);
        assert_eq!(r.scale(0.5, 0.25), Rect::new(1.0, 1.0, 3.0, 2.0));
        let bounds = Rect::new(0.0, 0.0, 5.0, 5.0);
        let c = r.clamp_to(&bounds);
        assert_eq!(c, Rect::new(2.0, 4.0, 3.0, 1.0));
    }

    #[test]
    fn center_of_rect() {
        let r = Rect::new(0.0, 0.0, 10.0, 20.0);
        assert_eq!(r.center(), Point::new(5.0, 10.0));
    }
}
