#![warn(missing_docs)]

//! Geometric primitives and spatial algorithms used throughout the OTIF
//! reproduction.
//!
//! This crate is a dependency-light substrate providing:
//!
//! - [`Point`] / [`Rect`] primitives with the usual measures (IoU,
//!   intersection, union, containment) used by detectors and trackers;
//! - [`Polygon`] point-in-polygon tests for region queries;
//! - [`Polyline`] resampling and the average-corresponding-point distance
//!   the paper uses for track clustering (§3.4);
//! - [`dbscan`] — DBSCAN over an arbitrary distance function, used to
//!   cluster training-set tracks for refinement;
//! - [`GridIndex`] — a uniform-grid spatial index over 2D points used to
//!   look up track clusters near a query endpoint;
//! - [`hungarian`] — the Hungarian algorithm for minimum-cost assignment,
//!   used by both the SORT baseline and the recurrent tracker to match
//!   detections to tracks.

pub mod dbscan;
pub mod grid_index;
pub mod hungarian;
pub mod point;
pub mod polygon;
pub mod polyline;
pub mod rect;

pub use dbscan::{dbscan, DbscanParams};
pub use grid_index::GridIndex;
pub use hungarian::hungarian;
pub use point::Point;
pub use polygon::Polygon;
pub use polyline::Polyline;
pub use rect::Rect;
