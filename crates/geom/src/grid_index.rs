//! A uniform-grid spatial index over 2D points with payloads.
//!
//! §3.4 builds "a spatial index over cluster centers" so refinement can
//! find clusters whose paths pass near a track's first/last detection.
//! A uniform grid is the right tool here: the key space is a fixed camera
//! frame and queries are small-radius lookups.

use crate::Point;

/// A uniform grid over `[0, width) × [0, height)` storing items of type `T`
/// at points. Points outside the bounds are clamped into the boundary
/// cells, so inserts never fail.
#[derive(Debug, Clone)]
pub struct GridIndex<T> {
    cell_size: f32,
    cols: usize,
    rows: usize,
    cells: Vec<Vec<(Point, T)>>,
    len: usize,
}

impl<T: Clone> GridIndex<T> {
    /// Create an index covering `width × height` with square cells of side
    /// `cell_size`.
    pub fn new(width: f32, height: f32, cell_size: f32) -> Self {
        assert!(cell_size > 0.0 && width > 0.0 && height > 0.0);
        let cols = (width / cell_size).ceil().max(1.0) as usize;
        let rows = (height / cell_size).ceil().max(1.0) as usize;
        GridIndex {
            cell_size,
            cols,
            rows,
            cells: vec![Vec::new(); cols * rows],
            len: 0,
        }
    }

    fn cell_of(&self, p: &Point) -> (usize, usize) {
        let cx = ((p.x / self.cell_size).floor() as i64).clamp(0, self.cols as i64 - 1) as usize;
        let cy = ((p.y / self.cell_size).floor() as i64).clamp(0, self.rows as i64 - 1) as usize;
        (cx, cy)
    }

    /// Number of stored items.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the index holds no items.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Insert an item at a point (out-of-bounds points are clamped).
    pub fn insert(&mut self, p: Point, item: T) {
        let (cx, cy) = self.cell_of(&p);
        self.cells[cy * self.cols + cx].push((p, item));
        self.len += 1;
    }

    /// All items within Euclidean distance `radius` of `p`.
    pub fn query_radius(&self, p: &Point, radius: f32) -> Vec<(Point, T)> {
        let r2 = radius * radius;
        let mut out = Vec::new();
        let cx0 = (((p.x - radius) / self.cell_size).floor() as i64).clamp(0, self.cols as i64 - 1)
            as usize;
        let cx1 = (((p.x + radius) / self.cell_size).floor() as i64).clamp(0, self.cols as i64 - 1)
            as usize;
        let cy0 = (((p.y - radius) / self.cell_size).floor() as i64).clamp(0, self.rows as i64 - 1)
            as usize;
        let cy1 = (((p.y + radius) / self.cell_size).floor() as i64).clamp(0, self.rows as i64 - 1)
            as usize;
        for cy in cy0..=cy1 {
            for cx in cx0..=cx1 {
                for (q, item) in &self.cells[cy * self.cols + cx] {
                    if q.dist_sq(p) <= r2 {
                        out.push((*q, item.clone()));
                    }
                }
            }
        }
        out
    }

    /// The `k` nearest items to `p`, nearest first.
    ///
    /// Searches outward ring by ring; falls back to scanning everything if
    /// the rings exhaust the grid (small indexes), so it always returns
    /// `min(k, len)` items.
    pub fn knn(&self, p: &Point, k: usize) -> Vec<(Point, T)> {
        if k == 0 || self.len == 0 {
            return Vec::new();
        }
        let mut radius = self.cell_size;
        let max_dim = (self.cols.max(self.rows) as f32 + 1.0) * self.cell_size;
        loop {
            let mut found = self.query_radius(p, radius);
            if found.len() >= k || radius >= max_dim * 2.0 {
                found.sort_by(|a, b| {
                    a.0.dist_sq(p)
                        .partial_cmp(&b.0.dist_sq(p))
                        .unwrap_or(std::cmp::Ordering::Equal)
                });
                found.truncate(k);
                if found.len() >= k.min(self.len) {
                    return found;
                }
            }
            radius *= 2.0;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn build() -> GridIndex<usize> {
        let mut g = GridIndex::new(100.0, 100.0, 10.0);
        g.insert(Point::new(5.0, 5.0), 0);
        g.insert(Point::new(6.0, 5.0), 1);
        g.insert(Point::new(50.0, 50.0), 2);
        g.insert(Point::new(95.0, 95.0), 3);
        g
    }

    #[test]
    fn radius_query_finds_near_items_only() {
        let g = build();
        let mut ids: Vec<usize> = g
            .query_radius(&Point::new(5.0, 5.0), 2.0)
            .into_iter()
            .map(|(_, i)| i)
            .collect();
        ids.sort_unstable();
        assert_eq!(ids, vec![0, 1]);
    }

    #[test]
    fn radius_query_spanning_cells() {
        let g = build();
        let ids: Vec<usize> = g
            .query_radius(&Point::new(48.0, 48.0), 5.0)
            .into_iter()
            .map(|(_, i)| i)
            .collect();
        assert_eq!(ids, vec![2]);
    }

    #[test]
    fn knn_returns_sorted_by_distance() {
        let g = build();
        let ids: Vec<usize> = g
            .knn(&Point::new(0.0, 0.0), 3)
            .into_iter()
            .map(|(_, i)| i)
            .collect();
        assert_eq!(ids, vec![0, 1, 2]);
    }

    #[test]
    fn knn_with_k_larger_than_len() {
        let g = build();
        let all = g.knn(&Point::new(50.0, 50.0), 10);
        assert_eq!(all.len(), 4);
        assert_eq!(all[0].1, 2);
    }

    #[test]
    fn out_of_bounds_points_are_clamped() {
        let mut g = GridIndex::new(10.0, 10.0, 5.0);
        g.insert(Point::new(-100.0, -100.0), 7);
        let found = g.query_radius(&Point::new(-100.0, -100.0), 1.0);
        assert_eq!(found.len(), 1);
        assert_eq!(found[0].1, 7);
    }

    #[test]
    fn empty_index_queries() {
        let g: GridIndex<usize> = GridIndex::new(10.0, 10.0, 5.0);
        assert!(g.is_empty());
        assert!(g.query_radius(&Point::new(1.0, 1.0), 100.0).is_empty());
        assert!(g.knn(&Point::new(1.0, 1.0), 3).is_empty());
    }
}
