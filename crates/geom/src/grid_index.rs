//! A uniform-grid spatial index over 2D points with payloads.
//!
//! §3.4 builds "a spatial index over cluster centers" so refinement can
//! find clusters whose paths pass near a track's first/last detection.
//! A uniform grid is the right tool here: the key space is a fixed camera
//! frame and queries are small-radius lookups.

use crate::Point;

/// A uniform grid over `[0, width) × [0, height)` storing items of type `T`
/// at points. Points outside the bounds are clamped into the boundary
/// cells, so inserts never fail.
#[derive(Debug, Clone)]
pub struct GridIndex<T> {
    cell_size: f32,
    cols: usize,
    rows: usize,
    cells: Vec<Vec<(Point, T)>>,
    len: usize,
}

impl<T: Clone> GridIndex<T> {
    /// Create an index covering `width × height` with square cells of side
    /// `cell_size`.
    pub fn new(width: f32, height: f32, cell_size: f32) -> Self {
        assert!(cell_size > 0.0 && width > 0.0 && height > 0.0);
        let cols = (width / cell_size).ceil().max(1.0) as usize;
        let rows = (height / cell_size).ceil().max(1.0) as usize;
        GridIndex {
            cell_size,
            cols,
            rows,
            cells: vec![Vec::new(); cols * rows],
            len: 0,
        }
    }

    fn cell_of(&self, p: &Point) -> (usize, usize) {
        let cx = ((p.x / self.cell_size).floor() as i64).clamp(0, self.cols as i64 - 1) as usize;
        let cy = ((p.y / self.cell_size).floor() as i64).clamp(0, self.rows as i64 - 1) as usize;
        (cx, cy)
    }

    /// Number of stored items.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the index holds no items.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Insert an item at a point (out-of-bounds points are clamped).
    pub fn insert(&mut self, p: Point, item: T) {
        let (cx, cy) = self.cell_of(&p);
        self.cells[cy * self.cols + cx].push((p, item));
        self.len += 1;
    }

    /// All items within Euclidean distance `radius` of `p`.
    ///
    /// Equivalent to [`query_circle`](Self::query_circle); kept as the
    /// historical name.
    pub fn query_radius(&self, p: &Point, radius: f32) -> Vec<(Point, T)> {
        self.query_circle(p, radius)
    }

    /// Squared distance from `p` to the closest point of cell
    /// `(cx, cy)`'s rectangle (0 when `p` is inside the cell).
    fn cell_dist_sq(&self, cx: usize, cy: usize, p: &Point) -> f32 {
        let x0 = cx as f32 * self.cell_size;
        let y0 = cy as f32 * self.cell_size;
        let dx = (x0 - p.x).max(p.x - (x0 + self.cell_size)).max(0.0);
        let dy = (y0 - p.y).max(p.y - (y0 + self.cell_size)).max(0.0);
        dx * dx + dy * dy
    }

    /// All items within Euclidean distance `radius` of `p`, visiting only
    /// grid cells whose rectangle actually intersects the circle.
    ///
    /// A plain bounding-rectangle sweep visits `O((2r/cell)^2)` cells; the
    /// corner cells of that rectangle (≈ 21 % of it for large `r`) cannot
    /// contain matches and are skipped here before their contents are
    /// touched. Output order is the cell scan order (row-major, insertion
    /// order within a cell) — identical to the bounding-rectangle sweep,
    /// since skipped cells contribute no items.
    pub fn query_circle(&self, p: &Point, radius: f32) -> Vec<(Point, T)> {
        let r2 = radius * radius;
        let mut out = Vec::new();
        let cx0 = (((p.x - radius) / self.cell_size).floor() as i64).clamp(0, self.cols as i64 - 1)
            as usize;
        let cx1 = (((p.x + radius) / self.cell_size).floor() as i64).clamp(0, self.cols as i64 - 1)
            as usize;
        let cy0 = (((p.y - radius) / self.cell_size).floor() as i64).clamp(0, self.rows as i64 - 1)
            as usize;
        let cy1 = (((p.y + radius) / self.cell_size).floor() as i64).clamp(0, self.rows as i64 - 1)
            as usize;
        // Out-of-bounds inserts clamp into boundary cells, so boundary
        // cells may hold points arbitrarily far outside the grid; they
        // must not be distance-pruned.
        let boundary =
            |cx: usize, cy: usize| cx == 0 || cy == 0 || cx == self.cols - 1 || cy == self.rows - 1;
        for cy in cy0..=cy1 {
            for cx in cx0..=cx1 {
                if !boundary(cx, cy) && self.cell_dist_sq(cx, cy, p) > r2 {
                    continue;
                }
                for (q, item) in &self.cells[cy * self.cols + cx] {
                    if q.dist_sq(p) <= r2 {
                        out.push((*q, item.clone()));
                    }
                }
            }
        }
        out
    }

    /// The `k` nearest items to `p`, nearest first.
    ///
    /// Searches outward ring by ring; falls back to scanning everything if
    /// the rings exhaust the grid (small indexes), so it always returns
    /// `min(k, len)` items.
    pub fn knn(&self, p: &Point, k: usize) -> Vec<(Point, T)> {
        if k == 0 || self.len == 0 {
            return Vec::new();
        }
        let mut radius = self.cell_size;
        let max_dim = (self.cols.max(self.rows) as f32 + 1.0) * self.cell_size;
        loop {
            let mut found = self.query_radius(p, radius);
            if found.len() >= k || radius >= max_dim * 2.0 {
                found.sort_by(|a, b| {
                    a.0.dist_sq(p)
                        .partial_cmp(&b.0.dist_sq(p))
                        .unwrap_or(std::cmp::Ordering::Equal)
                });
                found.truncate(k);
                if found.len() >= k.min(self.len) {
                    return found;
                }
            }
            radius *= 2.0;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn build() -> GridIndex<usize> {
        let mut g = GridIndex::new(100.0, 100.0, 10.0);
        g.insert(Point::new(5.0, 5.0), 0);
        g.insert(Point::new(6.0, 5.0), 1);
        g.insert(Point::new(50.0, 50.0), 2);
        g.insert(Point::new(95.0, 95.0), 3);
        g
    }

    #[test]
    fn radius_query_finds_near_items_only() {
        let g = build();
        let mut ids: Vec<usize> = g
            .query_radius(&Point::new(5.0, 5.0), 2.0)
            .into_iter()
            .map(|(_, i)| i)
            .collect();
        ids.sort_unstable();
        assert_eq!(ids, vec![0, 1]);
    }

    #[test]
    fn radius_query_spanning_cells() {
        let g = build();
        let ids: Vec<usize> = g
            .query_radius(&Point::new(48.0, 48.0), 5.0)
            .into_iter()
            .map(|(_, i)| i)
            .collect();
        assert_eq!(ids, vec![2]);
    }

    #[test]
    fn knn_returns_sorted_by_distance() {
        let g = build();
        let ids: Vec<usize> = g
            .knn(&Point::new(0.0, 0.0), 3)
            .into_iter()
            .map(|(_, i)| i)
            .collect();
        assert_eq!(ids, vec![0, 1, 2]);
    }

    #[test]
    fn knn_with_k_larger_than_len() {
        let g = build();
        let all = g.knn(&Point::new(50.0, 50.0), 10);
        assert_eq!(all.len(), 4);
        assert_eq!(all[0].1, 2);
    }

    #[test]
    fn out_of_bounds_points_are_clamped() {
        let mut g = GridIndex::new(10.0, 10.0, 5.0);
        g.insert(Point::new(-100.0, -100.0), 7);
        let found = g.query_radius(&Point::new(-100.0, -100.0), 1.0);
        assert_eq!(found.len(), 1);
        assert_eq!(found[0].1, 7);
    }

    #[test]
    fn query_circle_matches_brute_force() {
        // Deterministic LCG scatter over the grid, including out-of-bounds
        // points (exercises the boundary-cell no-prune rule).
        let mut g = GridIndex::new(200.0, 120.0, 8.0);
        let mut pts = Vec::new();
        let mut s: u64 = 0x9e3779b97f4a7c15;
        let mut next = || {
            s = s
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((s >> 33) as f32 / (1u64 << 31) as f32) * 300.0 - 50.0
        };
        for i in 0..500usize {
            let p = Point::new(next(), next());
            g.insert(p, i);
            pts.push(p);
        }
        for (cx, cy, r) in [
            (100.0, 60.0, 25.0),
            (0.0, 0.0, 40.0),
            (199.0, 119.0, 13.0),
            (-30.0, -30.0, 35.0),
            (100.0, 60.0, 3.0),
            (50.0, 110.0, 500.0),
        ] {
            let c = Point::new(cx, cy);
            let mut brute: Vec<usize> = pts
                .iter()
                .enumerate()
                .filter(|(_, p)| p.dist_sq(&c) <= r * r)
                .map(|(i, _)| i)
                .collect();
            let mut fast: Vec<usize> = g.query_circle(&c, r).into_iter().map(|(_, i)| i).collect();
            // query_radius must stay the same lookup under its old name
            let mut old: Vec<usize> = g.query_radius(&c, r).into_iter().map(|(_, i)| i).collect();
            brute.sort_unstable();
            fast.sort_unstable();
            old.sort_unstable();
            assert_eq!(fast, brute, "center ({cx},{cy}) r {r}");
            assert_eq!(old, brute);
        }
    }

    #[test]
    fn empty_index_queries() {
        let g: GridIndex<usize> = GridIndex::new(10.0, 10.0, 5.0);
        assert!(g.is_empty());
        assert!(g.query_radius(&Point::new(1.0, 1.0), 100.0).is_empty());
        assert!(g.knn(&Point::new(1.0, 1.0), 3).is_empty());
    }
}
