//! Hungarian (Kuhn–Munkres) algorithm for minimum-cost assignment.
//!
//! Both the SORT baseline and OTIF's recurrent tracker must match a set of
//! new detections against a set of active tracks; both reduce to an
//! assignment problem over a score/cost matrix.

/// Solve the rectangular assignment problem.
///
/// `cost` is a row-major `rows × cols` matrix. Returns, for each row, the
/// assigned column (or `None` if the row is unassigned because
/// `rows > cols`). The total cost of the returned assignment is minimal.
///
/// Implementation: the classic O(n³) potentials/augmenting-path algorithm
/// on a padded square matrix.
///
/// ```
/// use otif_geom::hungarian;
/// let cost = vec![vec![4.0, 1.0], vec![2.0, 3.0]];
/// // row 0 takes the cheap column 1, freeing column 0 for row 1
/// assert_eq!(hungarian(&cost), vec![Some(1), Some(0)]);
/// ```
pub fn hungarian(cost: &[Vec<f32>]) -> Vec<Option<usize>> {
    let rows = cost.len();
    if rows == 0 {
        return Vec::new();
    }
    let cols = cost[0].len();
    for r in cost {
        assert_eq!(r.len(), cols, "cost matrix rows must have equal length");
    }
    if cols == 0 {
        return vec![None; rows];
    }
    let n = rows.max(cols);

    // Pad to n×n with zeros (padded cells are "free" dummy assignments).
    // Using f64 internally for numerical stability of the potentials.
    let get = |i: usize, j: usize| -> f64 {
        if i < rows && j < cols {
            cost[i][j] as f64
        } else {
            0.0
        }
    };

    // 1-indexed arrays per the standard formulation.
    let mut u = vec![0.0_f64; n + 1];
    let mut v = vec![0.0_f64; n + 1];
    let mut p = vec![0_usize; n + 1]; // p[j] = row assigned to column j
    let mut way = vec![0_usize; n + 1];

    for i in 1..=n {
        p[0] = i;
        let mut j0 = 0_usize;
        let mut minv = vec![f64::INFINITY; n + 1];
        let mut used = vec![false; n + 1];
        loop {
            used[j0] = true;
            let i0 = p[j0];
            let mut delta = f64::INFINITY;
            let mut j1 = 0;
            for j in 1..=n {
                if !used[j] {
                    let cur = get(i0 - 1, j - 1) - u[i0] - v[j];
                    if cur < minv[j] {
                        minv[j] = cur;
                        way[j] = j0;
                    }
                    if minv[j] < delta {
                        delta = minv[j];
                        j1 = j;
                    }
                }
            }
            for j in 0..=n {
                if used[j] {
                    u[p[j]] += delta;
                    v[j] -= delta;
                } else {
                    minv[j] -= delta;
                }
            }
            j0 = j1;
            if p[j0] == 0 {
                break;
            }
        }
        // Augment along the alternating path.
        loop {
            let j1 = way[j0];
            p[j0] = p[j1];
            j0 = j1;
            if j0 == 0 {
                break;
            }
        }
    }

    let mut assign = vec![None; rows];
    for (j, &i) in p.iter().enumerate().take(n + 1).skip(1) {
        if i >= 1 && i <= rows && j <= cols {
            assign[i - 1] = Some(j - 1);
        }
    }
    assign
}

/// Total cost of an assignment produced by [`hungarian`].
pub fn assignment_cost(cost: &[Vec<f32>], assign: &[Option<usize>]) -> f32 {
    assign
        .iter()
        .enumerate()
        .filter_map(|(i, j)| j.map(|j| cost[i][j]))
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_is_optimal_for_diagonal_matrix() {
        let cost = vec![
            vec![1.0, 10.0, 10.0],
            vec![10.0, 1.0, 10.0],
            vec![10.0, 10.0, 1.0],
        ];
        let a = hungarian(&cost);
        assert_eq!(a, vec![Some(0), Some(1), Some(2)]);
        assert_eq!(assignment_cost(&cost, &a), 3.0);
    }

    #[test]
    fn classic_3x3() {
        // Known optimum: rows→cols (0→1, 1→0, 2→2) with cost 5.
        let cost = vec![
            vec![4.0, 1.0, 3.0],
            vec![2.0, 0.0, 5.0],
            vec![3.0, 2.0, 2.0],
        ];
        let a = hungarian(&cost);
        assert_eq!(assignment_cost(&cost, &a), 5.0);
        // must be a permutation
        let mut cols: Vec<usize> = a.iter().map(|c| c.unwrap()).collect();
        cols.sort_unstable();
        assert_eq!(cols, vec![0, 1, 2]);
    }

    #[test]
    fn rectangular_more_rows_than_cols() {
        let cost = vec![vec![1.0], vec![0.5], vec![2.0]];
        let a = hungarian(&cost);
        // Exactly one row assigned, the cheapest.
        let assigned: Vec<usize> = a
            .iter()
            .enumerate()
            .filter(|(_, c)| c.is_some())
            .map(|(i, _)| i)
            .collect();
        assert_eq!(assigned, vec![1]);
    }

    #[test]
    fn rectangular_more_cols_than_rows() {
        let cost = vec![vec![3.0, 1.0, 2.0]];
        let a = hungarian(&cost);
        assert_eq!(a, vec![Some(1)]);
    }

    #[test]
    fn empty_matrices() {
        assert!(hungarian(&[]).is_empty());
        let cost: Vec<Vec<f32>> = vec![vec![], vec![]];
        assert_eq!(hungarian(&cost), vec![None, None]);
    }

    #[test]
    fn negative_costs_supported() {
        let cost = vec![vec![-5.0, 0.0], vec![0.0, -5.0]];
        let a = hungarian(&cost);
        assert_eq!(a, vec![Some(0), Some(1)]);
        assert_eq!(assignment_cost(&cost, &a), -10.0);
    }

    #[test]
    fn brute_force_agreement_on_random_matrices() {
        // Compare to exhaustive search on small matrices.
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(42);
        for _ in 0..50 {
            let n = rng.gen_range(1..=5usize);
            let cost: Vec<Vec<f32>> = (0..n)
                .map(|_| (0..n).map(|_| rng.gen_range(0.0..10.0)).collect())
                .collect();
            let a = hungarian(&cost);
            let got = assignment_cost(&cost, &a);
            let best = brute_force(&cost);
            assert!(
                (got - best).abs() < 1e-3,
                "hungarian={got} brute={best} cost={cost:?}"
            );
        }
    }

    fn brute_force(cost: &[Vec<f32>]) -> f32 {
        let n = cost.len();
        let mut perm: Vec<usize> = (0..n).collect();
        let mut best = f32::INFINITY;
        permute(&mut perm, 0, &mut |p| {
            let c: f32 = p.iter().enumerate().map(|(i, &j)| cost[i][j]).sum();
            if c < best {
                best = c;
            }
        });
        best
    }

    fn permute(arr: &mut Vec<usize>, k: usize, f: &mut impl FnMut(&[usize])) {
        if k == arr.len() {
            f(arr);
            return;
        }
        for i in k..arr.len() {
            arr.swap(k, i);
            permute(arr, k + 1, f);
            arr.swap(k, i);
        }
    }
}
