//! Polylines (paths) with the resampling + distance operations the paper
//! uses to cluster tracks for refinement (§3.4).

use crate::Point;
use serde::{Deserialize, Serialize};

/// An open polyline given by an ordered sequence of points.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Polyline {
    /// Ordered points of the open polyline.
    pub points: Vec<Point>,
}

impl Polyline {
    /// Build a polyline; panics on an empty point list.
    pub fn new(points: Vec<Point>) -> Self {
        assert!(!points.is_empty(), "polyline needs at least one point");
        Polyline { points }
    }

    /// Total arc length.
    pub fn length(&self) -> f32 {
        self.points
            .windows(2)
            .map(|w| w[0].dist(&w[1]))
            .sum::<f32>()
    }

    /// First point.
    pub fn first(&self) -> Point {
        self.points[0]
    }

    /// Last point.
    pub fn last(&self) -> Point {
        *self.points.last().unwrap()
    }

    /// Point at arc-length parameter `t` in `[0, 1]` along the polyline.
    pub fn point_at(&self, t: f32) -> Point {
        if self.points.len() == 1 {
            return self.points[0];
        }
        let total = self.length();
        if total <= 0.0 {
            return self.points[0];
        }
        let target = t.clamp(0.0, 1.0) * total;
        let mut acc = 0.0;
        for w in self.points.windows(2) {
            let seg = w[0].dist(&w[1]);
            if acc + seg >= target {
                let local = if seg > 0.0 { (target - acc) / seg } else { 0.0 };
                return w[0].lerp(&w[1], local);
            }
            acc += seg;
        }
        self.last()
    }

    /// Resample into exactly `n` points evenly spaced by arc length.
    ///
    /// This is the `P(s)` operation in §3.4 (the paper uses `N = 20`).
    ///
    /// ```
    /// use otif_geom::{Point, Polyline};
    /// let line = Polyline::new(vec![Point::new(0.0, 0.0), Point::new(10.0, 0.0)]);
    /// let r = line.resample(3);
    /// assert_eq!(r.points[1], Point::new(5.0, 0.0));
    /// ```
    pub fn resample(&self, n: usize) -> Polyline {
        assert!(n >= 1);
        if n == 1 {
            return Polyline::new(vec![self.first()]);
        }
        let pts = (0..n)
            .map(|i| self.point_at(i as f32 / (n - 1) as f32))
            .collect();
        Polyline::new(pts)
    }

    /// Average distance between corresponding points of two equal-length
    /// resampled polylines:
    /// `d(s1, s2) = (1/N) Σ eucl(P(s1)[i], P(s2)[i])`.
    pub fn avg_point_distance(&self, other: &Polyline) -> f32 {
        assert_eq!(
            self.points.len(),
            other.points.len(),
            "avg_point_distance requires equal-length polylines (resample first)"
        );
        let n = self.points.len();
        let sum: f32 = self
            .points
            .iter()
            .zip(other.points.iter())
            .map(|(a, b)| a.dist(b))
            .sum();
        sum / n as f32
    }

    /// Pointwise mean of several equal-length polylines; the cluster-center
    /// construction in §3.4.
    pub fn mean(lines: &[&Polyline]) -> Polyline {
        assert!(!lines.is_empty());
        let n = lines[0].points.len();
        for l in lines {
            assert_eq!(l.points.len(), n, "mean requires equal-length polylines");
        }
        let mut pts = vec![Point::default(); n];
        for l in lines {
            for (acc, p) in pts.iter_mut().zip(l.points.iter()) {
                *acc = *acc + *p;
            }
        }
        let k = lines.len() as f32;
        Polyline::new(pts.into_iter().map(|p| p / k).collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn line(ps: &[(f32, f32)]) -> Polyline {
        Polyline::new(ps.iter().map(|&(x, y)| Point::new(x, y)).collect())
    }

    #[test]
    fn length_of_segments() {
        let l = line(&[(0.0, 0.0), (3.0, 4.0), (3.0, 10.0)]);
        assert!((l.length() - 11.0).abs() < 1e-5);
    }

    #[test]
    fn point_at_midpoint() {
        let l = line(&[(0.0, 0.0), (10.0, 0.0)]);
        assert_eq!(l.point_at(0.5), Point::new(5.0, 0.0));
        assert_eq!(l.point_at(0.0), Point::new(0.0, 0.0));
        assert_eq!(l.point_at(1.0), Point::new(10.0, 0.0));
    }

    #[test]
    fn resample_preserves_endpoints_and_count() {
        let l = line(&[(0.0, 0.0), (4.0, 0.0), (4.0, 4.0)]);
        let r = l.resample(5);
        assert_eq!(r.points.len(), 5);
        assert_eq!(r.first(), l.first());
        assert!(r.last().dist(&l.last()) < 1e-4);
        // arc-length spacing: second point at distance 2 along path
        assert!(r.points[1].dist(&Point::new(2.0, 0.0)) < 1e-4);
    }

    #[test]
    fn resample_single_point_polyline() {
        let l = line(&[(2.0, 3.0)]);
        let r = l.resample(4);
        assert_eq!(r.points.len(), 4);
        assert!(r.points.iter().all(|p| *p == Point::new(2.0, 3.0)));
    }

    #[test]
    fn avg_point_distance_parallel_lines() {
        let a = line(&[(0.0, 0.0), (10.0, 0.0)]).resample(20);
        let b = line(&[(0.0, 3.0), (10.0, 3.0)]).resample(20);
        assert!((a.avg_point_distance(&b) - 3.0).abs() < 1e-4);
    }

    #[test]
    fn distance_to_self_is_zero() {
        let a = line(&[(0.0, 0.0), (5.0, 5.0), (9.0, 2.0)]).resample(20);
        assert!(a.avg_point_distance(&a) < 1e-6);
    }

    #[test]
    fn mean_of_two_lines_is_midline() {
        let a = line(&[(0.0, 0.0), (10.0, 0.0)]).resample(3);
        let b = line(&[(0.0, 2.0), (10.0, 2.0)]).resample(3);
        let m = Polyline::mean(&[&a, &b]);
        assert!(m.points.iter().all(|p| (p.y - 1.0).abs() < 1e-5));
    }
}
