//! 2D point type.

use serde::{Deserialize, Serialize};
use std::ops::{Add, Div, Mul, Sub};

/// A 2D point (or vector) in frame coordinates.
///
/// Coordinates are `f32` pixels; the origin is the top-left corner of the
/// frame, with `x` increasing rightwards and `y` increasing downwards.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Point {
    /// Horizontal coordinate (px, rightwards).
    pub x: f32,
    /// Vertical coordinate (px, downwards).
    pub y: f32,
}

impl Point {
    /// Construct a point.
    pub const fn new(x: f32, y: f32) -> Self {
        Point { x, y }
    }

    /// Euclidean distance to another point.
    pub fn dist(&self, other: &Point) -> f32 {
        let dx = self.x - other.x;
        let dy = self.y - other.y;
        (dx * dx + dy * dy).sqrt()
    }

    /// Squared Euclidean distance (avoids the sqrt when only comparing).
    pub fn dist_sq(&self, other: &Point) -> f32 {
        let dx = self.x - other.x;
        let dy = self.y - other.y;
        dx * dx + dy * dy
    }

    /// Euclidean norm of the point interpreted as a vector.
    pub fn norm(&self) -> f32 {
        (self.x * self.x + self.y * self.y).sqrt()
    }

    /// Dot product with another vector.
    pub fn dot(&self, other: &Point) -> f32 {
        self.x * other.x + self.y * other.y
    }

    /// Linear interpolation: `self` at `t = 0`, `other` at `t = 1`.
    pub fn lerp(&self, other: &Point, t: f32) -> Point {
        Point::new(
            self.x + (other.x - self.x) * t,
            self.y + (other.y - self.y) * t,
        )
    }
}

impl Add for Point {
    type Output = Point;
    fn add(self, rhs: Point) -> Point {
        Point::new(self.x + rhs.x, self.y + rhs.y)
    }
}

impl Sub for Point {
    type Output = Point;
    fn sub(self, rhs: Point) -> Point {
        Point::new(self.x - rhs.x, self.y - rhs.y)
    }
}

impl Mul<f32> for Point {
    type Output = Point;
    fn mul(self, rhs: f32) -> Point {
        Point::new(self.x * rhs, self.y * rhs)
    }
}

impl Div<f32> for Point {
    type Output = Point;
    fn div(self, rhs: f32) -> Point {
        Point::new(self.x / rhs, self.y / rhs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dist_matches_pythagoras() {
        let a = Point::new(0.0, 0.0);
        let b = Point::new(3.0, 4.0);
        assert_eq!(a.dist(&b), 5.0);
        assert_eq!(a.dist_sq(&b), 25.0);
    }

    #[test]
    fn lerp_endpoints_and_midpoint() {
        let a = Point::new(0.0, 0.0);
        let b = Point::new(10.0, -2.0);
        assert_eq!(a.lerp(&b, 0.0), a);
        assert_eq!(a.lerp(&b, 1.0), b);
        assert_eq!(a.lerp(&b, 0.5), Point::new(5.0, -1.0));
    }

    #[test]
    fn vector_ops() {
        let a = Point::new(1.0, 2.0);
        let b = Point::new(3.0, -1.0);
        assert_eq!(a + b, Point::new(4.0, 1.0));
        assert_eq!(a - b, Point::new(-2.0, 3.0));
        assert_eq!(a * 2.0, Point::new(2.0, 4.0));
        assert_eq!(a / 2.0, Point::new(0.5, 1.0));
        assert_eq!(a.dot(&b), 1.0);
        assert!((Point::new(3.0, 4.0).norm() - 5.0).abs() < 1e-6);
    }
}
