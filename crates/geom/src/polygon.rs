//! Simple polygons for region queries.

use crate::{Point, Rect};
use serde::{Deserialize, Serialize};

/// A simple polygon given by its vertices in order (closed implicitly).
///
/// Used by frame-level *region queries* ("at least N objects inside this
/// polygon", §4.2).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Polygon {
    /// Vertices in order; the polygon closes implicitly.
    pub vertices: Vec<Point>,
}

impl Polygon {
    /// Build a polygon; panics if fewer than three vertices are given.
    pub fn new(vertices: Vec<Point>) -> Self {
        assert!(vertices.len() >= 3, "polygon needs at least 3 vertices");
        Polygon { vertices }
    }

    /// Axis-aligned rectangle as a polygon (counter-clockwise in screen
    /// coordinates).
    pub fn from_rect(r: &Rect) -> Self {
        Polygon::new(vec![
            Point::new(r.x, r.y),
            Point::new(r.x1(), r.y),
            Point::new(r.x1(), r.y1()),
            Point::new(r.x, r.y1()),
        ])
    }

    /// Even-odd (ray casting) point-in-polygon test.
    pub fn contains(&self, p: &Point) -> bool {
        let n = self.vertices.len();
        let mut inside = false;
        let mut j = n - 1;
        for i in 0..n {
            let vi = self.vertices[i];
            let vj = self.vertices[j];
            if ((vi.y > p.y) != (vj.y > p.y))
                && (p.x < (vj.x - vi.x) * (p.y - vi.y) / (vj.y - vi.y) + vi.x)
            {
                inside = !inside;
            }
            j = i;
        }
        inside
    }

    /// Bounding rectangle of the polygon.
    pub fn bounds(&self) -> Rect {
        let mut x0 = f32::INFINITY;
        let mut y0 = f32::INFINITY;
        let mut x1 = f32::NEG_INFINITY;
        let mut y1 = f32::NEG_INFINITY;
        for v in &self.vertices {
            x0 = x0.min(v.x);
            y0 = y0.min(v.y);
            x1 = x1.max(v.x);
            y1 = y1.max(v.y);
        }
        Rect::from_corners(x0, y0, x1, y1)
    }

    /// Signed area via the shoelace formula (positive if counter-clockwise
    /// in mathematical coordinates).
    pub fn signed_area(&self) -> f32 {
        let n = self.vertices.len();
        let mut acc = 0.0;
        for i in 0..n {
            let a = self.vertices[i];
            let b = self.vertices[(i + 1) % n];
            acc += a.x * b.y - b.x * a.y;
        }
        acc / 2.0
    }

    /// Absolute enclosed area.
    pub fn area(&self) -> f32 {
        self.signed_area().abs()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn unit_square() -> Polygon {
        Polygon::from_rect(&Rect::new(0.0, 0.0, 1.0, 1.0))
    }

    #[test]
    fn square_contains_center_not_outside() {
        let p = unit_square();
        assert!(p.contains(&Point::new(0.5, 0.5)));
        assert!(!p.contains(&Point::new(1.5, 0.5)));
        assert!(!p.contains(&Point::new(-0.1, 0.5)));
    }

    #[test]
    fn concave_polygon_containment() {
        // L-shape: notch at top-right.
        let l = Polygon::new(vec![
            Point::new(0.0, 0.0),
            Point::new(2.0, 0.0),
            Point::new(2.0, 1.0),
            Point::new(1.0, 1.0),
            Point::new(1.0, 2.0),
            Point::new(0.0, 2.0),
        ]);
        assert!(l.contains(&Point::new(0.5, 1.5)));
        assert!(l.contains(&Point::new(1.5, 0.5)));
        assert!(!l.contains(&Point::new(1.5, 1.5))); // inside notch
    }

    #[test]
    fn area_of_square_and_triangle() {
        assert!((unit_square().area() - 1.0).abs() < 1e-6);
        let t = Polygon::new(vec![
            Point::new(0.0, 0.0),
            Point::new(4.0, 0.0),
            Point::new(0.0, 3.0),
        ]);
        assert!((t.area() - 6.0).abs() < 1e-6);
    }

    #[test]
    fn bounds_covers_vertices() {
        let t = Polygon::new(vec![
            Point::new(-1.0, 2.0),
            Point::new(4.0, 0.0),
            Point::new(0.0, 5.0),
        ]);
        assert_eq!(t.bounds(), Rect::from_corners(-1.0, 0.0, 4.0, 5.0));
    }
}
