//! DBSCAN clustering over an arbitrary distance function.
//!
//! Used in §3.4 to cluster training-set tracks by their spatial paths so
//! that track refinement can look up similar historical tracks quickly.

/// DBSCAN parameters.
#[derive(Debug, Clone, Copy)]
pub struct DbscanParams {
    /// Neighborhood radius.
    pub eps: f32,
    /// Minimum number of points (including the point itself) for a core
    /// point.
    pub min_pts: usize,
}

impl Default for DbscanParams {
    fn default() -> Self {
        DbscanParams {
            eps: 50.0,
            min_pts: 2,
        }
    }
}

/// Result of DBSCAN: `labels[i]` is `Some(cluster_id)` or `None` for noise.
#[derive(Debug, Clone)]
pub struct DbscanResult {
    /// Cluster id per item, `None` for noise.
    pub labels: Vec<Option<usize>>,
    /// Number of clusters found.
    pub num_clusters: usize,
}

impl DbscanResult {
    /// Group item indices by cluster id.
    pub fn clusters(&self) -> Vec<Vec<usize>> {
        let mut out = vec![Vec::new(); self.num_clusters];
        for (i, l) in self.labels.iter().enumerate() {
            if let Some(c) = l {
                out[*c].push(i);
            }
        }
        out
    }

    /// Indices labelled as noise.
    pub fn noise(&self) -> Vec<usize> {
        self.labels
            .iter()
            .enumerate()
            .filter(|(_, l)| l.is_none())
            .map(|(i, _)| i)
            .collect()
    }
}

/// Run DBSCAN on `n` items with pairwise distance `dist(i, j)`.
///
/// O(n²) distance evaluations; the caller is expected to keep `n` modest
/// (the paper clusters ~hundreds to thousands of training tracks once,
/// ahead of execution).
pub fn dbscan(
    n: usize,
    params: DbscanParams,
    mut dist: impl FnMut(usize, usize) -> f32,
) -> DbscanResult {
    const UNVISITED: usize = usize::MAX;
    const NOISE: usize = usize::MAX - 1;
    let mut label = vec![UNVISITED; n];
    let mut num_clusters = 0;

    // Precompute neighborhoods. Symmetric, so evaluate each pair once.
    let mut neighbors: Vec<Vec<usize>> = vec![Vec::new(); n];
    for (i, nb) in neighbors.iter_mut().enumerate() {
        nb.push(i);
    }
    for i in 0..n {
        for j in (i + 1)..n {
            if dist(i, j) <= params.eps {
                neighbors[i].push(j);
                neighbors[j].push(i);
            }
        }
    }

    for i in 0..n {
        if label[i] != UNVISITED {
            continue;
        }
        if neighbors[i].len() < params.min_pts {
            label[i] = NOISE;
            continue;
        }
        let cluster = num_clusters;
        num_clusters += 1;
        label[i] = cluster;
        // Expand cluster via BFS over density-reachable points.
        let mut queue: Vec<usize> = neighbors[i].clone();
        let mut qi = 0;
        while qi < queue.len() {
            let q = queue[qi];
            qi += 1;
            if label[q] == NOISE {
                label[q] = cluster; // border point
            }
            if label[q] != UNVISITED {
                continue;
            }
            label[q] = cluster;
            if neighbors[q].len() >= params.min_pts {
                queue.extend_from_slice(&neighbors[q]);
            }
        }
    }

    let labels = label
        .into_iter()
        .map(|l| {
            if l == NOISE || l == UNVISITED {
                None
            } else {
                Some(l)
            }
        })
        .collect();
    DbscanResult {
        labels,
        num_clusters,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Point;

    fn run_points(pts: &[Point], eps: f32, min_pts: usize) -> DbscanResult {
        dbscan(pts.len(), DbscanParams { eps, min_pts }, |i, j| {
            pts[i].dist(&pts[j])
        })
    }

    #[test]
    fn two_well_separated_blobs() {
        let mut pts = Vec::new();
        for i in 0..5 {
            pts.push(Point::new(i as f32 * 0.1, 0.0));
        }
        for i in 0..5 {
            pts.push(Point::new(100.0 + i as f32 * 0.1, 0.0));
        }
        let r = run_points(&pts, 1.0, 3);
        assert_eq!(r.num_clusters, 2);
        let clusters = r.clusters();
        assert_eq!(clusters[0].len(), 5);
        assert_eq!(clusters[1].len(), 5);
        assert!(r.noise().is_empty());
    }

    #[test]
    fn isolated_point_is_noise() {
        let pts = vec![
            Point::new(0.0, 0.0),
            Point::new(0.1, 0.0),
            Point::new(0.2, 0.0),
            Point::new(500.0, 500.0),
        ];
        let r = run_points(&pts, 1.0, 2);
        assert_eq!(r.num_clusters, 1);
        assert_eq!(r.noise(), vec![3]);
    }

    #[test]
    fn chain_is_one_cluster() {
        // Points spaced 1 apart with eps=1.5 chain into a single cluster.
        let pts: Vec<Point> = (0..10).map(|i| Point::new(i as f32, 0.0)).collect();
        let r = run_points(&pts, 1.5, 2);
        assert_eq!(r.num_clusters, 1);
        assert_eq!(r.clusters()[0].len(), 10);
    }

    #[test]
    fn min_pts_too_high_marks_all_noise() {
        let pts: Vec<Point> = (0..4).map(|i| Point::new(i as f32 * 100.0, 0.0)).collect();
        let r = run_points(&pts, 1.0, 2);
        assert_eq!(r.num_clusters, 0);
        assert_eq!(r.noise().len(), 4);
    }

    #[test]
    fn empty_input() {
        let r = run_points(&[], 1.0, 2);
        assert_eq!(r.num_clusters, 0);
        assert!(r.labels.is_empty());
    }

    #[test]
    fn border_point_joins_cluster() {
        // Dense core of 3 points plus one border point within eps of the
        // core but with too few neighbors to be core itself.
        let pts = vec![
            Point::new(0.0, 0.0),
            Point::new(0.5, 0.0),
            Point::new(0.0, 0.5),
            Point::new(1.3, 0.0), // neighbor only of index 1
        ];
        let r = run_points(&pts, 1.0, 3);
        assert_eq!(r.num_clusters, 1);
        assert_eq!(r.labels[3], Some(0));
    }
}
