//! The engine's per-run checkpoint journal — resumable ingest.
//!
//! A journaled run owns a *run directory*:
//!
//! ```text
//! run/
//!   manifest.json         # run identity: config/dataset fingerprints + knobs
//!   journal.log           # append-only, checksummed ClipRecord lines
//!   clips/clip_<id>.json  # Vec<Track>: the clip's extracted tracks
//! ```
//!
//! Every clip that completes is *checkpointed*: its track payload is
//! written via tmp + fsync + atomic rename into `clips/`, and only then
//! is one checksummed [`ClipRecord`] line appended to `journal.log` —
//! the append is the acknowledgement point, exactly the discipline of
//! `otif-serve::journal` (and the same `<16-hex FNV-1a> <JSON>\n` line
//! format). Because the payload is in place before its record is
//! durable, every valid journal record refers to a recoverable payload.
//!
//! Unlike the store's ingest journal, run-journal records are keyed by
//! **clip index**, not by a dense id sequence: the track stages of
//! different streams checkpoint concurrently, so append *order* is
//! nondeterministic run to run. [`replay`] is therefore
//! order-insensitive and duplicate-tolerant — the first valid record
//! per clip wins — and a corrupt mid-journal line invalidates only
//! itself (each line carries its own checksum), never the suffix.
//!
//! Resume determinism: a [`ClipRecord`] carries everything the engine
//! needs to *ghost-replay* the clip without recomputing it — the final
//! per-component ledger totals and the per-frame charge deltas as exact
//! `f64` bit patterns, the detector window sizes per frame (what the
//! cross-stream batcher rounds are a function of), and the surrogate
//! digest. Re-charging recorded per-frame deltas would not reproduce
//! ledger bits (IEEE addition does not round-trip through deltas), so
//! the scheduler instead charges each recorded component *total* once
//! ([`otif_cv::CostLedger::charge_slice_bits`]) and pre-populates the
//! clip's timeline with the recorded delta bits — the downstream
//! absorb/replay then see bit-identical `f64`s in the identical order
//! an uninterrupted run produces.

use crate::timeline::ClipTimeline;
use otif_core::fnv1a;
use otif_cv::{Component, CostLedger};
use otif_track::Track;
use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::io::{self, Write as _};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// File name of the run journal inside a run directory.
pub const RUN_JOURNAL_FILE: &str = "journal.log";
/// File name of the run manifest inside a run directory.
pub const RUN_MANIFEST_FILE: &str = "manifest.json";
/// Subdirectory holding checkpointed track payloads.
pub const RUN_CLIPS_DIR: &str = "clips";

/// The run directory's filesystem seam. A minimal mirror of
/// `otif-serve`'s `StoreIo` (the engine cannot depend on the serving
/// tier); the chaos bench adapts the serve tier's `FaultyIo` onto this
/// trait to reuse its deterministic `(operation, ordinal)` fault plans.
pub trait RunIo: Send + Sync {
    /// Read a whole file.
    fn read(&self, path: &Path) -> io::Result<Vec<u8>>;
    /// Create/truncate `path`, write `bytes`, fsync.
    fn write(&self, path: &Path, bytes: &[u8]) -> io::Result<()>;
    /// Atomically rename `from` to `to`.
    fn rename(&self, from: &Path, to: &Path) -> io::Result<()>;
    /// Append `bytes` to `path` (creating it if needed), fsync.
    fn append(&self, path: &Path, bytes: &[u8]) -> io::Result<()>;
    /// Create a directory and all parents.
    fn create_dir_all(&self, path: &Path) -> io::Result<()>;
    /// Whether `path` exists.
    fn exists(&self, path: &Path) -> bool;
}

/// The production [`RunIo`]: real filesystem, durable writes (fsync
/// after write/append) and atomic renames.
#[derive(Debug, Default)]
pub struct RealRunIo;

impl RunIo for RealRunIo {
    fn read(&self, path: &Path) -> io::Result<Vec<u8>> {
        std::fs::read(path)
    }

    fn write(&self, path: &Path, bytes: &[u8]) -> io::Result<()> {
        let mut f = std::fs::File::create(path)?;
        f.write_all(bytes)?;
        f.sync_all()
    }

    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        std::fs::rename(from, to)
    }

    fn append(&self, path: &Path, bytes: &[u8]) -> io::Result<()> {
        let mut f = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)?;
        f.write_all(bytes)?;
        f.sync_all()
    }

    fn create_dir_all(&self, path: &Path) -> io::Result<()> {
        std::fs::create_dir_all(path)
    }

    fn exists(&self, path: &Path) -> bool {
        path.exists()
    }
}

/// Run identity, persisted as `manifest.json`. A resume must present a
/// bitwise-equal manifest: everything listed here shapes either the
/// per-clip results, the ledger bits, or the batcher rounds — resuming
/// under different knobs would silently produce a Frankenstein run.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RunManifest {
    /// Journal format version.
    pub version: u32,
    /// FNV-1a over the serialized `OtifConfig`, `CostModel` and the
    /// detector seed — everything that shapes per-clip results and
    /// charges.
    pub config_fingerprint: u64,
    /// FNV-1a over the clip list's identity (count plus per-clip id,
    /// seed, frame count and scene dimensions).
    pub dataset_fingerprint: u64,
    /// Number of clips in the run.
    pub clips: usize,
    /// Stream count (fixes the round-robin assignment and the batcher
    /// watermark, hence the launch charges).
    pub streams: usize,
    /// Admitted-stream cap (fixes which streams batch together, hence
    /// the round sequence). Unlimited runs store the resolved value
    /// (`streams` — every stream admitted).
    pub max_active_streams: usize,
    /// Batcher chunk bound (fixes round chunking, hence launch charges).
    pub max_batch: usize,
    /// Decode prefetch window (fixes the reported makespan/stalls).
    pub prefetch_frames: usize,
    /// Detector execution mode label (fixes whether digests are folded).
    pub detector_exec: String,
}

/// Per-frame recording inside a [`ClipRecord`]. All simulated-seconds
/// fields are exact `f64` bit patterns (`f64::to_bits`), so a resumed
/// run replays them without any floating-point round trip.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FrameRecord {
    /// Decode charge delta bits.
    pub decode: u64,
    /// Window-selection charge delta bits.
    pub window: u64,
    /// Detector pixel charge bits; `None` for frames with no windows
    /// (they submitted no batcher ticket).
    pub detect_px: Option<u64>,
    /// Rounded detector window sizes — what the frame's batcher ticket
    /// carried; reproducing these reproduces the round chunking.
    pub sizes: Vec<(u32, u32)>,
    /// Tracker step charge delta bits.
    pub track: u64,
}

/// One checkpointed clip: everything needed to skip recomputation on
/// resume while keeping the final ledgers, stats, rounds and digests
/// bitwise identical to an uninterrupted run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClipRecord {
    /// Global clip index within the run.
    pub clip: usize,
    /// FNV-1a over the serialized track payload in `clips/`; verified
    /// on resume — a mismatch drops the record and recomputes the clip.
    pub fingerprint: u64,
    /// Final per-component ledger totals as `(component, f64 bits)`.
    pub ledger: Vec<(Component, u64)>,
    /// Per-frame recordings in sampled-frame ordinal order. Empty for
    /// clips that completed via the sequential retry path (`retried`).
    pub frames: Vec<FrameRecord>,
    /// Clip finalization charge delta bits.
    pub finalize: u64,
    /// The clip's surrogate detector digest (0 when execution is off).
    pub detect_digest: u64,
    /// Whether the clip completed through the sequential retry path
    /// (after an in-stream failure) rather than in-stream. Retried
    /// clips carry no frame recordings and are resumed without
    /// streaming.
    pub retried: bool,
    /// Retry attempts this clip consumed (0 unless `retried`).
    pub retry_attempts: u64,
    /// Virtual retry backoff seconds this clip accrued, as bits.
    pub retry_backoff: u64,
}

impl ClipRecord {
    /// Reconstruct the clip's [`ClipTimeline`] from the recorded bits —
    /// what the scheduler pre-populates before spawning ghost stages.
    pub(crate) fn timeline(&self) -> ClipTimeline {
        ClipTimeline {
            decode: self
                .frames
                .iter()
                .map(|f| f64::from_bits(f.decode))
                .collect(),
            window: self
                .frames
                .iter()
                .map(|f| f64::from_bits(f.window))
                .collect(),
            detect_px: self
                .frames
                .iter()
                .map(|f| f.detect_px.map(f64::from_bits))
                .collect(),
            sizes: self.frames.iter().map(|f| f.sizes.clone()).collect(),
            track: self
                .frames
                .iter()
                .map(|f| f64::from_bits(f.track))
                .collect(),
            finalize: f64::from_bits(self.finalize),
            detect_digest: self.detect_digest,
        }
    }
}

/// Encode one journal record (checksum + body + newline) — the same
/// line discipline as the store's ingest journal.
pub fn encode_record(record: &ClipRecord) -> io::Result<Vec<u8>> {
    let body = serde_json::to_string(record)
        .map_err(|e| io::Error::other(format!("run-journal encode: {e}")))?;
    Ok(format!("{:016x} {}\n", fnv1a(body.as_bytes()), body).into_bytes())
}

/// Decode one record line (without its newline) into a [`ClipRecord`].
fn decode_line(line: &str) -> Option<ClipRecord> {
    let (sum, body) = line.split_at_checked(16)?;
    let body = body.strip_prefix(' ')?;
    let sum = u64::from_str_radix(sum, 16).ok()?;
    if sum != fnv1a(body.as_bytes()) {
        return None;
    }
    serde_json::from_str(body).ok()
}

/// Outcome of replaying run-journal bytes.
#[derive(Debug, Default)]
pub struct RunReplay {
    /// First valid record per clip index, in clip order.
    pub records: BTreeMap<usize, ClipRecord>,
    /// Valid records that re-acknowledged an already-seen clip (their
    /// content is ignored — replay is idempotent).
    pub duplicates: usize,
    /// Whether the journal ends in crash debris (a final line that is
    /// unterminated or fails its checksum).
    pub torn_tail: bool,
    /// Complete, newline-terminated mid-journal lines that failed their
    /// checksum or did not parse. Each invalidates only itself: every
    /// line is independently checksummed, so later records stay
    /// trusted.
    pub invalid_records: usize,
}

impl RunReplay {
    /// Whether the journal is pristine: every byte belongs to a valid,
    /// non-duplicate record.
    pub fn clean(&self) -> bool {
        !self.torn_tail && self.invalid_records == 0
    }
}

/// Replay raw run-journal bytes: order-insensitive, duplicate-tolerant,
/// per-line checksummed. A bad *final* line (unterminated, or failing
/// its checksum) is a torn tail — expected crash debris; a bad line
/// with valid lines after it counts as one invalid record and is
/// skipped.
pub fn replay(bytes: &[u8]) -> RunReplay {
    let mut out = RunReplay::default();
    let mut pos = 0usize;
    while pos < bytes.len() {
        let rest = &bytes[pos..];
        let Some(nl) = rest.iter().position(|&b| b == b'\n') else {
            out.torn_tail = true; // unterminated final line: torn append
            break;
        };
        let line = &rest[..nl];
        let last = pos + nl + 1 >= bytes.len();
        pos += nl + 1;
        match std::str::from_utf8(line).ok().and_then(decode_line) {
            Some(record) => match out.records.entry(record.clip) {
                std::collections::btree_map::Entry::Vacant(slot) => {
                    slot.insert(record);
                }
                std::collections::btree_map::Entry::Occupied(_) => out.duplicates += 1,
            },
            None if last => out.torn_tail = true,
            None => out.invalid_records += 1,
        }
    }
    out
}

fn clip_file_name(id: usize) -> String {
    format!("clip_{id}.json")
}

/// A live run journal: the durable checkpoint sink of one engine run.
/// `checkpoint` is called concurrently by every stream's track stage;
/// an internal lock serializes the payload-rename + journal-append pair
/// so records stay line-atomic.
pub struct RunJournal {
    dir: PathBuf,
    io: Arc<dyn RunIo>,
    commit: Mutex<()>,
}

impl RunJournal {
    /// Create a fresh run directory at `dir` (manifest written
    /// atomically, journal created durably). An existing journal there
    /// is an error — resume it instead.
    pub fn create(
        dir: &Path,
        io: Arc<dyn RunIo>,
        manifest: &RunManifest,
    ) -> io::Result<RunJournal> {
        let journal_path = dir.join(RUN_JOURNAL_FILE);
        if io.exists(&journal_path) {
            return Err(io::Error::other(format!(
                "{} already exists; resume it with --resume instead",
                journal_path.display()
            )));
        }
        io.create_dir_all(&dir.join(RUN_CLIPS_DIR))?;
        let json = serde_json::to_string_pretty(manifest)
            .map_err(|e| io::Error::other(format!("manifest encode: {e}")))?;
        let tmp = dir.join(format!("{RUN_MANIFEST_FILE}.tmp"));
        io.write(&tmp, json.as_bytes())?;
        io.rename(&tmp, &dir.join(RUN_MANIFEST_FILE))?;
        io.append(&journal_path, b"")?;
        Ok(RunJournal {
            dir: dir.to_path_buf(),
            io,
            commit: Mutex::new(()),
        })
    }

    /// Open an existing run directory and replay its journal. The
    /// stored manifest must equal `expected` — a mismatch means the
    /// caller is resuming under different inputs or knobs, which would
    /// splice incompatible checkpoints into the run.
    pub fn open(
        dir: &Path,
        io: Arc<dyn RunIo>,
        expected: &RunManifest,
    ) -> io::Result<(RunJournal, RunReplay)> {
        let manifest_path = dir.join(RUN_MANIFEST_FILE);
        let bytes = self::read_or(&*io, &manifest_path, "run manifest")?;
        let text = std::str::from_utf8(&bytes)
            .map_err(|e| io::Error::other(format!("{}: {e}", manifest_path.display())))?;
        let stored: RunManifest = serde_json::from_str(text)
            .map_err(|e| io::Error::other(format!("{}: {e}", manifest_path.display())))?;
        if &stored != expected {
            return Err(io::Error::other(format!(
                "{}: run manifest does not match this invocation \
                 (stored {stored:?}, expected {expected:?}); a run can only be \
                 resumed with the same dataset, config and engine knobs",
                manifest_path.display()
            )));
        }
        let journal_path = dir.join(RUN_JOURNAL_FILE);
        let replayed = replay(&self::read_or(&*io, &journal_path, "run journal")?);
        Ok((
            RunJournal {
                dir: dir.to_path_buf(),
                io,
                commit: Mutex::new(()),
            },
            replayed,
        ))
    }

    /// Durably checkpoint one completed clip: payload tmp + fsync +
    /// rename into `clips/`, then the checksummed journal append — the
    /// acknowledgement point.
    pub fn checkpoint(&self, record: &ClipRecord, tracks_json: &str) -> io::Result<()> {
        let line = encode_record(record)?;
        let _serialize = self.commit.lock();
        let clips_dir = self.dir.join(RUN_CLIPS_DIR);
        let path = clips_dir.join(clip_file_name(record.clip));
        let tmp = clips_dir.join(format!("{}.tmp", clip_file_name(record.clip)));
        self.io.write(&tmp, tracks_json.as_bytes())?;
        self.io.rename(&tmp, &path)?;
        self.io.append(&self.dir.join(RUN_JOURNAL_FILE), &line)
    }

    /// Recover the resumable state for a run over `clips` clips: for
    /// every replayed record, read its payload, verify the FNV-1a
    /// fingerprint and parse the tracks. Records that are out of range,
    /// missing their payload, corrupt or unparsable are dropped — the
    /// engine simply recomputes those clips (self-healing), which can
    /// only restore, never change, the run's outputs.
    pub fn recover(
        &self,
        replayed: &RunReplay,
        clips: usize,
    ) -> Vec<Option<(ClipRecord, Vec<Track>)>> {
        let mut out: Vec<Option<(ClipRecord, Vec<Track>)>> = (0..clips).map(|_| None).collect();
        for (&idx, record) in &replayed.records {
            if idx >= clips {
                continue;
            }
            let path = self.dir.join(RUN_CLIPS_DIR).join(clip_file_name(idx));
            let Ok(bytes) = self.io.read(&path) else {
                continue;
            };
            if fnv1a(&bytes) != record.fingerprint {
                continue;
            }
            let Some(tracks) = std::str::from_utf8(&bytes)
                .ok()
                .and_then(|t| serde_json::from_str::<Vec<Track>>(t).ok())
            else {
                continue;
            };
            out[idx] = Some((record.clone(), tracks));
        }
        out
    }

    /// The run directory this journal writes into.
    pub fn dir(&self) -> &Path {
        &self.dir
    }
}

fn read_or(io: &dyn RunIo, path: &Path, what: &str) -> io::Result<Vec<u8>> {
    io.read(path)
        .map_err(|e| io::Error::other(format!("{what} {}: {e}", path.display())))
}

/// The engine-side checkpoint sink: wraps a [`RunJournal`] with
/// acknowledgement counters. A checkpoint failure must never fail the
/// clip — the run continues with its in-memory result and the clip is
/// simply not acknowledged (it will be recomputed on resume) — so
/// failures are counted, not propagated.
pub(crate) struct Checkpointer {
    journal: Arc<RunJournal>,
    pub acked: AtomicU64,
    pub ack_failures: AtomicU64,
}

impl Checkpointer {
    pub fn new(journal: Arc<RunJournal>) -> Checkpointer {
        Checkpointer {
            journal,
            acked: AtomicU64::new(0),
            ack_failures: AtomicU64::new(0),
        }
    }

    /// Build and durably write the [`ClipRecord`] for a completed clip.
    /// Called by the track stage at clip finalization (in-stream) or by
    /// the scheduler's retry loop (`retried`).
    #[allow(clippy::too_many_arguments)]
    pub fn checkpoint_clip(
        &self,
        clip: usize,
        tracks: &[Track],
        timeline: &ClipTimeline,
        ledger: &CostLedger,
        retried: bool,
        retry_attempts: u64,
        retry_backoff_seconds: f64,
    ) {
        let record = (|| -> io::Result<()> {
            let tracks_json = serde_json::to_string(tracks)
                .map_err(|e| io::Error::other(format!("track encode: {e}")))?;
            let frames: Vec<FrameRecord> = if retried {
                Vec::new()
            } else {
                (0..timeline.decode.len())
                    .map(|i| FrameRecord {
                        decode: timeline.decode[i].to_bits(),
                        window: timeline.window[i].to_bits(),
                        detect_px: timeline.detect_px[i].map(f64::to_bits),
                        sizes: timeline.sizes[i].clone(),
                        track: timeline.track[i].to_bits(),
                    })
                    .collect()
            };
            let record = ClipRecord {
                clip,
                fingerprint: fnv1a(tracks_json.as_bytes()),
                ledger: ledger.slice_bits(),
                frames,
                finalize: timeline.finalize.to_bits(),
                detect_digest: timeline.detect_digest,
                retried,
                retry_attempts,
                retry_backoff: retry_backoff_seconds.to_bits(),
            };
            self.journal.checkpoint(&record, &tracks_json)
        })();
        match record {
            Ok(()) => {
                self.acked.fetch_add(1, Ordering::Relaxed);
            }
            Err(_) => {
                self.ack_failures.fetch_add(1, Ordering::Relaxed);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn record(clip: usize) -> ClipRecord {
        ClipRecord {
            clip,
            fingerprint: 0xfeed_f00d ^ clip as u64,
            ledger: vec![
                (Component::Decode, (0.125f64 + clip as f64).to_bits()),
                (Component::Detector, (1.0f64 / 3.0).to_bits()),
            ],
            frames: vec![
                FrameRecord {
                    decode: 0.01f64.to_bits(),
                    window: 0.002f64.to_bits(),
                    detect_px: Some((0.4f64 / 7.0).to_bits()),
                    sizes: vec![(64, 64), (128, 96)],
                    track: 0.001f64.to_bits(),
                },
                FrameRecord {
                    decode: 0.01f64.to_bits(),
                    window: 0.002f64.to_bits(),
                    detect_px: None,
                    sizes: vec![],
                    track: 0.001f64.to_bits(),
                },
            ],
            finalize: 0.05f64.to_bits(),
            detect_digest: 0xabcd ^ clip as u64,
            retried: false,
            retry_attempts: 0,
            retry_backoff: 0.0f64.to_bits(),
        }
    }

    fn journal_bytes(clips: &[usize]) -> Vec<u8> {
        clips
            .iter()
            .flat_map(|&c| encode_record(&record(c)).unwrap())
            .collect()
    }

    #[test]
    fn round_trip_replays_all_records() {
        let bytes = journal_bytes(&[0, 1, 2]);
        let r = replay(&bytes);
        assert!(r.clean());
        assert_eq!(r.records.len(), 3);
        for (i, (k, rec)) in r.records.iter().enumerate() {
            assert_eq!(*k, i);
            assert_eq!(rec, &record(i));
        }
    }

    #[test]
    fn replay_is_order_insensitive_and_duplicate_tolerant() {
        let shuffled = journal_bytes(&[2, 0, 1, 0, 2]);
        let r = replay(&shuffled);
        assert!(r.clean());
        assert_eq!(r.duplicates, 2);
        assert_eq!(r.records.keys().copied().collect::<Vec<_>>(), vec![0, 1, 2]);
        assert_eq!(r.records[&1], record(1));
    }

    #[test]
    fn torn_tail_is_detected_and_ignored() {
        let mut bytes = journal_bytes(&[0, 1]);
        let extra = encode_record(&record(2)).unwrap();
        bytes.extend_from_slice(&extra[..extra.len() / 2]);
        let r = replay(&bytes);
        assert!(r.torn_tail);
        assert_eq!(r.invalid_records, 0);
        assert_eq!(r.records.len(), 2);
    }

    #[test]
    fn corrupt_mid_journal_record_invalidates_only_itself() {
        let mut bytes = journal_bytes(&[0]);
        let rec0 = bytes.len();
        bytes.extend(encode_record(&record(1)).unwrap());
        bytes[rec0 + 20] ^= 0xff; // damage record 1's line
        bytes.extend(encode_record(&record(2)).unwrap());
        let r = replay(&bytes);
        assert!(!r.clean());
        assert_eq!(r.invalid_records, 1);
        assert!(!r.torn_tail);
        // clip-keyed records after the damage stay trusted
        assert_eq!(
            r.records.keys().copied().collect::<Vec<_>>(),
            vec![0, 2],
            "record 2 survives record 1's corruption"
        );
    }

    #[test]
    fn create_checkpoint_open_recover_round_trip() {
        let dir = std::env::temp_dir().join(format!("otif-runjournal-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let io: Arc<dyn RunIo> = Arc::new(RealRunIo);
        let manifest = RunManifest {
            version: 1,
            config_fingerprint: 11,
            dataset_fingerprint: 22,
            clips: 3,
            streams: 2,
            max_active_streams: 2,
            max_batch: 16,
            prefetch_frames: 16,
            detector_exec: "off".to_string(),
        };
        let journal = RunJournal::create(&dir, Arc::clone(&io), &manifest).unwrap();
        // creating over an existing journal is refused
        assert!(RunJournal::create(&dir, Arc::clone(&io), &manifest).is_err());
        let tracks: Vec<Track> = Vec::new();
        let tracks_json = serde_json::to_string(&tracks).unwrap();
        let mut rec = record(1);
        rec.fingerprint = fnv1a(tracks_json.as_bytes());
        journal.checkpoint(&rec, &tracks_json).unwrap();

        // manifest mismatch is refused
        let other = RunManifest {
            streams: 4,
            ..manifest.clone()
        };
        assert!(RunJournal::open(&dir, Arc::clone(&io), &other).is_err());

        let (journal, replayed) = RunJournal::open(&dir, Arc::clone(&io), &manifest).unwrap();
        assert!(replayed.clean());
        let recovered = journal.recover(&replayed, 3);
        assert!(recovered[0].is_none());
        assert!(recovered[2].is_none());
        let (got, got_tracks) = recovered[1].as_ref().unwrap();
        assert_eq!(got, &rec);
        assert!(got_tracks.is_empty());

        // a tampered payload self-heals by dropping the record
        std::fs::write(dir.join(RUN_CLIPS_DIR).join("clip_1.json"), b"[1]").unwrap();
        let recovered = journal.recover(&replayed, 3);
        assert!(recovered[1].is_none(), "fingerprint mismatch drops record");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn timeline_reconstruction_is_bit_exact() {
        let rec = record(0);
        let t = rec.timeline();
        assert_eq!(t.decode.len(), 2);
        assert_eq!(t.decode[0].to_bits(), 0.01f64.to_bits());
        assert_eq!(t.detect_px[0].unwrap().to_bits(), (0.4f64 / 7.0).to_bits());
        assert_eq!(t.detect_px[1], None);
        assert_eq!(t.sizes[0], vec![(64, 64), (128, 96)]);
        assert_eq!(t.finalize.to_bits(), 0.05f64.to_bits());
        assert_eq!(t.detect_digest, rec.detect_digest);
    }

    proptest! {
        // Property (satellite): replay is idempotent and
        // order-insensitive for completed clips, under duplicates,
        // arbitrary interleavings and torn tails — the recovered
        // record *set* depends only on which clips were acknowledged.
        #[test]
        fn replay_depends_only_on_the_acknowledged_set(
            order in proptest::collection::vec(0usize..6, 1..18),
            torn_cut in 1usize..40,
            torn_flag in 0usize..2,
        ) {
            let torn = torn_flag == 1;
            let mut bytes = journal_bytes(&order);
            if torn {
                // torn tail: append a half-written record
                let extra = encode_record(&record(7)).unwrap();
                bytes.extend_from_slice(&extra[..torn_cut.min(extra.len() - 1)]);
            }
            let r = replay(&bytes);
            prop_assert_eq!(r.torn_tail, torn);
            prop_assert_eq!(r.invalid_records, 0);
            // the recovered set is exactly the set of clips appended,
            // regardless of order and duplication
            let mut expected: Vec<usize> = order.clone();
            expected.sort_unstable();
            expected.dedup();
            prop_assert_eq!(
                r.records.keys().copied().collect::<Vec<_>>(),
                expected
            );
            // every surviving record is bit-identical to what was
            // appended for that clip (first-wins over duplicates of
            // identical content)
            for (k, rec) in &r.records {
                prop_assert_eq!(rec, &record(*k));
            }
            // idempotence: replaying a journal rebuilt from the
            // recovered records yields the same set
            let rebuilt: Vec<u8> = r
                .records
                .values()
                .flat_map(|rec| encode_record(rec).unwrap())
                .collect();
            let r2 = replay(&rebuilt);
            prop_assert!(r2.clean());
            prop_assert_eq!(r2.records, r.records);
        }
    }
}
