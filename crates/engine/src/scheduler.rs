//! Engine orchestration: clip assignment, supervised stage threads,
//! channels, fault handling, retry and stats collection.
//!
//! [`Engine::run`] assigns clips round-robin to `streams` streams and
//! gives each stream four threads (decode, window, detect, track)
//! connected by bounded channels, so a slow stage exerts backpressure
//! on everything upstream instead of buffering unboundedly. The detect
//! stages of all streams share one [`DetectorBatcher`], which is the
//! only cross-stream coupling; everything else is per-stream and
//! therefore produces the exact per-clip output of the sequential
//! [`Pipeline`](otif_core::Pipeline).
//!
//! Fault tolerance (supervision tree):
//!
//! ```text
//! Engine::run
//! ├─ stream 0: supervise(decode) ─ supervise(window) ─ supervise(detect) ─ supervise(track)
//! ├─ stream 1: …
//! └─ retry: sequential Pipeline over recoverably-failed clips
//! ```
//!
//! Every stage thread runs under [`supervise`]: a panic is captured on
//! the health board and the unwind drops the stage's channel endpoints
//! and `StreamGuard`, so sibling streams keep draining. Each clip
//! charges into a private ledger; failed clips' charges are discarded
//! (reported as `wasted_seconds`), which keeps the surviving clips'
//! accounting identical to a fault-free run. `Engine::run` never
//! panics on a failed clip — it reports a [`ClipOutcome::Failed`] and
//! per-stream status in [`EngineStats`], and re-runs recoverably
//! failed clips once through the sequential pipeline.

use crate::batcher::{DetectorBatcher, RoundRecord, StreamGuard};
use crate::exec::{DetectorExec, DetectorExecHarness};
use crate::fault::{supervise, FaultPlan, HealthBoard, StageName};
use crate::stage::{decode_stage, detect_stage, track_stage, window_stage, StageCtx};
use crate::stats::{EngineCounters, EngineStats, FailedClip, StreamStatus};
use crate::timeline::{self, ClipTimeline};
use crossbeam::channel::bounded;
use otif_core::config::OtifConfig;
use otif_core::pipeline::ExecutionContext;
use otif_core::{fold_digest, Pipeline, WindowNet, DIGEST_SEED};
use otif_cv::{Component, CostLedger};
use otif_sim::Clip;
use otif_track::Track;
use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// Tunables for an engine run.
#[derive(Debug, Clone)]
pub struct EngineOptions {
    /// Number of concurrent streams (clamped to the clip count, min 1).
    pub streams: usize,
    /// Capacity of each inter-stage channel; bounds frames in flight
    /// per stream and provides backpressure.
    pub channel_capacity: usize,
    /// Decode-ahead window per stream (clamped to ≥ 1): frame `j` may
    /// be decoded as soon as frame `j - prefetch_frames` has left the
    /// pipeline, instead of rendezvousing with the tracker each frame.
    /// Sizes the decode→window channel (`max(channel_capacity,
    /// prefetch_frames)`) and gates the pipelined virtual-time model:
    /// `1` reproduces the serial rendezvous, larger windows let decode
    /// run ahead of the detector. Charges are unaffected — only the
    /// reported makespan and stalls change.
    pub prefetch_frames: usize,
    /// Maximum windows per batched detector invocation.
    pub max_batch: usize,
    /// Deterministic fault-injection schedule (empty: no faults).
    pub faults: FaultPlan,
    /// Skip the sequential retry of recoverably-failed clips.
    pub no_retry: bool,
    /// Retry budget per recoverably-failed clip: at most this many
    /// sequential re-runs (0 behaves like `no_retry`).
    pub retry_attempts: usize,
    /// Base of the deterministic retry backoff schedule: attempt `k`
    /// (0-based) schedules `retry_backoff_base * 2^k` *virtual* seconds
    /// before re-running — accounted in `EngineStats` and the makespan,
    /// never slept, never charged to the cost ledger.
    pub retry_backoff_base: f64,
    /// How to execute the surrogate detector forward pass ([`Off`]
    /// runs no surrogate at all — the historical behaviour).
    ///
    /// [`Off`]: DetectorExec::Off
    pub detector_exec: DetectorExec,
}

impl Default for EngineOptions {
    fn default() -> Self {
        Self::new()
    }
}

impl EngineOptions {
    /// The default tunables (2 streams, capacity-4 channels, a
    /// 16-frame decode prefetch window, batches of up to 16 windows,
    /// no faults, a 3-attempt retry budget with 50 ms backoff base).
    pub fn new() -> Self {
        EngineOptions {
            streams: 2,
            channel_capacity: 4,
            prefetch_frames: 16,
            max_batch: 16,
            faults: FaultPlan::none(),
            no_retry: false,
            retry_attempts: 3,
            retry_backoff_base: 0.05,
            detector_exec: DetectorExec::Off,
        }
    }

    /// `new()` with a different stream count.
    pub fn with_streams(streams: usize) -> Self {
        EngineOptions {
            streams,
            ..EngineOptions::new()
        }
    }
}

/// The deterministic retry backoff schedule: attempt `attempt`
/// (0-based) waits `base * 2^attempt` virtual seconds. Pure — the same
/// (base, attempt) always yields the same delay, so retry accounting is
/// reproducible run-to-run.
pub fn retry_backoff(base: f64, attempt: u32) -> f64 {
    base * f64::from(2u32.saturating_pow(attempt))
}

/// The result of one clip in an engine run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum ClipOutcome {
    /// The clip completed (in-stream or via the sequential retry).
    Ok(Vec<Track>),
    /// The clip failed and was not recovered.
    Failed {
        /// Stage the failure is attributed to.
        stage: StageName,
        /// Failure description (injected reason or panic payload).
        reason: String,
    },
}

impl ClipOutcome {
    /// The extracted tracks, if the clip completed.
    pub fn tracks(&self) -> Option<&[Track]> {
        match self {
            ClipOutcome::Ok(tracks) => Some(tracks),
            ClipOutcome::Failed { .. } => None,
        }
    }

    /// Whether the clip completed.
    pub fn is_ok(&self) -> bool {
        matches!(self, ClipOutcome::Ok(_))
    }
}

/// The result of an engine run: per-clip outcomes (in input clip
/// order) plus run statistics.
pub struct EngineRun {
    /// Per-clip outcome, indexed like the input clip slice.
    pub tracks: Vec<ClipOutcome>,
    /// Counters, queue depths, batch occupancy, health and simulated
    /// seconds.
    pub stats: EngineStats,
    /// The batcher's flush log in round order — which frames each
    /// cross-stream detector round coalesced. Round contents are a
    /// pure function of the per-stream submission sequences.
    pub rounds: Vec<RoundRecord>,
}

impl EngineRun {
    /// Unwrap every outcome into its tracks, panicking with the first
    /// failure if any clip failed. For callers (benches, determinism
    /// tests) that run without fault injection and treat a failure as
    /// a harness bug.
    pub fn expect_tracks(self) -> Vec<Vec<Track>> {
        self.tracks
            .into_iter()
            .enumerate()
            .map(|(i, outcome)| match outcome {
                ClipOutcome::Ok(tracks) => tracks,
                ClipOutcome::Failed { stage, reason } => {
                    panic!("clip {i} failed in {stage}: {reason}")
                }
            })
            .collect()
    }

    /// `(clip index, stage, reason)` of every unrecovered failure.
    pub fn failures(&self) -> Vec<(usize, StageName, &str)> {
        self.tracks
            .iter()
            .enumerate()
            .filter_map(|(i, o)| match o {
                ClipOutcome::Ok(_) => None,
                ClipOutcome::Failed { stage, reason } => Some((i, *stage, reason.as_str())),
            })
            .collect()
    }
}

/// The multi-stream streaming executor.
pub struct Engine;

impl Engine {
    /// Process `clips` with `opts.streams` concurrent streams, charging
    /// all simulated cost into `ledger`.
    ///
    /// Per-clip output is identical to
    /// `Pipeline::run_clip(config, ctx, clip, …)`; with one stream the
    /// charged cost is identical too, and with more streams only the
    /// detector launch overhead shrinks (shared batches).
    ///
    /// Never panics on stage failures: a panicking stage is isolated to
    /// its stream, a recoverable fault poisons only its clip (and is
    /// retried once through the sequential pipeline unless
    /// `opts.no_retry`), and every unfinished clip is reported as
    /// [`ClipOutcome::Failed`] with per-stream status in the stats.
    /// Only charges of clips that completed are folded into `ledger`
    /// (plus the shared batched launch overhead), so healthy clips'
    /// accounting is unaffected by faults elsewhere.
    pub fn run(
        config: &OtifConfig,
        ctx: &ExecutionContext,
        clips: &[Clip],
        opts: &EngineOptions,
        ledger: &CostLedger,
    ) -> EngineRun {
        let streams = opts.streams.min(clips.len()).max(1);
        let capacity = opts.channel_capacity.max(1);
        let prefetch = opts.prefetch_frames.max(1);
        // The decode stage's output channel is the prefetch buffer: it
        // must hold the whole decode-ahead budget, not just the default
        // backpressure capacity.
        let decode_capacity = capacity.max(prefetch);

        // Round-robin assignment keeps stream loads balanced without
        // knowing clip lengths: stream i gets clips i, i+streams, ….
        let assignments: Vec<Vec<(usize, &Clip)>> = (0..streams)
            .map(|s| clips.iter().enumerate().skip(s).step_by(streams).collect())
            .collect();

        // Cost accounting: every per-frame charge lands in the ledger
        // of its clip; only completed clips are absorbed into the run's
        // private ledger (in clip order — making the f64 sums
        // independent of thread interleaving), and the batcher's shared
        // launch overhead accrues in its own ledger.
        let inner = CostLedger::new();
        let clip_ledgers: Vec<CostLedger> = (0..clips.len()).map(|_| CostLedger::new()).collect();
        let timelines: Vec<Mutex<ClipTimeline>> = (0..clips.len())
            .map(|_| Mutex::new(ClipTimeline::default()))
            .collect();
        let launch = CostLedger::new();
        // The surrogate harness is shared by every stream (identical
        // weights, one set of wall-clock counters); the batcher holds
        // a reference only in batched mode, where its flushing thread
        // runs the forwards.
        let harness = (opts.detector_exec != DetectorExec::Off).then(|| {
            Arc::new(DetectorExecHarness::new(
                WindowNet::new(&config.detector, ctx.detector_seed),
                opts.detector_exec,
            ))
        });
        let mut batcher = DetectorBatcher::new(
            streams,
            config.detector.arch.per_call(),
            opts.max_batch,
            launch.clone(),
        );
        if opts.detector_exec == DetectorExec::Batched {
            if let Some(h) = &harness {
                batcher = batcher.with_exec(Arc::clone(h));
            }
        }
        let counters = EngineCounters::default();
        let health = HealthBoard::new(streams);
        let results: Mutex<Vec<Option<Vec<Track>>>> =
            Mutex::new((0..clips.len()).map(|_| None).collect());

        std::thread::scope(|scope| {
            for (s, assigned) in assignments.iter().enumerate() {
                let (dec_tx, dec_rx) = bounded(decode_capacity);
                let (win_tx, win_rx) = bounded(capacity);
                let (det_tx, det_rx) = bounded(capacity);
                let guard = StreamGuard::new(&batcher, s);
                let stage_ctx = StageCtx {
                    config,
                    exec: ctx,
                    clips: assigned,
                    counters: &counters,
                    clip_ledgers: &clip_ledgers,
                    timelines: &timelines,
                    faults: &opts.faults,
                    health: &health,
                    detector_exec: harness.as_deref(),
                };
                let (health, results) = (&health, &results);
                // Four supervised stage threads per stream: a panic in
                // any of them is captured, its channel endpoints (and
                // the detect stage's StreamGuard) drop on unwind, and
                // the sibling streams keep flowing.
                let c = stage_ctx;
                scope.spawn(move || {
                    supervise(StageName::Decode, s, health, || decode_stage(&c, dec_tx))
                });
                let c = stage_ctx;
                scope.spawn(move || {
                    supervise(StageName::Window, s, health, || {
                        window_stage(&c, dec_rx, win_tx)
                    })
                });
                let c = stage_ctx;
                scope.spawn(move || {
                    supervise(StageName::Detect, s, health, || {
                        detect_stage(&c, win_rx, det_tx, guard)
                    })
                });
                let c = stage_ctx;
                scope.spawn(move || {
                    supervise(StageName::Track, s, health, || {
                        track_stage(&c, det_rx, results)
                    })
                });
            }
        });

        // Outcomes: a clip either deposited tracks, or it failed —
        // attribute the failure (recorded per-clip error, else the
        // owning stream's panic) instead of panicking.
        let mut outcomes: Vec<ClipOutcome> = Vec::with_capacity(clips.len());
        let mut failures: Vec<FailedClip> = Vec::new();
        let mut wasted = 0.0f64;
        let mut retryable: Vec<usize> = Vec::new();
        // Clips that completed in-stream — the set the pipelined replay
        // covers (retried clips run sequentially afterwards; failed
        // clips' charges are discarded, so they shape neither the
        // ledger nor the makespan).
        let mut completed = vec![false; clips.len()];
        for (idx, slot) in results.into_inner().into_iter().enumerate() {
            let stream = idx % streams;
            match slot {
                Some(tracks) => {
                    completed[idx] = true;
                    inner.absorb(&clip_ledgers[idx]);
                    outcomes.push(ClipOutcome::Ok(tracks));
                }
                None => {
                    wasted += clip_ledgers[idx].total();
                    let (stage, reason, recoverable) = match health.failure_of(idx) {
                        Some(f) => (f.stage, f.reason, f.recoverable),
                        None => match health.panic_of(stream) {
                            Some(p) => (
                                p.stage,
                                format!("stream {stream} died: {}", p.reason),
                                false,
                            ),
                            None => (
                                StageName::Track,
                                "clip was never finalized".to_string(),
                                false,
                            ),
                        },
                    };
                    if recoverable && !opts.no_retry && opts.retry_attempts > 0 {
                        retryable.push(idx);
                    }
                    failures.push(FailedClip {
                        clip: idx,
                        stream,
                        stage,
                        reason: reason.clone(),
                        recovered: false,
                    });
                    outcomes.push(ClipOutcome::Failed { stage, reason });
                }
            }
        }

        // Absorb the shared batched launch overhead (and its occupancy
        // counters) after the per-clip charges: a fixed order keeps the
        // run's f64 sums deterministic.
        inner.absorb(&launch);

        // Pipelined virtual-time replay: recompute completion times of
        // the streaming portion from the recorded per-frame charges and
        // batcher rounds. Charges don't move — the ledger above is
        // already final — this only models *when* they complete.
        let rounds = batcher.round_log();
        let gap = config.gap.max(1);
        let frame_counts: Vec<usize> = clips.iter().map(|c| c.num_frames().div_ceil(gap)).collect();
        let assignment_idx: Vec<Vec<usize>> = assignments
            .iter()
            .map(|a| a.iter().map(|(i, _)| *i).collect())
            .collect();
        let replayed = timeline::replay(
            &assignment_idx,
            &completed,
            &frame_counts,
            &timelines,
            &rounds,
            prefetch,
        );

        // Failed-clip retry: clips that failed recoverably re-run
        // through the sequential pipeline under a bounded deterministic
        // backoff schedule — attempt k schedules retry_backoff_base*2^k
        // *virtual* seconds before running, accounted in the makespan
        // and the retry counters but never slept and never charged to
        // the ledger (sums stay bitwise identical). The sequential
        // fallback is infallible today, so each clip recovers on
        // attempt 0 and the rest of the `retry_attempts` budget stays
        // unused; charges land on the same ledger — one flaky clip
        // degrades throughput, not results. Retries run after the
        // streaming portion, so they extend the makespan serially.
        let mut retried = 0usize;
        let mut retry_attempts = 0u64;
        let mut retry_seconds = 0.0f64;
        let mut retry_backoff_seconds = 0.0f64;
        for idx in retryable {
            retry_backoff_seconds += retry_backoff(opts.retry_backoff_base, 0);
            retry_attempts += 1;
            let retry_ledger = CostLedger::new();
            let tracks = Pipeline::run_clip(config, ctx, &clips[idx], &retry_ledger);
            retry_seconds += retry_ledger.execution_total();
            inner.absorb(&retry_ledger);
            outcomes[idx] = ClipOutcome::Ok(tracks);
            if let Some(f) = failures.iter_mut().find(|f| f.clip == idx) {
                f.recovered = true;
            }
            retried += 1;
        }

        let mut stats = EngineStats::snapshot(streams, clips.len(), &counters, &inner);
        stats.execution_seconds = replayed.makespan + retry_seconds + retry_backoff_seconds;
        stats.retry_attempts = retry_attempts;
        stats.retry_backoff_seconds = retry_backoff_seconds;
        stats.prefetch_frames = prefetch;
        stats.stall_seconds = replayed.stalls;
        stats.pipeline_speedup = if stats.execution_seconds > 0.0 {
            stats.serial_seconds / stats.execution_seconds
        } else {
            1.0
        };
        stats.failed_clips = failures.len();
        stats.retried_clips = retried;
        stats.panics = health.panic_count();
        stats.wasted_seconds = wasted;
        stats.launch_seconds = launch.get(Component::Detector);
        stats.detector_exec = opts.detector_exec.as_str().to_string();
        if let Some(h) = &harness {
            stats.detector_wall_seconds = h.wall_seconds();
            stats.detector_forwards = h.forwards();
            stats.detector_exec_windows = h.windows();
            // Run digest: completed clips' surrogate digests folded in
            // clip order — the set and the per-clip values are
            // deterministic, so looped and batched runs (at any stream
            // count, under any fault plan) must agree exactly.
            let mut d = DIGEST_SEED;
            for (idx, done) in completed.iter().enumerate() {
                if *done {
                    d = fold_digest(d, timelines[idx].lock().detect_digest);
                }
            }
            stats.detector_digest = d;
        }
        stats.stream_status = (0..streams)
            .map(|s| {
                let assigned = assignments[s].len();
                let failed = failures.iter().filter(|f| f.stream == s).count();
                StreamStatus {
                    stream: s,
                    clips_assigned: assigned,
                    clips_completed: assigned - failed,
                    clips_failed: failed,
                    panicked: health.panic_of(s),
                }
            })
            .collect();
        stats.failures = failures;

        ledger.absorb(&inner);
        EngineRun {
            tracks: outcomes,
            stats,
            rounds,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use otif_core::config::TrackerKind;
    use otif_core::Pipeline;
    use otif_cv::{Component, CostModel, DetectorArch, DetectorConfig};
    use otif_sim::{DatasetConfig, DatasetKind};

    fn config() -> OtifConfig {
        OtifConfig {
            detector: DetectorConfig::new(DetectorArch::YoloV3, 0.5),
            proxy: None,
            gap: 4,
            tracker: TrackerKind::Sort,
            refine: false,
        }
    }

    fn clips() -> Vec<otif_sim::Clip> {
        DatasetConfig::small(DatasetKind::Caldot1, 71)
            .generate()
            .test
    }

    #[test]
    fn one_stream_matches_sequential_cost_exactly() {
        let cfg = config();
        let ctx = ExecutionContext::bare(CostModel::default(), 7);
        let clips = clips();

        let seq = CostLedger::new();
        let mut expected = Vec::new();
        for clip in &clips {
            expected.push(Pipeline::run_clip(&cfg, &ctx, clip, &seq));
        }

        let eng = CostLedger::new();
        let opts = EngineOptions::with_streams(1);
        let run = Engine::run(&cfg, &ctx, &clips, &opts, &eng);
        assert!(run.stats.healthy());

        let a = serde_json::to_string(&expected).unwrap();
        let b = serde_json::to_string(&run.expect_tracks()).unwrap();
        assert_eq!(a, b, "1-stream engine output must equal sequential");
        for c in [
            Component::Decode,
            Component::Proxy,
            Component::Detector,
            Component::Tracker,
            Component::Refinement,
        ] {
            assert!(
                (seq.get(c) - eng.get(c)).abs() < 1e-9,
                "{c:?}: sequential {} vs engine {}",
                seq.get(c),
                eng.get(c)
            );
        }
    }

    #[test]
    fn multi_stream_output_matches_and_detector_cost_drops() {
        let cfg = config();
        let ctx = ExecutionContext::bare(CostModel::default(), 7);
        let clips = clips();
        assert!(clips.len() >= 2, "need multiple clips for multi-stream");

        let seq = CostLedger::new();
        let mut expected = Vec::new();
        for clip in &clips {
            expected.push(Pipeline::run_clip(&cfg, &ctx, clip, &seq));
        }

        for streams in [2usize, 4] {
            let eng = CostLedger::new();
            let opts = EngineOptions::with_streams(streams);
            let run = Engine::run(&cfg, &ctx, &clips, &opts, &eng);
            let stats = run.stats.clone();
            let a = serde_json::to_string(&expected).unwrap();
            let b = serde_json::to_string(&run.expect_tracks()).unwrap();
            assert_eq!(a, b, "{streams}-stream output must equal sequential");
            assert!(
                eng.get(Component::Detector) < seq.get(Component::Detector),
                "{streams} streams must shrink detector cost via batching"
            );
            assert!(stats.mean_batch_occupancy > 1.0);
            assert_eq!(stats.streams, streams.min(clips.len()));
            // the detector split adds up: pixel charges + shared launches
            assert!(stats.launch_seconds > 0.0);
            assert!(stats.launch_seconds < stats.stage_seconds.detector);
            // every stream reports healthy completion status
            assert_eq!(stats.stream_status.len(), stats.streams);
            for st in &stats.stream_status {
                assert!(st.healthy(), "{st:?}");
                assert_eq!(st.clips_completed, st.clips_assigned);
            }
        }
    }

    #[test]
    fn stats_count_every_frame_and_drain_in_flight() {
        let cfg = config();
        let ctx = ExecutionContext::bare(CostModel::default(), 7);
        let clips = clips();
        let expected_frames: u64 = clips
            .iter()
            .map(|c| c.num_frames().div_ceil(cfg.gap) as u64)
            .sum();
        let run = Engine::run(
            &cfg,
            &ctx,
            &clips,
            &EngineOptions::new(),
            &CostLedger::new(),
        );
        assert_eq!(run.stats.frames, expected_frames);
        assert!(run.stats.max_frames_in_flight >= 1);
        // bounded channels cap the in-flight frames per stream: the
        // decode→window channel holds the prefetch budget, the other
        // two the backpressure capacity, plus one frame resident in
        // each consuming stage
        let opts = EngineOptions::new();
        let decode_cap = opts.channel_capacity.max(opts.prefetch_frames) as u64;
        let per_stream_cap = (decode_cap + 1) + 2 * (opts.channel_capacity as u64 + 1) + 1;
        assert!(run.stats.max_frames_in_flight <= run.stats.streams as u64 * per_stream_cap);
        assert!((run.stats.wasted_seconds - 0.0).abs() < 1e-15);
    }

    /// `prefetch_frames = 1` degenerates the pipelined model to the
    /// serial rendezvous: with a single stream the makespan equals the
    /// serial charge sum (same charges, different summation order).
    #[test]
    fn single_stream_prefetch_one_makespan_is_serial() {
        let cfg = config();
        let ctx = ExecutionContext::bare(CostModel::default(), 7);
        let clips = clips();
        let opts = EngineOptions {
            streams: 1,
            prefetch_frames: 1,
            ..EngineOptions::new()
        };
        let run = Engine::run(&cfg, &ctx, &clips, &opts, &CostLedger::new());
        let s = &run.stats;
        assert!(
            (s.execution_seconds - s.serial_seconds).abs() < 1e-9 * s.serial_seconds.max(1.0),
            "serial {} vs makespan {}",
            s.serial_seconds,
            s.execution_seconds
        );
        // fully serial: decode stalls on the rendezvous every frame
        assert!(s.stall_seconds.channel_backpressure > 0.0);
    }

    /// A deeper prefetch window strictly improves the makespan while
    /// leaving every ledger component bitwise unchanged.
    #[test]
    fn prefetch_overlaps_without_moving_charges() {
        let cfg = config();
        let ctx = ExecutionContext::bare(CostModel::default(), 7);
        let clips = clips();
        let run_at = |prefetch: usize| {
            let ledger = CostLedger::new();
            let opts = EngineOptions {
                streams: 4,
                prefetch_frames: prefetch,
                ..EngineOptions::new()
            };
            let run = Engine::run(&cfg, &ctx, &clips, &opts, &ledger);
            (run, ledger)
        };
        let (serial, serial_ledger) = run_at(1);
        let (deep, deep_ledger) = run_at(16);
        assert!(
            deep.stats.execution_seconds < serial.stats.execution_seconds,
            "prefetch=16 makespan {} must beat prefetch=1 {}",
            deep.stats.execution_seconds,
            serial.stats.execution_seconds
        );
        assert!(deep.stats.pipeline_speedup > serial.stats.pipeline_speedup);
        // serial sums and every component are bitwise identical
        assert_eq!(serial.stats.serial_seconds, deep.stats.serial_seconds);
        for c in [
            Component::Decode,
            Component::Proxy,
            Component::Detector,
            Component::Tracker,
            Component::Refinement,
        ] {
            assert_eq!(
                serial_ledger.get(c).to_bits(),
                deep_ledger.get(c).to_bits(),
                "{c:?} must be bitwise identical across prefetch settings"
            );
        }
        // and so are the round contents
        assert_eq!(serial.rounds, deep.rounds);
    }

    #[test]
    fn more_streams_than_clips_is_clamped() {
        let cfg = config();
        let ctx = ExecutionContext::bare(CostModel::default(), 7);
        let clips = clips();
        let opts = EngineOptions::with_streams(clips.len() + 50);
        let run = Engine::run(&cfg, &ctx, &clips, &opts, &CostLedger::new());
        assert_eq!(run.stats.streams, clips.len());
        assert_eq!(run.tracks.len(), clips.len());
    }
}
