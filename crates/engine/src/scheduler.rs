//! Engine orchestration: clip assignment, the fixed worker pool over
//! per-stream stage state machines, fault handling, retry and stats
//! collection.
//!
//! [`Engine::run`] assigns clips round-robin to `streams` streams and
//! gives each stream four resumable state machines (decode, window,
//! detect, track — [`crate::tasks`]) connected by bounded queue slots
//! ([`crate::slot`]), so a slow stage exerts backpressure on everything
//! upstream instead of buffering unboundedly. All `4 * streams` tasks
//! are polled by one fixed work-stealing worker pool
//! ([`otif_core::evalpool::TaskPool`]) of [`EngineOptions::workers`] OS
//! threads: a stage that would block parks without holding a thread,
//! so a thousand streams run on a handful of workers with bounded
//! memory. [`EngineOptions::max_active_streams`] adds admission
//! control — deferred streams park behind the batcher's admission gate
//! and are admitted (in stream order) as running streams finish. The
//! detect stages of all streams share one [`DetectorBatcher`], which is
//! the only cross-stream coupling; everything else is per-stream and
//! therefore produces the exact per-clip output of the sequential
//! [`Pipeline`](otif_core::Pipeline) — at any worker count.
//!
//! Fault tolerance (supervision tree, now per poll instead of per
//! thread):
//!
//! ```text
//! Engine::run — TaskPool(workers)
//! ├─ stream 0: Supervised(decode) ─ Supervised(window) ─ Supervised(detect) ─ Supervised(track)
//! ├─ stream 1: …
//! └─ retry: sequential Pipeline over recoverably-failed clips
//! ```
//!
//! Every stage task polls under the supervision shim
//! (`fault::supervise_poll`): a panic is captured on the health board
//! and the task retires, dropping its queue endpoints and
//! `StreamGuard`, so sibling streams keep draining. Each clip charges
//! into a private ledger; failed clips' charges are discarded (reported
//! as `wasted_seconds`), which keeps the surviving clips' accounting
//! identical to a fault-free run. `Engine::run` never panics on a
//! failed clip — it reports a [`ClipOutcome::Failed`] and per-stream
//! status in [`EngineStats`], and re-runs recoverably failed clips once
//! through the sequential pipeline.

use crate::batcher::{DetectorBatcher, RoundRecord, StreamGuard};
use crate::exec::{DetectorExec, DetectorExecHarness};
use crate::fault::{FaultPlan, HealthBoard, StageName};
use crate::journal::{Checkpointer, ClipRecord, RunJournal, RunManifest};
use crate::slot::SlotQueue;
use crate::stage::{GhostMode, StageCtx};
use crate::stats::{EngineCounters, EngineStats, FailedClip, StreamStatus};
use crate::tasks::{decode_task, detect_task, track_task, window_task};
use crate::timeline::{self, ClipTimeline};
use otif_core::config::OtifConfig;
use otif_core::evalpool::{PollTask, TaskPool};
use otif_core::pipeline::ExecutionContext;
use otif_core::{fnv1a, fold_digest, Pipeline, WindowNet, DIGEST_SEED};
use otif_cv::{Component, CostLedger};
use otif_sim::Clip;
use otif_track::Track;
use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use std::sync::Arc;
use std::time::Duration;

/// Tunables for an engine run.
#[derive(Debug, Clone)]
pub struct EngineOptions {
    /// Number of concurrent streams (clamped to the clip count, min 1).
    pub streams: usize,
    /// OS worker threads polling the stage tasks. `0` (the default)
    /// auto-sizes to the machine's available parallelism, capped at
    /// `4 * streams` (more workers than tasks is pure overhead). Any
    /// worker count produces bitwise-identical ledgers, rounds,
    /// timelines and digests — it only changes wall-clock speed.
    pub workers: usize,
    /// Admission control: at most this many streams run concurrently;
    /// the rest park until a running stream finishes its clips, and are
    /// admitted in stream-index order. `0` (the default) admits every
    /// stream immediately. Bounds batcher rounds (the flush watermark
    /// counts only admitted live streams) and per-run memory.
    pub max_active_streams: usize,
    /// Capacity of each inter-stage channel; bounds frames in flight
    /// per stream and provides backpressure.
    pub channel_capacity: usize,
    /// Decode-ahead window per stream (clamped to ≥ 1): frame `j` may
    /// be decoded as soon as frame `j - prefetch_frames` has left the
    /// pipeline, instead of rendezvousing with the tracker each frame.
    /// Sizes the decode→window channel (`max(channel_capacity,
    /// prefetch_frames)`) and gates the pipelined virtual-time model:
    /// `1` reproduces the serial rendezvous, larger windows let decode
    /// run ahead of the detector. Charges are unaffected — only the
    /// reported makespan and stalls change.
    pub prefetch_frames: usize,
    /// Maximum windows per batched detector invocation.
    pub max_batch: usize,
    /// Deterministic fault-injection schedule (empty: no faults).
    pub faults: FaultPlan,
    /// Skip the sequential retry of recoverably-failed clips.
    pub no_retry: bool,
    /// Retry budget per recoverably-failed clip: at most this many
    /// sequential re-runs (0 behaves like `no_retry`).
    pub retry_attempts: usize,
    /// Base of the deterministic retry backoff schedule: attempt `k`
    /// (0-based) schedules `retry_backoff_base * 2^k` *virtual* seconds
    /// before re-running — accounted in `EngineStats` and the makespan,
    /// never slept, never charged to the cost ledger.
    pub retry_backoff_base: f64,
    /// How to execute the surrogate detector forward pass ([`Off`]
    /// runs no surrogate at all — the historical behaviour).
    ///
    /// [`Off`]: DetectorExec::Off
    pub detector_exec: DetectorExec,
    /// Stage watchdog (wall-clock): how long a stage may stay blocked
    /// on a wedged channel send/recv or batcher rendezvous before the
    /// wedge is converted into a typed, recoverable stall failure and
    /// the stage exits (letting the stream's clips be healed by the
    /// sequential retry). `None` (the default) blocks indefinitely —
    /// the historical behaviour.
    pub stage_timeout: Option<Duration>,
}

impl Default for EngineOptions {
    fn default() -> Self {
        Self::new()
    }
}

impl EngineOptions {
    /// The default tunables (2 streams, capacity-4 channels, a
    /// 16-frame decode prefetch window, batches of up to 16 windows,
    /// no faults, a 3-attempt retry budget with 50 ms backoff base).
    pub fn new() -> Self {
        EngineOptions {
            streams: 2,
            workers: 0,
            max_active_streams: 0,
            channel_capacity: 4,
            prefetch_frames: 16,
            max_batch: 16,
            faults: FaultPlan::none(),
            no_retry: false,
            retry_attempts: 3,
            retry_backoff_base: 0.05,
            detector_exec: DetectorExec::Off,
            stage_timeout: None,
        }
    }

    /// `new()` with a different stream count.
    pub fn with_streams(streams: usize) -> Self {
        EngineOptions {
            streams,
            ..EngineOptions::new()
        }
    }
}

/// Resolve the worker-thread count for a run: an explicit request wins;
/// `0` auto-sizes to the machine's available parallelism, capped at
/// `4 * streams` (one task per stage per stream — extra workers would
/// only spin).
fn resolve_workers(requested: usize, streams: usize) -> usize {
    if requested > 0 {
        return requested;
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
        .min(4 * streams)
        .max(1)
}

/// Resolve the admitted-stream cap: `0` admits every stream; anything
/// else is clamped to `[1, streams]`. Part of the run identity — rounds
/// depend on which streams batch together — so it lands in the
/// [`RunManifest`].
fn resolve_max_active(requested: usize, streams: usize) -> usize {
    if requested == 0 {
        streams
    } else {
        requested.clamp(1, streams)
    }
}

/// The deterministic retry backoff schedule: attempt `attempt`
/// (0-based) waits `base * 2^attempt` virtual seconds. Pure — the same
/// (base, attempt) always yields the same delay, so retry accounting is
/// reproducible run-to-run.
pub fn retry_backoff(base: f64, attempt: u32) -> f64 {
    base * f64::from(2u32.saturating_pow(attempt))
}

/// The result of one clip in an engine run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum ClipOutcome {
    /// The clip completed (in-stream or via the sequential retry).
    Ok(Vec<Track>),
    /// The clip failed and was not recovered.
    Failed {
        /// Stage the failure is attributed to.
        stage: StageName,
        /// Failure description (injected reason or panic payload).
        reason: String,
    },
}

impl ClipOutcome {
    /// The extracted tracks, if the clip completed.
    pub fn tracks(&self) -> Option<&[Track]> {
        match self {
            ClipOutcome::Ok(tracks) => Some(tracks),
            ClipOutcome::Failed { .. } => None,
        }
    }

    /// Whether the clip completed.
    pub fn is_ok(&self) -> bool {
        matches!(self, ClipOutcome::Ok(_))
    }
}

/// The result of an engine run: per-clip outcomes (in input clip
/// order) plus run statistics.
pub struct EngineRun {
    /// Per-clip outcome, indexed like the input clip slice.
    pub tracks: Vec<ClipOutcome>,
    /// Counters, queue depths, batch occupancy, health and simulated
    /// seconds.
    pub stats: EngineStats,
    /// The batcher's flush log in round order — which frames each
    /// cross-stream detector round coalesced. Round contents are a
    /// pure function of the per-stream submission sequences.
    pub rounds: Vec<RoundRecord>,
}

impl EngineRun {
    /// Unwrap every outcome into its tracks, panicking with the first
    /// failure if any clip failed. For callers (benches, determinism
    /// tests) that run without fault injection and treat a failure as
    /// a harness bug.
    pub fn expect_tracks(self) -> Vec<Vec<Track>> {
        self.tracks
            .into_iter()
            .enumerate()
            .map(|(i, outcome)| match outcome {
                ClipOutcome::Ok(tracks) => tracks,
                ClipOutcome::Failed { stage, reason } => {
                    panic!("clip {i} failed in {stage}: {reason}")
                }
            })
            .collect()
    }

    /// `(clip index, stage, reason)` of every unrecovered failure.
    pub fn failures(&self) -> Vec<(usize, StageName, &str)> {
        self.tracks
            .iter()
            .enumerate()
            .filter_map(|(i, o)| match o {
                ClipOutcome::Ok(_) => None,
                ClipOutcome::Failed { stage, reason } => Some((i, *stage, reason.as_str())),
            })
            .collect()
    }
}

/// Build the [`RunManifest`] identifying an engine run: everything that
/// shapes per-clip results, ledger bits or batcher rounds. Resuming is
/// only valid against a bitwise-equal manifest.
pub fn run_manifest(
    config: &OtifConfig,
    ctx: &ExecutionContext,
    clips: &[Clip],
    opts: &EngineOptions,
) -> RunManifest {
    let config_json = serde_json::to_string(config).expect("config serializes");
    let cost_json = serde_json::to_string(&ctx.cost).expect("cost model serializes");
    let config_fingerprint =
        fnv1a(format!("{config_json}|{cost_json}|{}", ctx.detector_seed).as_bytes());
    let mut dataset = format!("{}", clips.len());
    for c in clips {
        dataset.push_str(&format!(
            "|{}:{}:{}:{}x{}",
            c.id,
            c.seed,
            c.num_frames(),
            c.scene.width,
            c.scene.height
        ));
    }
    let streams = opts.streams.min(clips.len()).max(1);
    RunManifest {
        version: 1,
        config_fingerprint,
        dataset_fingerprint: fnv1a(dataset.as_bytes()),
        clips: clips.len(),
        streams,
        max_active_streams: resolve_max_active(opts.max_active_streams, streams),
        max_batch: opts.max_batch,
        prefetch_frames: opts.prefetch_frames.max(1),
        detector_exec: opts.detector_exec.as_str().to_string(),
    }
}

/// A journaled run's durable state: the open [`RunJournal`] plus what a
/// resume recovered from it. Pass to [`Engine::run_with_session`] to
/// checkpoint completed clips (fresh or resumed) and ghost-replay the
/// recovered ones (resumed).
pub struct RunSession {
    journal: Arc<RunJournal>,
    recovered: Vec<Option<(ClipRecord, Vec<Track>)>>,
    resumed: bool,
}

impl RunSession {
    /// A fresh journaled run: every clip computes live and checkpoints.
    pub fn fresh(journal: Arc<RunJournal>) -> RunSession {
        RunSession {
            journal,
            recovered: Vec::new(),
            resumed: false,
        }
    }

    /// A resumed run: recovered clips (from [`RunJournal::recover`])
    /// ghost-replay; the rest compute live and checkpoint.
    pub fn resumed(
        journal: Arc<RunJournal>,
        recovered: Vec<Option<(ClipRecord, Vec<Track>)>>,
    ) -> RunSession {
        RunSession {
            journal,
            recovered,
            resumed: true,
        }
    }

    /// Number of clips this session recovered from the journal.
    pub fn recovered_clips(&self) -> usize {
        self.recovered.iter().filter(|r| r.is_some()).count()
    }
}

/// The multi-stream streaming executor.
pub struct Engine;

impl Engine {
    /// Process `clips` with `opts.streams` concurrent streams, charging
    /// all simulated cost into `ledger`.
    ///
    /// Per-clip output is identical to
    /// `Pipeline::run_clip(config, ctx, clip, …)`; with one stream the
    /// charged cost is identical too, and with more streams only the
    /// detector launch overhead shrinks (shared batches).
    ///
    /// Never panics on stage failures: a panicking stage is isolated to
    /// its stream, a recoverable fault poisons only its clip (and is
    /// retried once through the sequential pipeline unless
    /// `opts.no_retry`), and every unfinished clip is reported as
    /// [`ClipOutcome::Failed`] with per-stream status in the stats.
    /// Only charges of clips that completed are folded into `ledger`
    /// (plus the shared batched launch overhead), so healthy clips'
    /// accounting is unaffected by faults elsewhere.
    pub fn run(
        config: &OtifConfig,
        ctx: &ExecutionContext,
        clips: &[Clip],
        opts: &EngineOptions,
        ledger: &CostLedger,
    ) -> EngineRun {
        Self::run_with_session(config, ctx, clips, opts, ledger, None)
    }

    /// [`Engine::run`] with an optional journaled [`RunSession`]: every
    /// completed clip is durably checkpointed before its result is
    /// acknowledged, and clips the session recovered from a previous
    /// (crashed) run are *ghost-replayed* — their recorded charges,
    /// timelines, batcher tickets and tracks are replayed bit-exactly
    /// without recomputation, so the final ledgers, deterministic stats
    /// and detector digests equal an uninterrupted run's.
    pub fn run_with_session(
        config: &OtifConfig,
        ctx: &ExecutionContext,
        clips: &[Clip],
        opts: &EngineOptions,
        ledger: &CostLedger,
        session: Option<&RunSession>,
    ) -> EngineRun {
        let streams = opts.streams.min(clips.len()).max(1);
        let capacity = opts.channel_capacity.max(1);
        let prefetch = opts.prefetch_frames.max(1);
        // The decode stage's output channel is the prefetch buffer: it
        // must hold the whole decode-ahead budget, not just the default
        // backpressure capacity.
        let decode_capacity = capacity.max(prefetch);
        let gap = config.gap.max(1);
        let frame_counts: Vec<usize> = clips.iter().map(|c| c.num_frames().div_ceil(gap)).collect();

        // Round-robin assignment keeps stream loads balanced without
        // knowing clip lengths: stream i gets clips i, i+streams, ….
        let assignments: Vec<Vec<(usize, &Clip)>> = (0..streams)
            .map(|s| clips.iter().enumerate().skip(s).step_by(streams).collect())
            .collect();

        // Cost accounting: every per-frame charge lands in the ledger
        // of its clip; only completed clips are absorbed into the run's
        // private ledger (in clip order — making the f64 sums
        // independent of thread interleaving), and the batcher's shared
        // launch overhead accrues in its own ledger.
        let inner = CostLedger::new();
        let clip_ledgers: Vec<CostLedger> = (0..clips.len()).map(|_| CostLedger::new()).collect();
        let timelines: Vec<Mutex<ClipTimeline>> = (0..clips.len())
            .map(|_| Mutex::new(ClipTimeline::default()))
            .collect();
        let launch = CostLedger::new();
        // The surrogate harness is shared by every stream (identical
        // weights, one set of wall-clock counters); the batcher holds
        // a reference only in batched mode, where its flushing thread
        // runs the forwards.
        let harness = (opts.detector_exec != DetectorExec::Off).then(|| {
            Arc::new(DetectorExecHarness::new(
                WindowNet::new(&config.detector, ctx.detector_seed),
                opts.detector_exec,
            ))
        });
        let max_active = resolve_max_active(opts.max_active_streams, streams);
        let mut batcher = DetectorBatcher::new(
            streams,
            config.detector.arch.per_call(),
            opts.max_batch,
            launch.clone(),
        )
        .with_max_active(max_active);
        if opts.detector_exec == DetectorExec::Batched {
            if let Some(h) = &harness {
                batcher = batcher.with_exec(Arc::clone(h));
            }
        }
        let counters = EngineCounters::default();
        let health = HealthBoard::new(streams);
        let results: Mutex<Vec<Option<Vec<Track>>>> =
            Mutex::new((0..clips.len()).map(|_| None).collect());

        // Resume ghosting: classify every clip the session recovered.
        // In-stream checkpoints with a full frame recording ghost-stream
        // (ledger pre-charged with the recorded component totals as
        // exact bits — re-accumulating per-frame deltas would not
        // reproduce IEEE sums — timeline pre-populated, result
        // pre-deposited); retried checkpoints skip streaming entirely
        // and replay in the retry section; anything malformed stays
        // Live and is recomputed (self-healing).
        let mut ghost = vec![GhostMode::Live; clips.len()];
        let mut skip_replay: Vec<(usize, ClipRecord, Vec<Track>)> = Vec::new();
        if let Some(session) = session {
            for (idx, rec) in session.recovered.iter().enumerate().take(clips.len()) {
                let Some((record, tracks)) = rec else {
                    continue;
                };
                if record.retried {
                    ghost[idx] = GhostMode::Skip;
                    skip_replay.push((idx, record.clone(), tracks.clone()));
                } else if record.frames.len() == frame_counts[idx] {
                    ghost[idx] = GhostMode::Stream;
                    clip_ledgers[idx].charge_slice_bits(&record.ledger);
                    *timelines[idx].lock() = record.timeline();
                    results.lock()[idx] = Some(tracks.clone());
                }
            }
        }
        let checkpointer = session.map(|s| Checkpointer::new(Arc::clone(&s.journal)));

        // The fixed worker pool: every stream contributes four stage
        // tasks (ids 4s..4s+3, round-robin pre-distributed over the
        // workers), connected by bounded queue slots whose wakers point
        // at the adjacent tasks. The batcher's detect/admission wakers
        // make the cross-stream rendezvous and the admission gate just
        // more park/wake points — no task ever holds an OS thread while
        // blocked.
        let workers = resolve_workers(opts.workers, streams);
        let pool = TaskPool::new(4 * streams, opts.stage_timeout);
        let admission_gate = (max_active < streams).then_some(&batcher);
        let mut tasks: Vec<Box<dyn PollTask + '_>> = Vec::with_capacity(4 * streams);
        for (s, assigned) in assignments.iter().enumerate() {
            let dec_q = SlotQueue::new(decode_capacity);
            let win_q = SlotQueue::new(capacity);
            let det_q = SlotQueue::new(capacity);
            let (dec_tx, dec_rx) = dec_q.endpoints(pool.waker(4 * s), pool.waker(4 * s + 1));
            let (win_tx, win_rx) = win_q.endpoints(pool.waker(4 * s + 1), pool.waker(4 * s + 2));
            let (det_tx, det_rx) = det_q.endpoints(pool.waker(4 * s + 2), pool.waker(4 * s + 3));
            batcher.set_detect_waker(s, pool.waker(4 * s + 2));
            // All four stage tasks park at the admission check without
            // registering queue interest, so admitting the stream must
            // wake each of them — a decode-only wake would leave the
            // downstream stages parked with no one to revive them.
            for t in 0..4 {
                batcher.add_admission_waker(s, pool.waker(4 * s + t));
            }
            let guard = StreamGuard::new(&batcher, s);
            let stage_ctx = StageCtx {
                config,
                exec: ctx,
                stream: s,
                clips: assigned,
                counters: &counters,
                clip_ledgers: &clip_ledgers,
                timelines: &timelines,
                faults: &opts.faults,
                health: &health,
                detector_exec: harness.as_deref(),
                ghost: &ghost,
                checkpoint: checkpointer.as_ref(),
                stage_timeout: opts.stage_timeout,
            };
            tasks.push(decode_task(stage_ctx, dec_tx, admission_gate));
            tasks.push(window_task(stage_ctx, dec_rx, win_tx, admission_gate));
            tasks.push(detect_task(
                stage_ctx,
                win_rx,
                det_tx,
                guard,
                admission_gate,
            ));
            tasks.push(track_task(stage_ctx, det_rx, &results, admission_gate));
        }
        counters.sample_os_threads();
        let metrics = pool.run(workers, tasks);
        counters.sample_os_threads();

        // Outcomes: a clip either deposited tracks, or it failed —
        // attribute the failure (recorded per-clip error, else the
        // owning stream's panic) instead of panicking.
        let mut outcomes: Vec<ClipOutcome> = Vec::with_capacity(clips.len());
        let mut failures: Vec<FailedClip> = Vec::new();
        let mut wasted = 0.0f64;
        let mut retryable: Vec<usize> = Vec::new();
        // Clips that completed in-stream — the set the pipelined replay
        // covers (retried clips run sequentially afterwards; failed
        // clips' charges are discarded, so they shape neither the
        // ledger nor the makespan).
        let mut completed = vec![false; clips.len()];
        for (idx, slot) in results.into_inner().into_iter().enumerate() {
            let stream = idx % streams;
            if ghost[idx] == GhostMode::Skip {
                // Replayed retry clip: never streamed this run; the
                // retry-replay section below deposits its recorded
                // tracks and accounting. Placeholder outcome, no
                // failure entry, no wasted accrual.
                outcomes.push(ClipOutcome::Ok(Vec::new()));
                continue;
            }
            match slot {
                Some(tracks) => {
                    completed[idx] = true;
                    inner.absorb(&clip_ledgers[idx]);
                    outcomes.push(ClipOutcome::Ok(tracks));
                }
                None => {
                    wasted += clip_ledgers[idx].total();
                    let (stage, reason, recoverable) = match health.failure_of(idx) {
                        Some(f) => (f.stage, f.reason, f.recoverable),
                        None => match health.panic_of(stream) {
                            Some(p) => (
                                p.stage,
                                format!("stream {stream} died: {}", p.reason),
                                false,
                            ),
                            None => match health.stall_of(stream) {
                                // A watchdogged stall is recoverable:
                                // the wedged stream's unfinished clips
                                // all heal through the sequential retry.
                                Some(st) => (
                                    st.stage,
                                    format!("stream {stream} stalled: {}", st.reason),
                                    true,
                                ),
                                None => (
                                    StageName::Track,
                                    "clip was never finalized".to_string(),
                                    false,
                                ),
                            },
                        },
                    };
                    if recoverable && !opts.no_retry && opts.retry_attempts > 0 {
                        retryable.push(idx);
                    }
                    failures.push(FailedClip {
                        clip: idx,
                        stream,
                        stage,
                        reason: reason.clone(),
                        recovered: false,
                    });
                    outcomes.push(ClipOutcome::Failed { stage, reason });
                }
            }
        }

        // Absorb the shared batched launch overhead (and its occupancy
        // counters) after the per-clip charges: a fixed order keeps the
        // run's f64 sums deterministic.
        inner.absorb(&launch);

        // Pipelined virtual-time replay: recompute completion times of
        // the streaming portion from the recorded per-frame charges and
        // batcher rounds. Charges don't move — the ledger above is
        // already final — this only models *when* they complete.
        let rounds = batcher.round_log();
        let assignment_idx: Vec<Vec<usize>> = assignments
            .iter()
            .map(|a| a.iter().map(|(i, _)| *i).collect())
            .collect();
        let replayed = timeline::replay(
            &assignment_idx,
            &completed,
            &frame_counts,
            &timelines,
            &rounds,
            prefetch,
        );

        // Failed-clip retry: clips that failed recoverably re-run
        // through the sequential pipeline under a bounded deterministic
        // backoff schedule — attempt k schedules retry_backoff_base*2^k
        // *virtual* seconds before running, accounted in the makespan
        // and the retry counters but never slept and never charged to
        // the ledger (sums stay bitwise identical). The sequential
        // fallback is infallible today, so each clip recovers on
        // attempt 0 and the rest of the `retry_attempts` budget stays
        // unused; charges land on the same ledger — one flaky clip
        // degrades throughput, not results. Retries run after the
        // streaming portion, so they extend the makespan serially.
        let mut retried = 0usize;
        let mut retry_attempts = 0u64;
        let mut retry_seconds = 0.0f64;
        let mut retry_backoff_seconds = 0.0f64;
        // Merge freshly-failed clips with recovered retry checkpoints
        // (ghost Skip) in clip-index order, so the retry accounting's
        // f64 sums accrue in the same deterministic order every run.
        enum RetryWork {
            Live,
            Replay(ClipRecord, Vec<Track>),
        }
        let mut retry_plan: Vec<(usize, RetryWork)> = retryable
            .into_iter()
            .map(|idx| (idx, RetryWork::Live))
            .chain(
                skip_replay
                    .into_iter()
                    .map(|(idx, rec, tracks)| (idx, RetryWork::Replay(rec, tracks))),
            )
            .collect();
        retry_plan.sort_by_key(|(idx, _)| *idx);
        for (idx, work) in retry_plan {
            match work {
                RetryWork::Live => {
                    retry_backoff_seconds += retry_backoff(opts.retry_backoff_base, 0);
                    retry_attempts += 1;
                    let retry_ledger = CostLedger::new();
                    let tracks = Pipeline::run_clip(config, ctx, &clips[idx], &retry_ledger);
                    retry_seconds += retry_ledger.execution_total();
                    inner.absorb(&retry_ledger);
                    // Checkpoint the recovered clip as a retry record:
                    // slice-only accounting (no frame recordings — a
                    // resume replays it without streaming).
                    if let Some(cp) = &checkpointer {
                        cp.checkpoint_clip(
                            idx,
                            &tracks,
                            &ClipTimeline::default(),
                            &retry_ledger,
                            true,
                            1,
                            retry_backoff(opts.retry_backoff_base, 0),
                        );
                    }
                    outcomes[idx] = ClipOutcome::Ok(tracks);
                    if let Some(f) = failures.iter_mut().find(|f| f.clip == idx) {
                        f.recovered = true;
                    }
                    retried += 1;
                }
                RetryWork::Replay(rec, tracks) => {
                    // Replay the recorded retry bit-exactly: charge the
                    // recorded component totals into a fresh ledger (the
                    // same order an actual retry charges), accrue the
                    // recorded backoff and attempts, deposit the
                    // recorded tracks.
                    retry_backoff_seconds += f64::from_bits(rec.retry_backoff);
                    retry_attempts += rec.retry_attempts;
                    let retry_ledger = CostLedger::new();
                    retry_ledger.charge_slice_bits(&rec.ledger);
                    retry_seconds += retry_ledger.execution_total();
                    inner.absorb(&retry_ledger);
                    outcomes[idx] = ClipOutcome::Ok(tracks);
                    retried += 1;
                }
            }
        }

        let mut stats = EngineStats::snapshot(streams, clips.len(), &counters, &inner);
        stats.workers = metrics.workers;
        stats.max_active_streams = max_active;
        stats.peak_runnable_tasks = metrics.peak_runnable;
        stats.task_steals = metrics.steals;
        stats.task_polls = metrics.polls;
        stats.execution_seconds = replayed.makespan + retry_seconds + retry_backoff_seconds;
        stats.retry_attempts = retry_attempts;
        stats.retry_backoff_seconds = retry_backoff_seconds;
        stats.prefetch_frames = prefetch;
        stats.stall_seconds = replayed.stalls;
        stats.pipeline_speedup = if stats.execution_seconds > 0.0 {
            stats.serial_seconds / stats.execution_seconds
        } else {
            1.0
        };
        stats.failed_clips = failures.len();
        stats.retried_clips = retried;
        stats.panics = health.panic_count();
        stats.wasted_seconds = wasted;
        stats.launch_seconds = launch.get(Component::Detector);
        stats.detector_exec = opts.detector_exec.as_str().to_string();
        if session.is_some_and(|s| s.resumed) {
            stats.resumed_clips_skipped = ghost.iter().filter(|g| **g != GhostMode::Live).count();
            stats.resumed_clips_recomputed =
                ghost.iter().filter(|g| **g == GhostMode::Live).count();
        }
        if let Some(cp) = &checkpointer {
            stats.clips_checkpointed = cp.acked.load(std::sync::atomic::Ordering::Relaxed);
            stats.checkpoint_failures = cp.ack_failures.load(std::sync::atomic::Ordering::Relaxed);
        }
        if let Some(h) = &harness {
            stats.detector_wall_seconds = h.wall_seconds();
            stats.detector_forwards = h.forwards();
            stats.detector_exec_windows = h.windows();
            // Run digest: completed clips' surrogate digests folded in
            // clip order — the set and the per-clip values are
            // deterministic, so looped and batched runs (at any stream
            // count, under any fault plan) must agree exactly.
            let mut d = DIGEST_SEED;
            for (idx, done) in completed.iter().enumerate() {
                if *done {
                    d = fold_digest(d, timelines[idx].lock().detect_digest);
                }
            }
            stats.detector_digest = d;
        }
        stats.stream_status = (0..streams)
            .map(|s| {
                let assigned = assignments[s].len();
                let failed = failures.iter().filter(|f| f.stream == s).count();
                StreamStatus {
                    stream: s,
                    clips_assigned: assigned,
                    clips_completed: assigned - failed,
                    clips_failed: failed,
                    panicked: health.panic_of(s),
                }
            })
            .collect();
        stats.failures = failures;

        ledger.absorb(&inner);
        EngineRun {
            tracks: outcomes,
            stats,
            rounds,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use otif_core::config::TrackerKind;
    use otif_core::Pipeline;
    use otif_cv::{Component, CostModel, DetectorArch, DetectorConfig};
    use otif_sim::{DatasetConfig, DatasetKind};

    fn config() -> OtifConfig {
        OtifConfig {
            detector: DetectorConfig::new(DetectorArch::YoloV3, 0.5),
            proxy: None,
            gap: 4,
            tracker: TrackerKind::Sort,
            refine: false,
        }
    }

    fn clips() -> Vec<otif_sim::Clip> {
        DatasetConfig::small(DatasetKind::Caldot1, 71)
            .generate()
            .test
    }

    #[test]
    fn one_stream_matches_sequential_cost_exactly() {
        let cfg = config();
        let ctx = ExecutionContext::bare(CostModel::default(), 7);
        let clips = clips();

        let seq = CostLedger::new();
        let mut expected = Vec::new();
        for clip in &clips {
            expected.push(Pipeline::run_clip(&cfg, &ctx, clip, &seq));
        }

        let eng = CostLedger::new();
        let opts = EngineOptions::with_streams(1);
        let run = Engine::run(&cfg, &ctx, &clips, &opts, &eng);
        assert!(run.stats.healthy());

        let a = serde_json::to_string(&expected).unwrap();
        let b = serde_json::to_string(&run.expect_tracks()).unwrap();
        assert_eq!(a, b, "1-stream engine output must equal sequential");
        for c in [
            Component::Decode,
            Component::Proxy,
            Component::Detector,
            Component::Tracker,
            Component::Refinement,
        ] {
            assert!(
                (seq.get(c) - eng.get(c)).abs() < 1e-9,
                "{c:?}: sequential {} vs engine {}",
                seq.get(c),
                eng.get(c)
            );
        }
    }

    #[test]
    fn multi_stream_output_matches_and_detector_cost_drops() {
        let cfg = config();
        let ctx = ExecutionContext::bare(CostModel::default(), 7);
        let clips = clips();
        assert!(clips.len() >= 2, "need multiple clips for multi-stream");

        let seq = CostLedger::new();
        let mut expected = Vec::new();
        for clip in &clips {
            expected.push(Pipeline::run_clip(&cfg, &ctx, clip, &seq));
        }

        for streams in [2usize, 4] {
            let eng = CostLedger::new();
            let opts = EngineOptions::with_streams(streams);
            let run = Engine::run(&cfg, &ctx, &clips, &opts, &eng);
            let stats = run.stats.clone();
            let a = serde_json::to_string(&expected).unwrap();
            let b = serde_json::to_string(&run.expect_tracks()).unwrap();
            assert_eq!(a, b, "{streams}-stream output must equal sequential");
            assert!(
                eng.get(Component::Detector) < seq.get(Component::Detector),
                "{streams} streams must shrink detector cost via batching"
            );
            assert!(stats.mean_batch_occupancy > 1.0);
            assert_eq!(stats.streams, streams.min(clips.len()));
            // the detector split adds up: pixel charges + shared launches
            assert!(stats.launch_seconds > 0.0);
            assert!(stats.launch_seconds < stats.stage_seconds.detector);
            // every stream reports healthy completion status
            assert_eq!(stats.stream_status.len(), stats.streams);
            for st in &stats.stream_status {
                assert!(st.healthy(), "{st:?}");
                assert_eq!(st.clips_completed, st.clips_assigned);
            }
        }
    }

    #[test]
    fn stats_count_every_frame_and_drain_in_flight() {
        let cfg = config();
        let ctx = ExecutionContext::bare(CostModel::default(), 7);
        let clips = clips();
        let expected_frames: u64 = clips
            .iter()
            .map(|c| c.num_frames().div_ceil(cfg.gap) as u64)
            .sum();
        let run = Engine::run(
            &cfg,
            &ctx,
            &clips,
            &EngineOptions::new(),
            &CostLedger::new(),
        );
        assert_eq!(run.stats.frames, expected_frames);
        assert!(run.stats.max_frames_in_flight >= 1);
        // bounded channels cap the in-flight frames per stream: the
        // decode→window channel holds the prefetch budget, the other
        // two the backpressure capacity, plus one frame resident in
        // each consuming stage
        let opts = EngineOptions::new();
        let decode_cap = opts.channel_capacity.max(opts.prefetch_frames) as u64;
        let per_stream_cap = (decode_cap + 1) + 2 * (opts.channel_capacity as u64 + 1) + 1;
        assert!(run.stats.max_frames_in_flight <= run.stats.streams as u64 * per_stream_cap);
        assert!((run.stats.wasted_seconds - 0.0).abs() < 1e-15);
    }

    /// `prefetch_frames = 1` degenerates the pipelined model to the
    /// serial rendezvous: with a single stream the makespan equals the
    /// serial charge sum (same charges, different summation order).
    #[test]
    fn single_stream_prefetch_one_makespan_is_serial() {
        let cfg = config();
        let ctx = ExecutionContext::bare(CostModel::default(), 7);
        let clips = clips();
        let opts = EngineOptions {
            streams: 1,
            prefetch_frames: 1,
            ..EngineOptions::new()
        };
        let run = Engine::run(&cfg, &ctx, &clips, &opts, &CostLedger::new());
        let s = &run.stats;
        assert!(
            (s.execution_seconds - s.serial_seconds).abs() < 1e-9 * s.serial_seconds.max(1.0),
            "serial {} vs makespan {}",
            s.serial_seconds,
            s.execution_seconds
        );
        // fully serial: decode stalls on the rendezvous every frame
        assert!(s.stall_seconds.channel_backpressure > 0.0);
    }

    /// A deeper prefetch window strictly improves the makespan while
    /// leaving every ledger component bitwise unchanged.
    #[test]
    fn prefetch_overlaps_without_moving_charges() {
        let cfg = config();
        let ctx = ExecutionContext::bare(CostModel::default(), 7);
        let clips = clips();
        let run_at = |prefetch: usize| {
            let ledger = CostLedger::new();
            let opts = EngineOptions {
                streams: 4,
                prefetch_frames: prefetch,
                ..EngineOptions::new()
            };
            let run = Engine::run(&cfg, &ctx, &clips, &opts, &ledger);
            (run, ledger)
        };
        let (serial, serial_ledger) = run_at(1);
        let (deep, deep_ledger) = run_at(16);
        assert!(
            deep.stats.execution_seconds < serial.stats.execution_seconds,
            "prefetch=16 makespan {} must beat prefetch=1 {}",
            deep.stats.execution_seconds,
            serial.stats.execution_seconds
        );
        assert!(deep.stats.pipeline_speedup > serial.stats.pipeline_speedup);
        // serial sums and every component are bitwise identical
        assert_eq!(serial.stats.serial_seconds, deep.stats.serial_seconds);
        for c in [
            Component::Decode,
            Component::Proxy,
            Component::Detector,
            Component::Tracker,
            Component::Refinement,
        ] {
            assert_eq!(
                serial_ledger.get(c).to_bits(),
                deep_ledger.get(c).to_bits(),
                "{c:?} must be bitwise identical across prefetch settings"
            );
        }
        // and so are the round contents
        assert_eq!(serial.rounds, deep.rounds);
    }

    const COMPONENTS: [Component; 5] = [
        Component::Decode,
        Component::Proxy,
        Component::Detector,
        Component::Tracker,
        Component::Refinement,
    ];

    fn temp_run_dir(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("otif-engine-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    /// Tentpole contract: a fresh journaled run is bitwise identical to
    /// an unjournaled one, and resuming after a crash at several
    /// acknowledgement counts reproduces the uninterrupted run's
    /// tracks, ledger bits, deterministic stats and batcher rounds
    /// byte-for-byte while recomputing only the unacknowledged clips.
    #[test]
    fn journaled_run_and_every_resume_are_bitwise_identical() {
        use crate::journal::{RealRunIo, RunIo, RUN_JOURNAL_FILE};

        let cfg = config();
        let ctx = ExecutionContext::bare(CostModel::default(), 7);
        let clips = clips();
        let opts = EngineOptions {
            streams: 2,
            detector_exec: DetectorExec::Batched,
            ..EngineOptions::new()
        };

        // Uninterrupted, unjournaled baseline.
        let base_ledger = CostLedger::new();
        let base = Engine::run(&cfg, &ctx, &clips, &opts, &base_ledger);
        let base_proj = base.stats.deterministic_projection();
        let base_rounds = base.rounds.clone();
        let base_tracks = serde_json::to_string(&base.expect_tracks()).unwrap();

        // Fresh journaled run: identical outputs, every clip durably
        // acknowledged.
        let io: Arc<dyn RunIo> = Arc::new(RealRunIo);
        let dir = temp_run_dir("resume");
        let manifest = run_manifest(&cfg, &ctx, &clips, &opts);
        let journal = Arc::new(RunJournal::create(&dir, Arc::clone(&io), &manifest).unwrap());
        let session = RunSession::fresh(Arc::clone(&journal));
        let fresh_ledger = CostLedger::new();
        let fresh =
            Engine::run_with_session(&cfg, &ctx, &clips, &opts, &fresh_ledger, Some(&session));
        assert_eq!(fresh.stats.clips_checkpointed, clips.len() as u64);
        assert_eq!(fresh.stats.checkpoint_failures, 0);
        assert_eq!(fresh.stats.resumed_clips_skipped, 0);
        assert_eq!(fresh.stats.deterministic_projection(), base_proj);
        assert_eq!(fresh.rounds, base_rounds);
        for c in COMPONENTS {
            assert_eq!(
                fresh_ledger.get(c).to_bits(),
                base_ledger.get(c).to_bits(),
                "{c:?}"
            );
        }
        assert_eq!(
            serde_json::to_string(&fresh.expect_tracks()).unwrap(),
            base_tracks
        );

        // Crash simulation: keep only the first k acknowledged records
        // (append order is the crash order), resume, and demand byte
        // identity plus bounded recomputation.
        let journal_path = dir.join(RUN_JOURNAL_FILE);
        let full = std::fs::read(&journal_path).unwrap();
        let lines: Vec<&[u8]> = full.split_inclusive(|&b| b == b'\n').collect();
        assert_eq!(lines.len(), clips.len());
        for k in [0usize, 1, clips.len() - 1, clips.len()] {
            std::fs::write(&journal_path, lines[..k].concat()).unwrap();
            let (reopened, replayed) = RunJournal::open(&dir, Arc::clone(&io), &manifest).unwrap();
            let reopened = Arc::new(reopened);
            let recovered = reopened.recover(&replayed, clips.len());
            let session = RunSession::resumed(Arc::clone(&reopened), recovered);
            assert_eq!(session.recovered_clips(), k);
            let led = CostLedger::new();
            let run = Engine::run_with_session(&cfg, &ctx, &clips, &opts, &led, Some(&session));
            assert_eq!(run.stats.resumed_clips_skipped, k, "k={k}");
            assert_eq!(run.stats.resumed_clips_recomputed, clips.len() - k, "k={k}");
            assert_eq!(run.stats.deterministic_projection(), base_proj, "k={k}");
            assert_eq!(run.rounds, base_rounds, "k={k}");
            for c in COMPONENTS {
                assert_eq!(
                    led.get(c).to_bits(),
                    base_ledger.get(c).to_bits(),
                    "k={k} {c:?}"
                );
            }
            assert_eq!(
                serde_json::to_string(&run.expect_tracks()).unwrap(),
                base_tracks,
                "k={k}"
            );
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    /// A corrupt checkpoint payload self-heals: the clip recomputes
    /// live and the final outputs still match the baseline.
    #[test]
    fn tampered_checkpoint_payload_recomputes_and_matches() {
        use crate::journal::{RealRunIo, RunIo, RUN_CLIPS_DIR};

        let cfg = config();
        let ctx = ExecutionContext::bare(CostModel::default(), 7);
        let clips = clips();
        let opts = EngineOptions::with_streams(2);

        let base_ledger = CostLedger::new();
        let base = Engine::run(&cfg, &ctx, &clips, &opts, &base_ledger);
        let base_proj = base.stats.deterministic_projection();
        let base_tracks = serde_json::to_string(&base.expect_tracks()).unwrap();

        let io: Arc<dyn RunIo> = Arc::new(RealRunIo);
        let dir = temp_run_dir("selfheal");
        let manifest = run_manifest(&cfg, &ctx, &clips, &opts);
        let journal = Arc::new(RunJournal::create(&dir, Arc::clone(&io), &manifest).unwrap());
        let session = RunSession::fresh(Arc::clone(&journal));
        Engine::run_with_session(
            &cfg,
            &ctx,
            &clips,
            &opts,
            &CostLedger::new(),
            Some(&session),
        );

        std::fs::write(dir.join(RUN_CLIPS_DIR).join("clip_0.json"), b"garbage").unwrap();
        let (reopened, replayed) = RunJournal::open(&dir, Arc::clone(&io), &manifest).unwrap();
        let reopened = Arc::new(reopened);
        let recovered = reopened.recover(&replayed, clips.len());
        assert!(
            recovered[0].is_none(),
            "tampered payload must drop the record"
        );
        let session = RunSession::resumed(Arc::clone(&reopened), recovered);
        let led = CostLedger::new();
        let run = Engine::run_with_session(&cfg, &ctx, &clips, &opts, &led, Some(&session));
        assert_eq!(run.stats.resumed_clips_recomputed, 1);
        assert_eq!(run.stats.resumed_clips_skipped, clips.len() - 1);
        assert_eq!(run.stats.deterministic_projection(), base_proj);
        for c in COMPONENTS {
            assert_eq!(led.get(c).to_bits(), base_ledger.get(c).to_bits(), "{c:?}");
        }
        assert_eq!(
            serde_json::to_string(&run.expect_tracks()).unwrap(),
            base_tracks
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    /// Without a watchdog an injected stall only slows the run down —
    /// it still completes healthy.
    #[test]
    fn stall_fault_without_watchdog_completes_healthy() {
        let cfg = config();
        let ctx = ExecutionContext::bare(CostModel::default(), 7);
        let clips = clips();
        let opts = EngineOptions {
            streams: 1,
            faults: FaultPlan::stall_at(StageName::Detect, 0, 1),
            ..EngineOptions::new()
        };
        let run = Engine::run(&cfg, &ctx, &clips, &opts, &CostLedger::new());
        assert!(run.stats.healthy(), "{:?}", run.stats.failures);
        assert_eq!(run.expect_tracks().len(), clips.len());
    }

    /// With a stage watchdog shorter than the stall, the wedge becomes
    /// typed recoverable stall failures and the sequential retry heals
    /// every clip — the run completes instead of hanging.
    #[test]
    fn watchdog_converts_wedge_into_recoverable_stalls() {
        let cfg = config();
        let ctx = ExecutionContext::bare(CostModel::default(), 7);
        let clips = clips();
        let opts = EngineOptions {
            streams: 1,
            stage_timeout: Some(std::time::Duration::from_millis(40)),
            faults: FaultPlan::stall_at(StageName::Detect, 0, 1),
            ..EngineOptions::new()
        };
        let run = Engine::run(&cfg, &ctx, &clips, &opts, &CostLedger::new());
        assert!(run.stats.failed_clips > 0, "the wedge must fail clips");
        assert!(
            run.stats
                .failures
                .iter()
                .any(|f| f.reason.contains("watchdog")),
            "{:?}",
            run.stats.failures
        );
        assert!(
            run.stats.failures.iter().all(|f| f.recovered),
            "every stalled clip must heal via the sequential retry: {:?}",
            run.stats.failures
        );
        assert_eq!(run.stats.retried_clips, run.stats.failed_clips);
        assert!(run.tracks.iter().all(ClipOutcome::is_ok));
    }

    #[test]
    fn more_streams_than_clips_is_clamped() {
        let cfg = config();
        let ctx = ExecutionContext::bare(CostModel::default(), 7);
        let clips = clips();
        let opts = EngineOptions::with_streams(clips.len() + 50);
        let run = Engine::run(&cfg, &ctx, &clips, &opts, &CostLedger::new());
        assert_eq!(run.stats.streams, clips.len());
        assert_eq!(run.tracks.len(), clips.len());
    }
}
