//! Engine orchestration: clip assignment, stage threads, channels,
//! shutdown and stats collection.
//!
//! [`Engine::run`] assigns clips round-robin to `streams` streams and
//! gives each stream four threads (decode, window, detect, track)
//! connected by bounded channels, so a slow stage exerts backpressure
//! on everything upstream instead of buffering unboundedly. The detect
//! stages of all streams share one [`DetectorBatcher`], which is the
//! only cross-stream coupling; everything else is per-stream and
//! therefore produces the exact per-clip output of the sequential
//! [`Pipeline`](otif_core::Pipeline).

use crate::batcher::{DetectorBatcher, StreamGuard};
use crate::stage::{decode_stage, detect_stage, track_stage, window_stage};
use crate::stats::{EngineCounters, EngineStats};
use crossbeam::channel::bounded;
use otif_core::config::OtifConfig;
use otif_core::pipeline::ExecutionContext;
use otif_cv::CostLedger;
use otif_sim::Clip;
use otif_track::Track;
use parking_lot::Mutex;

/// Tunables for an engine run.
#[derive(Debug, Clone, Copy)]
pub struct EngineOptions {
    /// Number of concurrent streams (clamped to the clip count, min 1).
    pub streams: usize,
    /// Capacity of each inter-stage channel; bounds frames in flight
    /// per stream and provides backpressure.
    pub channel_capacity: usize,
    /// Maximum windows per batched detector invocation.
    pub max_batch: usize,
}

impl Default for EngineOptions {
    fn default() -> Self {
        EngineOptions {
            streams: 2,
            channel_capacity: 4,
            max_batch: 16,
        }
    }
}

/// The result of an engine run: per-clip tracks (in input clip order)
/// plus run statistics.
pub struct EngineRun {
    /// Extracted tracks, indexed like the input clip slice.
    pub tracks: Vec<Vec<Track>>,
    /// Counters, queue depths, batch occupancy and simulated seconds.
    pub stats: EngineStats,
}

/// The multi-stream streaming executor.
pub struct Engine;

impl Engine {
    /// Process `clips` with `opts.streams` concurrent streams, charging
    /// all simulated cost into `ledger`.
    ///
    /// Per-clip output is identical to
    /// `Pipeline::run_clip(config, ctx, clip, …)`; with one stream the
    /// charged cost is identical too, and with more streams only the
    /// detector launch overhead shrinks (shared batches).
    pub fn run(
        config: &OtifConfig,
        ctx: &ExecutionContext,
        clips: &[Clip],
        opts: &EngineOptions,
        ledger: &CostLedger,
    ) -> EngineRun {
        let streams = opts.streams.min(clips.len()).max(1);
        let capacity = opts.channel_capacity.max(1);

        // Round-robin assignment keeps stream loads balanced without
        // knowing clip lengths: stream i gets clips i, i+streams, ….
        let assignments: Vec<Vec<(usize, &Clip)>> = (0..streams)
            .map(|s| clips.iter().enumerate().skip(s).step_by(streams).collect())
            .collect();

        // All stage threads charge into a private ledger so the run's
        // stats can be snapshotted before folding into the caller's.
        let inner = CostLedger::new();
        let batcher = DetectorBatcher::new(
            streams,
            config.detector.arch.per_call(),
            opts.max_batch,
            inner.clone(),
        );
        let counters = EngineCounters::default();
        let results: Mutex<Vec<Option<Vec<Track>>>> =
            Mutex::new((0..clips.len()).map(|_| None).collect());

        std::thread::scope(|scope| {
            for (s, assigned) in assignments.iter().enumerate() {
                let (dec_tx, dec_rx) = bounded(capacity);
                let (win_tx, win_rx) = bounded(capacity);
                let (det_tx, det_rx) = bounded(capacity);
                let guard = StreamGuard::new(&batcher, s);
                let (counters, inner, results) = (&counters, &inner, &results);
                scope.spawn(move || decode_stage(config, ctx, assigned, dec_tx, counters, inner));
                scope.spawn(move || {
                    window_stage(config, ctx, assigned, dec_rx, win_tx, counters, inner)
                });
                scope.spawn(move || {
                    detect_stage(
                        config, ctx, assigned, win_rx, det_tx, guard, counters, inner,
                    )
                });
                scope.spawn(move || {
                    track_stage(config, ctx, assigned, det_rx, results, counters, inner)
                });
            }
        });

        let stats = EngineStats::snapshot(streams, clips.len(), &counters, &inner);
        ledger.absorb(&inner);
        let tracks = results
            .into_inner()
            .into_iter()
            .map(|t| t.expect("every clip was finalized by its track stage"))
            .collect();
        EngineRun { tracks, stats }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use otif_core::config::TrackerKind;
    use otif_core::Pipeline;
    use otif_cv::{Component, CostModel, DetectorArch, DetectorConfig};
    use otif_sim::{DatasetConfig, DatasetKind};

    fn config() -> OtifConfig {
        OtifConfig {
            detector: DetectorConfig::new(DetectorArch::YoloV3, 0.5),
            proxy: None,
            gap: 4,
            tracker: TrackerKind::Sort,
            refine: false,
        }
    }

    fn clips() -> Vec<otif_sim::Clip> {
        DatasetConfig::small(DatasetKind::Caldot1, 71)
            .generate()
            .test
    }

    #[test]
    fn one_stream_matches_sequential_cost_exactly() {
        let cfg = config();
        let ctx = ExecutionContext::bare(CostModel::default(), 7);
        let clips = clips();

        let seq = CostLedger::new();
        let mut expected = Vec::new();
        for clip in &clips {
            expected.push(Pipeline::run_clip(&cfg, &ctx, clip, &seq));
        }

        let eng = CostLedger::new();
        let opts = EngineOptions {
            streams: 1,
            ..EngineOptions::default()
        };
        let run = Engine::run(&cfg, &ctx, &clips, &opts, &eng);

        let a = serde_json::to_string(&expected).unwrap();
        let b = serde_json::to_string(&run.tracks).unwrap();
        assert_eq!(a, b, "1-stream engine output must equal sequential");
        for c in [
            Component::Decode,
            Component::Proxy,
            Component::Detector,
            Component::Tracker,
            Component::Refinement,
        ] {
            assert!(
                (seq.get(c) - eng.get(c)).abs() < 1e-9,
                "{c:?}: sequential {} vs engine {}",
                seq.get(c),
                eng.get(c)
            );
        }
    }

    #[test]
    fn multi_stream_output_matches_and_detector_cost_drops() {
        let cfg = config();
        let ctx = ExecutionContext::bare(CostModel::default(), 7);
        let clips = clips();
        assert!(clips.len() >= 2, "need multiple clips for multi-stream");

        let seq = CostLedger::new();
        let mut expected = Vec::new();
        for clip in &clips {
            expected.push(Pipeline::run_clip(&cfg, &ctx, clip, &seq));
        }

        for streams in [2usize, 4] {
            let eng = CostLedger::new();
            let opts = EngineOptions {
                streams,
                ..EngineOptions::default()
            };
            let run = Engine::run(&cfg, &ctx, &clips, &opts, &eng);
            let a = serde_json::to_string(&expected).unwrap();
            let b = serde_json::to_string(&run.tracks).unwrap();
            assert_eq!(a, b, "{streams}-stream output must equal sequential");
            assert!(
                eng.get(Component::Detector) < seq.get(Component::Detector),
                "{streams} streams must shrink detector cost via batching"
            );
            assert!(run.stats.mean_batch_occupancy > 1.0);
            assert_eq!(run.stats.streams, streams.min(clips.len()));
        }
    }

    #[test]
    fn stats_count_every_frame_and_drain_in_flight() {
        let cfg = config();
        let ctx = ExecutionContext::bare(CostModel::default(), 7);
        let clips = clips();
        let expected_frames: u64 = clips
            .iter()
            .map(|c| c.num_frames().div_ceil(cfg.gap) as u64)
            .sum();
        let run = Engine::run(
            &cfg,
            &ctx,
            &clips,
            &EngineOptions::default(),
            &CostLedger::new(),
        );
        assert_eq!(run.stats.frames, expected_frames);
        assert!(run.stats.max_frames_in_flight >= 1);
        // bounded channels cap the in-flight frames per stream
        let per_stream_cap = 3 * (EngineOptions::default().channel_capacity as u64 + 1) + 1;
        assert!(run.stats.max_frames_in_flight <= run.stats.streams as u64 * per_stream_cap);
    }

    #[test]
    fn more_streams_than_clips_is_clamped() {
        let cfg = config();
        let ctx = ExecutionContext::bare(CostModel::default(), 7);
        let clips = clips();
        let opts = EngineOptions {
            streams: clips.len() + 50,
            ..EngineOptions::default()
        };
        let run = Engine::run(&cfg, &ctx, &clips, &opts, &CostLedger::new());
        assert_eq!(run.stats.streams, clips.len());
        assert_eq!(run.tracks.len(), clips.len());
    }
}
