//! Detector execution modes and the shared wall-clock harness.
//!
//! The engine's detector *accounting* is simulated (virtual seconds in
//! the [`otif_cv::CostLedger`]); detector *execution* is the surrogate
//! [`WindowNet`] forward pass, which can run three ways:
//!
//! - [`DetectorExec::Off`] — no surrogate at all (the historical
//!   behaviour; zero overhead).
//! - [`DetectorExec::Looped`] — each detect stage runs one forward per
//!   window before submitting its batcher ticket. This is the wall-clock
//!   baseline: same work, one kernel invocation per window.
//! - [`DetectorExec::Batched`] — window input tensors ride on the
//!   batcher ticket; the flushing thread runs **one** batched forward
//!   per (size, chunk) of the round and scatters the outputs back to
//!   the submitting streams.
//!
//! Both executing modes run bitwise-identical arithmetic per window
//! (the batched kernels accumulate in exactly the looped order — see
//! `otif_nn::kernels`), and neither touches the simulated detections or
//! any ledger charge, so enabling them cannot perturb the virtual-time
//! determinism contract. What differs is *wall-clock*, which this
//! harness accumulates (total forward seconds, forward count, window
//! count) for `EngineStats::detector_wall_seconds`.

use otif_core::WindowNet;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// How the engine executes the surrogate detector forward pass.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DetectorExec {
    /// No surrogate execution (accounting only).
    #[default]
    Off,
    /// One forward per window, run by each stream's detect stage.
    Looped,
    /// One batched forward per (size, chunk) of each batcher round.
    Batched,
}

impl DetectorExec {
    /// Stable lowercase name (CLI flag values, stats JSON).
    pub fn as_str(self) -> &'static str {
        match self {
            DetectorExec::Off => "off",
            DetectorExec::Looped => "looped",
            DetectorExec::Batched => "batched",
        }
    }

    /// Parse a lowercase name back into a mode.
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "off" => Some(DetectorExec::Off),
            "looped" => Some(DetectorExec::Looped),
            "batched" => Some(DetectorExec::Batched),
            _ => None,
        }
    }
}

/// Shared state of one engine run's detector execution: the surrogate
/// network (identical weights for every stream and both paths) plus
/// wall-clock counters fed by whichever threads run forwards.
pub struct DetectorExecHarness {
    net: WindowNet,
    mode: DetectorExec,
    wall_nanos: AtomicU64,
    forwards: AtomicU64,
    windows: AtomicU64,
}

impl DetectorExecHarness {
    /// Harness for one run.
    pub fn new(net: WindowNet, mode: DetectorExec) -> Self {
        DetectorExecHarness {
            net,
            mode,
            wall_nanos: AtomicU64::new(0),
            forwards: AtomicU64::new(0),
            windows: AtomicU64::new(0),
        }
    }

    /// The configured execution mode.
    pub fn mode(&self) -> DetectorExec {
        self.mode
    }

    /// The surrogate network.
    pub fn net(&self) -> &WindowNet {
        &self.net
    }

    /// Accumulate wall-clock spent in `forwards` forward passes covering
    /// `windows` windows.
    pub fn record(&self, elapsed: Duration, forwards: u64, windows: u64) {
        self.wall_nanos
            .fetch_add(elapsed.as_nanos() as u64, Ordering::Relaxed);
        self.forwards.fetch_add(forwards, Ordering::Relaxed);
        self.windows.fetch_add(windows, Ordering::Relaxed);
    }

    /// Total wall-clock seconds spent in surrogate forwards.
    pub fn wall_seconds(&self) -> f64 {
        self.wall_nanos.load(Ordering::Relaxed) as f64 / 1e9
    }

    /// Number of forward passes run (batched passes count once).
    pub fn forwards(&self) -> u64 {
        self.forwards.load(Ordering::Relaxed)
    }

    /// Number of windows executed across all forwards.
    pub fn windows(&self) -> u64 {
        self.windows.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mode_names_round_trip() {
        for m in [
            DetectorExec::Off,
            DetectorExec::Looped,
            DetectorExec::Batched,
        ] {
            assert_eq!(DetectorExec::parse(m.as_str()), Some(m));
        }
        assert_eq!(DetectorExec::parse("nope"), None);
    }

    #[test]
    fn harness_accumulates_counters() {
        use otif_cv::{DetectorArch, DetectorConfig};
        let h = DetectorExecHarness::new(
            WindowNet::new(&DetectorConfig::new(DetectorArch::YoloV3, 0.5), 1),
            DetectorExec::Batched,
        );
        h.record(Duration::from_millis(2), 1, 4);
        h.record(Duration::from_millis(3), 2, 5);
        assert_eq!(h.forwards(), 3);
        assert_eq!(h.windows(), 9);
        assert!((h.wall_seconds() - 0.005).abs() < 1e-9);
        assert_eq!(h.mode(), DetectorExec::Batched);
    }
}
