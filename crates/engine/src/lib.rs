//! # otif-engine — multi-stream streaming execution engine
//!
//! OTIF's deployment setting (§3.2) processes *many* video streams at
//! once on shared GPUs, and gets its throughput from batching detector
//! invocations across streams. This crate is that executor for the
//! simulated pipeline: per stream, decode → window selection →
//! detection → tracking run as four resumable state machines ([`tasks`])
//! connected by bounded queue slots ([`slot`]) and polled by a fixed
//! work-stealing worker pool ([`otif_core::evalpool`]) — a thousand
//! streams run on [`EngineOptions::workers`] OS threads with bounded
//! memory, and [`EngineOptions::max_active_streams`] caps how many
//! streams are admitted concurrently. All streams' detect stages share
//! a [`DetectorBatcher`] that coalesces same-size windows into batched
//! invocations — charging one launch overhead per batch instead of per
//! frame through the [`CostLedger`](otif_cv::CostLedger) batched path.
//!
//! Determinism is the design constraint: every per-clip result is
//! byte-identical to the sequential [`Pipeline`](otif_core::Pipeline),
//! and all cost accounting is independent of scheduling interleaving —
//! worker count included (the batcher flushes on a virtual-time
//! watermark — a round completes when every live admitted stream has
//! submitted — so round contents are a pure function of the per-stream
//! submission sequences).
//!
//! The engine is fault-tolerant: every stage task is polled under a
//! panic-isolating supervisor, a dying stage takes down at most its
//! own stream, recoverable per-clip failures are retried through the
//! sequential pipeline, and [`Engine::run`] reports per-clip
//! [`ClipOutcome`]s and per-stream health instead of panicking.
//! Deterministic fault injection ([`FaultPlan`]) makes all of this
//! testable: the determinism guarantees extend to faulted runs.
//!
//! Execution time is reported two ways: `serial_seconds` is the plain
//! sum of all stage charges, while `execution_seconds` is the
//! *makespan* of the pipelined virtual-time model ([`timeline`]): the
//! decode stage runs ahead of the detector by a per-stream prefetch
//! window ([`EngineOptions::prefetch_frames`]), each stage's clock
//! advances independently, and batcher rounds stamp detector completion
//! times. The gap between the two is accounted per stage in
//! [`StallSeconds`]. Charges never move, so every ledger sum is bitwise
//! identical across prefetch settings.
//!
//! Entry point: [`Engine::run`]. Observability: [`EngineStats`].

pub mod batcher;
pub mod exec;
pub mod fault;
pub mod journal;
pub mod scheduler;
pub(crate) mod slot;
pub(crate) mod stage;
pub mod stats;
pub(crate) mod tasks;
pub mod timeline;

pub use batcher::{DetectorBatcher, RoundRecord, StreamGuard, SubmitError, Ticket};
pub use exec::{DetectorExec, DetectorExecHarness};
pub use fault::{FaultKind, FaultPlan, FaultSpec, PanicReport, StageName};
pub use journal::replay as replay_run_journal;
pub use journal::{
    ClipRecord, FrameRecord, RealRunIo, RunIo, RunJournal, RunManifest, RunReplay, RUN_CLIPS_DIR,
    RUN_JOURNAL_FILE, RUN_MANIFEST_FILE,
};
pub use scheduler::{
    retry_backoff, run_manifest, ClipOutcome, Engine, EngineOptions, EngineRun, RunSession,
};
pub use stats::{EngineCounters, EngineStats, FailedClip, StageSeconds, StreamStatus};
pub use timeline::StallSeconds;
