//! Pipelined virtual-time model: a deterministic post-run replay that
//! turns the per-frame charges recorded during a run into the
//! *makespan* of an overlapped pipeline, plus per-stage stall accounts.
//!
//! The engine's ledger sums are a serial total — every stage's charge
//! added up as if nothing overlapped. Real deployments (PAPER §3.2)
//! overlap decode, proxy and detector work, so the number that matters
//! for throughput is the critical path: per stream and per stage, each
//! clock advances independently and a frame's completion time is
//! `max(ready_time_of_inputs, stage_clock) + charge`.
//!
//! The replay is *not* computed on the live threads (wall-clock
//! interleaving must never leak into reported seconds). Instead the
//! stages record their per-frame charges (see
//! [`ClipTimeline`]) and the batcher records its flush rounds (see
//! [`RoundRecord`](crate::batcher::RoundRecord)); after the threads
//! join, [`replay`] recomputes completion times single-threadedly from
//! those records, which are themselves pure functions of the inputs.
//! Charges never move — only the completion-time model is new — so
//! every ledger sum stays bitwise identical to the serial model.
//!
//! Model, per stream:
//!
//! - **decode**: frame `j` may not start decoding until frame
//!   `j - prefetch` has left the pipeline (been tracked) — the decode
//!   prefetch window. `prefetch = 1` degenerates to today's serial
//!   rendezvous; larger windows let decode run ahead of the detector.
//!   Time decode spends blocked on that gate is
//!   [`StallSeconds::channel_backpressure`].
//! - **window**: starts at `max(window_clock, decode_done)`; time spent
//!   idle awaiting a decoded frame is [`StallSeconds::decode_starved`].
//! - **detect**: ticketed frames complete when their batch round does.
//!   A round starts at `max(detector_clock, latest member's
//!   window_done)` and runs for its recorded launch + pixel charges;
//!   each member's wait from window_done to round start is
//!   [`StallSeconds::batcher_wait`]. Frames with no windows pass
//!   through with zero charge, in stream order.
//! - **track**: starts at `max(track_clock, detect_done)`; clip
//!   finalization (stitch + refine) extends the track clock before the
//!   next clip's frames are consumed.
//!
//! Only clips that completed *in-stream* are replayed: a failed clip's
//! charges are discarded from the ledger (`wasted_seconds`), so they
//! must not shape the reported makespan either — that also keeps the
//! replay deterministic under injected faults, because the completed
//! set and the surviving ticket sequences are deterministic while a
//! dead stream's decode-ahead depth is not.

use crate::batcher::RoundRecord;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Per-frame charges recorded by the stage loops for one clip, indexed
/// by sampled-frame ordinal. Only complete recordings (every frame of
/// the clip passed every stage) are replayed, so all vectors have the
/// clip's sampled-frame length for any clip the replay looks at.
#[derive(Debug, Default)]
pub struct ClipTimeline {
    /// Decode seconds per frame.
    pub decode: Vec<f64>,
    /// Window-selection (proxy) seconds per frame.
    pub window: Vec<f64>,
    /// Detector pixel seconds per frame; `None` for frames with no
    /// windows (they bypass the batcher entirely).
    pub detect_px: Vec<Option<f64>>,
    /// Rounded detector window sizes per frame — the sizes the frame's
    /// batcher ticket carried (empty for ticketless frames). Not part
    /// of the replay; recorded so a run-journal checkpoint can
    /// reproduce the ticket stream on resume.
    pub sizes: Vec<Vec<(u32, u32)>>,
    /// Tracker step seconds per frame.
    pub track: Vec<f64>,
    /// Clip finalization seconds (track stitch + refinement), charged
    /// after the last frame.
    pub finalize: f64,
    /// Running FNV-1a digest over the clip's surrogate detector outputs
    /// (frame-ordinal, then window order), recorded by the detect stage
    /// when a [`DetectorExec`](crate::exec::DetectorExec) mode is on;
    /// stays 0 when execution is off. Not part of the replay — it is
    /// the per-clip half of the batched≡looped bitwise contract.
    pub detect_digest: u64,
}

impl ClipTimeline {
    /// Whether every per-frame vector recorded exactly `frames` frames.
    pub(crate) fn complete(&self, frames: usize) -> bool {
        self.decode.len() == frames
            && self.window.len() == frames
            && self.detect_px.len() == frames
            && self.sizes.len() == frames
            && self.track.len() == frames
    }
}

/// Simulated seconds each stage spent stalled — the gap between the
/// serial charge sum and the pipelined makespan, attributed to the
/// three ways a stage goes idle. These are per-stage accounts, not a
/// partition of `serial - makespan` (overlapped work also shrinks the
/// gap without stalling anything).
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct StallSeconds {
    /// Window stage idle, waiting for a decoded frame.
    pub decode_starved: f64,
    /// Detector tickets waiting for their cross-stream batch round to
    /// gather (the watermark rendezvous).
    pub batcher_wait: f64,
    /// Decode idle because its prefetch window was full — the frame
    /// `prefetch` positions back had not yet left the pipeline.
    pub channel_backpressure: f64,
}

impl StallSeconds {
    /// Sum over all stall accounts.
    pub fn total(&self) -> f64 {
        self.decode_starved + self.batcher_wait + self.channel_backpressure
    }
}

/// The replay's outputs: the critical-path makespan of the streaming
/// portion of a run, and where time stalled.
#[derive(Debug, Clone, Copy, Default)]
pub struct ReplayOutcome {
    /// Completion time of the last stage clock (simulated seconds).
    pub makespan: f64,
    /// Per-stage stall accounts.
    pub stalls: StallSeconds,
}

/// One frame of a stream's flattened (clip-concatenated) frame
/// sequence.
struct FrameSim {
    decode: f64,
    window: f64,
    detect_px: Option<f64>,
    track: f64,
    /// Finalization charge applied after this frame's track step
    /// (non-zero only on a clip's last frame).
    finalize: f64,
}

/// Per-stream virtual clocks and completion times, advanced lazily as
/// the round log demands.
struct StreamSim {
    frames: Vec<FrameSim>,
    decode_clock: f64,
    window_clock: f64,
    detect_clock: f64,
    track_clock: f64,
    next_window: usize,
    next_detect: usize,
    next_track: usize,
    window_done: Vec<f64>,
    detect_done: Vec<f64>,
    track_done: Vec<f64>,
}

impl StreamSim {
    fn new(frames: Vec<FrameSim>) -> Self {
        let n = frames.len();
        StreamSim {
            frames,
            decode_clock: 0.0,
            window_clock: 0.0,
            detect_clock: 0.0,
            track_clock: 0.0,
            next_window: 0,
            next_detect: 0,
            next_track: 0,
            window_done: vec![0.0; n],
            detect_done: vec![0.0; n],
            track_done: vec![0.0; n],
        }
    }

    /// Advance decode + window through frame `upto` (inclusive).
    fn ensure_windowed(&mut self, upto: usize, prefetch: usize, stalls: &mut StallSeconds) {
        while self.next_window <= upto {
            let k = self.next_window;
            // Decode-ahead gate: frame k may not be decoded before
            // frame k - prefetch has left the pipeline.
            let gate = if k >= prefetch {
                self.ensure_tracked(k - prefetch, stalls);
                self.track_done[k - prefetch]
            } else {
                0.0
            };
            if gate > self.decode_clock {
                stalls.channel_backpressure += gate - self.decode_clock;
            }
            let decode_done = gate.max(self.decode_clock) + self.frames[k].decode;
            self.decode_clock = decode_done;
            if decode_done > self.window_clock {
                stalls.decode_starved += decode_done - self.window_clock;
            }
            self.window_done[k] = decode_done.max(self.window_clock) + self.frames[k].window;
            self.window_clock = self.window_done[k];
            self.next_window = k + 1;
        }
    }

    /// Advance detect through frame `upto` (inclusive) for frames that
    /// carry no ticket (pass-through, zero charge). Ticketed frames are
    /// completed by their round in [`replay`], never here.
    fn ensure_detected(&mut self, upto: usize) {
        while self.next_detect <= upto {
            let k = self.next_detect;
            debug_assert!(
                self.frames[k].detect_px.is_none(),
                "ticketed frame must be completed by its batch round"
            );
            let done = self.detect_clock.max(self.window_done[k]);
            self.detect_done[k] = done;
            self.detect_clock = done;
            self.next_detect = k + 1;
        }
    }

    /// Advance track through frame `upto` (inclusive).
    fn ensure_tracked(&mut self, upto: usize, _stalls: &mut StallSeconds) {
        while self.next_track <= upto {
            let k = self.next_track;
            if k >= self.next_detect {
                self.ensure_detected(k);
            }
            // A clip's finalization (stitch + refine) happens on the
            // track thread before it consumes anything further, so the
            // last frame's exit — which the decode prefetch gate
            // watches — includes it. This is also what makes
            // `prefetch = 1` degenerate exactly to the serial sum.
            // Track starts at the frame's *own* detect completion (the
            // per-stream `detect_done` is monotone, and `track_clock`
            // already enforces in-order consumption); gating on the
            // stream's latest detect event instead would let lazy
            // evaluation order leak into the model.
            self.track_done[k] = self.detect_done[k].max(self.track_clock)
                + self.frames[k].track
                + self.frames[k].finalize;
            self.track_clock = self.track_done[k];
            self.next_track = k + 1;
        }
    }
}

/// Replay a run's recorded charges under the pipelined model.
///
/// `assignments[s]` lists stream `s`'s clips as global indices in
/// processing order; `completed[clip]` marks clips that finished
/// in-stream (failed clips are excluded from the replay exactly as
/// their charges are excluded from the ledger); `frame_counts[clip]`
/// is the clip's sampled-frame count; `rounds` is the batcher's flush
/// log in flush order. `prefetch` is clamped to ≥ 1.
pub(crate) fn replay(
    assignments: &[Vec<usize>],
    completed: &[bool],
    frame_counts: &[usize],
    timelines: &[parking_lot::Mutex<ClipTimeline>],
    rounds: &[RoundRecord],
    prefetch: usize,
) -> ReplayOutcome {
    let prefetch = prefetch.max(1);
    // (clip, ordinal) → (stream, flattened frame index) for surviving
    // frames, so round tickets can be mapped back onto stream clocks.
    let mut locate: HashMap<(usize, usize), (usize, usize)> = HashMap::new();
    let mut sims: Vec<StreamSim> = Vec::with_capacity(assignments.len());
    for (s, assigned) in assignments.iter().enumerate() {
        let mut frames: Vec<FrameSim> = Vec::new();
        for &clip in assigned {
            if !completed[clip] {
                continue;
            }
            let t = timelines[clip].lock();
            if !t.complete(frame_counts[clip]) {
                // Defensive: a clip marked completed must have a full
                // recording; skip rather than misalign the replay.
                debug_assert!(false, "completed clip {clip} has a partial timeline");
                continue;
            }
            let base = frames.len();
            for o in 0..frame_counts[clip] {
                locate.insert((clip, o), (s, base + o));
                frames.push(FrameSim {
                    decode: t.decode[o],
                    window: t.window[o],
                    detect_px: t.detect_px[o],
                    track: t.track[o],
                    finalize: if o + 1 == frame_counts[clip] {
                        t.finalize
                    } else {
                        0.0
                    },
                });
            }
        }
        sims.push(StreamSim::new(frames));
    }

    let mut stalls = StallSeconds::default();
    let mut detector_clock = 0.0f64;
    for round in rounds {
        // Tickets of failed clips contributed no surviving pixel
        // charges (their ledgers were discarded), but the round's
        // launch overhead was charged to the shared ledger and is
        // replayed as recorded.
        let members: Vec<(usize, usize)> = round
            .tickets
            .iter()
            .filter_map(|t| locate.get(&(t.clip, t.ordinal)).copied())
            .collect();
        let mut start = detector_clock;
        for &(s, j) in &members {
            sims[s].ensure_windowed(j, prefetch, &mut stalls);
            start = start.max(sims[s].window_done[j]);
        }
        let pixel: f64 = members
            .iter()
            .map(|&(s, j)| {
                sims[s].frames[j]
                    .detect_px
                    .expect("round member frame carries a pixel charge")
            })
            .sum();
        let end = start + round.launch_seconds + pixel;
        for &(s, j) in &members {
            stalls.batcher_wait += start - sims[s].window_done[j];
            if j > 0 {
                sims[s].ensure_detected(j - 1);
            }
            sims[s].detect_done[j] = end;
            sims[s].detect_clock = sims[s].detect_clock.max(end);
            sims[s].next_detect = j + 1;
        }
        detector_clock = end;
    }

    // Drain: trailing frames (after each stream's last ticket) and
    // streams that never ticketed at all.
    let mut makespan = detector_clock;
    for sim in &mut sims {
        if let Some(last) = sim.frames.len().checked_sub(1) {
            sim.ensure_windowed(last, prefetch, &mut stalls);
            sim.ensure_tracked(last, &mut stalls);
        }
        makespan = makespan.max(sim.track_clock);
    }
    ReplayOutcome { makespan, stalls }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::batcher::{RoundRecord, Ticket};
    use parking_lot::Mutex;

    fn timeline(decode: f64, window: f64, px: Option<f64>, track: f64, n: usize) -> ClipTimeline {
        ClipTimeline {
            decode: vec![decode; n],
            window: vec![window; n],
            detect_px: vec![px; n],
            sizes: vec![Vec::new(); n],
            track: vec![track; n],
            finalize: 0.0,
            detect_digest: 0,
        }
    }

    /// One stream at prefetch=1 with a per-frame round degenerates to
    /// the serial sum: every stage waits for the previous frame to
    /// fully exit.
    #[test]
    fn single_stream_prefetch_one_is_serial() {
        let n = 5usize;
        let t = timeline(2.0, 1.0, Some(3.0), 0.5, n);
        let timelines = vec![Mutex::new(t)];
        let rounds: Vec<RoundRecord> = (0..n)
            .map(|o| RoundRecord {
                tickets: vec![Ticket {
                    stream: 0,
                    clip: 0,
                    ordinal: o,
                    items: 1,
                    pixel_seconds: 3.0,
                }],
                launch_seconds: 0.25,
            })
            .collect();
        let out = replay(&[vec![0]], &[true], &[n], &timelines, &rounds, 1);
        let serial = n as f64 * (2.0 + 1.0 + 3.0 + 0.25 + 0.5);
        assert!(
            (out.makespan - serial).abs() < 1e-9,
            "makespan {} vs serial {serial}",
            out.makespan
        );
        // fully serial: decode waits for each frame to exit
        assert!(out.stalls.channel_backpressure > 0.0);
    }

    /// With a deep prefetch window the same stream overlaps decode
    /// against the detector: the makespan approaches the bottleneck
    /// stage instead of the sum.
    #[test]
    fn prefetch_overlaps_decode_with_detector() {
        let n = 8usize;
        let t = timeline(2.0, 0.0, Some(3.0), 0.1, n);
        let timelines = vec![Mutex::new(t)];
        let rounds: Vec<RoundRecord> = (0..n)
            .map(|o| RoundRecord {
                tickets: vec![Ticket {
                    stream: 0,
                    clip: 0,
                    ordinal: o,
                    items: 1,
                    pixel_seconds: 3.0,
                }],
                launch_seconds: 0.0,
            })
            .collect();
        let serial = replay(&[vec![0]], &[true], &[n], &timelines, &rounds, 1);
        let deep = replay(&[vec![0]], &[true], &[n], &timelines, &rounds, 64);
        assert!(
            deep.makespan < serial.makespan * 0.7,
            "{deep:?} vs {serial:?}"
        );
        // detector-bound: decode finishes ahead, tickets never wait on
        // a sibling, the window stage is the starved one
        assert!(deep.stalls.channel_backpressure < serial.stalls.channel_backpressure);
        // lower bound: the bottleneck stage's total work
        assert!(deep.makespan >= n as f64 * 3.0);
    }

    /// Failed clips are excluded: their frames shape neither the
    /// makespan nor the stalls, even when their tickets appear in the
    /// recorded rounds.
    #[test]
    fn failed_clips_are_excluded_from_replay() {
        let n = 4usize;
        let timelines = vec![
            Mutex::new(timeline(1.0, 0.0, Some(2.0), 0.5, n)),
            // failed clip recorded only partially
            Mutex::new(ClipTimeline {
                decode: vec![1.0; 2],
                ..ClipTimeline::default()
            }),
        ];
        let rounds: Vec<RoundRecord> = (0..n)
            .map(|o| RoundRecord {
                tickets: vec![
                    Ticket {
                        stream: 0,
                        clip: 0,
                        ordinal: o,
                        items: 1,
                        pixel_seconds: 2.0,
                    },
                    Ticket {
                        stream: 1,
                        clip: 1,
                        ordinal: o,
                        items: 1,
                        pixel_seconds: 2.0,
                    },
                ],
                launch_seconds: 0.5,
            })
            .collect();
        let with_failed = replay(
            &[vec![0], vec![1]],
            &[true, false],
            &[n, n],
            &timelines,
            &rounds,
            4,
        );
        // identical to a run where the failed clip's stream was empty
        let rounds_alone: Vec<RoundRecord> = (0..n)
            .map(|o| RoundRecord {
                tickets: vec![Ticket {
                    stream: 0,
                    clip: 0,
                    ordinal: o,
                    items: 1,
                    pixel_seconds: 2.0,
                }],
                launch_seconds: 0.5,
            })
            .collect();
        let timelines_alone = vec![Mutex::new(timeline(1.0, 0.0, Some(2.0), 0.5, n))];
        let alone = replay(
            &[vec![0]],
            &[true],
            &[n],
            &timelines_alone,
            &rounds_alone,
            4,
        );
        assert_eq!(with_failed.makespan, alone.makespan);
        assert_eq!(with_failed.stalls, alone.stalls);
    }

    /// Two streams sharing rounds: the batcher rendezvous shows up as
    /// batcher_wait on the faster stream.
    #[test]
    fn uneven_streams_accumulate_batcher_wait() {
        let n = 6usize;
        let timelines = vec![
            Mutex::new(timeline(1.0, 0.0, Some(1.0), 0.1, n)),
            Mutex::new(timeline(3.0, 0.0, Some(1.0), 0.1, n)),
        ];
        let rounds: Vec<RoundRecord> = (0..n)
            .map(|o| RoundRecord {
                tickets: (0..2)
                    .map(|s| Ticket {
                        stream: s,
                        clip: s,
                        ordinal: o,
                        items: 1,
                        pixel_seconds: 1.0,
                    })
                    .collect(),
                launch_seconds: 0.2,
            })
            .collect();
        let out = replay(
            &[vec![0], vec![1]],
            &[true, true],
            &[n, n],
            &timelines,
            &rounds,
            16,
        );
        // stream 0 decodes 3× faster; its tickets wait for stream 1
        assert!(out.stalls.batcher_wait > 0.0, "{:?}", out.stalls);
    }
}
