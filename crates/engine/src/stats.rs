//! Engine observability: lock-free per-stage counters updated by the
//! stage threads, snapshotted into a serializable [`EngineStats`] at
//! the end of a run.

use otif_cv::{Component, CostLedger};
use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicU64, Ordering};

/// Index of the decode→window queue in queue-depth arrays.
pub const QUEUE_DECODE: usize = 0;
/// Index of the window→detect queue.
pub const QUEUE_WINDOW: usize = 1;
/// Index of the detect→track queue.
pub const QUEUE_DETECT: usize = 2;

/// Live atomic counters shared by all stage threads of a run.
#[derive(Debug, Default)]
pub struct EngineCounters {
    /// Frames that entered the pipeline (decode stage).
    pub frames_decoded: AtomicU64,
    /// Frames whose windows were selected.
    pub frames_windowed: AtomicU64,
    /// Frames whose detections were produced.
    pub frames_detected: AtomicU64,
    /// Frames consumed by the tracker (pipeline exit).
    pub frames_tracked: AtomicU64,
    in_flight: AtomicU64,
    max_in_flight: AtomicU64,
    max_queue_depth: [AtomicU64; 3],
}

impl EngineCounters {
    /// Record a frame entering the pipeline (decode stage send).
    pub fn frame_entered(&self) {
        let now = self.in_flight.fetch_add(1, Ordering::Relaxed) + 1;
        self.max_in_flight.fetch_max(now, Ordering::Relaxed);
    }

    /// Record a frame leaving the pipeline (track stage consume).
    pub fn frame_exited(&self) {
        self.in_flight.fetch_sub(1, Ordering::Relaxed);
    }

    /// Frames currently somewhere between decode and track.
    pub fn frames_in_flight(&self) -> u64 {
        self.in_flight.load(Ordering::Relaxed)
    }

    /// Sample a queue's depth after a send (`queue` is one of the
    /// `QUEUE_*` indices).
    pub fn observe_queue_depth(&self, queue: usize, depth: usize) {
        self.max_queue_depth[queue].fetch_max(depth as u64, Ordering::Relaxed);
    }
}

/// Simulated seconds spent per execution stage.
#[derive(Debug, Clone, Copy, Default, Serialize, Deserialize)]
pub struct StageSeconds {
    /// Video decode (CPU).
    pub decode: f64,
    /// Segmentation proxy inference (GPU).
    pub proxy: f64,
    /// Detector inference (GPU) — pixel cost plus batched launches.
    pub detector: f64,
    /// Tracker matching + stitch (CPU).
    pub tracker: f64,
    /// Track refinement (CPU).
    pub refinement: f64,
}

impl StageSeconds {
    /// Sum over all stages.
    pub fn total(&self) -> f64 {
        self.decode + self.proxy + self.detector + self.tracker + self.refinement
    }
}

/// Snapshot of one engine run, serializable into bench artifacts.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct EngineStats {
    /// Number of streams the run used.
    pub streams: usize,
    /// Number of clips processed.
    pub clips: usize,
    /// Frames that completed the whole pipeline.
    pub frames: u64,
    /// Peak number of frames in flight across all streams.
    pub max_frames_in_flight: u64,
    /// Peak depth of the decode→window, window→detect and detect→track
    /// queues (indexed by the `QUEUE_*` constants).
    pub max_queue_depth: [u64; 3],
    /// Batched detector invocations.
    pub batches: u64,
    /// Windows carried by those invocations.
    pub batch_items: u64,
    /// Mean windows per batched invocation.
    pub mean_batch_occupancy: f64,
    /// Simulated seconds per stage.
    pub stage_seconds: StageSeconds,
    /// Total simulated execution seconds.
    pub execution_seconds: f64,
}

impl EngineStats {
    /// Build a snapshot from a run's counters and its private ledger.
    pub fn snapshot(
        streams: usize,
        clips: usize,
        counters: &EngineCounters,
        ledger: &CostLedger,
    ) -> Self {
        let batch = ledger.batch_stats();
        EngineStats {
            streams,
            clips,
            frames: counters.frames_tracked.load(Ordering::Relaxed),
            max_frames_in_flight: counters.max_in_flight.load(Ordering::Relaxed),
            max_queue_depth: [
                counters.max_queue_depth[0].load(Ordering::Relaxed),
                counters.max_queue_depth[1].load(Ordering::Relaxed),
                counters.max_queue_depth[2].load(Ordering::Relaxed),
            ],
            batches: batch.batches,
            batch_items: batch.items,
            mean_batch_occupancy: batch.mean_occupancy(),
            stage_seconds: StageSeconds {
                decode: ledger.get(Component::Decode),
                proxy: ledger.get(Component::Proxy),
                detector: ledger.get(Component::Detector),
                tracker: ledger.get(Component::Tracker),
                refinement: ledger.get(Component::Refinement),
            },
            execution_seconds: ledger.execution_total(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn in_flight_gauge_tracks_peak() {
        let c = EngineCounters::default();
        c.frame_entered();
        c.frame_entered();
        c.frame_entered();
        c.frame_exited();
        assert_eq!(c.frames_in_flight(), 2);
        c.frame_entered();
        let s = EngineStats::snapshot(1, 1, &c, &CostLedger::new());
        assert_eq!(s.max_frames_in_flight, 3);
    }

    #[test]
    fn snapshot_reads_ledger_components() {
        let c = EngineCounters::default();
        let l = CostLedger::new();
        l.charge(Component::Decode, 1.0);
        l.charge_batch(Component::Detector, 0.5, 4);
        l.charge_batch(Component::Detector, 0.5, 2);
        let s = EngineStats::snapshot(2, 3, &c, &l);
        assert_eq!(s.streams, 2);
        assert_eq!(s.batches, 2);
        assert!((s.mean_batch_occupancy - 3.0).abs() < 1e-12);
        assert!((s.stage_seconds.decode - 1.0).abs() < 1e-12);
        assert!((s.execution_seconds - 2.0).abs() < 1e-12);
        assert!((s.stage_seconds.total() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn stats_serialize_round_trip() {
        let s = EngineStats::snapshot(4, 8, &EngineCounters::default(), &CostLedger::new());
        let json = serde_json::to_string(&s).unwrap();
        let back: EngineStats = serde_json::from_str(&json).unwrap();
        assert_eq!(back.streams, 4);
        assert_eq!(back.clips, 8);
    }
}
