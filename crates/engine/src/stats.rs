//! Engine observability: lock-free per-stage counters updated by the
//! stage threads, snapshotted into a serializable [`EngineStats`] at
//! the end of a run — including per-stream health and the exact list
//! of failed clips.

use crate::fault::{PanicReport, StageName};
use crate::timeline::StallSeconds;
use otif_cv::{Component, CostLedger};
use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicU64, Ordering};

/// Index of the decode→window queue in queue-depth arrays.
pub const QUEUE_DECODE: usize = 0;
/// Index of the window→detect queue.
pub const QUEUE_WINDOW: usize = 1;
/// Index of the detect→track queue.
pub const QUEUE_DETECT: usize = 2;

/// Live atomic counters shared by all stage threads of a run.
#[derive(Debug, Default)]
pub struct EngineCounters {
    /// Frames that entered the pipeline (decode stage).
    pub frames_decoded: AtomicU64,
    /// Frames whose windows were selected.
    pub frames_windowed: AtomicU64,
    /// Frames whose detections were produced.
    pub frames_detected: AtomicU64,
    /// Frames consumed by the tracker (pipeline exit).
    pub frames_tracked: AtomicU64,
    /// Cooperative yields per stage task kind (decode, window, detect,
    /// track) — a budget-exhausted task handing its worker back.
    pub stage_yields: [AtomicU64; 4],
    in_flight: AtomicU64,
    max_in_flight: AtomicU64,
    max_queue_depth: [AtomicU64; 3],
    peak_os_threads: AtomicU64,
}

impl EngineCounters {
    /// Record a frame entering the pipeline (decode stage send).
    pub fn frame_entered(&self) {
        let now = self.in_flight.fetch_add(1, Ordering::Relaxed) + 1;
        self.max_in_flight.fetch_max(now, Ordering::Relaxed);
    }

    /// Record a frame leaving the pipeline (track stage consume).
    pub fn frame_exited(&self) {
        self.in_flight.fetch_sub(1, Ordering::Relaxed);
    }

    /// Frames currently somewhere between decode and track.
    pub fn frames_in_flight(&self) -> u64 {
        self.in_flight.load(Ordering::Relaxed)
    }

    /// Sample a queue's depth after a send (`queue` is one of the
    /// `QUEUE_*` indices).
    pub fn observe_queue_depth(&self, queue: usize, depth: usize) {
        self.max_queue_depth[queue].fetch_max(depth as u64, Ordering::Relaxed);
    }

    /// Sample the process's current OS thread count into the peak
    /// gauge — the oversubscription guard for the fixed worker pool.
    /// Cheap (one /proc readdir), called at clip boundaries only.
    pub fn sample_os_threads(&self) {
        #[cfg(target_os = "linux")]
        if let Ok(entries) = std::fs::read_dir("/proc/self/task") {
            let n = entries.count() as u64;
            self.peak_os_threads.fetch_max(n, Ordering::Relaxed);
        }
    }

    /// Peak sampled OS thread count (0 if never sampled or unsupported).
    pub fn peak_os_threads(&self) -> u64 {
        self.peak_os_threads.load(Ordering::Relaxed)
    }
}

/// Simulated seconds spent per execution stage.
#[derive(Debug, Clone, Copy, Default, Serialize, Deserialize)]
pub struct StageSeconds {
    /// Video decode (CPU).
    pub decode: f64,
    /// Segmentation proxy inference (GPU).
    pub proxy: f64,
    /// Detector inference (GPU) — pixel cost plus batched launches.
    pub detector: f64,
    /// Tracker matching + stitch (CPU).
    pub tracker: f64,
    /// Track refinement (CPU).
    pub refinement: f64,
}

impl StageSeconds {
    /// Sum over all stages.
    pub fn total(&self) -> f64 {
        self.decode + self.proxy + self.detector + self.tracker + self.refinement
    }
}

/// Per-stream completion status for one engine run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StreamStatus {
    /// Stream index.
    pub stream: usize,
    /// Clips assigned to this stream (round-robin).
    pub clips_assigned: usize,
    /// Clips the stream completed during the streaming run.
    pub clips_completed: usize,
    /// Clips the stream failed (before any sequential retry).
    pub clips_failed: usize,
    /// The first captured stage panic of this stream, if any.
    pub panicked: Option<PanicReport>,
}

impl StreamStatus {
    /// Whether the stream completed every assigned clip without a
    /// panic.
    pub fn healthy(&self) -> bool {
        self.clips_failed == 0 && self.panicked.is_none()
    }
}

/// One clip that failed during the streaming run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FailedClip {
    /// Global clip index.
    pub clip: usize,
    /// Stream the clip was assigned to.
    pub stream: usize,
    /// Stage the failure is attributed to.
    pub stage: StageName,
    /// Failure description (injected reason or panic payload).
    pub reason: String,
    /// Whether the sequential fallback retry recovered the clip.
    pub recovered: bool,
}

/// Snapshot of one engine run, serializable into bench artifacts.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct EngineStats {
    /// Number of streams the run used.
    pub streams: usize,
    /// Number of clips processed.
    pub clips: usize,
    /// Frames that completed the whole pipeline.
    pub frames: u64,
    /// Peak number of frames in flight across all streams.
    pub max_frames_in_flight: u64,
    /// Peak depth of the decode→window, window→detect and detect→track
    /// queues (indexed by the `QUEUE_*` constants).
    pub max_queue_depth: [u64; 3],
    /// Batched detector invocations.
    pub batches: u64,
    /// Windows carried by those invocations.
    pub batch_items: u64,
    /// Mean windows per batched invocation (flushed chunks only;
    /// discarded tickets are excluded and counted separately).
    pub mean_batch_occupancy: f64,
    /// Tickets submitted but never flushed (stream died while its
    /// ticket was pending) — excluded from occupancy and charges.
    pub discarded_tickets: u64,
    /// Windows carried by those discarded tickets.
    pub discarded_items: u64,
    /// Simulated seconds per stage.
    pub stage_seconds: StageSeconds,
    /// Critical-path makespan of the run under the pipelined
    /// virtual-time model (plus sequential retry seconds, which run
    /// after the streaming portion). This is the headline throughput
    /// number; the serial charge sum is `serial_seconds`.
    pub execution_seconds: f64,
    /// Serial sum of all execution-stage charges — the ledger's
    /// `execution_total`, identical to the pre-pipelining
    /// `execution_seconds` and bitwise independent of `prefetch_frames`.
    pub serial_seconds: f64,
    /// Decode-ahead window the run used (frames per stream).
    pub prefetch_frames: usize,
    /// Per-stage stall accounts from the pipelined replay.
    pub stall_seconds: StallSeconds,
    /// `serial_seconds / execution_seconds` (1.0 when degenerate).
    pub pipeline_speedup: f64,
    /// Clips that failed during the streaming run (counted before any
    /// sequential retry; a retried clip still counts here).
    pub failed_clips: usize,
    /// Failed clips recovered by the sequential fallback retry.
    pub retried_clips: usize,
    /// Individual retry attempts run (today the sequential fallback is
    /// infallible, so this equals `retried_clips`; the backoff budget
    /// allows more).
    pub retry_attempts: u64,
    /// Virtual seconds of deterministic retry backoff scheduled
    /// (`retry_backoff_base * 2^k` per attempt k) — included in
    /// `execution_seconds`, never in the ledger sums.
    pub retry_backoff_seconds: f64,
    /// Stage panics captured by the supervision shim.
    pub panics: usize,
    /// Exactly which clips failed, where, and whether they recovered.
    pub failures: Vec<FailedClip>,
    /// Per-stream completion status.
    pub stream_status: Vec<StreamStatus>,
    /// Simulated seconds charged by clips that then failed — work the
    /// run performed but discarded from the cost accounting.
    pub wasted_seconds: f64,
    /// Share of `stage_seconds.detector` that is batched launch
    /// overhead (the cross-stream shared cost; the rest is per-clip
    /// pixel cost).
    pub launch_seconds: f64,
    /// Detector execution mode the run used (`"off"`, `"looped"` or
    /// `"batched"` — see [`DetectorExec`](crate::exec::DetectorExec)).
    pub detector_exec: String,
    /// Wall-clock (not simulated) seconds spent in surrogate detector
    /// forward passes; 0 when execution is off.
    pub detector_wall_seconds: f64,
    /// Surrogate forward passes run (a batched pass counts once).
    pub detector_forwards: u64,
    /// Windows executed across those forward passes.
    pub detector_exec_windows: u64,
    /// FNV-1a digest over the surrogate outputs of all completed clips
    /// (clip order, then frame-ordinal, then window order). Identical
    /// between looped and batched runs by the bitwise-kernel contract;
    /// 0 when execution is off.
    pub detector_digest: u64,
    /// Clips a resumed run replayed from the run journal instead of
    /// recomputing (0 on fresh runs).
    pub resumed_clips_skipped: usize,
    /// Clips a resumed run had to recompute (they were unacknowledged
    /// at the crash, or their checkpoint failed recovery; 0 on fresh
    /// runs).
    pub resumed_clips_recomputed: usize,
    /// Clips durably checkpointed to the run journal this run (0 when
    /// the run is unjournaled).
    pub clips_checkpointed: u64,
    /// Checkpoint attempts that failed (the clip still completes
    /// in-memory; it is simply not acknowledged and will be recomputed
    /// by a future resume).
    pub checkpoint_failures: u64,
    /// Worker threads the task pool used (0 for pre-task-engine stats).
    pub workers: usize,
    /// Admission cap on concurrently active streams (equals `streams`
    /// when admission control is off).
    pub max_active_streams: usize,
    /// Peak number of runnable (queued) tasks observed by the worker
    /// pool — how deep the ready queue got.
    pub peak_runnable_tasks: u64,
    /// Tasks stolen across worker-local deques.
    pub task_steals: u64,
    /// Total task polls the pool executed.
    pub task_polls: u64,
    /// Cooperative yields per stage (decode, window, detect, track).
    pub stage_yields: [u64; 4],
    /// Peak OS thread count sampled during the run (the
    /// oversubscription guard; 0 when never sampled).
    pub peak_os_threads: u64,
}

/// The deterministic subset of [`EngineStats`], with every `f64` as its
/// exact bit pattern: what an interrupted-and-resumed run must
/// reproduce byte-for-byte against an uninterrupted run (for
/// healthy-compute runs). Excludes inherently racy observability
/// (queue depths, in-flight peaks, wall-clock surrogate timings) and
/// the resume/checkpoint bookkeeping itself.
#[derive(Debug, PartialEq, Eq, Serialize, Deserialize)]
struct DeterministicStats {
    streams: usize,
    clips: usize,
    frames: u64,
    batches: u64,
    batch_items: u64,
    mean_batch_occupancy: u64,
    stage_seconds: [u64; 5],
    execution_seconds: u64,
    serial_seconds: u64,
    prefetch_frames: usize,
    stall_seconds: [u64; 3],
    pipeline_speedup: u64,
    failed_clips: usize,
    retried_clips: usize,
    retry_attempts: u64,
    retry_backoff_seconds: u64,
    launch_seconds: u64,
    detector_exec: String,
    detector_digest: u64,
}

impl EngineStats {
    /// Build a snapshot from a run's counters and its private ledger.
    pub fn snapshot(
        streams: usize,
        clips: usize,
        counters: &EngineCounters,
        ledger: &CostLedger,
    ) -> Self {
        let batch = ledger.batch_stats();
        EngineStats {
            streams,
            clips,
            frames: counters.frames_tracked.load(Ordering::Relaxed),
            max_frames_in_flight: counters.max_in_flight.load(Ordering::Relaxed),
            max_queue_depth: [
                counters.max_queue_depth[0].load(Ordering::Relaxed),
                counters.max_queue_depth[1].load(Ordering::Relaxed),
                counters.max_queue_depth[2].load(Ordering::Relaxed),
            ],
            batches: batch.batches,
            batch_items: batch.items,
            mean_batch_occupancy: batch.mean_occupancy(),
            discarded_tickets: batch.discarded_tickets,
            discarded_items: batch.discarded_items,
            stage_seconds: StageSeconds {
                decode: ledger.get(Component::Decode),
                proxy: ledger.get(Component::Proxy),
                detector: ledger.get(Component::Detector),
                tracker: ledger.get(Component::Tracker),
                refinement: ledger.get(Component::Refinement),
            },
            execution_seconds: ledger.execution_total(),
            serial_seconds: ledger.execution_total(),
            prefetch_frames: 1,
            stall_seconds: StallSeconds::default(),
            pipeline_speedup: 1.0,
            failed_clips: 0,
            retried_clips: 0,
            retry_attempts: 0,
            retry_backoff_seconds: 0.0,
            panics: 0,
            failures: Vec::new(),
            stream_status: Vec::new(),
            wasted_seconds: 0.0,
            launch_seconds: 0.0,
            detector_exec: crate::exec::DetectorExec::Off.as_str().to_string(),
            detector_wall_seconds: 0.0,
            detector_forwards: 0,
            detector_exec_windows: 0,
            detector_digest: 0,
            resumed_clips_skipped: 0,
            resumed_clips_recomputed: 0,
            clips_checkpointed: 0,
            checkpoint_failures: 0,
            workers: 0,
            max_active_streams: 0,
            peak_runnable_tasks: 0,
            task_steals: 0,
            task_polls: 0,
            stage_yields: [
                counters.stage_yields[0].load(Ordering::Relaxed),
                counters.stage_yields[1].load(Ordering::Relaxed),
                counters.stage_yields[2].load(Ordering::Relaxed),
                counters.stage_yields[3].load(Ordering::Relaxed),
            ],
            peak_os_threads: counters.peak_os_threads(),
        }
    }

    /// Whether every clip completed in the streaming run (no failures,
    /// no panics).
    pub fn healthy(&self) -> bool {
        self.failed_clips == 0 && self.panics == 0
    }

    /// Serialize the deterministic subset of this snapshot (every `f64`
    /// as its exact bit pattern). Two healthy-compute runs over the same
    /// inputs — including a crashed-and-resumed run against its
    /// uninterrupted twin — must produce byte-identical projections.
    pub fn deterministic_projection(&self) -> String {
        let s = &self.stage_seconds;
        let st = &self.stall_seconds;
        serde_json::to_string(&DeterministicStats {
            streams: self.streams,
            clips: self.clips,
            frames: self.frames,
            batches: self.batches,
            batch_items: self.batch_items,
            mean_batch_occupancy: self.mean_batch_occupancy.to_bits(),
            stage_seconds: [
                s.decode.to_bits(),
                s.proxy.to_bits(),
                s.detector.to_bits(),
                s.tracker.to_bits(),
                s.refinement.to_bits(),
            ],
            execution_seconds: self.execution_seconds.to_bits(),
            serial_seconds: self.serial_seconds.to_bits(),
            prefetch_frames: self.prefetch_frames,
            stall_seconds: [
                st.decode_starved.to_bits(),
                st.batcher_wait.to_bits(),
                st.channel_backpressure.to_bits(),
            ],
            pipeline_speedup: self.pipeline_speedup.to_bits(),
            failed_clips: self.failed_clips,
            retried_clips: self.retried_clips,
            retry_attempts: self.retry_attempts,
            retry_backoff_seconds: self.retry_backoff_seconds.to_bits(),
            launch_seconds: self.launch_seconds.to_bits(),
            detector_exec: self.detector_exec.clone(),
            detector_digest: self.detector_digest,
        })
        .expect("deterministic stats projection serializes")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn in_flight_gauge_tracks_peak() {
        let c = EngineCounters::default();
        c.frame_entered();
        c.frame_entered();
        c.frame_entered();
        c.frame_exited();
        assert_eq!(c.frames_in_flight(), 2);
        c.frame_entered();
        let s = EngineStats::snapshot(1, 1, &c, &CostLedger::new());
        assert_eq!(s.max_frames_in_flight, 3);
    }

    #[test]
    fn snapshot_reads_ledger_components() {
        let c = EngineCounters::default();
        let l = CostLedger::new();
        l.charge(Component::Decode, 1.0);
        l.charge_batch(Component::Detector, 0.5, 4);
        l.charge_batch(Component::Detector, 0.5, 2);
        let s = EngineStats::snapshot(2, 3, &c, &l);
        assert_eq!(s.streams, 2);
        assert_eq!(s.batches, 2);
        assert!((s.mean_batch_occupancy - 3.0).abs() < 1e-12);
        assert!((s.stage_seconds.decode - 1.0).abs() < 1e-12);
        assert!((s.execution_seconds - 2.0).abs() < 1e-12);
        assert!((s.stage_seconds.total() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn stats_serialize_round_trip() {
        let mut s = EngineStats::snapshot(4, 8, &EngineCounters::default(), &CostLedger::new());
        assert!(s.healthy());
        s.failed_clips = 1;
        s.retried_clips = 1;
        s.panics = 1;
        s.failures.push(FailedClip {
            clip: 3,
            stream: 1,
            stage: StageName::Decode,
            reason: "injected".into(),
            recovered: true,
        });
        s.stream_status.push(StreamStatus {
            stream: 1,
            clips_assigned: 2,
            clips_completed: 1,
            clips_failed: 1,
            panicked: Some(PanicReport {
                stage: StageName::Detect,
                reason: "boom".into(),
            }),
        });
        assert!(!s.healthy());
        assert!(!s.stream_status[0].healthy());
        let json = serde_json::to_string(&s).unwrap();
        // exact key:value shapes keep the stats JSON greppable from CI
        assert!(json.contains("\"failed_clips\":1"), "{json}");
        assert!(json.contains("\"stage\":\"Decode\""), "{json}");
        let back: EngineStats = serde_json::from_str(&json).unwrap();
        assert_eq!(back.streams, 4);
        assert_eq!(back.clips, 8);
        assert_eq!(back.failures, s.failures);
        assert_eq!(back.stream_status, s.stream_status);
    }
}
