//! Bounded SPSC queues with task wakers — the task engine's replacement
//! for blocking channels between stage state machines.
//!
//! A [`SlotQueue`] carries the same backpressure contract as the old
//! bounded crossbeam channel (capacity bounds frames in flight), but a
//! full or empty queue never blocks an OS thread: `try_send`/`try_recv`
//! report `Full`/`Empty`, the caller registers interest implicitly (the
//! failed attempt sets a waiting flag under the queue lock) and returns
//! [`Polled::Pending`](otif_core::evalpool::Polled) to its worker pool.
//! The peer's next successful push/pop — or endpoint close — fires the
//! stored [`TaskWaker`], re-enqueueing the parked task.
//!
//! Losing a wakeup is impossible by construction: the blocked-decision
//! (set waiting flag, then return `Full`/`Empty`) happens under the
//! queue lock, and a wake that races with the still-running poll is
//! latched by the pool (`RUNNING → NOTIFIED`) and replayed as a
//! re-enqueue after the poll returns.
//!
//! The RAII endpoints ([`SlotSender`]/[`SlotReceiver`]) mirror channel
//! endpoint drops: dropping a task drops its endpoints, which closes
//! the queue side and wakes the blocked peer — exactly how a panicking
//! stage thread's unwind used to shut its neighbours down.

use otif_core::evalpool::TaskWaker;
use parking_lot::Mutex;
use std::collections::VecDeque;
use std::sync::Arc;

/// Outcome of a non-blocking send.
pub(crate) enum TrySend<T> {
    /// Message enqueued (receiver woken if it was parked).
    Sent,
    /// Queue at capacity; the message is handed back and the sender's
    /// waker will fire on the next pop.
    Full(T),
    /// Receiver closed; the message is handed back and will never be
    /// deliverable.
    Closed(T),
}

/// Outcome of a non-blocking receive.
pub(crate) enum TryRecv<T> {
    /// A message (sender woken if it was parked on a full queue).
    Msg(T),
    /// Queue empty but the sender is still connected; the receiver's
    /// waker will fire on the next push or on sender close.
    Empty,
    /// Queue empty and the sender is closed — no more messages ever.
    Disconnected,
}

struct SlotInner<T> {
    buf: VecDeque<T>,
    cap: usize,
    tx_closed: bool,
    rx_closed: bool,
    /// Sender parked on `Full`; cleared when woken.
    tx_waiting: bool,
    /// Receiver parked on `Empty`; cleared when woken.
    rx_waiting: bool,
    tx_waker: Option<TaskWaker>,
    rx_waker: Option<TaskWaker>,
}

/// A bounded single-producer single-consumer queue between two pollable
/// stage tasks.
pub(crate) struct SlotQueue<T> {
    inner: Mutex<SlotInner<T>>,
}

impl<T> SlotQueue<T> {
    /// A queue holding at most `cap` messages (min 1).
    pub fn new(cap: usize) -> Arc<SlotQueue<T>> {
        Arc::new(SlotQueue {
            inner: Mutex::new(SlotInner {
                buf: VecDeque::with_capacity(cap.max(1)),
                cap: cap.max(1),
                tx_closed: false,
                rx_closed: false,
                tx_waiting: false,
                rx_waiting: false,
                tx_waker: None,
                rx_waker: None,
            }),
        })
    }

    /// Split into RAII endpoints wired to the two tasks' wakers.
    pub fn endpoints(
        self: &Arc<Self>,
        tx_waker: TaskWaker,
        rx_waker: TaskWaker,
    ) -> (SlotSender<T>, SlotReceiver<T>) {
        {
            let mut q = self.inner.lock();
            q.tx_waker = Some(tx_waker);
            q.rx_waker = Some(rx_waker);
        }
        (
            SlotSender {
                queue: Arc::clone(self),
            },
            SlotReceiver {
                queue: Arc::clone(self),
            },
        )
    }

    fn try_send(&self, msg: T) -> TrySend<T> {
        let mut q = self.inner.lock();
        if q.rx_closed {
            return TrySend::Closed(msg);
        }
        if q.buf.len() >= q.cap {
            q.tx_waiting = true;
            return TrySend::Full(msg);
        }
        q.buf.push_back(msg);
        let waker = if q.rx_waiting {
            q.rx_waiting = false;
            q.rx_waker.clone()
        } else {
            None
        };
        drop(q);
        if let Some(w) = waker {
            w.wake();
        }
        TrySend::Sent
    }

    fn try_recv(&self) -> TryRecv<T> {
        let mut q = self.inner.lock();
        match q.buf.pop_front() {
            Some(msg) => {
                let waker = if q.tx_waiting {
                    q.tx_waiting = false;
                    q.tx_waker.clone()
                } else {
                    None
                };
                drop(q);
                if let Some(w) = waker {
                    w.wake();
                }
                TryRecv::Msg(msg)
            }
            None if q.tx_closed => TryRecv::Disconnected,
            None => {
                q.rx_waiting = true;
                TryRecv::Empty
            }
        }
    }

    fn close_tx(&self) {
        let mut q = self.inner.lock();
        q.tx_closed = true;
        let waker = if q.rx_waiting {
            q.rx_waiting = false;
            q.rx_waker.clone()
        } else {
            None
        };
        drop(q);
        if let Some(w) = waker {
            w.wake();
        }
    }

    fn close_rx(&self) {
        let mut q = self.inner.lock();
        q.rx_closed = true;
        // Buffered messages become undeliverable — dropped exactly like
        // a channel's buffer when its receiver thread unwound.
        q.buf.clear();
        let waker = if q.tx_waiting {
            q.tx_waiting = false;
            q.tx_waker.clone()
        } else {
            None
        };
        drop(q);
        if let Some(w) = waker {
            w.wake();
        }
    }

    fn len(&self) -> usize {
        self.inner.lock().buf.len()
    }
}

/// Sending endpoint; dropping it closes the sender side and wakes a
/// parked receiver (which then observes `Disconnected` once drained).
pub(crate) struct SlotSender<T> {
    queue: Arc<SlotQueue<T>>,
}

impl<T> SlotSender<T> {
    /// Non-blocking send (see [`TrySend`]).
    pub fn try_send(&self, msg: T) -> TrySend<T> {
        self.queue.try_send(msg)
    }

    /// Messages currently buffered (queue-depth observability).
    pub fn len(&self) -> usize {
        self.queue.len()
    }
}

impl<T> Drop for SlotSender<T> {
    fn drop(&mut self) {
        self.queue.close_tx();
    }
}

/// Receiving endpoint; dropping it closes the receiver side, discards
/// buffered messages and wakes a parked sender (which then observes
/// `Closed`).
pub(crate) struct SlotReceiver<T> {
    queue: Arc<SlotQueue<T>>,
}

impl<T> SlotReceiver<T> {
    /// Non-blocking receive (see [`TryRecv`]).
    pub fn try_recv(&self) -> TryRecv<T> {
        self.queue.try_recv()
    }
}

impl<T> Drop for SlotReceiver<T> {
    fn drop(&mut self) {
        self.queue.close_rx();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn capacity_bounds_and_fifo_order() {
        let q: Arc<SlotQueue<u32>> = SlotQueue::new(2);
        assert!(matches!(q.try_send(1), TrySend::Sent));
        assert!(matches!(q.try_send(2), TrySend::Sent));
        assert!(matches!(q.try_send(3), TrySend::Full(3)));
        assert_eq!(q.len(), 2);
        assert!(matches!(q.try_recv(), TryRecv::Msg(1)));
        assert!(matches!(q.try_recv(), TryRecv::Msg(2)));
        assert!(matches!(q.try_recv(), TryRecv::Empty));
    }

    #[test]
    fn closing_sides_reports_disconnect_and_closed() {
        let q: Arc<SlotQueue<u32>> = SlotQueue::new(4);
        assert!(matches!(q.try_send(7), TrySend::Sent));
        q.close_tx();
        // buffered messages drain before Disconnected
        assert!(matches!(q.try_recv(), TryRecv::Msg(7)));
        assert!(matches!(q.try_recv(), TryRecv::Disconnected));

        let q: Arc<SlotQueue<u32>> = SlotQueue::new(4);
        q.close_rx();
        assert!(matches!(q.try_send(1), TrySend::Closed(1)));
    }

    #[test]
    fn wakers_fire_on_transitions() {
        use otif_core::evalpool::{PollTask, Polled, TaskPool};
        use std::sync::atomic::{AtomicUsize, Ordering};

        // Producer sends N items through a capacity-1 queue, consumer
        // drains them; both park on Full/Empty and rely exclusively on
        // slot wakes to resume. Completion proves no wakeup is lost.
        const N: usize = 100;
        struct Producer {
            tx: Option<SlotSender<usize>>,
            next: usize,
        }
        impl PollTask for Producer {
            fn poll(&mut self) -> Polled {
                loop {
                    if self.next == N {
                        self.tx = None; // close; consumer sees Disconnected
                        return Polled::Done;
                    }
                    match self.tx.as_ref().unwrap().try_send(self.next) {
                        TrySend::Sent => self.next += 1,
                        TrySend::Full(_) => return Polled::Pending,
                        TrySend::Closed(_) => return Polled::Done,
                    }
                }
            }
        }
        struct Consumer {
            rx: SlotReceiver<usize>,
            got: Arc<AtomicUsize>,
        }
        impl PollTask for Consumer {
            fn poll(&mut self) -> Polled {
                loop {
                    match self.rx.try_recv() {
                        TryRecv::Msg(v) => {
                            assert_eq!(v, self.got.fetch_add(1, Ordering::SeqCst));
                        }
                        TryRecv::Empty => return Polled::Pending,
                        TryRecv::Disconnected => return Polled::Done,
                    }
                }
            }
        }
        for workers in [1usize, 2, 4] {
            let got = Arc::new(AtomicUsize::new(0));
            let pool = TaskPool::new(2, None);
            let q = SlotQueue::new(1);
            let (tx, rx) = q.endpoints(pool.waker(0), pool.waker(1));
            let tasks: Vec<Box<dyn PollTask>> = vec![
                Box::new(Producer {
                    tx: Some(tx),
                    next: 0,
                }),
                Box::new(Consumer {
                    rx,
                    got: Arc::clone(&got),
                }),
            ];
            pool.run(workers, tasks);
            assert_eq!(got.load(Ordering::SeqCst), N, "workers={workers}");
        }
    }
}
