//! Fault tolerance for the streaming engine: deterministic fault
//! injection, panic-isolating stage supervision and per-run health
//! accounting.
//!
//! The engine's deployment regime (OTIF §6: long-running multi-camera
//! ingest) must survive a bad clip or a dying stage thread without
//! losing the rest of the fleet. Three pieces make that testable:
//!
//! * [`FaultPlan`] — a deterministic schedule of injected faults,
//!   addressed by `(stage, clip, sampled-frame ordinal)`. Because every
//!   stage sees a clip's sampled frames in the same order, a plan fires
//!   at exactly the same point of the computation on every run, so
//!   faulted runs are as reproducible as healthy ones.
//! * [`supervise_poll`] — the shim every stage-task poll runs under. It
//!   catches panics (`catch_unwind`), records them on the
//!   [`HealthBoard`], and tells the worker pool to retire the task; the
//!   dropped task releases its queue endpoints and (for the detect
//!   stage) its `StreamGuard`, so sibling streams keep flowing instead
//!   of deadlocking or aborting.
//! * [`HealthBoard`] — shared per-run record of stream panics and
//!   per-clip recoverable failures, folded into
//!   [`EngineStats`](crate::stats::EngineStats) at the end of a run.

use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use std::any::Any;
use std::cell::Cell;
use std::collections::BTreeMap;
use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Once;

/// The four per-stream engine stages, in pipeline order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub enum StageName {
    /// Frame sampling + decode accounting.
    Decode,
    /// Segmentation proxy / window selection.
    Window,
    /// Detector inference (the batched stage).
    Detect,
    /// Tracker stepping + clip finalization.
    Track,
}

impl StageName {
    /// All stages, in pipeline order.
    pub const ALL: [StageName; 4] = [
        StageName::Decode,
        StageName::Window,
        StageName::Detect,
        StageName::Track,
    ];

    /// Lowercase label used in reports and the CLI fault syntax.
    pub fn name(&self) -> &'static str {
        match self {
            StageName::Decode => "decode",
            StageName::Window => "window",
            StageName::Detect => "detect",
            StageName::Track => "track",
        }
    }

    /// Parse the lowercase label.
    pub fn parse(s: &str) -> Result<Self, String> {
        Self::ALL
            .into_iter()
            .find(|st| st.name() == s)
            .ok_or_else(|| format!("unknown stage {s:?} (decode|window|detect|track)"))
    }
}

impl fmt::Display for StageName {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// How long an injected [`FaultKind::Stall`] blocks its stage thread.
/// Finite, so an un-watchdogged run still terminates — just slowly; a
/// stage watchdog with a shorter timeout converts the wedge into typed
/// stall failures instead.
pub const STALL_SLEEP: std::time::Duration = std::time::Duration::from_millis(400);

/// What an injected fault does when it fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FaultKind {
    /// Panic in the stage thread. The whole stream dies (its remaining
    /// clips fail, non-recoverably); sibling streams are unaffected.
    Panic,
    /// Recoverable error. Only the targeted clip is poisoned — the
    /// stream skips its remaining frames and continues with its next
    /// clips — and the clip is re-run through the sequential fallback
    /// after the streaming run.
    Error,
    /// Wedge the stage: sleep [`STALL_SLEEP`] wall-clock before
    /// processing the frame, then continue normally. Without a stage
    /// watchdog the run completes (slowly); with
    /// [`EngineOptions::stage_timeout`](crate::EngineOptions) set below
    /// the sleep, blocked neighbours convert the wedge into typed,
    /// recoverable stall failures that the sequential retry heals.
    Stall,
}

impl FaultKind {
    /// Lowercase label used in the CLI fault syntax.
    pub fn name(&self) -> &'static str {
        match self {
            FaultKind::Panic => "panic",
            FaultKind::Error => "error",
            FaultKind::Stall => "stall",
        }
    }

    /// Parse the lowercase label.
    pub fn parse(s: &str) -> Result<Self, String> {
        match s {
            "panic" => Ok(FaultKind::Panic),
            "error" => Ok(FaultKind::Error),
            "stall" => Ok(FaultKind::Stall),
            other => Err(format!("unknown fault kind {other:?} (panic|error|stall)")),
        }
    }
}

/// One injected fault: fire `kind` in `stage` when it is about to
/// process the `frame`-th sampled frame (0-based arrival ordinal) of
/// clip `clip`. Firing happens *before* any cost is charged for that
/// frame.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultSpec {
    /// Stage the fault targets.
    pub stage: StageName,
    /// Panic (stream-fatal) or error (clip-fatal, recoverable).
    pub kind: FaultKind,
    /// Global clip index (position in the clip slice given to the
    /// engine).
    pub clip: usize,
    /// 0-based ordinal of the clip's sampled frames at that stage.
    pub frame: usize,
    /// Human-readable reason carried into `ClipOutcome` / stats.
    pub reason: String,
}

/// A deterministic schedule of injected faults (empty by default).
///
/// Plans address computation points, not wall-clock: the same plan over
/// the same inputs perturbs the run identically every time, which is
/// what lets the determinism test suite extend to faulted runs.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct FaultPlan {
    specs: Vec<FaultSpec>,
}

impl FaultPlan {
    /// A plan with no faults.
    pub fn none() -> Self {
        Self::default()
    }

    /// Convenience: a single stream-fatal panic at
    /// `(stage, clip, frame)`.
    pub fn panic_at(stage: StageName, clip: usize, frame: usize) -> Self {
        FaultPlan::none().with(FaultSpec {
            stage,
            kind: FaultKind::Panic,
            clip,
            frame,
            reason: format!("injected panic in {stage} (clip {clip}, frame {frame})"),
        })
    }

    /// Convenience: a single recoverable error at
    /// `(stage, clip, frame)`.
    pub fn error_at(stage: StageName, clip: usize, frame: usize) -> Self {
        FaultPlan::none().with(FaultSpec {
            stage,
            kind: FaultKind::Error,
            clip,
            frame,
            reason: format!("injected error in {stage} (clip {clip}, frame {frame})"),
        })
    }

    /// Convenience: a single [`STALL_SLEEP`]-long stall at
    /// `(stage, clip, frame)`.
    pub fn stall_at(stage: StageName, clip: usize, frame: usize) -> Self {
        FaultPlan::none().with(FaultSpec {
            stage,
            kind: FaultKind::Stall,
            clip,
            frame,
            reason: format!("injected stall in {stage} (clip {clip}, frame {frame})"),
        })
    }

    /// Add `spec` to the plan (builder style).
    pub fn with(mut self, spec: FaultSpec) -> Self {
        self.specs.push(spec);
        self
    }

    /// Whether the plan contains no faults.
    pub fn is_empty(&self) -> bool {
        self.specs.is_empty()
    }

    /// The scheduled faults.
    pub fn specs(&self) -> &[FaultSpec] {
        &self.specs
    }

    /// Parse the CLI syntax `stage:kind:clip:frame`
    /// (e.g. `decode:error:0:2`). Multiple specs separated by commas.
    pub fn parse(s: &str) -> Result<Self, String> {
        let mut plan = FaultPlan::none();
        for part in s.split(',') {
            let fields: Vec<&str> = part.split(':').collect();
            let [stage, kind, clip, frame] = fields[..] else {
                return Err(format!(
                    "bad fault spec {part:?}; expected stage:kind:clip:frame \
                     (e.g. decode:error:0:2)"
                ));
            };
            let stage = StageName::parse(stage)?;
            let kind = FaultKind::parse(kind)?;
            let clip: usize = clip
                .parse()
                .map_err(|e| format!("bad clip index {clip:?}: {e}"))?;
            let frame: usize = frame
                .parse()
                .map_err(|e| format!("bad frame ordinal {frame:?}: {e}"))?;
            plan = plan.with(FaultSpec {
                stage,
                kind,
                clip,
                frame,
                reason: format!(
                    "injected {} in {stage} (clip {clip}, frame {frame})",
                    kind.name()
                ),
            });
        }
        Ok(plan)
    }

    /// The fault (if any) scheduled for `stage` processing the
    /// `frame`-th sampled frame of `clip`. Pure: the same inputs always
    /// return the same answer.
    pub(crate) fn fire(&self, stage: StageName, clip: usize, frame: usize) -> Option<&FaultSpec> {
        self.specs
            .iter()
            .find(|s| s.stage == stage && s.clip == clip && s.frame == frame)
    }
}

/// A stream panic captured by the supervision shim.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PanicReport {
    /// Stage whose thread panicked.
    pub stage: StageName,
    /// The panic payload, stringified.
    pub reason: String,
}

/// A recoverable per-clip failure recorded by a stage.
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct ClipFailure {
    pub stage: StageName,
    pub reason: String,
    pub recoverable: bool,
}

/// A stream-level stall detected by the stage watchdog: some stage of
/// the stream gave up on a wedged channel or batcher rendezvous and
/// exited. Clips the stream never finalized because of it are
/// recoverable (the work itself is healthy — only the plumbing wedged).
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct StallReport {
    pub stage: StageName,
    pub reason: String,
}

/// Shared per-run health record: which streams panicked (and where),
/// and which clips failed recoverably.
#[derive(Debug)]
pub(crate) struct HealthBoard {
    /// First captured panic per stream.
    panics: Mutex<Vec<Option<PanicReport>>>,
    /// Total panics captured (a stream can lose several stage threads).
    panic_count: Mutex<usize>,
    /// First recorded failure per clip.
    clip_failures: Mutex<BTreeMap<usize, ClipFailure>>,
    /// First watchdog stall per stream.
    stalls: Mutex<Vec<Option<StallReport>>>,
}

impl HealthBoard {
    pub fn new(streams: usize) -> Self {
        HealthBoard {
            panics: Mutex::new((0..streams).map(|_| None).collect()),
            panic_count: Mutex::new(0),
            clip_failures: Mutex::new(BTreeMap::new()),
            stalls: Mutex::new((0..streams).map(|_| None).collect()),
        }
    }

    /// Record a watchdog stall of `stream` (first one wins).
    pub fn record_stall(&self, stream: usize, stage: StageName, reason: String) {
        self.stalls.lock()[stream].get_or_insert(StallReport { stage, reason });
    }

    /// The first recorded watchdog stall of `stream`, if any.
    pub fn stall_of(&self, stream: usize) -> Option<StallReport> {
        self.stalls.lock()[stream].clone()
    }

    /// Record a captured stage panic for `stream` (first one wins for
    /// attribution; all are counted).
    pub fn record_panic(&self, stream: usize, stage: StageName, reason: String) {
        *self.panic_count.lock() += 1;
        let mut panics = self.panics.lock();
        panics[stream].get_or_insert(PanicReport { stage, reason });
    }

    /// Record a recoverable failure of `clip` (first one wins).
    pub fn record_clip_failure(
        &self,
        clip: usize,
        stage: StageName,
        reason: String,
        recoverable: bool,
    ) {
        self.clip_failures
            .lock()
            .entry(clip)
            .or_insert(ClipFailure {
                stage,
                reason,
                recoverable,
            });
    }

    /// The captured panic of `stream`, if any.
    pub fn panic_of(&self, stream: usize) -> Option<PanicReport> {
        self.panics.lock()[stream].clone()
    }

    /// The recorded failure of `clip`, if any.
    pub fn failure_of(&self, clip: usize) -> Option<ClipFailure> {
        self.clip_failures.lock().get(&clip).cloned()
    }

    /// Total captured panics.
    pub fn panic_count(&self) -> usize {
        *self.panic_count.lock()
    }
}

thread_local! {
    /// Whether the current thread is a supervised engine stage: its
    /// panics are captured and reported through the health board, so
    /// the default print-to-stderr panic hook is suppressed for it.
    static SUPERVISED: Cell<bool> = const { Cell::new(false) };
}

/// Install (once, process-wide) a panic hook that stays silent for
/// supervised stage threads and delegates to the previous hook for
/// everything else — `#[should_panic]` tests and genuine crashes keep
/// their diagnostics.
fn install_supervised_panic_hook() {
    static ONCE: Once = Once::new();
    ONCE.call_once(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if !SUPERVISED.with(Cell::get) {
                prev(info);
            }
        }));
    });
}

/// Stringify a caught panic payload.
fn payload_message(payload: Box<dyn Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "opaque panic payload".to_string()
    }
}

/// Run one stage-task poll under panic supervision: a panic is captured
/// on the health board and `None` is returned so the caller drops the
/// task (its queue endpoints and `StreamGuard` drop with it, letting
/// sibling streams keep draining); a clean poll's result passes through
/// as `Some`.
pub(crate) fn supervise_poll<T>(
    stage: StageName,
    stream: usize,
    health: &HealthBoard,
    f: impl FnOnce() -> T,
) -> Option<T> {
    install_supervised_panic_hook();
    SUPERVISED.with(|s| s.set(true));
    let result = catch_unwind(AssertUnwindSafe(f));
    SUPERVISED.with(|s| s.set(false));
    match result {
        Ok(v) => Some(v),
        Err(payload) => {
            health.record_panic(stream, stage, payload_message(payload));
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plan_fires_at_exact_coordinates_only() {
        let plan = FaultPlan::panic_at(StageName::Detect, 2, 5);
        assert!(plan.fire(StageName::Detect, 2, 5).is_some());
        assert!(plan.fire(StageName::Detect, 2, 4).is_none());
        assert!(plan.fire(StageName::Detect, 1, 5).is_none());
        assert!(plan.fire(StageName::Window, 2, 5).is_none());
        assert!(FaultPlan::none().fire(StageName::Decode, 0, 0).is_none());
    }

    #[test]
    fn plan_parse_round_trips_the_cli_syntax() {
        let plan = FaultPlan::parse("decode:error:0:2,track:panic:3:1").unwrap();
        assert_eq!(plan.specs().len(), 2);
        assert_eq!(plan.specs()[0].stage, StageName::Decode);
        assert_eq!(plan.specs()[0].kind, FaultKind::Error);
        assert_eq!(plan.specs()[0].clip, 0);
        assert_eq!(plan.specs()[0].frame, 2);
        assert_eq!(plan.specs()[1].kind, FaultKind::Panic);
        assert!(FaultPlan::parse("decode:error:0").is_err());
        assert!(FaultPlan::parse("decode:boom:0:1").is_err());
        assert!(FaultPlan::parse("nostage:error:0:1").is_err());
        assert!(FaultPlan::parse("decode:error:x:1").is_err());
    }

    #[test]
    fn supervise_captures_panics_without_propagating() {
        let health = HealthBoard::new(2);
        let outcome = supervise_poll(StageName::Window, 1, &health, || {
            panic!("boom in window");
        });
        assert!(outcome.is_none(), "a panicking poll yields no result");
        let report = health.panic_of(1).expect("panic recorded");
        assert_eq!(report.stage, StageName::Window);
        assert!(report.reason.contains("boom in window"));
        assert!(health.panic_of(0).is_none());
        assert_eq!(health.panic_count(), 1);
        assert_eq!(
            supervise_poll(StageName::Track, 0, &health, || 7usize),
            Some(7)
        );
    }

    #[test]
    fn first_clip_failure_wins_but_all_panics_count() {
        let health = HealthBoard::new(1);
        health.record_clip_failure(3, StageName::Decode, "first".into(), true);
        health.record_clip_failure(3, StageName::Track, "second".into(), false);
        let f = health.failure_of(3).unwrap();
        assert_eq!(f.stage, StageName::Decode);
        assert!(f.recoverable);
        health.record_panic(0, StageName::Decode, "a".into());
        health.record_panic(0, StageName::Track, "b".into());
        assert_eq!(health.panic_count(), 2);
        assert_eq!(health.panic_of(0).unwrap().stage, StageName::Decode);
    }
}
