//! The four per-stream stage loops: decode → window → detect → track,
//! connected by bounded channels. Each loop consumes its input channel
//! until disconnect, so dropping the upstream sender drains and shuts
//! the stream down gracefully.
//!
//! All cost charging goes through the same `otif_core::stages`
//! functions the sequential pipeline uses; the only difference is the
//! detector launch overhead, which is charged by the shared
//! [`DetectorBatcher`](crate::batcher::DetectorBatcher) per cross-stream
//! batch instead of per frame.

use crate::batcher::StreamGuard;
use crate::stats::{EngineCounters, QUEUE_DECODE, QUEUE_DETECT, QUEUE_WINDOW};
use crossbeam::channel::{Receiver, Sender};
use otif_core::config::OtifConfig;
use otif_core::pipeline::ExecutionContext;
use otif_core::stages::{
    charge_decode, charge_tracker_step, finalize_tracks, select_windows, FrameTracker,
};
use otif_cv::{Component, CostLedger, Detection, SimDetector};
use otif_geom::Rect;
use otif_sim::{Clip, Renderer};
use otif_track::Track;
use parking_lot::Mutex;

/// A sampled frame leaving the decode stage.
pub(crate) struct DecodedFrame {
    /// Index of the clip in the engine's global clip list.
    pub clip: usize,
    /// Frame number within the clip.
    pub frame: usize,
    /// Whether this is the clip's last sampled frame.
    pub last: bool,
}

/// A frame with detector windows selected.
pub(crate) struct WindowedFrame {
    pub clip: usize,
    pub frame: usize,
    pub windows: Vec<Rect>,
    pub last: bool,
}

/// A frame with detections computed.
pub(crate) struct DetectedFrame {
    pub clip: usize,
    pub frame: usize,
    pub dets: Vec<Detection>,
    pub last: bool,
}

/// Decode stage: walks each assigned clip's sampled frames in order,
/// charges decode cost and feeds the window stage.
pub(crate) fn decode_stage(
    config: &OtifConfig,
    ctx: &ExecutionContext,
    clips: &[(usize, &Clip)],
    tx: Sender<DecodedFrame>,
    counters: &EngineCounters,
    ledger: &CostLedger,
) {
    for &(clip_idx, clip) in clips {
        let native_px = (clip.scene.width as f64) * (clip.scene.height as f64);
        let mut f = 0usize;
        while f < clip.num_frames() {
            charge_decode(config, ctx, native_px, ledger);
            counters
                .frames_decoded
                .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
            counters.frame_entered();
            let last = f + config.gap.max(1) >= clip.num_frames();
            if tx
                .send(DecodedFrame {
                    clip: clip_idx,
                    frame: f,
                    last,
                })
                .is_err()
            {
                return; // downstream gone (shutdown)
            }
            counters.observe_queue_depth(QUEUE_DECODE, tx.len());
            f += config.gap.max(1);
        }
    }
}

/// Window stage: runs the segmentation proxy (when configured) to pick
/// detector windows for each frame.
pub(crate) fn window_stage(
    config: &OtifConfig,
    ctx: &ExecutionContext,
    clips: &[(usize, &Clip)],
    rx: Receiver<DecodedFrame>,
    tx: Sender<WindowedFrame>,
    counters: &EngineCounters,
    ledger: &CostLedger,
) {
    let lookup = ClipLookup::new(clips);
    for msg in &rx {
        let clip = lookup.get(msg.clip);
        let renderer = Renderer::new(clip);
        let windows = select_windows(
            config,
            ctx,
            &renderer,
            clip.scene.frame_rect(),
            msg.frame,
            ledger,
        );
        counters
            .frames_windowed
            .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        if tx
            .send(WindowedFrame {
                clip: msg.clip,
                frame: msg.frame,
                windows,
                last: msg.last,
            })
            .is_err()
        {
            return;
        }
        counters.observe_queue_depth(QUEUE_WINDOW, tx.len());
    }
}

/// Detect stage: charges per-window pixel cost locally, rendezvouses
/// with the other streams through the batcher for the launch overhead,
/// then computes detections with the pure (uncharged) detector path.
#[allow(clippy::too_many_arguments)]
pub(crate) fn detect_stage(
    config: &OtifConfig,
    ctx: &ExecutionContext,
    clips: &[(usize, &Clip)],
    rx: Receiver<WindowedFrame>,
    tx: Sender<DetectedFrame>,
    batcher_guard: StreamGuard<'_>,
    counters: &EngineCounters,
    ledger: &CostLedger,
) {
    let lookup = ClipLookup::new(clips);
    let detector = SimDetector::new(config.detector, ctx.detector_seed);
    for msg in &rx {
        let dets = if msg.windows.is_empty() {
            Vec::new()
        } else {
            let px: f64 = msg
                .windows
                .iter()
                .map(|r| detector.window_px_cost(r.w, r.h))
                .sum();
            ledger.charge(Component::Detector, px);
            let sizes: Vec<(u32, u32)> = msg
                .windows
                .iter()
                .map(|r| (r.w.round() as u32, r.h.round() as u32))
                .collect();
            batcher_guard.submit(sizes);
            detector.detect_windows_pure(lookup.get(msg.clip), msg.frame, &msg.windows)
        };
        counters
            .frames_detected
            .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        if tx
            .send(DetectedFrame {
                clip: msg.clip,
                frame: msg.frame,
                dets,
                last: msg.last,
            })
            .is_err()
        {
            return;
        }
        counters.observe_queue_depth(QUEUE_DETECT, tx.len());
    }
    // batcher_guard drops here → finish(stream): remaining streams keep
    // batching among themselves
}

/// Track stage: steps the per-clip tracker, finalizes (stitch + refine)
/// at each clip boundary and deposits results by clip index.
pub(crate) fn track_stage(
    config: &OtifConfig,
    ctx: &ExecutionContext,
    clips: &[(usize, &Clip)],
    rx: Receiver<DetectedFrame>,
    results: &Mutex<Vec<Option<Vec<Track>>>>,
    counters: &EngineCounters,
    ledger: &CostLedger,
) {
    let lookup = ClipLookup::new(clips);
    let mut tracker: Option<FrameTracker> = None;
    for msg in &rx {
        charge_tracker_step(ctx, msg.dets.len(), ledger);
        tracker
            .get_or_insert_with(|| FrameTracker::new(config, ctx))
            .step(msg.frame, msg.dets);
        counters
            .frames_tracked
            .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        counters.frame_exited();
        if msg.last {
            let finished = tracker
                .take()
                .expect("tracker exists for the clip being finalized")
                .finish();
            let tracks = finalize_tracks(config, ctx, lookup.get(msg.clip), finished, ledger);
            results.lock()[msg.clip] = Some(tracks);
        }
    }
}

/// Clip-index → clip resolution for a stream's assigned clips.
struct ClipLookup<'a> {
    clips: &'a [(usize, &'a Clip)],
}

impl<'a> ClipLookup<'a> {
    fn new(clips: &'a [(usize, &'a Clip)]) -> Self {
        ClipLookup { clips }
    }

    fn get(&self, clip_idx: usize) -> &'a Clip {
        self.clips
            .iter()
            .find(|(i, _)| *i == clip_idx)
            .map(|(_, c)| *c)
            .expect("clip index belongs to this stream")
    }
}
