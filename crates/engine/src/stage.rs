//! Shared context and message types for the four per-stream stages
//! (decode → window → detect → track), now implemented as resumable
//! state machines in [`crate::tasks`] and polled by a fixed worker
//! pool instead of running as dedicated OS threads.
//!
//! All cost charging goes through the same `otif_core::stages`
//! functions the sequential pipeline uses, but every charge lands in
//! the *per-clip* ledger of the frame being processed: a clip that
//! later fails simply has its ledger discarded, so the surviving clips'
//! accounting is byte-identical to a fault-free run. The only shared
//! charge is the detector launch overhead, applied by the
//! [`DetectorBatcher`](crate::batcher::DetectorBatcher) per cross-stream
//! batch instead of per frame.
//!
//! Fault handling: messages travel as [`StageMsg`] — either a frame or
//! a per-clip abort. A stage hitting a recoverable fault records it on
//! the [`HealthBoard`], poisons the clip locally (skipping its
//! remaining frames) and forwards an abort so downstream stages drop
//! their in-flight state for that clip; the stream then continues with
//! its next clips. Injected panics unwind for real and are caught by
//! the per-poll supervision shim in [`crate::tasks`].

use crate::exec::DetectorExecHarness;
use crate::fault::{FaultKind, FaultPlan, HealthBoard, StageName, STALL_SLEEP};
use crate::journal::Checkpointer;
use crate::stats::EngineCounters;
use crate::timeline::ClipTimeline;
use otif_core::config::OtifConfig;
use otif_core::pipeline::ExecutionContext;
use otif_cv::{CostLedger, Detection};
use otif_geom::Rect;
use otif_sim::Clip;
use parking_lot::Mutex;
use std::time::Duration;

/// How a clip is processed on this run: live, or replayed from a run
/// journal checkpoint without recomputation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub(crate) enum GhostMode {
    /// Normal processing — decode, window, detect and track for real.
    #[default]
    Live,
    /// The clip completed in-stream in a previous (crashed) run and was
    /// checkpointed: its ledger, timeline and result are pre-loaded by
    /// the scheduler, and the stages only *stream* it — forwarding
    /// frames and submitting recorded batcher tickets so the
    /// cross-stream round sequence (and every sibling's accounting)
    /// reproduces bitwise — without recomputing or re-charging anything.
    Stream,
    /// The clip completed via the sequential retry path in a previous
    /// run: it is not streamed at all; the scheduler replays its
    /// recorded retry accounting directly.
    Skip,
}

/// Everything a stage task needs besides its queues: the run
/// configuration, this stream's clip assignment, the shared counters,
/// the per-clip cost ledgers and the fault machinery.
#[derive(Clone, Copy)]
pub(crate) struct StageCtx<'a> {
    pub config: &'a OtifConfig,
    pub exec: &'a ExecutionContext<'a>,
    /// This stream's index (for stream-level health reporting).
    pub stream: usize,
    /// This stream's assigned clips as `(global clip index, clip)`.
    pub clips: &'a [(usize, &'a Clip)],
    pub counters: &'a EngineCounters,
    /// One ledger per clip in the engine's global clip list; charges
    /// for a clip that ends up failing are discarded with it.
    pub clip_ledgers: &'a [CostLedger],
    /// Per-clip, per-frame charge recordings for the pipelined replay
    /// (parallel to `clip_ledgers`). Each stage appends only its own
    /// field, in frame-ordinal order.
    pub timelines: &'a [Mutex<ClipTimeline>],
    pub faults: &'a FaultPlan,
    pub health: &'a HealthBoard,
    /// Surrogate detector execution harness; `None` (or mode `Off`)
    /// means the detect stage computes accounting only, exactly as
    /// before the surrogate existed.
    pub detector_exec: Option<&'a DetectorExecHarness>,
    /// Per-clip ghost modes (indexed by global clip index) — how much
    /// of each clip's work this run actually performs.
    pub ghost: &'a [GhostMode],
    /// Run-journal checkpoint sink; `None` for unjournaled runs.
    pub checkpoint: Option<&'a Checkpointer>,
    /// Stage watchdog: how long a stage task may stay parked on a
    /// wedged queue slot or batcher rendezvous before the wedge is
    /// converted into a typed, recoverable stall failure and the task
    /// retired.
    pub stage_timeout: Option<Duration>,
}

impl StageCtx<'_> {
    /// Consult the fault plan for `(stage, clip, ordinal)`. Returns
    /// `true` if a recoverable error fired (the caller poisons the
    /// clip); panics for real if a panic fault fired — the supervision
    /// shim catches it. A stall fault sleeps [`STALL_SLEEP`] and then
    /// lets the frame proceed normally.
    pub fn fire(&self, stage: StageName, clip: usize, ordinal: usize) -> bool {
        match self.faults.fire(stage, clip, ordinal) {
            None => false,
            Some(spec) => match spec.kind {
                FaultKind::Panic => panic!("{}", spec.reason),
                FaultKind::Error => {
                    self.health
                        .record_clip_failure(clip, stage, spec.reason.clone(), true);
                    true
                }
                FaultKind::Stall => {
                    std::thread::sleep(STALL_SLEEP);
                    false
                }
            },
        }
    }

    /// Record a stage-watchdog starvation: the task was parked waiting
    /// for input longer than the timeout while its upstream stayed
    /// connected — upstream is wedged.
    pub fn record_recv_stall(&self, stage: StageName) {
        let timeout = self.stage_timeout.unwrap_or_default();
        let reason = format!(
            "watchdog: {stage} starved >{:.3}s waiting for input \
             (decode_starved)",
            timeout.as_secs_f64()
        );
        self.health.record_stall(self.stream, stage, reason);
    }

    /// Record a stage-watchdog backpressure stall: the task was parked
    /// on a full output slot longer than the timeout — the pipeline
    /// downstream of `stage` is wedged. The in-flight clip fails
    /// recoverably.
    pub fn record_send_stall(&self, stage: StageName, clip: usize) {
        let timeout = self.stage_timeout.unwrap_or_default();
        let reason = format!(
            "watchdog: {stage} stalled >{:.3}s sending to the next stage \
             (channel_backpressure)",
            timeout.as_secs_f64()
        );
        self.health.record_stall(self.stream, stage, reason.clone());
        self.health.record_clip_failure(clip, stage, reason, true);
    }

    /// Record a batcher-rendezvous watchdog timeout (a sibling stream
    /// wedged the cross-stream flush watermark) before the detect task
    /// is retired.
    pub fn record_batcher_stall(&self, clip: usize) {
        let timeout = self.stage_timeout.unwrap_or_default();
        let reason = format!(
            "watchdog: detect stalled >{:.3}s in the batcher rendezvous \
             (batcher_wait)",
            timeout.as_secs_f64()
        );
        self.health
            .record_stall(self.stream, StageName::Detect, reason.clone());
        self.health
            .record_clip_failure(clip, StageName::Detect, reason, true);
    }
}

/// A message between stages: a frame of a live clip, or notice that a
/// clip was aborted upstream and its in-flight state must be dropped.
pub(crate) enum StageMsg<T> {
    Frame(T),
    Abort { clip: usize },
}

/// A sampled frame leaving the decode stage.
pub(crate) struct DecodedFrame {
    /// Index of the clip in the engine's global clip list.
    pub clip: usize,
    /// Frame number within the clip.
    pub frame: usize,
    /// 0-based arrival ordinal of the clip's sampled frames.
    pub ordinal: usize,
    /// Whether this is the clip's last sampled frame.
    pub last: bool,
}

/// A frame with detector windows selected.
pub(crate) struct WindowedFrame {
    pub clip: usize,
    pub frame: usize,
    pub ordinal: usize,
    pub windows: Vec<Rect>,
    pub last: bool,
}

/// A frame with detections computed.
pub(crate) struct DetectedFrame {
    pub clip: usize,
    pub frame: usize,
    pub ordinal: usize,
    pub dets: Vec<Detection>,
    pub last: bool,
}

/// Clip-index → clip resolution for a stream's assigned clips.
pub(crate) struct ClipLookup<'a> {
    clips: &'a [(usize, &'a Clip)],
}

impl<'a> ClipLookup<'a> {
    pub fn new(clips: &'a [(usize, &'a Clip)]) -> Self {
        ClipLookup { clips }
    }

    pub fn get(&self, clip_idx: usize) -> &'a Clip {
        self.clips
            .iter()
            .find(|(i, _)| *i == clip_idx)
            .map(|(_, c)| *c)
            .expect("clip index belongs to this stream")
    }
}
