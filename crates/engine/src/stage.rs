//! The four per-stream stage loops: decode → window → detect → track,
//! connected by bounded channels. Each loop consumes its input channel
//! until disconnect, so dropping the upstream sender drains and shuts
//! the stream down gracefully.
//!
//! All cost charging goes through the same `otif_core::stages`
//! functions the sequential pipeline uses, but every charge lands in
//! the *per-clip* ledger of the frame being processed: a clip that
//! later fails simply has its ledger discarded, so the surviving clips'
//! accounting is byte-identical to a fault-free run. The only shared
//! charge is the detector launch overhead, applied by the
//! [`DetectorBatcher`](crate::batcher::DetectorBatcher) per cross-stream
//! batch instead of per frame.
//!
//! Fault handling: messages travel as [`StageMsg`] — either a frame or
//! a per-clip abort. A stage hitting a recoverable fault records it on
//! the [`HealthBoard`], poisons the clip locally (skipping its
//! remaining frames) and forwards an abort so downstream stages drop
//! their in-flight state for that clip; the stream then continues with
//! its next clips. Injected panics unwind for real and are caught by
//! the supervision shim in the scheduler.

use crate::batcher::{StreamGuard, SubmitError};
use crate::exec::{DetectorExec, DetectorExecHarness};
use crate::fault::{FaultKind, FaultPlan, HealthBoard, StageName, STALL_SLEEP};
use crate::journal::Checkpointer;
use crate::stats::{EngineCounters, QUEUE_DECODE, QUEUE_DETECT, QUEUE_WINDOW};
use crate::timeline::ClipTimeline;
use crossbeam::channel::{Receiver, RecvTimeoutError, SendTimeoutError, Sender};
use otif_core::config::OtifConfig;
use otif_core::pipeline::ExecutionContext;
use otif_core::stages::{
    charge_decode, charge_tracker_step, finalize_tracks, select_windows, FrameTracker,
};
use otif_core::{digest_tensor, fold_digest};
use otif_cv::{Component, CostLedger, Detection, SimDetector};
use otif_geom::Rect;
use otif_nn::Tensor3;
use otif_sim::{Clip, Renderer};
use otif_track::Track;
use parking_lot::Mutex;
use std::collections::HashSet;
use std::time::{Duration, Instant};

/// How a clip is processed on this run: live, or replayed from a run
/// journal checkpoint without recomputation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub(crate) enum GhostMode {
    /// Normal processing — decode, window, detect and track for real.
    #[default]
    Live,
    /// The clip completed in-stream in a previous (crashed) run and was
    /// checkpointed: its ledger, timeline and result are pre-loaded by
    /// the scheduler, and the stages only *stream* it — forwarding
    /// frames and submitting recorded batcher tickets so the
    /// cross-stream round sequence (and every sibling's accounting)
    /// reproduces bitwise — without recomputing or re-charging anything.
    Stream,
    /// The clip completed via the sequential retry path in a previous
    /// run: it is not streamed at all; the scheduler replays its
    /// recorded retry accounting directly.
    Skip,
}

/// Everything a stage loop needs besides its channels: the run
/// configuration, this stream's clip assignment, the shared counters,
/// the per-clip cost ledgers and the fault machinery.
#[derive(Clone, Copy)]
pub(crate) struct StageCtx<'a> {
    pub config: &'a OtifConfig,
    pub exec: &'a ExecutionContext<'a>,
    /// This stream's index (for stream-level health reporting).
    pub stream: usize,
    /// This stream's assigned clips as `(global clip index, clip)`.
    pub clips: &'a [(usize, &'a Clip)],
    pub counters: &'a EngineCounters,
    /// One ledger per clip in the engine's global clip list; charges
    /// for a clip that ends up failing are discarded with it.
    pub clip_ledgers: &'a [CostLedger],
    /// Per-clip, per-frame charge recordings for the pipelined replay
    /// (parallel to `clip_ledgers`). Each stage appends only its own
    /// field, in frame-ordinal order.
    pub timelines: &'a [Mutex<ClipTimeline>],
    pub faults: &'a FaultPlan,
    pub health: &'a HealthBoard,
    /// Surrogate detector execution harness; `None` (or mode `Off`)
    /// means the detect stage computes accounting only, exactly as
    /// before the surrogate existed.
    pub detector_exec: Option<&'a DetectorExecHarness>,
    /// Per-clip ghost modes (indexed by global clip index) — how much
    /// of each clip's work this run actually performs.
    pub ghost: &'a [GhostMode],
    /// Run-journal checkpoint sink; `None` for unjournaled runs.
    pub checkpoint: Option<&'a Checkpointer>,
    /// Stage watchdog: how long a stage may stay blocked on a wedged
    /// channel send/recv or batcher rendezvous before converting the
    /// wedge into a typed, recoverable stall failure and exiting.
    pub stage_timeout: Option<Duration>,
}

/// What became of a watchdogged channel send.
pub(crate) enum SendStatus {
    /// Message delivered.
    Sent,
    /// All receivers gone (downstream shut down) — exit quietly.
    Closed,
    /// The watchdog fired: downstream is wedged. The stall has been
    /// recorded; the stage must exit so its dropped endpoints unwedge
    /// the neighbours.
    Stalled,
}

impl StageCtx<'_> {
    /// Consult the fault plan for `(stage, clip, ordinal)`. Returns
    /// `true` if a recoverable error fired (the caller poisons the
    /// clip); panics for real if a panic fault fired — the supervision
    /// shim catches it. A stall fault sleeps [`STALL_SLEEP`] and then
    /// lets the frame proceed normally.
    fn fire(&self, stage: StageName, clip: usize, ordinal: usize) -> bool {
        match self.faults.fire(stage, clip, ordinal) {
            None => false,
            Some(spec) => match spec.kind {
                FaultKind::Panic => panic!("{}", spec.reason),
                FaultKind::Error => {
                    self.health
                        .record_clip_failure(clip, stage, spec.reason.clone(), true);
                    true
                }
                FaultKind::Stall => {
                    std::thread::sleep(STALL_SLEEP);
                    false
                }
            },
        }
    }

    /// Send under the optional stage watchdog. A send blocked past the
    /// timeout means the pipeline downstream of `stage` is wedged: the
    /// stall is recorded (stream-level, plus a recoverable failure for
    /// the in-flight clip) and the caller must exit the stage.
    fn send_watch<T>(&self, stage: StageName, clip: usize, tx: &Sender<T>, msg: T) -> SendStatus {
        let Some(timeout) = self.stage_timeout else {
            return match tx.send(msg) {
                Ok(()) => SendStatus::Sent,
                Err(_) => SendStatus::Closed,
            };
        };
        match tx.send_timeout(msg, timeout) {
            Ok(()) => SendStatus::Sent,
            Err(SendTimeoutError::Disconnected(_)) => SendStatus::Closed,
            Err(SendTimeoutError::Timeout(_)) => {
                let reason = format!(
                    "watchdog: {stage} stalled >{:.3}s sending to the next stage \
                     (channel_backpressure)",
                    timeout.as_secs_f64()
                );
                self.health.record_stall(self.stream, stage, reason.clone());
                self.health.record_clip_failure(clip, stage, reason, true);
                SendStatus::Stalled
            }
        }
    }

    /// Receive under the optional stage watchdog. Returns `None` when
    /// the stage should exit: channel disconnected (normal shutdown) or
    /// the watchdog fired while senders were still connected (upstream
    /// wedged; the stall is recorded stream-level).
    fn recv_watch<T>(&self, stage: StageName, rx: &Receiver<T>) -> Option<T> {
        let Some(timeout) = self.stage_timeout else {
            return rx.recv().ok();
        };
        match rx.recv_timeout(timeout) {
            Ok(msg) => Some(msg),
            Err(RecvTimeoutError::Disconnected) => None,
            Err(RecvTimeoutError::Timeout) => {
                let reason = format!(
                    "watchdog: {stage} starved >{:.3}s waiting for input \
                     (decode_starved)",
                    timeout.as_secs_f64()
                );
                self.health.record_stall(self.stream, stage, reason);
                None
            }
        }
    }

    /// Record a batcher-submit watchdog timeout (the cross-stream
    /// rendezvous wedged) before the detect stage exits.
    fn record_batcher_stall(&self, clip: usize) {
        let timeout = self.stage_timeout.unwrap_or_default();
        let reason = format!(
            "watchdog: detect stalled >{:.3}s in the batcher rendezvous \
             (batcher_wait)",
            timeout.as_secs_f64()
        );
        self.health
            .record_stall(self.stream, StageName::Detect, reason.clone());
        self.health
            .record_clip_failure(clip, StageName::Detect, reason, true);
    }
}

/// A message between stages: a frame of a live clip, or notice that a
/// clip was aborted upstream and its in-flight state must be dropped.
pub(crate) enum StageMsg<T> {
    Frame(T),
    Abort { clip: usize },
}

/// A sampled frame leaving the decode stage.
pub(crate) struct DecodedFrame {
    /// Index of the clip in the engine's global clip list.
    pub clip: usize,
    /// Frame number within the clip.
    pub frame: usize,
    /// 0-based arrival ordinal of the clip's sampled frames.
    pub ordinal: usize,
    /// Whether this is the clip's last sampled frame.
    pub last: bool,
}

/// A frame with detector windows selected.
pub(crate) struct WindowedFrame {
    pub clip: usize,
    pub frame: usize,
    pub ordinal: usize,
    pub windows: Vec<Rect>,
    pub last: bool,
}

/// A frame with detections computed.
pub(crate) struct DetectedFrame {
    pub clip: usize,
    pub frame: usize,
    pub ordinal: usize,
    pub dets: Vec<Detection>,
    pub last: bool,
}

/// Decode stage: walks each assigned clip's sampled frames in order,
/// charges decode cost and feeds the window stage. A recoverable fault
/// aborts only the current clip; the loop continues with the stream's
/// next clip.
pub(crate) fn decode_stage(ctx: &StageCtx<'_>, tx: Sender<StageMsg<DecodedFrame>>) {
    let gap = ctx.config.gap.max(1);
    for &(clip_idx, clip) in ctx.clips {
        let mode = ctx.ghost[clip_idx];
        if mode == GhostMode::Skip {
            // Replayed retry clip: not streamed at all; the scheduler
            // replays its recorded accounting directly.
            continue;
        }
        let ghost = mode == GhostMode::Stream;
        let ledger = &ctx.clip_ledgers[clip_idx];
        let native_px = (clip.scene.width as f64) * (clip.scene.height as f64);
        let mut f = 0usize;
        let mut ordinal = 0usize;
        while f < clip.num_frames() {
            if !ghost && ctx.fire(StageName::Decode, clip_idx, ordinal) {
                if tx.send(StageMsg::Abort { clip: clip_idx }).is_err() {
                    return; // downstream gone (shutdown)
                }
                break; // poison only this clip; continue with the next
            }
            if !ghost {
                let before = ledger.get(Component::Decode);
                charge_decode(ctx.config, ctx.exec, native_px, ledger);
                ctx.timelines[clip_idx]
                    .lock()
                    .decode
                    .push(ledger.get(Component::Decode) - before);
            }
            ctx.counters
                .frames_decoded
                .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
            ctx.counters.frame_entered();
            let last = f + gap >= clip.num_frames();
            match ctx.send_watch(
                StageName::Decode,
                clip_idx,
                &tx,
                StageMsg::Frame(DecodedFrame {
                    clip: clip_idx,
                    frame: f,
                    ordinal,
                    last,
                }),
            ) {
                SendStatus::Sent => {}
                SendStatus::Closed | SendStatus::Stalled => {
                    // the frame never reached downstream: undo its entry
                    // so the in-flight gauge doesn't drift on shutdown
                    ctx.counters.frame_exited();
                    return;
                }
            }
            ctx.counters.observe_queue_depth(QUEUE_DECODE, tx.len());
            f += gap;
            ordinal += 1;
        }
    }
}

/// Window stage: runs the segmentation proxy (when configured) to pick
/// detector windows for each frame. Frames of poisoned clips are
/// dropped (and their in-flight entries released) without charging.
pub(crate) fn window_stage(
    ctx: &StageCtx<'_>,
    rx: Receiver<StageMsg<DecodedFrame>>,
    tx: Sender<StageMsg<WindowedFrame>>,
) {
    let lookup = ClipLookup::new(ctx.clips);
    let mut poisoned: HashSet<usize> = HashSet::new();
    while let Some(msg) = ctx.recv_watch(StageName::Window, &rx) {
        let msg = match msg {
            StageMsg::Abort { clip } => {
                poisoned.insert(clip);
                if tx.send(StageMsg::Abort { clip }).is_err() {
                    return;
                }
                continue;
            }
            StageMsg::Frame(m) => m,
        };
        if poisoned.contains(&msg.clip) {
            ctx.counters.frame_exited();
            continue;
        }
        let windows = if ctx.ghost[msg.clip] == GhostMode::Stream {
            // Ghost: no proxy charge, no timeline write. The detect
            // stage replays the recorded ticket from the pre-populated
            // timeline, so the windows themselves are not needed.
            Vec::new()
        } else {
            if ctx.fire(StageName::Window, msg.clip, msg.ordinal) {
                poisoned.insert(msg.clip);
                ctx.counters.frame_exited();
                if tx.send(StageMsg::Abort { clip: msg.clip }).is_err() {
                    return;
                }
                continue;
            }
            let clip = lookup.get(msg.clip);
            let renderer = Renderer::new(clip);
            let ledger = &ctx.clip_ledgers[msg.clip];
            let before = ledger.get(Component::Proxy);
            let windows = select_windows(
                ctx.config,
                ctx.exec,
                &renderer,
                clip.scene.frame_rect(),
                msg.frame,
                ledger,
            );
            ctx.timelines[msg.clip]
                .lock()
                .window
                .push(ledger.get(Component::Proxy) - before);
            windows
        };
        ctx.counters
            .frames_windowed
            .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        match ctx.send_watch(
            StageName::Window,
            msg.clip,
            &tx,
            StageMsg::Frame(WindowedFrame {
                clip: msg.clip,
                frame: msg.frame,
                ordinal: msg.ordinal,
                windows,
                last: msg.last,
            }),
        ) {
            SendStatus::Sent => {}
            SendStatus::Closed | SendStatus::Stalled => {
                ctx.counters.frame_exited();
                return;
            }
        }
        ctx.counters.observe_queue_depth(QUEUE_WINDOW, tx.len());
    }
}

/// Detect stage: charges per-window pixel cost to the clip's ledger,
/// rendezvouses with the other streams through the batcher for the
/// launch overhead, then computes detections with the pure (uncharged)
/// detector path. Poisoned clips submit no tickets.
pub(crate) fn detect_stage(
    ctx: &StageCtx<'_>,
    rx: Receiver<StageMsg<WindowedFrame>>,
    tx: Sender<StageMsg<DetectedFrame>>,
    batcher_guard: StreamGuard<'_>,
) {
    let lookup = ClipLookup::new(ctx.clips);
    let detector = SimDetector::new(ctx.config.detector, ctx.exec.detector_seed);
    let harness = ctx.detector_exec.filter(|h| h.mode() != DetectorExec::Off);
    let mut poisoned: HashSet<usize> = HashSet::new();
    while let Some(msg) = ctx.recv_watch(StageName::Detect, &rx) {
        let msg = match msg {
            StageMsg::Abort { clip } => {
                poisoned.insert(clip);
                if tx.send(StageMsg::Abort { clip }).is_err() {
                    return;
                }
                continue;
            }
            StageMsg::Frame(m) => m,
        };
        if poisoned.contains(&msg.clip) {
            ctx.counters.frame_exited();
            continue;
        }
        if ctx.ghost[msg.clip] == GhostMode::Stream {
            // Ghost: replay the recorded batcher ticket — the recorded
            // pixel-seconds and window sizes reproduce the cross-stream
            // round sequence bitwise — with no charge, digest fold or
            // detection compute.
            let (px, sizes) = {
                let t = ctx.timelines[msg.clip].lock();
                (t.detect_px[msg.ordinal], t.sizes[msg.ordinal].clone())
            };
            if let Some(px) = px {
                match batcher_guard.submit_tagged(sizes, msg.clip, msg.ordinal, px) {
                    Ok(()) => {}
                    Err(SubmitError::TimedOut { .. }) => {
                        ctx.record_batcher_stall(msg.clip);
                        ctx.counters.frame_exited();
                        return;
                    }
                    Err(e) => panic!("detect stage cannot batch: {e}"),
                }
            }
            ctx.counters
                .frames_detected
                .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
            match ctx.send_watch(
                StageName::Detect,
                msg.clip,
                &tx,
                StageMsg::Frame(DetectedFrame {
                    clip: msg.clip,
                    frame: msg.frame,
                    ordinal: msg.ordinal,
                    dets: Vec::new(),
                    last: msg.last,
                }),
            ) {
                SendStatus::Sent => {}
                SendStatus::Closed | SendStatus::Stalled => {
                    ctx.counters.frame_exited();
                    return;
                }
            }
            ctx.counters.observe_queue_depth(QUEUE_DETECT, tx.len());
            continue;
        }
        if ctx.fire(StageName::Detect, msg.clip, msg.ordinal) {
            poisoned.insert(msg.clip);
            ctx.counters.frame_exited();
            if tx.send(StageMsg::Abort { clip: msg.clip }).is_err() {
                return;
            }
            continue;
        }
        let dets = if msg.windows.is_empty() {
            // No windows → no batcher ticket; the replay passes the
            // frame through the detect stage with zero charge.
            let mut t = ctx.timelines[msg.clip].lock();
            t.detect_px.push(None);
            t.sizes.push(Vec::new());
            drop(t);
            Vec::new()
        } else {
            let px: f64 = msg
                .windows
                .iter()
                .map(|r| detector.window_px_cost(r.w, r.h))
                .sum();
            ctx.clip_ledgers[msg.clip].charge(Component::Detector, px);
            let sizes: Vec<(u32, u32)> = msg
                .windows
                .iter()
                .map(|r| (r.w.round() as u32, r.h.round() as u32))
                .collect();
            {
                let mut t = ctx.timelines[msg.clip].lock();
                t.detect_px.push(Some(px));
                t.sizes.push(sizes.clone());
            }
            // Surrogate execution: materialize the window crops at the
            // net's input resolution (identically for both modes — the
            // shapes depend only on the rounded sizes the ticket
            // carries, so the looped and batched paths run the same
            // arithmetic per window).
            let inputs: Vec<Tensor3> = match harness {
                Some(h) => {
                    let renderer = Renderer::new(lookup.get(msg.clip));
                    msg.windows
                        .iter()
                        .zip(&sizes)
                        .map(|(w, &sz)| h.net().materialize(&renderer, msg.frame, w, sz))
                        .collect()
                }
                None => Vec::new(),
            };
            // A protocol violation here is an engine bug and the stream
            // cannot continue coherently: fail the whole stream (the
            // supervision shim records it; siblings keep flowing). A
            // submit watchdog timeout instead records a typed stall and
            // exits the stage, leaving the pending ticket for the
            // guard-drop to discard.
            let outputs = match harness.map(|h| (h, h.mode())) {
                Some((h, DetectorExec::Looped)) => {
                    // Wall-clock baseline: one forward per window, timed
                    // around the forwards only (materialization happens
                    // on this thread in both modes).
                    let start = Instant::now();
                    let outs: Vec<Tensor3> = inputs
                        .iter()
                        .map(|x| {
                            let mut y = Tensor3::zeros(0, 0, 0);
                            h.net().forward_into(x, &mut y);
                            y
                        })
                        .collect();
                    h.record(start.elapsed(), outs.len() as u64, outs.len() as u64);
                    match batcher_guard.submit_tagged(sizes, msg.clip, msg.ordinal, px) {
                        Ok(()) => {}
                        Err(SubmitError::TimedOut { .. }) => {
                            ctx.record_batcher_stall(msg.clip);
                            ctx.counters.frame_exited();
                            return;
                        }
                        Err(e) => panic!("detect stage cannot batch: {e}"),
                    }
                    outs
                }
                Some((_, DetectorExec::Batched)) => {
                    match batcher_guard.submit_exec(sizes, inputs, msg.clip, msg.ordinal, px) {
                        Ok(outs) => outs,
                        Err(SubmitError::TimedOut { .. }) => {
                            ctx.record_batcher_stall(msg.clip);
                            ctx.counters.frame_exited();
                            return;
                        }
                        Err(e) => panic!("detect stage cannot batch: {e}"),
                    }
                }
                _ => {
                    match batcher_guard.submit_tagged(sizes, msg.clip, msg.ordinal, px) {
                        Ok(()) => {}
                        Err(SubmitError::TimedOut { .. }) => {
                            ctx.record_batcher_stall(msg.clip);
                            ctx.counters.frame_exited();
                            return;
                        }
                        Err(e) => panic!("detect stage cannot batch: {e}"),
                    }
                    Vec::new()
                }
            };
            if harness.is_some() {
                // Fold this frame's surrogate outputs (window order)
                // into the clip's digest — the per-clip half of the
                // batched≡looped bitwise contract. The detect stage is
                // the clip's only writer and sees frames in ordinal
                // order, so the fold is deterministic.
                let mut t = ctx.timelines[msg.clip].lock();
                for out in &outputs {
                    t.detect_digest = fold_digest(t.detect_digest, digest_tensor(out));
                }
            }
            detector.detect_windows_pure(lookup.get(msg.clip), msg.frame, &msg.windows)
        };
        ctx.counters
            .frames_detected
            .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        match ctx.send_watch(
            StageName::Detect,
            msg.clip,
            &tx,
            StageMsg::Frame(DetectedFrame {
                clip: msg.clip,
                frame: msg.frame,
                ordinal: msg.ordinal,
                dets,
                last: msg.last,
            }),
        ) {
            SendStatus::Sent => {}
            SendStatus::Closed | SendStatus::Stalled => {
                ctx.counters.frame_exited();
                return;
            }
        }
        ctx.counters.observe_queue_depth(QUEUE_DETECT, tx.len());
    }
    // batcher_guard drops here → finish(stream): remaining streams keep
    // batching among themselves
}

/// Track stage: steps the per-clip tracker, finalizes (stitch + refine)
/// at each clip boundary and deposits results by clip index. An abort
/// drops the poisoned clip's tracker state, leaving its result slot
/// empty for the scheduler to report as failed.
pub(crate) fn track_stage(
    ctx: &StageCtx<'_>,
    rx: Receiver<StageMsg<DetectedFrame>>,
    results: &Mutex<Vec<Option<Vec<Track>>>>,
) {
    let lookup = ClipLookup::new(ctx.clips);
    let mut tracker: Option<(usize, FrameTracker)> = None;
    let mut poisoned: HashSet<usize> = HashSet::new();
    while let Some(msg) = ctx.recv_watch(StageName::Track, &rx) {
        let msg = match msg {
            StageMsg::Abort { clip } => {
                poisoned.insert(clip);
                if tracker.as_ref().is_some_and(|(c, _)| *c == clip) {
                    tracker = None;
                }
                continue;
            }
            StageMsg::Frame(m) => m,
        };
        if poisoned.contains(&msg.clip) {
            ctx.counters.frame_exited();
            continue;
        }
        if ctx.ghost[msg.clip] == GhostMode::Stream {
            // Ghost: the scheduler pre-loaded the ledger, timeline and
            // result from the journal; only the frame-flow bookkeeping
            // happens here. No re-checkpoint either — the clip is
            // already durable.
            ctx.counters
                .frames_tracked
                .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
            ctx.counters.frame_exited();
            continue;
        }
        if ctx.fire(StageName::Track, msg.clip, msg.ordinal) {
            poisoned.insert(msg.clip);
            if tracker.as_ref().is_some_and(|(c, _)| *c == msg.clip) {
                tracker = None;
            }
            ctx.counters.frame_exited();
            continue;
        }
        let ledger = &ctx.clip_ledgers[msg.clip];
        let before = ledger.get(Component::Tracker);
        charge_tracker_step(ctx.exec, msg.dets.len(), ledger);
        ctx.timelines[msg.clip]
            .lock()
            .track
            .push(ledger.get(Component::Tracker) - before);
        tracker
            .get_or_insert_with(|| (msg.clip, FrameTracker::new(ctx.config, ctx.exec)))
            .1
            .step(msg.frame, msg.dets);
        ctx.counters
            .frames_tracked
            .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        ctx.counters.frame_exited();
        if msg.last {
            let (_, finished) = tracker
                .take()
                .expect("tracker exists for the clip being finalized");
            let before = ledger.get(Component::Tracker) + ledger.get(Component::Refinement);
            let tracks = finalize_tracks(
                ctx.config,
                ctx.exec,
                lookup.get(msg.clip),
                finished.finish(),
                ledger,
            );
            ctx.timelines[msg.clip].lock().finalize =
                ledger.get(Component::Tracker) + ledger.get(Component::Refinement) - before;
            // Acknowledgement point: checkpoint the finished clip to the
            // run journal *before* depositing the result. A checkpoint
            // failure is counted but never fails the clip — the run
            // continues in-memory and the clip is simply recomputed on a
            // future resume.
            if let Some(cp) = ctx.checkpoint {
                let timeline = ctx.timelines[msg.clip].lock();
                cp.checkpoint_clip(msg.clip, &tracks, &timeline, ledger, false, 0, 0.0);
            }
            results.lock()[msg.clip] = Some(tracks);
        }
    }
}

/// Clip-index → clip resolution for a stream's assigned clips.
struct ClipLookup<'a> {
    clips: &'a [(usize, &'a Clip)],
}

impl<'a> ClipLookup<'a> {
    fn new(clips: &'a [(usize, &'a Clip)]) -> Self {
        ClipLookup { clips }
    }

    fn get(&self, clip_idx: usize) -> &'a Clip {
        self.clips
            .iter()
            .find(|(i, _)| *i == clip_idx)
            .map(|(_, c)| *c)
            .expect("clip index belongs to this stream")
    }
}
