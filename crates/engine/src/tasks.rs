//! The four per-stream stages as resumable state machines.
//!
//! Each stage from the thread-per-stream engine (decode → window →
//! detect → track) becomes a [`StagePoll`] state machine polled by the
//! fixed worker pool in [`otif_core::evalpool`]. Blocking points turn
//! into explicit parked states: a full output slot, an empty input
//! slot, an unresolved batcher ticket or a closed admission gate each
//! stash the in-flight message, register waker interest and return
//! [`Polled::Pending`]; the peer's next transition re-enqueues the
//! task. A task that keeps making progress yields back to the pool
//! every [`FRAMES_PER_POLL`] frames so a thousand streams share a
//! handful of workers round-robin.
//!
//! The cost-charging code inside each state machine is carried over
//! from the stage thread loops verbatim — same charges, same timeline
//! appends, same counter increments in the same order per frame — so
//! ledgers, round logs, timelines and digests stay bitwise identical
//! to the thread engine at any worker count.
//!
//! Supervision moves from thread scope to poll scope: [`Supervised`]
//! wraps every stage task and runs each `poll` under
//! [`supervise_poll`], so an injected panic is caught, recorded on the
//! [`HealthBoard`] and converted into task retirement — dropping the
//! task's queue endpoints (and batcher guard) exactly like a stage
//! thread's unwind used to.
//!
//! The stall watchdog also moves here: the pool calls
//! [`StagePoll::on_stall`] on a task parked past the stage timeout,
//! and the task attributes the wedge from its parked state — starved
//! input, backpressured output or a wedged batcher rendezvous — using
//! the same reason strings the thread engine's watchdog produced. A
//! task parked only because its stream is not yet admitted is never
//! expired; it keeps waiting for the admission gate.

use crate::batcher::{DetectorBatcher, PollSubmit, StreamGuard};
use crate::exec::DetectorExec;
use crate::fault::{supervise_poll, HealthBoard, StageName};
use crate::slot::{SlotReceiver, SlotSender, TryRecv, TrySend};
use crate::stage::{
    ClipLookup, DecodedFrame, DetectedFrame, GhostMode, StageCtx, StageMsg, WindowedFrame,
};
use crate::stats::{EngineCounters, QUEUE_DECODE, QUEUE_DETECT, QUEUE_WINDOW};
use otif_core::evalpool::{PollTask, Polled};
use otif_core::stages::{
    charge_decode, charge_tracker_step, finalize_tracks, select_windows, FrameTracker,
};
use otif_core::{digest_tensor, fold_digest};
use otif_cv::{Component, Detection, SimDetector};
use otif_nn::Tensor3;
use otif_sim::Renderer;
use otif_track::Track;
use parking_lot::Mutex;
use std::collections::HashSet;
use std::sync::atomic::Ordering;
use std::time::Instant;

/// Fairness budget: frames a stage task may process in one `poll`
/// before yielding the worker back to the pool.
const FRAMES_PER_POLL: usize = 32;

/// Why a stage task last returned [`Polled::Pending`] — consulted by
/// `on_stall` to attribute a watchdog expiry to the right wedge.
#[derive(Clone, Copy)]
enum Blocked {
    /// Parked on an empty input slot (upstream starved).
    Recv,
    /// Parked on a full output slot while carrying a frame or abort of
    /// `clip` (downstream backpressure).
    Send { clip: usize },
    /// Parked on an unresolved batcher ticket for `clip` (a sibling
    /// stream wedges the flush watermark).
    Batcher { clip: usize },
    /// Parked because the stream is not yet admitted — never expired.
    Admission,
}

/// A pollable stage body. Unlike [`PollTask`] this is the *unsupervised*
/// inner machine; [`Supervised`] adapts it to the pool, catching panics
/// per poll.
trait StagePoll: Send {
    fn poll(&mut self) -> Polled;
    /// Watchdog verdict: record the stall (by parked state) and return
    /// `true` to expire, or `false` to keep waiting.
    fn on_stall(&mut self) -> bool;
}

/// Whether `stream` is parked behind the admission gate (deferred by
/// `--max-active-streams` and not yet admitted).
fn admission_parked(admission: Option<&DetectorBatcher>, stream: usize) -> bool {
    admission.is_some_and(|b| !b.is_admitted(stream))
}

/// A message stashed for the output slot: the message, whether it is a
/// frame (and thus holds an in-flight gauge entry and a queue-depth
/// observation), and the clip it belongs to (for stall attribution).
type PendingMsg<T> = (StageMsg<T>, bool, usize);

/// Flush a stashed message into the output slot. Returns `None` when
/// flushed (or nothing was pending), or the poll outcome to propagate.
fn flush_pending<T>(
    pending: &mut Option<PendingMsg<T>>,
    tx: Option<&SlotSender<StageMsg<T>>>,
    blocked: &mut Blocked,
    counters: &EngineCounters,
    queue: usize,
) -> Option<Polled> {
    let (msg, is_frame, clip) = pending.take()?;
    let Some(tx) = tx else {
        return Some(Polled::Done);
    };
    match tx.try_send(msg) {
        TrySend::Sent => {
            if is_frame {
                counters.observe_queue_depth(queue, tx.len());
            }
            None
        }
        TrySend::Full(msg) => {
            *pending = Some((msg, is_frame, clip));
            *blocked = Blocked::Send { clip };
            Some(Polled::Pending)
        }
        TrySend::Closed(_) => {
            if is_frame {
                // the frame never reached downstream: undo its entry so
                // the in-flight gauge doesn't drift on shutdown
                counters.frame_exited();
            }
            Some(Polled::Done)
        }
    }
}

/// Decode stage machine: walks each assigned clip's sampled frames in
/// order, charges decode cost and feeds the window stage. A recoverable
/// fault aborts only the current clip; the machine continues with the
/// stream's next clip.
struct DecodeTask<'a> {
    ctx: StageCtx<'a>,
    tx: Option<SlotSender<StageMsg<DecodedFrame>>>,
    admission: Option<&'a DetectorBatcher>,
    /// Index into `ctx.clips` of the clip being decoded.
    clip_i: usize,
    /// Frame cursor within the current clip.
    f: usize,
    /// Arrival ordinal of the current clip's sampled frames.
    ordinal: usize,
    pending: Option<PendingMsg<DecodedFrame>>,
    blocked: Blocked,
}

impl DecodeTask<'_> {
    fn next_clip(&mut self) {
        self.clip_i += 1;
        self.f = 0;
        self.ordinal = 0;
    }
}

impl StagePoll for DecodeTask<'_> {
    fn poll(&mut self) -> Polled {
        if admission_parked(self.admission, self.ctx.stream) {
            self.blocked = Blocked::Admission;
            return Polled::Pending;
        }
        let gap = self.ctx.config.gap.max(1);
        let mut budget = FRAMES_PER_POLL;
        loop {
            if let Some(out) = flush_pending(
                &mut self.pending,
                self.tx.as_ref(),
                &mut self.blocked,
                self.ctx.counters,
                QUEUE_DECODE,
            ) {
                return out;
            }
            if budget == 0 {
                return Polled::Yielded;
            }
            let Some(&(clip_idx, clip)) = self.ctx.clips.get(self.clip_i) else {
                // All clips streamed: drop the sender so the window
                // stage drains and shuts down.
                self.tx = None;
                return Polled::Done;
            };
            let mode = self.ctx.ghost[clip_idx];
            if mode == GhostMode::Skip || self.f >= clip.num_frames() {
                // Replayed retry clip: not streamed at all; the
                // scheduler replays its recorded accounting directly.
                self.next_clip();
                continue;
            }
            let ghost = mode == GhostMode::Stream;
            let frame = self.f;
            let ordinal = self.ordinal;
            if !ghost && self.ctx.fire(StageName::Decode, clip_idx, ordinal) {
                // poison only this clip; continue with the next
                self.next_clip();
                self.pending = Some((StageMsg::Abort { clip: clip_idx }, false, clip_idx));
                continue;
            }
            if !ghost {
                let ledger = &self.ctx.clip_ledgers[clip_idx];
                let native_px = (clip.scene.width as f64) * (clip.scene.height as f64);
                let before = ledger.get(Component::Decode);
                charge_decode(self.ctx.config, self.ctx.exec, native_px, ledger);
                self.ctx.timelines[clip_idx]
                    .lock()
                    .decode
                    .push(ledger.get(Component::Decode) - before);
            }
            self.ctx
                .counters
                .frames_decoded
                .fetch_add(1, Ordering::Relaxed);
            self.ctx.counters.frame_entered();
            let last = frame + gap >= clip.num_frames();
            // Cursors advance *before* the frame is stashed: a re-poll
            // after a Full output slot must not recharge the frame.
            self.f += gap;
            self.ordinal += 1;
            if last {
                self.next_clip();
            }
            self.pending = Some((
                StageMsg::Frame(DecodedFrame {
                    clip: clip_idx,
                    frame,
                    ordinal,
                    last,
                }),
                true,
                clip_idx,
            ));
            budget -= 1;
        }
    }

    fn on_stall(&mut self) -> bool {
        if admission_parked(self.admission, self.ctx.stream) {
            return false;
        }
        match self.blocked {
            Blocked::Send { clip } => {
                self.ctx.record_send_stall(StageName::Decode, clip);
                true
            }
            _ => true,
        }
    }
}

impl Drop for DecodeTask<'_> {
    fn drop(&mut self) {
        if matches!(self.pending, Some((_, true, _))) {
            self.ctx.counters.frame_exited();
        }
    }
}

/// Window stage machine: runs the segmentation proxy (when configured)
/// to pick detector windows for each frame. Frames of poisoned clips
/// are dropped (and their in-flight entries released) without charging.
struct WindowTask<'a> {
    ctx: StageCtx<'a>,
    rx: Option<SlotReceiver<StageMsg<DecodedFrame>>>,
    tx: Option<SlotSender<StageMsg<WindowedFrame>>>,
    admission: Option<&'a DetectorBatcher>,
    poisoned: HashSet<usize>,
    pending: Option<PendingMsg<WindowedFrame>>,
    blocked: Blocked,
}

impl StagePoll for WindowTask<'_> {
    fn poll(&mut self) -> Polled {
        if admission_parked(self.admission, self.ctx.stream) {
            self.blocked = Blocked::Admission;
            return Polled::Pending;
        }
        let lookup = ClipLookup::new(self.ctx.clips);
        let mut budget = FRAMES_PER_POLL;
        loop {
            if let Some(out) = flush_pending(
                &mut self.pending,
                self.tx.as_ref(),
                &mut self.blocked,
                self.ctx.counters,
                QUEUE_WINDOW,
            ) {
                return out;
            }
            if budget == 0 {
                return Polled::Yielded;
            }
            let msg = match self
                .rx
                .as_ref()
                .expect("receiver lives until Done")
                .try_recv()
            {
                TryRecv::Msg(m) => m,
                TryRecv::Empty => {
                    self.blocked = Blocked::Recv;
                    return Polled::Pending;
                }
                TryRecv::Disconnected => {
                    self.rx = None;
                    self.tx = None;
                    return Polled::Done;
                }
            };
            budget -= 1;
            let m = match msg {
                StageMsg::Abort { clip } => {
                    self.poisoned.insert(clip);
                    self.pending = Some((StageMsg::Abort { clip }, false, clip));
                    continue;
                }
                StageMsg::Frame(m) => m,
            };
            if self.poisoned.contains(&m.clip) {
                self.ctx.counters.frame_exited();
                continue;
            }
            let windows = if self.ctx.ghost[m.clip] == GhostMode::Stream {
                // Ghost: no proxy charge, no timeline write. The detect
                // stage replays the recorded ticket from the
                // pre-populated timeline, so the windows themselves are
                // not needed.
                Vec::new()
            } else {
                if self.ctx.fire(StageName::Window, m.clip, m.ordinal) {
                    self.poisoned.insert(m.clip);
                    self.ctx.counters.frame_exited();
                    self.pending = Some((StageMsg::Abort { clip: m.clip }, false, m.clip));
                    continue;
                }
                let clip = lookup.get(m.clip);
                let renderer = Renderer::new(clip);
                let ledger = &self.ctx.clip_ledgers[m.clip];
                let before = ledger.get(Component::Proxy);
                let windows = select_windows(
                    self.ctx.config,
                    self.ctx.exec,
                    &renderer,
                    clip.scene.frame_rect(),
                    m.frame,
                    ledger,
                );
                self.ctx.timelines[m.clip]
                    .lock()
                    .window
                    .push(ledger.get(Component::Proxy) - before);
                windows
            };
            self.ctx
                .counters
                .frames_windowed
                .fetch_add(1, Ordering::Relaxed);
            self.pending = Some((
                StageMsg::Frame(WindowedFrame {
                    clip: m.clip,
                    frame: m.frame,
                    ordinal: m.ordinal,
                    windows,
                    last: m.last,
                }),
                true,
                m.clip,
            ));
        }
    }

    fn on_stall(&mut self) -> bool {
        if admission_parked(self.admission, self.ctx.stream) {
            return false;
        }
        match self.blocked {
            Blocked::Recv => {
                self.ctx.record_recv_stall(StageName::Window);
                true
            }
            Blocked::Send { clip } => {
                self.ctx.record_send_stall(StageName::Window, clip);
                true
            }
            _ => true,
        }
    }
}

impl Drop for WindowTask<'_> {
    fn drop(&mut self) {
        if matches!(self.pending, Some((_, true, _))) {
            self.ctx.counters.frame_exited();
        }
    }
}

/// Where the detect machine stands with the batcher.
enum DetectStep {
    /// No ticket outstanding: receive and process the next frame.
    Ready,
    /// A ticket for `m` is deposited and unresolved; `outs` holds
    /// locally computed surrogate outputs (looped mode) and `ghost`
    /// whether this is a replayed ticket. Resolved via `poll_pending`
    /// at the top of the next poll.
    Submit {
        m: WindowedFrame,
        outs: Vec<Tensor3>,
        ghost: bool,
    },
}

/// Detect stage machine: charges per-window pixel cost to the clip's
/// ledger, rendezvouses with the other streams through the batcher for
/// the launch overhead, then computes detections with the pure
/// (uncharged) detector path. Poisoned clips submit no tickets.
struct DetectTask<'a> {
    ctx: StageCtx<'a>,
    rx: Option<SlotReceiver<StageMsg<WindowedFrame>>>,
    tx: Option<SlotSender<StageMsg<DetectedFrame>>>,
    guard: Option<StreamGuard<'a>>,
    admission: Option<&'a DetectorBatcher>,
    detector: SimDetector,
    poisoned: HashSet<usize>,
    step: DetectStep,
    pending: Option<PendingMsg<DetectedFrame>>,
    blocked: Blocked,
}

impl DetectTask<'_> {
    /// Per-frame epilogue shared by every completion path: count the
    /// frame and stash it for the track stage.
    fn finish_frame(&mut self, m: WindowedFrame, dets: Vec<Detection>) {
        self.ctx
            .counters
            .frames_detected
            .fetch_add(1, Ordering::Relaxed);
        self.pending = Some((
            StageMsg::Frame(DetectedFrame {
                clip: m.clip,
                frame: m.frame,
                ordinal: m.ordinal,
                dets,
                last: m.last,
            }),
            true,
            m.clip,
        ));
    }

    /// Complete a live frame whose batcher ticket resolved: fold the
    /// surrogate outputs into the clip digest (window order — the
    /// detect machine is the clip's only writer and sees frames in
    /// ordinal order, so the fold is deterministic) and compute
    /// detections with the pure detector path.
    fn complete_live_frame(&mut self, m: WindowedFrame, outputs: Vec<Tensor3>, fold: bool) {
        if fold {
            let mut t = self.ctx.timelines[m.clip].lock();
            for out in &outputs {
                t.detect_digest = fold_digest(t.detect_digest, digest_tensor(out));
            }
        }
        let dets = self.detector.detect_windows_pure(
            ClipLookup::new(self.ctx.clips).get(m.clip),
            m.frame,
            &m.windows,
        );
        self.finish_frame(m, dets);
    }

    /// Complete a ghost frame: frame-flow bookkeeping only.
    fn complete_ghost_frame(&mut self, m: WindowedFrame) {
        self.finish_frame(m, Vec::new());
    }
}

impl StagePoll for DetectTask<'_> {
    fn poll(&mut self) -> Polled {
        if admission_parked(self.admission, self.ctx.stream) {
            self.blocked = Blocked::Admission;
            return Polled::Pending;
        }
        let harness = self
            .ctx
            .detector_exec
            .filter(|h| h.mode() != DetectorExec::Off);
        let lookup = ClipLookup::new(self.ctx.clips);
        let mut budget = FRAMES_PER_POLL;
        loop {
            // Resolve an outstanding batcher ticket before anything
            // else: its frame owns the machine until the round flushes.
            if matches!(self.step, DetectStep::Submit { .. }) {
                let flushed = match self
                    .guard
                    .as_ref()
                    .expect("guard lives until Done")
                    .poll_pending()
                {
                    Ok(PollSubmit::Pending) => return Polled::Pending,
                    Ok(PollSubmit::Ready(flushed)) => flushed,
                    // A protocol violation here is an engine bug and the
                    // stream cannot continue coherently: fail the whole
                    // stream (the supervision shim records it; siblings
                    // keep flowing).
                    Err(e) => panic!("detect stage cannot batch: {e}"),
                };
                let DetectStep::Submit { m, outs, ghost } =
                    std::mem::replace(&mut self.step, DetectStep::Ready)
                else {
                    unreachable!()
                };
                if ghost {
                    self.complete_ghost_frame(m);
                } else {
                    // Looped mode computed its outputs before the
                    // submit; batched mode gets them from the flush.
                    let outputs = if outs.is_empty() { flushed } else { outs };
                    self.complete_live_frame(m, outputs, harness.is_some());
                }
                continue;
            }
            if let Some(out) = flush_pending(
                &mut self.pending,
                self.tx.as_ref(),
                &mut self.blocked,
                self.ctx.counters,
                QUEUE_DETECT,
            ) {
                return out;
            }
            if budget == 0 {
                return Polled::Yielded;
            }
            let msg = match self
                .rx
                .as_ref()
                .expect("receiver lives until Done")
                .try_recv()
            {
                TryRecv::Msg(m) => m,
                TryRecv::Empty => {
                    self.blocked = Blocked::Recv;
                    return Polled::Pending;
                }
                TryRecv::Disconnected => {
                    self.rx = None;
                    self.tx = None;
                    // Drop the guard eagerly: finish(stream) releases
                    // the flush watermark for the remaining streams.
                    self.guard = None;
                    return Polled::Done;
                }
            };
            budget -= 1;
            let m = match msg {
                StageMsg::Abort { clip } => {
                    self.poisoned.insert(clip);
                    self.pending = Some((StageMsg::Abort { clip }, false, clip));
                    continue;
                }
                StageMsg::Frame(m) => m,
            };
            if self.poisoned.contains(&m.clip) {
                self.ctx.counters.frame_exited();
                continue;
            }
            if self.ctx.ghost[m.clip] == GhostMode::Stream {
                // Ghost: replay the recorded batcher ticket — the
                // recorded pixel-seconds and window sizes reproduce the
                // cross-stream round sequence bitwise — with no charge,
                // digest fold or detection compute.
                let (px, sizes) = {
                    let t = self.ctx.timelines[m.clip].lock();
                    (t.detect_px[m.ordinal], t.sizes[m.ordinal].clone())
                };
                let Some(px) = px else {
                    self.complete_ghost_frame(m);
                    continue;
                };
                let clip = m.clip;
                match self
                    .guard
                    .as_ref()
                    .expect("guard lives until Done")
                    .poll_submit_exec(sizes, Vec::new(), m.clip, m.ordinal, px)
                {
                    Ok(PollSubmit::Ready(_)) => {
                        self.complete_ghost_frame(m);
                        continue;
                    }
                    Ok(PollSubmit::Pending) => {
                        self.blocked = Blocked::Batcher { clip };
                        self.step = DetectStep::Submit {
                            m,
                            outs: Vec::new(),
                            ghost: true,
                        };
                        return Polled::Pending;
                    }
                    Err(e) => panic!("detect stage cannot batch: {e}"),
                }
            }
            if self.ctx.fire(StageName::Detect, m.clip, m.ordinal) {
                self.poisoned.insert(m.clip);
                self.ctx.counters.frame_exited();
                self.pending = Some((StageMsg::Abort { clip: m.clip }, false, m.clip));
                continue;
            }
            if m.windows.is_empty() {
                // No windows → no batcher ticket; the replay passes the
                // frame through the detect stage with zero charge.
                {
                    let mut t = self.ctx.timelines[m.clip].lock();
                    t.detect_px.push(None);
                    t.sizes.push(Vec::new());
                }
                self.finish_frame(m, Vec::new());
                continue;
            }
            let px: f64 = m
                .windows
                .iter()
                .map(|r| self.detector.window_px_cost(r.w, r.h))
                .sum();
            self.ctx.clip_ledgers[m.clip].charge(Component::Detector, px);
            let sizes: Vec<(u32, u32)> = m
                .windows
                .iter()
                .map(|r| (r.w.round() as u32, r.h.round() as u32))
                .collect();
            {
                let mut t = self.ctx.timelines[m.clip].lock();
                t.detect_px.push(Some(px));
                t.sizes.push(sizes.clone());
            }
            // Surrogate execution: materialize the window crops at the
            // net's input resolution (identically for both modes — the
            // shapes depend only on the rounded sizes the ticket
            // carries, so the looped and batched paths run the same
            // arithmetic per window).
            let inputs: Vec<Tensor3> = match harness {
                Some(h) => {
                    let renderer = Renderer::new(lookup.get(m.clip));
                    m.windows
                        .iter()
                        .zip(&sizes)
                        .map(|(w, &sz)| h.net().materialize(&renderer, m.frame, w, sz))
                        .collect()
                }
                None => Vec::new(),
            };
            let (submit_inputs, outs) = match harness.map(|h| (h, h.mode())) {
                Some((h, DetectorExec::Looped)) => {
                    // Wall-clock baseline: one forward per window, timed
                    // around the forwards only (materialization happens
                    // on this worker in both modes).
                    let start = Instant::now();
                    let outs: Vec<Tensor3> = inputs
                        .iter()
                        .map(|x| {
                            let mut y = Tensor3::zeros(0, 0, 0);
                            h.net().forward_into(x, &mut y);
                            y
                        })
                        .collect();
                    h.record(start.elapsed(), outs.len() as u64, outs.len() as u64);
                    (Vec::new(), outs)
                }
                Some((_, DetectorExec::Batched)) => (inputs, Vec::new()),
                _ => (Vec::new(), Vec::new()),
            };
            let clip = m.clip;
            match self
                .guard
                .as_ref()
                .expect("guard lives until Done")
                .poll_submit_exec(sizes, submit_inputs, m.clip, m.ordinal, px)
            {
                Ok(PollSubmit::Ready(flushed)) => {
                    let outputs = if outs.is_empty() { flushed } else { outs };
                    self.complete_live_frame(m, outputs, harness.is_some());
                }
                Ok(PollSubmit::Pending) => {
                    self.blocked = Blocked::Batcher { clip };
                    self.step = DetectStep::Submit {
                        m,
                        outs,
                        ghost: false,
                    };
                    return Polled::Pending;
                }
                Err(e) => panic!("detect stage cannot batch: {e}"),
            }
        }
    }

    fn on_stall(&mut self) -> bool {
        if admission_parked(self.admission, self.ctx.stream) {
            return false;
        }
        match self.blocked {
            Blocked::Recv => {
                self.ctx.record_recv_stall(StageName::Detect);
                true
            }
            Blocked::Send { clip } => {
                self.ctx.record_send_stall(StageName::Detect, clip);
                true
            }
            Blocked::Batcher { clip } => {
                self.ctx.record_batcher_stall(clip);
                true
            }
            Blocked::Admission => true,
        }
    }
}

impl Drop for DetectTask<'_> {
    fn drop(&mut self) {
        // Release the gauge entries of frames dying inside the machine:
        // one stashed for the track stage, one parked mid-submit.
        if matches!(self.pending, Some((_, true, _))) {
            self.ctx.counters.frame_exited();
        }
        if matches!(self.step, DetectStep::Submit { .. }) {
            self.ctx.counters.frame_exited();
        }
    }
}

/// Track stage machine: steps the per-clip tracker, finalizes (stitch +
/// refine) at each clip boundary and deposits results by clip index. An
/// abort drops the poisoned clip's tracker state, leaving its result
/// slot empty for the scheduler to report as failed.
struct TrackTask<'a> {
    ctx: StageCtx<'a>,
    rx: Option<SlotReceiver<StageMsg<DetectedFrame>>>,
    admission: Option<&'a DetectorBatcher>,
    results: &'a Mutex<Vec<Option<Vec<Track>>>>,
    tracker: Option<(usize, FrameTracker)>,
    poisoned: HashSet<usize>,
    blocked: Blocked,
}

impl StagePoll for TrackTask<'_> {
    fn poll(&mut self) -> Polled {
        if admission_parked(self.admission, self.ctx.stream) {
            self.blocked = Blocked::Admission;
            return Polled::Pending;
        }
        let lookup = ClipLookup::new(self.ctx.clips);
        let mut budget = FRAMES_PER_POLL;
        loop {
            if budget == 0 {
                return Polled::Yielded;
            }
            let msg = match self
                .rx
                .as_ref()
                .expect("receiver lives until Done")
                .try_recv()
            {
                TryRecv::Msg(m) => m,
                TryRecv::Empty => {
                    self.blocked = Blocked::Recv;
                    return Polled::Pending;
                }
                TryRecv::Disconnected => {
                    self.rx = None;
                    return Polled::Done;
                }
            };
            budget -= 1;
            let m = match msg {
                StageMsg::Abort { clip } => {
                    self.poisoned.insert(clip);
                    if self.tracker.as_ref().is_some_and(|(c, _)| *c == clip) {
                        self.tracker = None;
                    }
                    continue;
                }
                StageMsg::Frame(m) => m,
            };
            if self.poisoned.contains(&m.clip) {
                self.ctx.counters.frame_exited();
                continue;
            }
            if self.ctx.ghost[m.clip] == GhostMode::Stream {
                // Ghost: the scheduler pre-loaded the ledger, timeline
                // and result from the journal; only the frame-flow
                // bookkeeping happens here. No re-checkpoint either —
                // the clip is already durable.
                self.ctx
                    .counters
                    .frames_tracked
                    .fetch_add(1, Ordering::Relaxed);
                self.ctx.counters.frame_exited();
                continue;
            }
            if self.ctx.fire(StageName::Track, m.clip, m.ordinal) {
                self.poisoned.insert(m.clip);
                if self.tracker.as_ref().is_some_and(|(c, _)| *c == m.clip) {
                    self.tracker = None;
                }
                self.ctx.counters.frame_exited();
                continue;
            }
            let ledger = &self.ctx.clip_ledgers[m.clip];
            let before = ledger.get(Component::Tracker);
            charge_tracker_step(self.ctx.exec, m.dets.len(), ledger);
            self.ctx.timelines[m.clip]
                .lock()
                .track
                .push(ledger.get(Component::Tracker) - before);
            self.tracker
                .get_or_insert_with(|| (m.clip, FrameTracker::new(self.ctx.config, self.ctx.exec)))
                .1
                .step(m.frame, m.dets);
            self.ctx
                .counters
                .frames_tracked
                .fetch_add(1, Ordering::Relaxed);
            self.ctx.counters.frame_exited();
            if m.last {
                let (_, finished) = self
                    .tracker
                    .take()
                    .expect("tracker exists for the clip being finalized");
                let before = ledger.get(Component::Tracker) + ledger.get(Component::Refinement);
                let tracks = finalize_tracks(
                    self.ctx.config,
                    self.ctx.exec,
                    lookup.get(m.clip),
                    finished.finish(),
                    ledger,
                );
                self.ctx.timelines[m.clip].lock().finalize =
                    ledger.get(Component::Tracker) + ledger.get(Component::Refinement) - before;
                // Acknowledgement point: checkpoint the finished clip to
                // the run journal *before* depositing the result. A
                // checkpoint failure is counted but never fails the clip
                // — the run continues in-memory and the clip is simply
                // recomputed on a future resume.
                if let Some(cp) = self.ctx.checkpoint {
                    let timeline = self.ctx.timelines[m.clip].lock();
                    cp.checkpoint_clip(m.clip, &tracks, &timeline, ledger, false, 0, 0.0);
                }
                self.results.lock()[m.clip] = Some(tracks);
                // Clip boundaries are where the worker population is
                // interesting: sample the process thread count for the
                // oversubscription gauge.
                self.ctx.counters.sample_os_threads();
            }
        }
    }

    fn on_stall(&mut self) -> bool {
        if admission_parked(self.admission, self.ctx.stream) {
            return false;
        }
        match self.blocked {
            Blocked::Recv => {
                self.ctx.record_recv_stall(StageName::Track);
                true
            }
            _ => true,
        }
    }
}

/// Index into the per-stage yield counters for `stage`.
fn stage_index(stage: StageName) -> usize {
    match stage {
        StageName::Decode => 0,
        StageName::Window => 1,
        StageName::Detect => 2,
        StageName::Track => 3,
    }
}

/// Adapts a [`StagePoll`] machine to the pool's [`PollTask`], running
/// every poll under the panic-supervision shim. A caught panic (or a
/// normal `Done`) retires the machine immediately — its queue
/// endpoints, batcher guard and stashed frames drop right here, waking
/// and unwinding the neighbours exactly like a stage thread's unwind
/// used to.
struct Supervised<'a, T: StagePoll> {
    stage: StageName,
    stream: usize,
    health: &'a HealthBoard,
    counters: &'a EngineCounters,
    inner: Option<T>,
}

impl<T: StagePoll> PollTask for Supervised<'_, T> {
    fn poll(&mut self) -> Polled {
        let Some(inner) = self.inner.as_mut() else {
            return Polled::Done;
        };
        match supervise_poll(self.stage, self.stream, self.health, || inner.poll()) {
            Some(Polled::Pending) => Polled::Pending,
            Some(Polled::Yielded) => {
                self.counters.stage_yields[stage_index(self.stage)].fetch_add(1, Ordering::Relaxed);
                Polled::Yielded
            }
            // Finished — or panicked (recorded on the health board).
            Some(Polled::Done) | None => {
                self.inner = None;
                Polled::Done
            }
        }
    }

    fn on_stall(&mut self) -> bool {
        let Some(inner) = self.inner.as_mut() else {
            return true;
        };
        match supervise_poll(self.stage, self.stream, self.health, || inner.on_stall()) {
            Some(false) => false,
            // Expired — or panicked inside the verdict.
            Some(true) | None => {
                self.inner = None;
                true
            }
        }
    }
}

/// Build the supervised decode task for one stream.
pub(crate) fn decode_task<'a>(
    ctx: StageCtx<'a>,
    tx: SlotSender<StageMsg<DecodedFrame>>,
    admission: Option<&'a DetectorBatcher>,
) -> Box<dyn PollTask + 'a> {
    Box::new(Supervised {
        stage: StageName::Decode,
        stream: ctx.stream,
        health: ctx.health,
        counters: ctx.counters,
        inner: Some(DecodeTask {
            ctx,
            tx: Some(tx),
            admission,
            clip_i: 0,
            f: 0,
            ordinal: 0,
            pending: None,
            blocked: Blocked::Admission,
        }),
    })
}

/// Build the supervised window task for one stream.
pub(crate) fn window_task<'a>(
    ctx: StageCtx<'a>,
    rx: SlotReceiver<StageMsg<DecodedFrame>>,
    tx: SlotSender<StageMsg<WindowedFrame>>,
    admission: Option<&'a DetectorBatcher>,
) -> Box<dyn PollTask + 'a> {
    Box::new(Supervised {
        stage: StageName::Window,
        stream: ctx.stream,
        health: ctx.health,
        counters: ctx.counters,
        inner: Some(WindowTask {
            ctx,
            rx: Some(rx),
            tx: Some(tx),
            admission,
            poisoned: HashSet::new(),
            pending: None,
            blocked: Blocked::Admission,
        }),
    })
}

/// Build the supervised detect task for one stream.
pub(crate) fn detect_task<'a>(
    ctx: StageCtx<'a>,
    rx: SlotReceiver<StageMsg<WindowedFrame>>,
    tx: SlotSender<StageMsg<DetectedFrame>>,
    guard: StreamGuard<'a>,
    admission: Option<&'a DetectorBatcher>,
) -> Box<dyn PollTask + 'a> {
    let detector = SimDetector::new(ctx.config.detector, ctx.exec.detector_seed);
    Box::new(Supervised {
        stage: StageName::Detect,
        stream: ctx.stream,
        health: ctx.health,
        counters: ctx.counters,
        inner: Some(DetectTask {
            ctx,
            rx: Some(rx),
            tx: Some(tx),
            guard: Some(guard),
            admission,
            detector,
            poisoned: HashSet::new(),
            step: DetectStep::Ready,
            pending: None,
            blocked: Blocked::Admission,
        }),
    })
}

/// Build the supervised track task for one stream.
pub(crate) fn track_task<'a>(
    ctx: StageCtx<'a>,
    rx: SlotReceiver<StageMsg<DetectedFrame>>,
    results: &'a Mutex<Vec<Option<Vec<Track>>>>,
    admission: Option<&'a DetectorBatcher>,
) -> Box<dyn PollTask + 'a> {
    Box::new(Supervised {
        stage: StageName::Track,
        stream: ctx.stream,
        health: ctx.health,
        counters: ctx.counters,
        inner: Some(TrackTask {
            ctx,
            rx: Some(rx),
            admission,
            results,
            tracker: None,
            poisoned: HashSet::new(),
            blocked: Blocked::Admission,
        }),
    })
}
