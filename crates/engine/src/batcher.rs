//! Cross-stream detector batching (§3.2's "batched inference across
//! streams" scaled out to the multi-stream engine).
//!
//! Every stream's detect stage submits one *ticket* per processed frame
//! — the rounded sizes of that frame's detector windows — and blocks
//! until the ticket is part of a flushed batch round. A round flushes
//! at the ticket-deadline watermark: the moment every live stream has a
//! ticket pending (in virtual time, no stream's detector is allowed to
//! run ahead of the others, which is what makes the accounting
//! deterministic). Within a round, windows are grouped by size — the
//! fixed window-size set W is what makes same-size groups common — and
//! each group is split into chunks of at most `max_batch` windows; one
//! launch overhead (`per_call`) is charged per chunk through
//! [`CostLedger::charge_batch`], which also records batch occupancy.
//!
//! Determinism: a stream's j-th ticket is always flushed in the j-th
//! round it participates in, and round contents are a pure function of
//! the per-stream ticket sequences (which are themselves deterministic).
//! Thread interleaving can change *when* a round flushes, never what it
//! contains, so charges and occupancy stats are reproducible — and with
//! one stream they equal the sequential pipeline's per-frame
//! `windows_cost` accounting exactly (one `per_call` per distinct
//! window size per frame, as long as `max_batch` exceeds the per-frame
//! same-size window count).
//!
//! Fault tolerance: protocol violations (double ticket, submit after
//! finish) are checked errors in every build profile, and
//! [`DetectorBatcher::finish`] handles a stream dying with a ticket
//! still pending — the orphaned ticket is discarded (its charges never
//! happen), its blocked submitter is released with
//! [`SubmitError::Interrupted`], and the watermark is re-evaluated so
//! the remaining streams keep draining.

use crate::exec::{DetectorExec, DetectorExecHarness};
use otif_core::evalpool::TaskWaker;
use otif_cv::{Component, CostLedger};
use otif_nn::Tensor3;
use parking_lot::{Condvar, Mutex};
use std::collections::{BTreeMap, VecDeque};
use std::fmt;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// A rejected or abandoned [`DetectorBatcher::submit`].
///
/// `TicketPending` and `Finished` are protocol violations (engine
/// bugs): they are hard errors in release builds too, because silently
/// overwriting a ticket or resurrecting a finished stream would corrupt
/// the round accounting for every stream. `Interrupted` is a
/// fault-tolerance signal: the stream was finished (its guard dropped)
/// while the ticket waited, and the ticket was discarded unflushed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SubmitError {
    /// The stream already has a ticket awaiting a flush.
    TicketPending {
        /// Offending stream.
        stream: usize,
    },
    /// The stream was already marked finished.
    Finished {
        /// Offending stream.
        stream: usize,
    },
    /// The stream was finished while this ticket was pending; the
    /// ticket was discarded without being flushed or charged.
    Interrupted {
        /// Interrupted stream.
        stream: usize,
    },
    /// The submit deadline elapsed before the ticket's round flushed —
    /// the cross-stream rendezvous is wedged (a sibling stream stalled
    /// without finishing). The ticket is still pending; the caller is
    /// expected to exit the stage, whose `StreamGuard` drop discards it.
    TimedOut {
        /// Timed-out stream.
        stream: usize,
    },
}

impl fmt::Display for SubmitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SubmitError::TicketPending { stream } => write!(
                f,
                "batcher protocol violation: stream {stream} submitted a second \
                 ticket while one was still pending"
            ),
            SubmitError::Finished { stream } => write!(
                f,
                "batcher protocol violation: stream {stream} submitted after finish"
            ),
            SubmitError::Interrupted { stream } => write!(
                f,
                "stream {stream} was finished while its ticket was pending; \
                 the ticket was discarded"
            ),
            SubmitError::TimedOut { stream } => write!(
                f,
                "stream {stream}'s ticket stalled past the batcher submit \
                 deadline (batcher rendezvous wedged)"
            ),
        }
    }
}

impl std::error::Error for SubmitError {}

/// Identity and cost of one submitted ticket, recorded into the round
/// log so the pipelined replay (`crate::timeline`) can stamp detector
/// completion times per round. Untagged submissions (unit tests, ad-hoc
/// callers) carry `UNTAGGED` clip/ordinal markers.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Ticket {
    /// Submitting stream.
    pub stream: usize,
    /// Global clip index of the frame (or [`Ticket::UNTAGGED`]).
    pub clip: usize,
    /// Sampled-frame ordinal within the clip.
    pub ordinal: usize,
    /// Windows carried by the ticket.
    pub items: usize,
    /// Detector pixel seconds charged for the frame's windows (to the
    /// clip's ledger, by the detect stage, before submitting).
    pub pixel_seconds: f64,
}

impl Ticket {
    /// Clip marker for submissions without frame identity.
    pub const UNTAGGED: usize = usize::MAX;
}

/// One flushed batch round: which tickets it coalesced (in stream
/// order) and the launch overhead it charged (`per_call` × number of
/// size-group chunks).
#[derive(Debug, Clone, PartialEq)]
pub struct RoundRecord {
    /// Member tickets, ordered by stream index.
    pub tickets: Vec<Ticket>,
    /// Launch seconds charged for this round's chunks.
    pub launch_seconds: f64,
}

/// A pending submission: the rounded window sizes of the frame the
/// stream's detect stage is blocked on, the materialized window inputs
/// (empty unless the run executes the surrogate detector in batched
/// mode), plus its identity for the round log.
type PendingTicket = (Vec<(u32, u32)>, Vec<Tensor3>, Ticket);

struct BatchState {
    /// One pending ticket per stream.
    tickets: Vec<Option<PendingTicket>>,
    /// Surrogate outputs scattered back per stream by a batched-exec
    /// flush, collected by the blocked submitter on wake-up.
    outputs: Vec<Option<Vec<Tensor3>>>,
    /// Which streams still have frames to submit. A finished stream no
    /// longer gates the flush watermark.
    live: Vec<bool>,
    /// Set when `finish` discards a stream's pending ticket, so the
    /// blocked submitter wakes with `SubmitError::Interrupted` instead
    /// of assuming its ticket was flushed.
    interrupted: Vec<bool>,
    /// Admission queue: streams not yet admitted (in index order).
    /// `finish` pops the front each time an active stream completes, so
    /// the admitted set at any round is a pure function of which streams
    /// have finished — never of thread timing.
    deferred: VecDeque<usize>,
    /// Per-stream detect-task wakers (task engine): a flush or finish
    /// that resolves a stream's pending ticket wakes its detect task.
    detect_wakers: Vec<Option<TaskWaker>>,
    /// Per-stream admission wakers (task engine): admitting a deferred
    /// stream wakes every registered stage task. All four stages must
    /// be woken, not just decode — the downstream stages parked at the
    /// admission check before ever touching their queues, so no queue
    /// has their interest registered and a send alone cannot revive
    /// them.
    admission_wakers: Vec<Vec<TaskWaker>>,
    /// Completed flush rounds.
    rounds: u64,
    /// Flush log in round order, consumed by the pipelined replay.
    log: Vec<RoundRecord>,
}

/// Outcome of a non-blocking batcher submit poll.
#[derive(Debug)]
pub enum PollSubmit {
    /// The ticket's round flushed: the per-window surrogate outputs
    /// (empty unless a batched-execution harness is attached).
    Ready(Vec<Tensor3>),
    /// The ticket is deposited but its round has not flushed yet; the
    /// stream's detect waker fires when it does. Re-poll with
    /// [`DetectorBatcher::poll_pending`].
    Pending,
}

/// Coalesces same-size detector windows from all streams into batched
/// invocations, charging launch overhead per batch instead of per
/// frame — and, when a batched-execution harness is attached, actually
/// running **one** surrogate forward per (size, chunk) of each round.
pub struct DetectorBatcher {
    state: Mutex<BatchState>,
    flushed: Condvar,
    per_call: f64,
    max_batch: usize,
    ledger: CostLedger,
    exec: Option<Arc<DetectorExecHarness>>,
    /// Per-stream admission flags, readable without the state lock
    /// (decode tasks and the stall watchdog check these on hot paths).
    admitted: Vec<AtomicBool>,
    /// Optional watchdog deadline for blocked submits (see
    /// [`Self::with_submit_timeout`]).
    submit_timeout: Option<std::time::Duration>,
}

impl DetectorBatcher {
    /// A batcher for `streams` streams charging `per_call` simulated
    /// seconds per batched invocation of at most `max_batch` windows.
    pub fn new(streams: usize, per_call: f64, max_batch: usize, ledger: CostLedger) -> Self {
        DetectorBatcher {
            state: Mutex::new(BatchState {
                tickets: (0..streams).map(|_| None).collect(),
                outputs: (0..streams).map(|_| None).collect(),
                live: vec![true; streams],
                interrupted: vec![false; streams],
                deferred: VecDeque::new(),
                detect_wakers: (0..streams).map(|_| None).collect(),
                admission_wakers: (0..streams).map(|_| Vec::new()).collect(),
                rounds: 0,
                log: Vec::new(),
            }),
            flushed: Condvar::new(),
            per_call,
            max_batch: max_batch.max(1),
            ledger,
            exec: None,
            admitted: (0..streams).map(|_| AtomicBool::new(true)).collect(),
            submit_timeout: None,
        }
    }

    /// Admission control: only the first `max_active` streams start
    /// active; streams `max_active..` are *deferred* — not live (they
    /// don't gate the flush watermark) and not admitted (their decode
    /// tasks wait). Each [`Self::finish`] of an active stream admits the
    /// next deferred stream in index order, so at most `max_active`
    /// streams are ever in flight and the admission sequence is
    /// deterministic.
    pub fn with_max_active(self, max_active: usize) -> Self {
        let streams = self.admitted.len();
        let max_active = max_active.clamp(1, streams.max(1));
        {
            let mut st = self.state.lock();
            for s in max_active..streams {
                st.live[s] = false;
                st.deferred.push_back(s);
                self.admitted[s].store(false, Ordering::SeqCst);
            }
        }
        self
    }

    /// Whether `stream` has been admitted (always true without
    /// [`Self::with_max_active`]).
    pub fn is_admitted(&self, stream: usize) -> bool {
        self.admitted[stream].load(Ordering::SeqCst)
    }

    /// Register the waker of `stream`'s detect task, fired when a flush
    /// or finish resolves its pending ticket.
    pub fn set_detect_waker(&self, stream: usize, waker: TaskWaker) {
        self.state.lock().detect_wakers[stream] = Some(waker);
    }

    /// Register a waker fired when `stream` is admitted. Every stage
    /// task of a deferrable stream must register here: all of them park
    /// at the admission check without touching their queues, so the
    /// admission hand-off is the only wake they can receive.
    pub fn add_admission_waker(&self, stream: usize, waker: TaskWaker) {
        self.state.lock().admission_wakers[stream].push(waker);
    }

    /// Attach a submit watchdog: a blocked [`Self::submit`] that waits
    /// longer than `timeout` for its round to flush returns
    /// [`SubmitError::TimedOut`] instead of waiting forever — the
    /// escape hatch when a sibling stream wedges the rendezvous without
    /// dying (a dead stream's guard already unblocks the watermark).
    pub fn with_submit_timeout(mut self, timeout: Option<std::time::Duration>) -> Self {
        self.submit_timeout = timeout;
        self
    }

    /// Attach a detector-execution harness. When its mode is
    /// [`DetectorExec::Batched`], each flush runs the surrogate forward
    /// over the round's same-size chunks (exactly the chunks the launch
    /// accounting charges for) and scatters per-window outputs back to
    /// the submitting streams.
    pub fn with_exec(mut self, exec: Arc<DetectorExecHarness>) -> Self {
        self.exec = Some(exec);
        self
    }

    /// Submit one frame's window sizes for `stream` and block until the
    /// ticket has been flushed in a batch round. Each stream may have at
    /// most one ticket outstanding; submissions from one stream are
    /// processed strictly in call order.
    ///
    /// Protocol violations (a second pending ticket, submit after
    /// finish) are checked errors in every build profile; see
    /// [`SubmitError`].
    pub fn submit(&self, stream: usize, sizes: Vec<(u32, u32)>) -> Result<(), SubmitError> {
        self.submit_tagged(stream, sizes, Ticket::UNTAGGED, 0, 0.0)
    }

    /// [`Self::submit`] carrying frame identity and the frame's
    /// detector pixel charge, so the flush log can feed the pipelined
    /// replay. The identity does not affect batching in any way.
    pub fn submit_tagged(
        &self,
        stream: usize,
        sizes: Vec<(u32, u32)>,
        clip: usize,
        ordinal: usize,
        pixel_seconds: f64,
    ) -> Result<(), SubmitError> {
        self.submit_exec(stream, sizes, Vec::new(), clip, ordinal, pixel_seconds)
            .map(|_| ())
    }

    /// [`Self::submit_tagged`] additionally carrying the frame's
    /// materialized window input tensors (one per entry of `sizes`, or
    /// empty when the run does not execute the surrogate in batched
    /// mode). Returns the per-window surrogate outputs the flushing
    /// thread scattered back — empty unless a batched-execution harness
    /// is attached.
    pub fn submit_exec(
        &self,
        stream: usize,
        sizes: Vec<(u32, u32)>,
        inputs: Vec<Tensor3>,
        clip: usize,
        ordinal: usize,
        pixel_seconds: f64,
    ) -> Result<Vec<Tensor3>, SubmitError> {
        debug_assert!(
            inputs.is_empty() || inputs.len() == sizes.len(),
            "one input tensor per window"
        );
        let mut st = self.state.lock();
        if !st.live[stream] {
            return Err(SubmitError::Finished { stream });
        }
        if st.tickets[stream].is_some() {
            return Err(SubmitError::TicketPending { stream });
        }
        let ticket = Ticket {
            stream,
            clip,
            ordinal,
            items: sizes.len(),
            pixel_seconds,
        };
        st.tickets[stream] = Some((sizes, inputs, ticket));
        self.flush_if_ready(&mut st);
        loop {
            // `finish` may have discarded the ticket (stream died while
            // waiting): report that before concluding the ticket was
            // flushed.
            if st.interrupted[stream] {
                st.interrupted[stream] = false;
                return Err(SubmitError::Interrupted { stream });
            }
            if st.tickets[stream].is_none() {
                return Ok(st.outputs[stream].take().unwrap_or_default());
            }
            match self.submit_timeout {
                None => self.flushed.wait(&mut st),
                Some(timeout) => {
                    if self.flushed.wait_for(&mut st, timeout).timed_out()
                        && st.tickets[stream].is_some()
                        && !st.interrupted[stream]
                    {
                        // Leave the ticket pending: the caller exits its
                        // stage and the StreamGuard drop discards it
                        // (counted, uncharged) via `finish`.
                        return Err(SubmitError::TimedOut { stream });
                    }
                }
            }
        }
    }

    /// Non-blocking [`Self::submit_exec`] for pollable detect tasks:
    /// deposit the ticket, flush if the watermark is met, and report
    /// [`PollSubmit::Ready`] (round flushed inline) or
    /// [`PollSubmit::Pending`] (the stream's detect waker fires when a
    /// later flush or finish resolves the ticket; re-poll with
    /// [`Self::poll_pending`]). Protocol violations are the same checked
    /// errors as the blocking path.
    pub fn poll_submit_exec(
        &self,
        stream: usize,
        sizes: Vec<(u32, u32)>,
        inputs: Vec<Tensor3>,
        clip: usize,
        ordinal: usize,
        pixel_seconds: f64,
    ) -> Result<PollSubmit, SubmitError> {
        debug_assert!(
            inputs.is_empty() || inputs.len() == sizes.len(),
            "one input tensor per window"
        );
        let mut st = self.state.lock();
        if !st.live[stream] {
            return Err(SubmitError::Finished { stream });
        }
        if st.tickets[stream].is_some() {
            return Err(SubmitError::TicketPending { stream });
        }
        let ticket = Ticket {
            stream,
            clip,
            ordinal,
            items: sizes.len(),
            pixel_seconds,
        };
        st.tickets[stream] = Some((sizes, inputs, ticket));
        self.flush_if_ready(&mut st);
        Self::poll_state(&mut st, stream)
    }

    /// Re-poll a ticket left [`PollSubmit::Pending`] by
    /// [`Self::poll_submit_exec`].
    pub fn poll_pending(&self, stream: usize) -> Result<PollSubmit, SubmitError> {
        let mut st = self.state.lock();
        Self::poll_state(&mut st, stream)
    }

    /// Shared resolution step: interrupted → error; ticket gone → the
    /// round flushed (collect outputs); ticket still present → pending.
    fn poll_state(st: &mut BatchState, stream: usize) -> Result<PollSubmit, SubmitError> {
        if st.interrupted[stream] {
            st.interrupted[stream] = false;
            return Err(SubmitError::Interrupted { stream });
        }
        if st.tickets[stream].is_none() {
            return Ok(PollSubmit::Ready(
                st.outputs[stream].take().unwrap_or_default(),
            ));
        }
        Ok(PollSubmit::Pending)
    }

    /// Mark `stream` as done (idempotent). Finished streams stop gating
    /// the flush watermark, so remaining streams keep batching among
    /// themselves. If the stream still had a ticket pending (its stage
    /// died mid-submit), the ticket is discarded — never flushed or
    /// charged — and the blocked submitter is woken with
    /// [`SubmitError::Interrupted`].
    pub fn finish(&self, stream: usize) {
        let mut st = self.state.lock();
        if !st.live[stream] && self.is_admitted(stream) {
            return;
        }
        let was_active = st.live[stream];
        st.live[stream] = false;
        st.outputs[stream] = None;
        // A deferred stream finishing without ever being admitted (its
        // tasks shut down early) must still vacate the admission queue.
        if !self.is_admitted(stream) {
            st.deferred.retain(|&s| s != stream);
            self.admitted[stream].store(true, Ordering::SeqCst);
        }
        let mut interrupted_waker = None;
        if let Some((sizes, _, _)) = st.tickets[stream].take() {
            st.interrupted[stream] = true;
            // Count the orphan explicitly: it was never flushed or
            // charged, and `mean_batch_occupancy` must neither include
            // it nor hide that it was dropped.
            self.ledger.record_batch_discard(sizes.len());
            interrupted_waker = st.detect_wakers[stream].clone();
        }
        // Admission hand-off happens BEFORE re-evaluating the watermark:
        // the newly-admitted stream gates every round flushed from this
        // point on, which is what keeps round contents a pure function
        // of the finish set rather than of flush timing. Only an active
        // stream finishing frees an admission slot — a deferred stream
        // that shut down before admission never held one.
        let mut admission_wakers = Vec::new();
        if was_active {
            if let Some(next) = st.deferred.pop_front() {
                st.live[next] = true;
                self.admitted[next].store(true, Ordering::SeqCst);
                // One-shot hand-off: a stream is admitted at most once,
                // so its wakers are consumed rather than cloned.
                admission_wakers = std::mem::take(&mut st.admission_wakers[next]);
            }
        }
        self.flush_if_ready(&mut st);
        // Wake waiters unconditionally: the interrupted submitter (if
        // any) must observe its discarded ticket even when no round
        // flushed, and remaining streams re-check the watermark.
        self.flushed.notify_all();
        drop(st);
        if let Some(w) = interrupted_waker {
            w.wake();
        }
        for w in admission_wakers {
            w.wake();
        }
    }

    /// Number of flush rounds completed so far.
    pub fn rounds(&self) -> u64 {
        self.state.lock().rounds
    }

    /// The flush log in round order. Round contents are a pure function
    /// of the per-stream submission sequences, so the log is as
    /// deterministic as the charges themselves.
    pub fn round_log(&self) -> Vec<RoundRecord> {
        self.state.lock().log.clone()
    }

    /// Flush one round if every live stream has a pending ticket (and
    /// at least one ticket exists). Must be called with the state lock
    /// held; wakes all blocked submitters.
    fn flush_if_ready(&self, st: &mut BatchState) {
        let ready = st
            .tickets
            .iter()
            .zip(&st.live)
            .all(|(t, live)| !*live || t.is_some());
        let any = st.tickets.iter().any(Option::is_some);
        if !ready || !any {
            return;
        }
        // Group windows by size across all streams (stream order is
        // irrelevant for the *charges*: only per-size counts matter).
        let n_streams = st.tickets.len();
        let mut by_size: BTreeMap<(u32, u32), usize> = BTreeMap::new();
        let mut members: Vec<Ticket> = Vec::new();
        let mut member_streams: Vec<usize> = Vec::new();
        let mut sizes_by_stream: Vec<Vec<(u32, u32)>> = vec![Vec::new(); n_streams];
        let mut inputs_by_stream: Vec<Vec<Tensor3>> = Vec::new();
        inputs_by_stream.resize_with(n_streams, Vec::new);
        for (stream, slot) in st.tickets.iter_mut().enumerate() {
            if let Some((sizes, inputs, ticket)) = slot.take() {
                members.push(ticket);
                member_streams.push(stream);
                for s in &sizes {
                    *by_size.entry(*s).or_insert(0) += 1;
                }
                sizes_by_stream[stream] = sizes;
                inputs_by_stream[stream] = inputs;
            }
        }
        let mut launch_seconds = 0.0f64;
        for (_, count) in by_size {
            let mut remaining = count;
            while remaining > 0 {
                let occupancy = remaining.min(self.max_batch);
                self.ledger
                    .charge_batch(Component::Detector, self.per_call, occupancy);
                launch_seconds += self.per_call;
                remaining -= occupancy;
            }
        }
        // Batched surrogate execution: one forward per (size, chunk) —
        // the same chunks the launch accounting charged for — with
        // outputs scattered back to the submitting streams. Chunk
        // membership is deterministic (sizes in BTreeMap order, windows
        // in stream-then-window order within a size), and chunk
        // boundaries cannot affect bits anyway: the batched kernels
        // accumulate each window's elements in exactly the looped order.
        if let Some(exec) = self
            .exec
            .as_ref()
            .filter(|e| e.mode() == DetectorExec::Batched)
        {
            let start = Instant::now();
            let mut forwards = 0u64;
            let mut windows = 0u64;
            // Only windows that carry materialized inputs participate in
            // the forwards: a ghost-replay ticket submits sizes without
            // inputs (its outputs were digested in the original run), so
            // it shapes the launch accounting above but not the
            // execution. Excluding it cannot perturb live outputs — the
            // batched kernels accumulate each window's elements in
            // exactly the looped order, so chunk membership never
            // affects bits.
            let mut groups: BTreeMap<(u32, u32), Vec<(usize, usize)>> = BTreeMap::new();
            for &stream in &member_streams {
                let with_inputs = inputs_by_stream[stream].len();
                for (w, s) in sizes_by_stream[stream].iter().take(with_inputs).enumerate() {
                    groups.entry(*s).or_default().push((stream, w));
                }
            }
            let mut outs: Vec<Vec<Tensor3>> = inputs_by_stream
                .iter()
                .map(|v| vec![Tensor3::zeros(0, 0, 0); v.len()])
                .collect();
            for refs in groups.values() {
                for chunk in refs.chunks(self.max_batch) {
                    let xs: Vec<&Tensor3> = chunk
                        .iter()
                        .map(|&(s, w)| &inputs_by_stream[s][w])
                        .collect();
                    let ys = exec.net().forward_batched(&xs);
                    forwards += 1;
                    windows += xs.len() as u64;
                    for (&(s, w), y) in chunk.iter().zip(ys) {
                        outs[s][w] = y;
                    }
                }
            }
            exec.record(start.elapsed(), forwards, windows);
            for &stream in &member_streams {
                st.outputs[stream] = Some(std::mem::take(&mut outs[stream]));
            }
        }
        st.log.push(RoundRecord {
            tickets: members,
            launch_seconds,
        });
        st.rounds += 1;
        self.flushed.notify_all();
        // Task engine: a member stream's detect task may be parked on
        // its now-resolved ticket. Waking under the batcher lock is safe
        // (the pool's wake path never takes this lock) and a wake racing
        // the member's own in-progress poll just latches harmlessly.
        for &stream in &member_streams {
            if let Some(w) = &st.detect_wakers[stream] {
                w.wake();
            }
        }
    }
}

/// RAII handle calling [`DetectorBatcher::finish`] on drop, so a
/// panicking detect stage never deadlocks the other streams.
pub struct StreamGuard<'a> {
    batcher: &'a DetectorBatcher,
    stream: usize,
}

impl<'a> StreamGuard<'a> {
    /// Guard `stream` on `batcher`.
    pub fn new(batcher: &'a DetectorBatcher, stream: usize) -> Self {
        StreamGuard { batcher, stream }
    }

    /// Submit through the guard (same as the batcher's `submit`).
    pub fn submit(&self, sizes: Vec<(u32, u32)>) -> Result<(), SubmitError> {
        self.batcher.submit(self.stream, sizes)
    }

    /// Submit with frame identity for the round log (same as the
    /// batcher's `submit_tagged`).
    pub fn submit_tagged(
        &self,
        sizes: Vec<(u32, u32)>,
        clip: usize,
        ordinal: usize,
        pixel_seconds: f64,
    ) -> Result<(), SubmitError> {
        self.batcher
            .submit_tagged(self.stream, sizes, clip, ordinal, pixel_seconds)
    }

    /// Submit with window input tensors for batched surrogate execution
    /// (same as the batcher's `submit_exec`).
    pub fn submit_exec(
        &self,
        sizes: Vec<(u32, u32)>,
        inputs: Vec<Tensor3>,
        clip: usize,
        ordinal: usize,
        pixel_seconds: f64,
    ) -> Result<Vec<Tensor3>, SubmitError> {
        self.batcher
            .submit_exec(self.stream, sizes, inputs, clip, ordinal, pixel_seconds)
    }

    /// Non-blocking submit for pollable detect tasks (same as the
    /// batcher's `poll_submit_exec`).
    pub fn poll_submit_exec(
        &self,
        sizes: Vec<(u32, u32)>,
        inputs: Vec<Tensor3>,
        clip: usize,
        ordinal: usize,
        pixel_seconds: f64,
    ) -> Result<PollSubmit, SubmitError> {
        self.batcher
            .poll_submit_exec(self.stream, sizes, inputs, clip, ordinal, pixel_seconds)
    }

    /// Re-poll a pending ticket (same as the batcher's `poll_pending`).
    pub fn poll_pending(&self) -> Result<PollSubmit, SubmitError> {
        self.batcher.poll_pending(self.stream)
    }
}

impl Drop for StreamGuard<'_> {
    fn drop(&mut self) {
        self.batcher.finish(self.stream);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::thread;

    const CALL: f64 = 1.0;

    #[test]
    fn single_stream_charges_per_distinct_size_per_round() {
        let ledger = CostLedger::new();
        let b = DetectorBatcher::new(1, CALL, 16, ledger.clone());
        b.submit(0, vec![(64, 64), (64, 64), (128, 96)]).unwrap();
        b.finish(0);
        // one round: two distinct sizes → two batch charges
        assert_eq!(b.rounds(), 1);
        let stats = ledger.batch_stats();
        assert_eq!(stats.batches, 2);
        assert_eq!(stats.items, 3);
        assert!((ledger.get(Component::Detector) - 2.0 * CALL).abs() < 1e-12);
    }

    #[test]
    fn two_streams_share_launch_overhead() {
        let ledger = CostLedger::new();
        let b = Arc::new(DetectorBatcher::new(2, CALL, 16, ledger.clone()));
        let frames = 5usize;
        let mut handles = Vec::new();
        for stream in 0..2 {
            let b = Arc::clone(&b);
            handles.push(thread::spawn(move || {
                for _ in 0..frames {
                    b.submit(stream, vec![(64, 64)]).unwrap();
                }
                b.finish(stream);
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        // 5 rounds × 1 size group of 2 windows → 5 charges, occupancy 2
        assert_eq!(b.rounds(), frames as u64);
        let stats = ledger.batch_stats();
        assert_eq!(stats.batches, frames as u64);
        assert!((stats.mean_occupancy() - 2.0).abs() < 1e-12);
        assert!((ledger.get(Component::Detector) - frames as f64 * CALL).abs() < 1e-12);
    }

    #[test]
    fn uneven_stream_lengths_drain_without_deadlock() {
        let ledger = CostLedger::new();
        let b = Arc::new(DetectorBatcher::new(3, CALL, 16, ledger.clone()));
        let mut handles = Vec::new();
        for (stream, frames) in [(0usize, 8usize), (1, 3), (2, 5)] {
            let b = Arc::clone(&b);
            handles.push(thread::spawn(move || {
                for _ in 0..frames {
                    b.submit(stream, vec![(32, 32)]).unwrap();
                }
                b.finish(stream);
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        // the longest stream dictates the number of rounds
        assert_eq!(b.rounds(), 8);
        assert_eq!(ledger.batch_stats().items, 8 + 3 + 5);
    }

    #[test]
    fn max_batch_splits_oversized_groups() {
        let ledger = CostLedger::new();
        let b = DetectorBatcher::new(1, CALL, 4, ledger.clone());
        b.submit(0, vec![(64, 64); 10]).unwrap();
        b.finish(0);
        // 10 windows in chunks of ≤4 → 3 batches (4+4+2)
        let stats = ledger.batch_stats();
        assert_eq!(stats.batches, 3);
        assert_eq!(stats.items, 10);
    }

    #[test]
    fn guard_finishes_on_drop() {
        let ledger = CostLedger::new();
        let b = Arc::new(DetectorBatcher::new(2, CALL, 16, ledger.clone()));
        let b2 = Arc::clone(&b);
        let h = thread::spawn(move || {
            let _guard = StreamGuard::new(&b2, 1);
            // stream 1 never submits; the guard's drop must unblock
            // stream 0
        });
        h.join().unwrap();
        b.submit(0, vec![(64, 64)]).unwrap();
        b.finish(0);
        assert_eq!(b.rounds(), 1);
        assert_eq!(ledger.batch_stats().batches, 1);
    }

    #[test]
    fn submit_after_finish_is_a_checked_error() {
        let b = DetectorBatcher::new(2, CALL, 16, CostLedger::new());
        b.finish(1);
        assert_eq!(
            b.submit(1, vec![(64, 64)]),
            Err(SubmitError::Finished { stream: 1 })
        );
        // the healthy stream is unaffected
        b.submit(0, vec![(64, 64)]).unwrap();
        assert_eq!(b.rounds(), 1);
    }

    #[test]
    fn double_ticket_is_a_checked_error() {
        let b = Arc::new(DetectorBatcher::new(2, CALL, 16, CostLedger::new()));
        let b2 = Arc::clone(&b);
        // stream 1 blocks with a pending ticket (stream 0 has none yet)
        let h = thread::spawn(move || b2.submit(1, vec![(32, 32)]));
        while b.state.lock().tickets[1].is_none() {
            thread::yield_now();
        }
        // a second submit for stream 1 must be rejected, not corrupt the
        // pending ticket
        assert_eq!(
            b.submit(1, vec![(64, 64)]),
            Err(SubmitError::TicketPending { stream: 1 })
        );
        // releasing the watermark flushes the original ticket
        b.submit(0, vec![(32, 32)]).unwrap();
        assert_eq!(h.join().unwrap(), Ok(()));
        assert_eq!(b.rounds(), 1);
    }

    #[test]
    fn finish_with_pending_ticket_releases_waiter_and_drains_others() {
        // Regression (fault tolerance): a guard dropped while its
        // stream's ticket is outstanding must (a) wake the blocked
        // submitter with Interrupted, (b) discard the ticket uncharged,
        // and (c) let the remaining streams keep draining.
        let ledger = CostLedger::new();
        let b = Arc::new(DetectorBatcher::new(3, CALL, 16, ledger.clone()));
        let b2 = Arc::clone(&b);
        // stream 2's submitter blocks: streams 0 and 1 have no tickets
        let blocked = thread::spawn(move || b2.submit(2, vec![(99, 99)]));
        while b.state.lock().tickets[2].is_none() {
            thread::yield_now();
        }
        // the stage thread dies; its guard drops while the ticket is
        // outstanding
        drop(StreamGuard::new(&b, 2));
        assert_eq!(
            blocked.join().unwrap(),
            Err(SubmitError::Interrupted { stream: 2 })
        );
        // remaining streams drain normally and the orphaned (99, 99)
        // ticket was never flushed or charged
        let mut handles = Vec::new();
        for stream in 0..2usize {
            let b = Arc::clone(&b);
            handles.push(thread::spawn(move || {
                for _ in 0..3 {
                    b.submit(stream, vec![(64, 64)]).unwrap();
                }
                b.finish(stream);
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(b.rounds(), 3);
        let stats = ledger.batch_stats();
        assert_eq!(stats.batches, 3);
        assert_eq!(stats.items, 6);
        assert!((ledger.get(Component::Detector) - 3.0 * CALL).abs() < 1e-12);
    }

    #[test]
    fn charges_are_interleaving_independent() {
        let run = || {
            let ledger = CostLedger::new();
            let b = Arc::new(DetectorBatcher::new(3, CALL, 4, ledger.clone()));
            let mut handles = Vec::new();
            for stream in 0..3usize {
                let b = Arc::clone(&b);
                handles.push(thread::spawn(move || {
                    for f in 0..6usize {
                        // deterministic per-stream size sequence
                        let size = (32 * (1 + ((f + stream) % 2) as u32), 32);
                        b.submit(stream, vec![size; 1 + (f % 3)]).unwrap();
                    }
                    b.finish(stream);
                }));
            }
            for h in handles {
                h.join().unwrap();
            }
            (ledger.get(Component::Detector), ledger.batch_stats())
        };
        let (cost_a, stats_a) = run();
        let (cost_b, stats_b) = run();
        assert_eq!(stats_a, stats_b);
        assert!((cost_a - cost_b).abs() < 1e-12);
    }

    #[test]
    fn orphaned_tickets_are_counted_not_averaged() {
        // Regression: an orphaned ticket (stream finished while its
        // ticket was pending) must be excluded from mean_batch_occupancy
        // *and* explicitly counted as discarded — not silently vanish.
        let ledger = CostLedger::new();
        let b = Arc::new(DetectorBatcher::new(2, CALL, 16, ledger.clone()));
        let b2 = Arc::clone(&b);
        // stream 1 blocks with a 7-window ticket; stream 0 never submits
        let blocked = thread::spawn(move || b2.submit(1, vec![(64, 64); 7]));
        while b.state.lock().tickets[1].is_none() {
            thread::yield_now();
        }
        b.finish(1);
        assert_eq!(
            blocked.join().unwrap(),
            Err(SubmitError::Interrupted { stream: 1 })
        );
        // stream 0 then flushes two clean 2-window rounds on its own
        b.submit(0, vec![(32, 32); 2]).unwrap();
        b.submit(0, vec![(32, 32); 2]).unwrap();
        b.finish(0);
        let stats = ledger.batch_stats();
        assert_eq!(stats.discarded_tickets, 1);
        assert_eq!(stats.discarded_items, 7);
        assert_eq!(stats.batches, 2);
        assert_eq!(stats.items, 4);
        // occupancy reflects only flushed chunks: (2+2)/2, not (2+2+7)/2
        assert!((stats.mean_occupancy() - 2.0).abs() < 1e-12);
        // the orphan was never charged either
        assert!((ledger.get(Component::Detector) - 2.0 * CALL).abs() < 1e-12);
    }

    #[test]
    fn batched_exec_scatters_outputs_bitwise_equal_to_looped() {
        use otif_core::WindowNet;
        use otif_cv::{DetectorArch, DetectorConfig};

        let net = WindowNet::new(&DetectorConfig::new(DetectorArch::YoloV3, 0.5), 3);
        let exec = Arc::new(DetectorExecHarness::new(net.clone(), DetectorExec::Batched));
        let ledger = CostLedger::new();
        let b =
            Arc::new(DetectorBatcher::new(2, CALL, 2, ledger.clone()).with_exec(Arc::clone(&exec)));
        // two streams, mixed window sizes; inputs are small deterministic
        // tensors whose dims come from the rounded sizes
        let make_inputs = |stream: usize, sizes: &[(u32, u32)]| -> Vec<Tensor3> {
            sizes
                .iter()
                .enumerate()
                .map(|(w, s)| {
                    let (iw, ih) = net.input_dims(*s);
                    let mut t = Tensor3::zeros(1, ih, iw);
                    for (j, v) in t.data.iter_mut().enumerate() {
                        *v = ((j + 7 * stream + w) as f32 * 0.031).sin() * 0.5 + 0.5;
                    }
                    t
                })
                .collect()
        };
        let sizes0 = vec![(64, 64), (64, 64), (128, 96)];
        let sizes1 = vec![(64, 64), (128, 96)];
        let b2 = Arc::clone(&b);
        let s1 = sizes1.clone();
        let inputs1 = make_inputs(1, &sizes1);
        let expected1: Vec<Tensor3> = inputs1
            .iter()
            .map(|x| {
                let mut y = Tensor3::zeros(0, 0, 0);
                net.forward_into(x, &mut y);
                y
            })
            .collect();
        let h = thread::spawn(move || {
            let out = b2.submit_exec(1, s1, inputs1, 0, 0, 0.0).unwrap();
            b2.finish(1);
            out
        });
        let inputs0 = make_inputs(0, &sizes0);
        let expected0: Vec<Tensor3> = inputs0
            .iter()
            .map(|x| {
                let mut y = Tensor3::zeros(0, 0, 0);
                net.forward_into(x, &mut y);
                y
            })
            .collect();
        let out0 = b.submit_exec(0, sizes0, inputs0, 0, 0, 0.0).unwrap();
        b.finish(0);
        let out1 = h.join().unwrap();
        // outputs arrive per stream, in window order, bitwise equal to
        // the looped forward of the same inputs
        assert_eq!(out0.len(), 3);
        assert_eq!(out1.len(), 2);
        for (got, want) in out0.iter().zip(&expected0) {
            assert_eq!(got.data, want.data);
        }
        for (got, want) in out1.iter().zip(&expected1) {
            assert_eq!(got.data, want.data);
        }
        // max_batch=2 split the 3-window (64,64) group into 2 chunks,
        // plus 1 chunk for the (128,96) group → 3 forwards, 5 windows
        assert_eq!(exec.forwards(), 3);
        assert_eq!(exec.windows(), 5);
        assert!(exec.wall_seconds() > 0.0);
        // charges are untouched by execution: same as accounting-only
        assert_eq!(ledger.batch_stats().items, 5);
    }

    #[test]
    fn exec_off_returns_no_outputs() {
        let b = DetectorBatcher::new(1, CALL, 16, CostLedger::new());
        let out = b
            .submit_exec(0, vec![(64, 64)], Vec::new(), 0, 0, 0.0)
            .unwrap();
        assert!(out.is_empty());
        b.finish(0);
    }

    #[test]
    fn round_log_records_members_and_launch() {
        let ledger = CostLedger::new();
        let b = DetectorBatcher::new(1, CALL, 4, ledger.clone());
        b.submit_tagged(0, vec![(64, 64); 6], 3, 0, 1.5).unwrap();
        b.submit(0, vec![(32, 32)]).unwrap();
        b.finish(0);
        let log = b.round_log();
        assert_eq!(log.len(), 2);
        // 6 same-size windows in chunks of ≤4 → 2 launches
        assert!((log[0].launch_seconds - 2.0 * CALL).abs() < 1e-12);
        assert_eq!(
            log[0].tickets,
            vec![Ticket {
                stream: 0,
                clip: 3,
                ordinal: 0,
                items: 6,
                pixel_seconds: 1.5,
            }]
        );
        assert_eq!(log[1].tickets[0].clip, Ticket::UNTAGGED);
        assert!((log[1].launch_seconds - CALL).abs() < 1e-12);
    }
}
