//! Cross-stream detector batching (§3.2's "batched inference across
//! streams" scaled out to the multi-stream engine).
//!
//! Every stream's detect stage submits one *ticket* per processed frame
//! — the rounded sizes of that frame's detector windows — and blocks
//! until the ticket is part of a flushed batch round. A round flushes
//! at the ticket-deadline watermark: the moment every live stream has a
//! ticket pending (in virtual time, no stream's detector is allowed to
//! run ahead of the others, which is what makes the accounting
//! deterministic). Within a round, windows are grouped by size — the
//! fixed window-size set W is what makes same-size groups common — and
//! each group is split into chunks of at most `max_batch` windows; one
//! launch overhead (`per_call`) is charged per chunk through
//! [`CostLedger::charge_batch`], which also records batch occupancy.
//!
//! Determinism: a stream's j-th ticket is always flushed in the j-th
//! round it participates in, and round contents are a pure function of
//! the per-stream ticket sequences (which are themselves deterministic).
//! Thread interleaving can change *when* a round flushes, never what it
//! contains, so charges and occupancy stats are reproducible — and with
//! one stream they equal the sequential pipeline's per-frame
//! `windows_cost` accounting exactly (one `per_call` per distinct
//! window size per frame, as long as `max_batch` exceeds the per-frame
//! same-size window count).
//!
//! Fault tolerance: protocol violations (double ticket, submit after
//! finish) are checked errors in every build profile, and
//! [`DetectorBatcher::finish`] handles a stream dying with a ticket
//! still pending — the orphaned ticket is discarded (its charges never
//! happen), its blocked submitter is released with
//! [`SubmitError::Interrupted`], and the watermark is re-evaluated so
//! the remaining streams keep draining.

use otif_cv::{Component, CostLedger};
use parking_lot::{Condvar, Mutex};
use std::collections::BTreeMap;
use std::fmt;

/// A rejected or abandoned [`DetectorBatcher::submit`].
///
/// `TicketPending` and `Finished` are protocol violations (engine
/// bugs): they are hard errors in release builds too, because silently
/// overwriting a ticket or resurrecting a finished stream would corrupt
/// the round accounting for every stream. `Interrupted` is a
/// fault-tolerance signal: the stream was finished (its guard dropped)
/// while the ticket waited, and the ticket was discarded unflushed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SubmitError {
    /// The stream already has a ticket awaiting a flush.
    TicketPending {
        /// Offending stream.
        stream: usize,
    },
    /// The stream was already marked finished.
    Finished {
        /// Offending stream.
        stream: usize,
    },
    /// The stream was finished while this ticket was pending; the
    /// ticket was discarded without being flushed or charged.
    Interrupted {
        /// Interrupted stream.
        stream: usize,
    },
}

impl fmt::Display for SubmitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SubmitError::TicketPending { stream } => write!(
                f,
                "batcher protocol violation: stream {stream} submitted a second \
                 ticket while one was still pending"
            ),
            SubmitError::Finished { stream } => write!(
                f,
                "batcher protocol violation: stream {stream} submitted after finish"
            ),
            SubmitError::Interrupted { stream } => write!(
                f,
                "stream {stream} was finished while its ticket was pending; \
                 the ticket was discarded"
            ),
        }
    }
}

impl std::error::Error for SubmitError {}

/// Identity and cost of one submitted ticket, recorded into the round
/// log so the pipelined replay (`crate::timeline`) can stamp detector
/// completion times per round. Untagged submissions (unit tests, ad-hoc
/// callers) carry `UNTAGGED` clip/ordinal markers.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Ticket {
    /// Submitting stream.
    pub stream: usize,
    /// Global clip index of the frame (or [`Ticket::UNTAGGED`]).
    pub clip: usize,
    /// Sampled-frame ordinal within the clip.
    pub ordinal: usize,
    /// Windows carried by the ticket.
    pub items: usize,
    /// Detector pixel seconds charged for the frame's windows (to the
    /// clip's ledger, by the detect stage, before submitting).
    pub pixel_seconds: f64,
}

impl Ticket {
    /// Clip marker for submissions without frame identity.
    pub const UNTAGGED: usize = usize::MAX;
}

/// One flushed batch round: which tickets it coalesced (in stream
/// order) and the launch overhead it charged (`per_call` × number of
/// size-group chunks).
#[derive(Debug, Clone, PartialEq)]
pub struct RoundRecord {
    /// Member tickets, ordered by stream index.
    pub tickets: Vec<Ticket>,
    /// Launch seconds charged for this round's chunks.
    pub launch_seconds: f64,
}

/// A pending submission: the rounded window sizes of the frame the
/// stream's detect stage is blocked on, plus its identity for the
/// round log.
type PendingTicket = (Vec<(u32, u32)>, Ticket);

struct BatchState {
    /// One pending ticket per stream.
    tickets: Vec<Option<PendingTicket>>,
    /// Which streams still have frames to submit. A finished stream no
    /// longer gates the flush watermark.
    live: Vec<bool>,
    /// Set when `finish` discards a stream's pending ticket, so the
    /// blocked submitter wakes with `SubmitError::Interrupted` instead
    /// of assuming its ticket was flushed.
    interrupted: Vec<bool>,
    /// Completed flush rounds.
    rounds: u64,
    /// Flush log in round order, consumed by the pipelined replay.
    log: Vec<RoundRecord>,
}

/// Coalesces same-size detector windows from all streams into batched
/// invocations, charging launch overhead per batch instead of per
/// frame.
pub struct DetectorBatcher {
    state: Mutex<BatchState>,
    flushed: Condvar,
    per_call: f64,
    max_batch: usize,
    ledger: CostLedger,
}

impl DetectorBatcher {
    /// A batcher for `streams` streams charging `per_call` simulated
    /// seconds per batched invocation of at most `max_batch` windows.
    pub fn new(streams: usize, per_call: f64, max_batch: usize, ledger: CostLedger) -> Self {
        DetectorBatcher {
            state: Mutex::new(BatchState {
                tickets: (0..streams).map(|_| None).collect(),
                live: vec![true; streams],
                interrupted: vec![false; streams],
                rounds: 0,
                log: Vec::new(),
            }),
            flushed: Condvar::new(),
            per_call,
            max_batch: max_batch.max(1),
            ledger,
        }
    }

    /// Submit one frame's window sizes for `stream` and block until the
    /// ticket has been flushed in a batch round. Each stream may have at
    /// most one ticket outstanding; submissions from one stream are
    /// processed strictly in call order.
    ///
    /// Protocol violations (a second pending ticket, submit after
    /// finish) are checked errors in every build profile; see
    /// [`SubmitError`].
    pub fn submit(&self, stream: usize, sizes: Vec<(u32, u32)>) -> Result<(), SubmitError> {
        self.submit_tagged(stream, sizes, Ticket::UNTAGGED, 0, 0.0)
    }

    /// [`Self::submit`] carrying frame identity and the frame's
    /// detector pixel charge, so the flush log can feed the pipelined
    /// replay. The identity does not affect batching in any way.
    pub fn submit_tagged(
        &self,
        stream: usize,
        sizes: Vec<(u32, u32)>,
        clip: usize,
        ordinal: usize,
        pixel_seconds: f64,
    ) -> Result<(), SubmitError> {
        let mut st = self.state.lock();
        if !st.live[stream] {
            return Err(SubmitError::Finished { stream });
        }
        if st.tickets[stream].is_some() {
            return Err(SubmitError::TicketPending { stream });
        }
        let ticket = Ticket {
            stream,
            clip,
            ordinal,
            items: sizes.len(),
            pixel_seconds,
        };
        st.tickets[stream] = Some((sizes, ticket));
        self.flush_if_ready(&mut st);
        loop {
            // `finish` may have discarded the ticket (stream died while
            // waiting): report that before concluding the ticket was
            // flushed.
            if st.interrupted[stream] {
                st.interrupted[stream] = false;
                return Err(SubmitError::Interrupted { stream });
            }
            if st.tickets[stream].is_none() {
                return Ok(());
            }
            self.flushed.wait(&mut st);
        }
    }

    /// Mark `stream` as done (idempotent). Finished streams stop gating
    /// the flush watermark, so remaining streams keep batching among
    /// themselves. If the stream still had a ticket pending (its stage
    /// died mid-submit), the ticket is discarded — never flushed or
    /// charged — and the blocked submitter is woken with
    /// [`SubmitError::Interrupted`].
    pub fn finish(&self, stream: usize) {
        let mut st = self.state.lock();
        if !st.live[stream] {
            return;
        }
        st.live[stream] = false;
        if let Some((sizes, _)) = st.tickets[stream].take() {
            st.interrupted[stream] = true;
            // Count the orphan explicitly: it was never flushed or
            // charged, and `mean_batch_occupancy` must neither include
            // it nor hide that it was dropped.
            self.ledger.record_batch_discard(sizes.len());
        }
        self.flush_if_ready(&mut st);
        // Wake waiters unconditionally: the interrupted submitter (if
        // any) must observe its discarded ticket even when no round
        // flushed, and remaining streams re-check the watermark.
        self.flushed.notify_all();
    }

    /// Number of flush rounds completed so far.
    pub fn rounds(&self) -> u64 {
        self.state.lock().rounds
    }

    /// The flush log in round order. Round contents are a pure function
    /// of the per-stream submission sequences, so the log is as
    /// deterministic as the charges themselves.
    pub fn round_log(&self) -> Vec<RoundRecord> {
        self.state.lock().log.clone()
    }

    /// Flush one round if every live stream has a pending ticket (and
    /// at least one ticket exists). Must be called with the state lock
    /// held; wakes all blocked submitters.
    fn flush_if_ready(&self, st: &mut BatchState) {
        let ready = st
            .tickets
            .iter()
            .zip(&st.live)
            .all(|(t, live)| !*live || t.is_some());
        let any = st.tickets.iter().any(Option::is_some);
        if !ready || !any {
            return;
        }
        // Group windows by size across all streams (stream order is
        // irrelevant: only per-size counts matter).
        let mut by_size: BTreeMap<(u32, u32), usize> = BTreeMap::new();
        let mut members: Vec<Ticket> = Vec::new();
        for slot in st.tickets.iter_mut() {
            if let Some((sizes, ticket)) = slot.take() {
                members.push(ticket);
                for s in sizes {
                    *by_size.entry(s).or_insert(0) += 1;
                }
            }
        }
        let mut launch_seconds = 0.0f64;
        for (_, count) in by_size {
            let mut remaining = count;
            while remaining > 0 {
                let occupancy = remaining.min(self.max_batch);
                self.ledger
                    .charge_batch(Component::Detector, self.per_call, occupancy);
                launch_seconds += self.per_call;
                remaining -= occupancy;
            }
        }
        st.log.push(RoundRecord {
            tickets: members,
            launch_seconds,
        });
        st.rounds += 1;
        self.flushed.notify_all();
    }
}

/// RAII handle calling [`DetectorBatcher::finish`] on drop, so a
/// panicking detect stage never deadlocks the other streams.
pub struct StreamGuard<'a> {
    batcher: &'a DetectorBatcher,
    stream: usize,
}

impl<'a> StreamGuard<'a> {
    /// Guard `stream` on `batcher`.
    pub fn new(batcher: &'a DetectorBatcher, stream: usize) -> Self {
        StreamGuard { batcher, stream }
    }

    /// Submit through the guard (same as the batcher's `submit`).
    pub fn submit(&self, sizes: Vec<(u32, u32)>) -> Result<(), SubmitError> {
        self.batcher.submit(self.stream, sizes)
    }

    /// Submit with frame identity for the round log (same as the
    /// batcher's `submit_tagged`).
    pub fn submit_tagged(
        &self,
        sizes: Vec<(u32, u32)>,
        clip: usize,
        ordinal: usize,
        pixel_seconds: f64,
    ) -> Result<(), SubmitError> {
        self.batcher
            .submit_tagged(self.stream, sizes, clip, ordinal, pixel_seconds)
    }
}

impl Drop for StreamGuard<'_> {
    fn drop(&mut self) {
        self.batcher.finish(self.stream);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::thread;

    const CALL: f64 = 1.0;

    #[test]
    fn single_stream_charges_per_distinct_size_per_round() {
        let ledger = CostLedger::new();
        let b = DetectorBatcher::new(1, CALL, 16, ledger.clone());
        b.submit(0, vec![(64, 64), (64, 64), (128, 96)]).unwrap();
        b.finish(0);
        // one round: two distinct sizes → two batch charges
        assert_eq!(b.rounds(), 1);
        let stats = ledger.batch_stats();
        assert_eq!(stats.batches, 2);
        assert_eq!(stats.items, 3);
        assert!((ledger.get(Component::Detector) - 2.0 * CALL).abs() < 1e-12);
    }

    #[test]
    fn two_streams_share_launch_overhead() {
        let ledger = CostLedger::new();
        let b = Arc::new(DetectorBatcher::new(2, CALL, 16, ledger.clone()));
        let frames = 5usize;
        let mut handles = Vec::new();
        for stream in 0..2 {
            let b = Arc::clone(&b);
            handles.push(thread::spawn(move || {
                for _ in 0..frames {
                    b.submit(stream, vec![(64, 64)]).unwrap();
                }
                b.finish(stream);
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        // 5 rounds × 1 size group of 2 windows → 5 charges, occupancy 2
        assert_eq!(b.rounds(), frames as u64);
        let stats = ledger.batch_stats();
        assert_eq!(stats.batches, frames as u64);
        assert!((stats.mean_occupancy() - 2.0).abs() < 1e-12);
        assert!((ledger.get(Component::Detector) - frames as f64 * CALL).abs() < 1e-12);
    }

    #[test]
    fn uneven_stream_lengths_drain_without_deadlock() {
        let ledger = CostLedger::new();
        let b = Arc::new(DetectorBatcher::new(3, CALL, 16, ledger.clone()));
        let mut handles = Vec::new();
        for (stream, frames) in [(0usize, 8usize), (1, 3), (2, 5)] {
            let b = Arc::clone(&b);
            handles.push(thread::spawn(move || {
                for _ in 0..frames {
                    b.submit(stream, vec![(32, 32)]).unwrap();
                }
                b.finish(stream);
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        // the longest stream dictates the number of rounds
        assert_eq!(b.rounds(), 8);
        assert_eq!(ledger.batch_stats().items, 8 + 3 + 5);
    }

    #[test]
    fn max_batch_splits_oversized_groups() {
        let ledger = CostLedger::new();
        let b = DetectorBatcher::new(1, CALL, 4, ledger.clone());
        b.submit(0, vec![(64, 64); 10]).unwrap();
        b.finish(0);
        // 10 windows in chunks of ≤4 → 3 batches (4+4+2)
        let stats = ledger.batch_stats();
        assert_eq!(stats.batches, 3);
        assert_eq!(stats.items, 10);
    }

    #[test]
    fn guard_finishes_on_drop() {
        let ledger = CostLedger::new();
        let b = Arc::new(DetectorBatcher::new(2, CALL, 16, ledger.clone()));
        let b2 = Arc::clone(&b);
        let h = thread::spawn(move || {
            let _guard = StreamGuard::new(&b2, 1);
            // stream 1 never submits; the guard's drop must unblock
            // stream 0
        });
        h.join().unwrap();
        b.submit(0, vec![(64, 64)]).unwrap();
        b.finish(0);
        assert_eq!(b.rounds(), 1);
        assert_eq!(ledger.batch_stats().batches, 1);
    }

    #[test]
    fn submit_after_finish_is_a_checked_error() {
        let b = DetectorBatcher::new(2, CALL, 16, CostLedger::new());
        b.finish(1);
        assert_eq!(
            b.submit(1, vec![(64, 64)]),
            Err(SubmitError::Finished { stream: 1 })
        );
        // the healthy stream is unaffected
        b.submit(0, vec![(64, 64)]).unwrap();
        assert_eq!(b.rounds(), 1);
    }

    #[test]
    fn double_ticket_is_a_checked_error() {
        let b = Arc::new(DetectorBatcher::new(2, CALL, 16, CostLedger::new()));
        let b2 = Arc::clone(&b);
        // stream 1 blocks with a pending ticket (stream 0 has none yet)
        let h = thread::spawn(move || b2.submit(1, vec![(32, 32)]));
        while b.state.lock().tickets[1].is_none() {
            thread::yield_now();
        }
        // a second submit for stream 1 must be rejected, not corrupt the
        // pending ticket
        assert_eq!(
            b.submit(1, vec![(64, 64)]),
            Err(SubmitError::TicketPending { stream: 1 })
        );
        // releasing the watermark flushes the original ticket
        b.submit(0, vec![(32, 32)]).unwrap();
        assert_eq!(h.join().unwrap(), Ok(()));
        assert_eq!(b.rounds(), 1);
    }

    #[test]
    fn finish_with_pending_ticket_releases_waiter_and_drains_others() {
        // Regression (fault tolerance): a guard dropped while its
        // stream's ticket is outstanding must (a) wake the blocked
        // submitter with Interrupted, (b) discard the ticket uncharged,
        // and (c) let the remaining streams keep draining.
        let ledger = CostLedger::new();
        let b = Arc::new(DetectorBatcher::new(3, CALL, 16, ledger.clone()));
        let b2 = Arc::clone(&b);
        // stream 2's submitter blocks: streams 0 and 1 have no tickets
        let blocked = thread::spawn(move || b2.submit(2, vec![(99, 99)]));
        while b.state.lock().tickets[2].is_none() {
            thread::yield_now();
        }
        // the stage thread dies; its guard drops while the ticket is
        // outstanding
        drop(StreamGuard::new(&b, 2));
        assert_eq!(
            blocked.join().unwrap(),
            Err(SubmitError::Interrupted { stream: 2 })
        );
        // remaining streams drain normally and the orphaned (99, 99)
        // ticket was never flushed or charged
        let mut handles = Vec::new();
        for stream in 0..2usize {
            let b = Arc::clone(&b);
            handles.push(thread::spawn(move || {
                for _ in 0..3 {
                    b.submit(stream, vec![(64, 64)]).unwrap();
                }
                b.finish(stream);
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(b.rounds(), 3);
        let stats = ledger.batch_stats();
        assert_eq!(stats.batches, 3);
        assert_eq!(stats.items, 6);
        assert!((ledger.get(Component::Detector) - 3.0 * CALL).abs() < 1e-12);
    }

    #[test]
    fn charges_are_interleaving_independent() {
        let run = || {
            let ledger = CostLedger::new();
            let b = Arc::new(DetectorBatcher::new(3, CALL, 4, ledger.clone()));
            let mut handles = Vec::new();
            for stream in 0..3usize {
                let b = Arc::clone(&b);
                handles.push(thread::spawn(move || {
                    for f in 0..6usize {
                        // deterministic per-stream size sequence
                        let size = (32 * (1 + ((f + stream) % 2) as u32), 32);
                        b.submit(stream, vec![size; 1 + (f % 3)]).unwrap();
                    }
                    b.finish(stream);
                }));
            }
            for h in handles {
                h.join().unwrap();
            }
            (ledger.get(Component::Detector), ledger.batch_stats())
        };
        let (cost_a, stats_a) = run();
        let (cost_b, stats_b) = run();
        assert_eq!(stats_a, stats_b);
        assert!((cost_a - cost_b).abs() < 1e-12);
    }

    #[test]
    fn orphaned_tickets_are_counted_not_averaged() {
        // Regression: an orphaned ticket (stream finished while its
        // ticket was pending) must be excluded from mean_batch_occupancy
        // *and* explicitly counted as discarded — not silently vanish.
        let ledger = CostLedger::new();
        let b = Arc::new(DetectorBatcher::new(2, CALL, 16, ledger.clone()));
        let b2 = Arc::clone(&b);
        // stream 1 blocks with a 7-window ticket; stream 0 never submits
        let blocked = thread::spawn(move || b2.submit(1, vec![(64, 64); 7]));
        while b.state.lock().tickets[1].is_none() {
            thread::yield_now();
        }
        b.finish(1);
        assert_eq!(
            blocked.join().unwrap(),
            Err(SubmitError::Interrupted { stream: 1 })
        );
        // stream 0 then flushes two clean 2-window rounds on its own
        b.submit(0, vec![(32, 32); 2]).unwrap();
        b.submit(0, vec![(32, 32); 2]).unwrap();
        b.finish(0);
        let stats = ledger.batch_stats();
        assert_eq!(stats.discarded_tickets, 1);
        assert_eq!(stats.discarded_items, 7);
        assert_eq!(stats.batches, 2);
        assert_eq!(stats.items, 4);
        // occupancy reflects only flushed chunks: (2+2)/2, not (2+2+7)/2
        assert!((stats.mean_occupancy() - 2.0).abs() < 1e-12);
        // the orphan was never charged either
        assert!((ledger.get(Component::Detector) - 2.0 * CALL).abs() < 1e-12);
    }

    #[test]
    fn round_log_records_members_and_launch() {
        let ledger = CostLedger::new();
        let b = DetectorBatcher::new(1, CALL, 4, ledger.clone());
        b.submit_tagged(0, vec![(64, 64); 6], 3, 0, 1.5).unwrap();
        b.submit(0, vec![(32, 32)]).unwrap();
        b.finish(0);
        let log = b.round_log();
        assert_eq!(log.len(), 2);
        // 6 same-size windows in chunks of ≤4 → 2 launches
        assert!((log[0].launch_seconds - 2.0 * CALL).abs() < 1e-12);
        assert_eq!(
            log[0].tickets,
            vec![Ticket {
                stream: 0,
                clip: 3,
                ordinal: 0,
                items: 6,
                pixel_seconds: 1.5,
            }]
        );
        assert_eq!(log[1].tickets[0].clip, Ticket::UNTAGGED);
        assert!((log[1].launch_seconds - CALL).abs() < 1e-12);
    }
}
