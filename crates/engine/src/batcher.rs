//! Cross-stream detector batching (§3.2's "batched inference across
//! streams" scaled out to the multi-stream engine).
//!
//! Every stream's detect stage submits one *ticket* per processed frame
//! — the rounded sizes of that frame's detector windows — and blocks
//! until the ticket is part of a flushed batch round. A round flushes
//! at the ticket-deadline watermark: the moment every live stream has a
//! ticket pending (in virtual time, no stream's detector is allowed to
//! run ahead of the others, which is what makes the accounting
//! deterministic). Within a round, windows are grouped by size — the
//! fixed window-size set W is what makes same-size groups common — and
//! each group is split into chunks of at most `max_batch` windows; one
//! launch overhead (`per_call`) is charged per chunk through
//! [`CostLedger::charge_batch`], which also records batch occupancy.
//!
//! Determinism: a stream's j-th ticket is always flushed in the j-th
//! round it participates in, and round contents are a pure function of
//! the per-stream ticket sequences (which are themselves deterministic).
//! Thread interleaving can change *when* a round flushes, never what it
//! contains, so charges and occupancy stats are reproducible — and with
//! one stream they equal the sequential pipeline's per-frame
//! `windows_cost` accounting exactly (one `per_call` per distinct
//! window size per frame, as long as `max_batch` exceeds the per-frame
//! same-size window count).

use otif_cv::{Component, CostLedger};
use parking_lot::{Condvar, Mutex};
use std::collections::BTreeMap;

struct BatchState {
    /// One pending ticket per stream: the rounded window sizes of the
    /// frame the stream's detect stage is blocked on.
    tickets: Vec<Option<Vec<(u32, u32)>>>,
    /// Which streams still have frames to submit. A finished stream no
    /// longer gates the flush watermark.
    live: Vec<bool>,
    /// Completed flush rounds.
    rounds: u64,
}

/// Coalesces same-size detector windows from all streams into batched
/// invocations, charging launch overhead per batch instead of per
/// frame.
pub struct DetectorBatcher {
    state: Mutex<BatchState>,
    flushed: Condvar,
    per_call: f64,
    max_batch: usize,
    ledger: CostLedger,
}

impl DetectorBatcher {
    /// A batcher for `streams` streams charging `per_call` simulated
    /// seconds per batched invocation of at most `max_batch` windows.
    pub fn new(streams: usize, per_call: f64, max_batch: usize, ledger: CostLedger) -> Self {
        DetectorBatcher {
            state: Mutex::new(BatchState {
                tickets: (0..streams).map(|_| None).collect(),
                live: vec![true; streams],
                rounds: 0,
            }),
            flushed: Condvar::new(),
            per_call,
            max_batch: max_batch.max(1),
            ledger,
        }
    }

    /// Submit one frame's window sizes for `stream` and block until the
    /// ticket has been flushed in a batch round. Each stream may have at
    /// most one ticket outstanding; submissions from one stream are
    /// processed strictly in call order.
    pub fn submit(&self, stream: usize, sizes: Vec<(u32, u32)>) {
        let mut st = self.state.lock();
        debug_assert!(st.tickets[stream].is_none(), "one ticket per stream");
        debug_assert!(st.live[stream], "submit after finish");
        st.tickets[stream] = Some(sizes);
        self.flush_if_ready(&mut st);
        while st.tickets[stream].is_some() {
            self.flushed.wait(&mut st);
        }
    }

    /// Mark `stream` as done (idempotent). Finished streams stop gating
    /// the flush watermark, so remaining streams keep batching among
    /// themselves.
    pub fn finish(&self, stream: usize) {
        let mut st = self.state.lock();
        if st.live[stream] {
            st.live[stream] = false;
            self.flush_if_ready(&mut st);
        }
    }

    /// Number of flush rounds completed so far.
    pub fn rounds(&self) -> u64 {
        self.state.lock().rounds
    }

    /// Flush one round if every live stream has a pending ticket (and
    /// at least one ticket exists). Must be called with the state lock
    /// held; wakes all blocked submitters.
    fn flush_if_ready(&self, st: &mut BatchState) {
        let ready = st
            .tickets
            .iter()
            .zip(&st.live)
            .all(|(t, live)| !*live || t.is_some());
        let any = st.tickets.iter().any(Option::is_some);
        if !ready || !any {
            return;
        }
        // Group windows by size across all streams (stream order is
        // irrelevant: only per-size counts matter).
        let mut by_size: BTreeMap<(u32, u32), usize> = BTreeMap::new();
        for ticket in st.tickets.iter_mut() {
            if let Some(sizes) = ticket.take() {
                for s in sizes {
                    *by_size.entry(s).or_insert(0) += 1;
                }
            }
        }
        for (_, count) in by_size {
            let mut remaining = count;
            while remaining > 0 {
                let occupancy = remaining.min(self.max_batch);
                self.ledger
                    .charge_batch(Component::Detector, self.per_call, occupancy);
                remaining -= occupancy;
            }
        }
        st.rounds += 1;
        self.flushed.notify_all();
    }
}

/// RAII handle calling [`DetectorBatcher::finish`] on drop, so a
/// panicking detect stage never deadlocks the other streams.
pub struct StreamGuard<'a> {
    batcher: &'a DetectorBatcher,
    stream: usize,
}

impl<'a> StreamGuard<'a> {
    /// Guard `stream` on `batcher`.
    pub fn new(batcher: &'a DetectorBatcher, stream: usize) -> Self {
        StreamGuard { batcher, stream }
    }

    /// Submit through the guard (same as the batcher's `submit`).
    pub fn submit(&self, sizes: Vec<(u32, u32)>) {
        self.batcher.submit(self.stream, sizes);
    }
}

impl Drop for StreamGuard<'_> {
    fn drop(&mut self) {
        self.batcher.finish(self.stream);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::thread;

    const CALL: f64 = 1.0;

    #[test]
    fn single_stream_charges_per_distinct_size_per_round() {
        let ledger = CostLedger::new();
        let b = DetectorBatcher::new(1, CALL, 16, ledger.clone());
        b.submit(0, vec![(64, 64), (64, 64), (128, 96)]);
        b.finish(0);
        // one round: two distinct sizes → two batch charges
        assert_eq!(b.rounds(), 1);
        let stats = ledger.batch_stats();
        assert_eq!(stats.batches, 2);
        assert_eq!(stats.items, 3);
        assert!((ledger.get(Component::Detector) - 2.0 * CALL).abs() < 1e-12);
    }

    #[test]
    fn two_streams_share_launch_overhead() {
        let ledger = CostLedger::new();
        let b = Arc::new(DetectorBatcher::new(2, CALL, 16, ledger.clone()));
        let frames = 5usize;
        let mut handles = Vec::new();
        for stream in 0..2 {
            let b = Arc::clone(&b);
            handles.push(thread::spawn(move || {
                for _ in 0..frames {
                    b.submit(stream, vec![(64, 64)]);
                }
                b.finish(stream);
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        // 5 rounds × 1 size group of 2 windows → 5 charges, occupancy 2
        assert_eq!(b.rounds(), frames as u64);
        let stats = ledger.batch_stats();
        assert_eq!(stats.batches, frames as u64);
        assert!((stats.mean_occupancy() - 2.0).abs() < 1e-12);
        assert!((ledger.get(Component::Detector) - frames as f64 * CALL).abs() < 1e-12);
    }

    #[test]
    fn uneven_stream_lengths_drain_without_deadlock() {
        let ledger = CostLedger::new();
        let b = Arc::new(DetectorBatcher::new(3, CALL, 16, ledger.clone()));
        let mut handles = Vec::new();
        for (stream, frames) in [(0usize, 8usize), (1, 3), (2, 5)] {
            let b = Arc::clone(&b);
            handles.push(thread::spawn(move || {
                for _ in 0..frames {
                    b.submit(stream, vec![(32, 32)]);
                }
                b.finish(stream);
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        // the longest stream dictates the number of rounds
        assert_eq!(b.rounds(), 8);
        assert_eq!(ledger.batch_stats().items, 8 + 3 + 5);
    }

    #[test]
    fn max_batch_splits_oversized_groups() {
        let ledger = CostLedger::new();
        let b = DetectorBatcher::new(1, CALL, 4, ledger.clone());
        b.submit(0, vec![(64, 64); 10]);
        b.finish(0);
        // 10 windows in chunks of ≤4 → 3 batches (4+4+2)
        let stats = ledger.batch_stats();
        assert_eq!(stats.batches, 3);
        assert_eq!(stats.items, 10);
    }

    #[test]
    fn guard_finishes_on_drop() {
        let ledger = CostLedger::new();
        let b = Arc::new(DetectorBatcher::new(2, CALL, 16, ledger.clone()));
        let b2 = Arc::clone(&b);
        let h = thread::spawn(move || {
            let _guard = StreamGuard::new(&b2, 1);
            // stream 1 never submits; the guard's drop must unblock
            // stream 0
        });
        h.join().unwrap();
        b.submit(0, vec![(64, 64)]);
        b.finish(0);
        assert_eq!(b.rounds(), 1);
        assert_eq!(ledger.batch_stats().batches, 1);
    }

    #[test]
    fn charges_are_interleaving_independent() {
        let run = || {
            let ledger = CostLedger::new();
            let b = Arc::new(DetectorBatcher::new(3, CALL, 4, ledger.clone()));
            let mut handles = Vec::new();
            for stream in 0..3usize {
                let b = Arc::clone(&b);
                handles.push(thread::spawn(move || {
                    for f in 0..6usize {
                        // deterministic per-stream size sequence
                        let size = (32 * (1 + ((f + stream) % 2) as u32), 32);
                        b.submit(stream, vec![size; 1 + (f % 3)]);
                    }
                    b.finish(stream);
                }));
            }
            for h in handles {
                h.join().unwrap();
            }
            (ledger.get(Component::Detector), ledger.batch_stats())
        };
        let (cost_a, stats_a) = run();
        let (cost_b, stats_b) = run();
        assert_eq!(stats_a, stats_b);
        assert!((cost_a - cost_b).abs() < 1e-12);
    }
}
