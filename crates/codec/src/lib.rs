#![warn(missing_docs)]

//! A small block-based video store.
//!
//! The paper stores datasets as H264/mp4 and decodes with ffmpeg; it notes
//! that once ML inference is cheap, *video decoding becomes a bottleneck*
//! (≈⅓ of CPU time) and that decoding at the detector's resolution speeds
//! execution up. This crate reproduces those dynamics with a real codec
//! over the simulator's grayscale frames:
//!
//! - clips are encoded as **GOPs**: a full I-frame every `gop` frames,
//!   then P-frames storing only the 8×8 blocks that changed beyond a
//!   quantization threshold (conditional replenishment — the moving
//!   objects — while the static background compresses away);
//! - decoding a frame requires decoding the chain from the preceding
//!   I-frame, so *reduced-rate* sampling saves less than proportionally —
//!   exactly the effect that shapes the paper's sampling-gap trade-off;
//! - [`Decoder`] tracks blocks/pixels processed so the execution pipeline
//!   can charge realistic CPU decode costs.

pub mod decode;
pub mod encode;

pub use decode::{DecodeStats, Decoder};
pub use encode::{EncodedClip, EncoderConfig};

/// Side of the square blocks used by the codec.
pub const BLOCK: usize = 8;
