//! Encoding clips into the block-based store.

use crate::BLOCK;
use otif_sim::{Clip, GrayImage, Renderer};
use serde::{Deserialize, Serialize};

/// Encoder settings.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct EncoderConfig {
    /// Frames per GOP (distance between I-frames).
    pub gop: usize,
    /// Maximum absolute per-pixel difference (0–255) below which a block
    /// is coded as "skip" in a P-frame. Quantizes away sensor noise, like
    /// any lossy codec.
    pub skip_threshold: u8,
}

impl Default for EncoderConfig {
    fn default() -> Self {
        EncoderConfig {
            gop: 30,
            skip_threshold: 14,
        }
    }
}

/// One encoded block operation in a P-frame.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum BlockOp {
    /// Block unchanged from the previous frame.
    Skip,
    /// Raw replacement pixels (row-major within the block).
    Raw(Vec<u8>),
}

/// One encoded frame.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum EncFrame {
    /// Intra frame: full pixels.
    I(Vec<u8>),
    /// Predicted frame: one op per block, row-major over the block grid.
    P(Vec<BlockOp>),
}

/// An encoded clip.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct EncodedClip {
    /// Frame width in pixels.
    pub w: usize,
    /// Frame height in pixels.
    pub h: usize,
    /// Source frame rate.
    pub fps: u32,
    /// Encoder settings used.
    pub config: EncoderConfig,
    /// Encoded frames, in presentation order.
    pub frames: Vec<EncFrame>,
}

impl EncodedClip {
    /// Encode a sequence of raw grayscale frames.
    ///
    /// All frames must share dimensions divisible by [`BLOCK`].
    pub fn encode(frames: &[GrayImage], fps: u32, config: EncoderConfig) -> EncodedClip {
        assert!(!frames.is_empty());
        let (w, h) = (frames[0].w, frames[0].h);
        assert!(
            w % BLOCK == 0 && h % BLOCK == 0,
            "dims must be block-aligned"
        );
        assert!(config.gop >= 1);
        let bw = w / BLOCK;
        let bh = h / BLOCK;

        let mut out = Vec::with_capacity(frames.len());
        let mut prev: Vec<u8> = Vec::new();
        for (i, f) in frames.iter().enumerate() {
            assert_eq!((f.w, f.h), (w, h), "frame dimension mismatch");
            let cur = f.to_u8();
            if i % config.gop == 0 {
                out.push(EncFrame::I(cur.clone()));
                prev = cur;
                continue;
            }
            let mut ops = Vec::with_capacity(bw * bh);
            let mut next = prev.clone();
            for by in 0..bh {
                for bx in 0..bw {
                    let mut max_diff = 0u8;
                    for y in 0..BLOCK {
                        let row = (by * BLOCK + y) * w + bx * BLOCK;
                        for x in 0..BLOCK {
                            let d = cur[row + x].abs_diff(prev[row + x]);
                            if d > max_diff {
                                max_diff = d;
                            }
                        }
                    }
                    if max_diff <= config.skip_threshold {
                        ops.push(BlockOp::Skip);
                    } else {
                        let mut raw = Vec::with_capacity(BLOCK * BLOCK);
                        for y in 0..BLOCK {
                            let row = (by * BLOCK + y) * w + bx * BLOCK;
                            raw.extend_from_slice(&cur[row..row + BLOCK]);
                            next[row..row + BLOCK].copy_from_slice(&cur[row..row + BLOCK]);
                        }
                        ops.push(BlockOp::Raw(raw));
                    }
                }
            }
            out.push(EncFrame::P(ops));
            // reference for the next frame is the *reconstructed* frame
            prev = next;
        }
        EncodedClip {
            w,
            h,
            fps,
            config,
            frames: out,
        }
    }

    /// Render and encode an entire simulated clip at its native resolution.
    pub fn encode_clip(clip: &Clip, config: EncoderConfig) -> EncodedClip {
        let r = Renderer::new(clip);
        let frames: Vec<GrayImage> = (0..clip.num_frames())
            .map(|f| r.render(f, clip.scene.width as usize, clip.scene.height as usize))
            .collect();
        EncodedClip::encode(&frames, clip.scene.fps, config)
    }

    /// Number of encoded frames.
    pub fn num_frames(&self) -> usize {
        self.frames.len()
    }

    /// Encoded payload size in bytes (pixel data only; headers ignored).
    pub fn size_bytes(&self) -> usize {
        self.frames
            .iter()
            .map(|f| match f {
                EncFrame::I(px) => px.len(),
                EncFrame::P(ops) => ops
                    .iter()
                    .map(|op| match op {
                        BlockOp::Skip => 1,
                        BlockOp::Raw(r) => 1 + r.len(),
                    })
                    .sum(),
            })
            .sum()
    }

    /// Raw (uncompressed) size in bytes.
    pub fn raw_bytes(&self) -> usize {
        self.frames.len() * self.w * self.h
    }

    /// Index of the I-frame at or before `frame`.
    pub fn keyframe_before(&self, frame: usize) -> usize {
        (frame / self.config.gop) * self.config.gop
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn synthetic_frames(n: usize, w: usize, h: usize, moving: bool) -> Vec<GrayImage> {
        (0..n)
            .map(|t| {
                let mut img = GrayImage::new(w, h);
                for y in 0..h {
                    for x in 0..w {
                        img.set(x, y, 0.3 + 0.1 * ((x / 8 + y / 8) % 2) as f32);
                    }
                }
                if moving {
                    // a bright 8x8 object sliding right one block per frame
                    let ox = (t * 8) % (w - 8);
                    for y in 8..16 {
                        for x in ox..ox + 8 {
                            img.set(x, y, 0.9);
                        }
                    }
                }
                img
            })
            .collect()
    }

    #[test]
    fn static_scene_compresses_well() {
        let frames = synthetic_frames(30, 64, 32, false);
        let enc = EncodedClip::encode(
            &frames,
            10,
            EncoderConfig {
                gop: 30,
                skip_threshold: 4,
            },
        );
        // 1 I-frame + 29 all-skip P-frames.
        let ratio = enc.size_bytes() as f32 / enc.raw_bytes() as f32;
        assert!(ratio < 0.1, "ratio {ratio}");
    }

    #[test]
    fn moving_object_produces_raw_blocks() {
        let frames = synthetic_frames(10, 64, 32, true);
        let enc = EncodedClip::encode(
            &frames,
            10,
            EncoderConfig {
                gop: 10,
                skip_threshold: 4,
            },
        );
        match &enc.frames[1] {
            EncFrame::P(ops) => {
                let raw = ops.iter().filter(|o| matches!(o, BlockOp::Raw(_))).count();
                assert!((1..=8).contains(&raw), "raw blocks = {raw}");
            }
            _ => panic!("frame 1 should be a P-frame"),
        }
    }

    #[test]
    fn gop_boundaries_are_i_frames() {
        let frames = synthetic_frames(25, 64, 32, true);
        let enc = EncodedClip::encode(
            &frames,
            10,
            EncoderConfig {
                gop: 10,
                skip_threshold: 4,
            },
        );
        for (i, f) in enc.frames.iter().enumerate() {
            let is_i = matches!(f, EncFrame::I(_));
            assert_eq!(is_i, i % 10 == 0, "frame {i}");
        }
        assert_eq!(enc.keyframe_before(0), 0);
        assert_eq!(enc.keyframe_before(9), 0);
        assert_eq!(enc.keyframe_before(10), 10);
        assert_eq!(enc.keyframe_before(24), 20);
    }

    #[test]
    #[should_panic(expected = "block-aligned")]
    fn rejects_unaligned_dims() {
        let frames = vec![GrayImage::new(30, 30)];
        EncodedClip::encode(&frames, 10, EncoderConfig::default());
    }
}
