//! Decoding with seek semantics and cost accounting.

use crate::encode::{BlockOp, EncFrame, EncodedClip};
use crate::BLOCK;
use otif_sim::GrayImage;

/// Cumulative decode work counters.
///
/// `blocks_processed` counts every 8×8 block touched while reconstructing
/// requested frames — including blocks of intermediate P-frames that had to
/// be decoded to reach a seek target. This is the quantity the execution
/// pipeline converts into simulated CPU seconds.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct DecodeStats {
    /// Frames the caller asked for.
    pub frames_requested: usize,
    /// Frames actually reconstructed (includes chain frames).
    pub frames_decoded: usize,
    /// 8x8 blocks touched during reconstruction.
    pub blocks_processed: u64,
}

impl DecodeStats {
    /// Pixels touched (blocks x 64).
    pub fn pixels_processed(&self) -> u64 {
        self.blocks_processed * (BLOCK * BLOCK) as u64
    }
}

/// A stateful decoder over an [`EncodedClip`].
///
/// Sequential access (`decode(t)`, `decode(t + g)`, …) reuses the current
/// reference frame when possible; seeking backwards or across an I-frame
/// restarts from the nearest keyframe, decoding the whole chain — the same
/// cost structure as H264 seeking.
pub struct Decoder<'a> {
    clip: &'a EncodedClip,
    /// Currently reconstructed frame index and pixels.
    cur: Option<(usize, Vec<u8>)>,
    /// Cumulative decode-work counters.
    pub stats: DecodeStats,
}

impl<'a> Decoder<'a> {
    /// Create a decoder positioned before the first frame.
    pub fn new(clip: &'a EncodedClip) -> Self {
        Decoder {
            clip,
            cur: None,
            stats: DecodeStats::default(),
        }
    }

    fn blocks_per_frame(&self) -> u64 {
        ((self.clip.w / BLOCK) * (self.clip.h / BLOCK)) as u64
    }

    /// Apply the encoded frame `idx` on top of the current reference.
    fn apply(&mut self, idx: usize) {
        let w = self.clip.w;
        match &self.clip.frames[idx] {
            EncFrame::I(px) => {
                self.cur = Some((idx, px.clone()));
                self.stats.blocks_processed += self.blocks_per_frame();
            }
            EncFrame::P(ops) => {
                let (_, buf) = self.cur.as_mut().expect("P-frame without reference");
                let bw = w / BLOCK;
                for (bi, op) in ops.iter().enumerate() {
                    if let BlockOp::Raw(raw) = op {
                        let (bx, by) = (bi % bw, bi / bw);
                        for y in 0..BLOCK {
                            let row = (by * BLOCK + y) * w + bx * BLOCK;
                            buf[row..row + BLOCK].copy_from_slice(&raw[y * BLOCK..(y + 1) * BLOCK]);
                        }
                        self.stats.blocks_processed += 1;
                    }
                }
                // skip blocks still cost a touch of work (header parse);
                // count them at 1/16 of a raw block
                let skips = ops.iter().filter(|o| matches!(o, BlockOp::Skip)).count();
                self.stats.blocks_processed += (skips as u64) / 16;
                self.cur.as_mut().unwrap().0 = idx;
            }
        }
        self.stats.frames_decoded += 1;
    }

    /// Decode frame `t` at native resolution.
    pub fn decode(&mut self, t: usize) -> GrayImage {
        assert!(t < self.clip.num_frames(), "frame {t} out of range");
        self.stats.frames_requested += 1;
        let key = self.clip.keyframe_before(t);
        let start = match &self.cur {
            Some((cur_t, _)) if *cur_t <= t && *cur_t >= key => *cur_t + 1,
            _ => {
                self.apply(key);
                key + 1
            }
        };
        // If we're already exactly at t, start > t and the loop is empty.
        let start = if let Some((cur_t, _)) = &self.cur {
            if *cur_t == t {
                t + 1
            } else {
                start
            }
        } else {
            start
        };
        for i in start..=t {
            self.apply(i);
        }
        let (_, buf) = self.cur.as_ref().unwrap();
        GrayImage::from_u8(self.clip.w, self.clip.h, buf)
    }

    /// Decode frame `t` and box-downsample to `w × h` (the "decode at the
    /// detector resolution" path). Downsampling cost is negligible next to
    /// chain decoding and is folded into the block counters.
    pub fn decode_scaled(&mut self, t: usize, w: usize, h: usize) -> GrayImage {
        let native = self.decode(t);
        if w == native.w && h == native.h {
            return native;
        }
        let mut out = GrayImage::new(w, h);
        let sx = native.w as f32 / w as f32;
        let sy = native.h as f32 / h as f32;
        for y in 0..h {
            let ny0 = (y as f32 * sy) as usize;
            let ny1 = (((y + 1) as f32 * sy) as usize).clamp(ny0 + 1, native.h);
            for x in 0..w {
                let nx0 = (x as f32 * sx) as usize;
                let nx1 = (((x + 1) as f32 * sx) as usize).clamp(nx0 + 1, native.w);
                out.set(x, y, native.mean_in(nx0, ny0, nx1, ny1));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encode::EncoderConfig;

    fn frames(n: usize) -> Vec<GrayImage> {
        (0..n)
            .map(|t| {
                let mut img = GrayImage::new(32, 16);
                for y in 0..16 {
                    for x in 0..32 {
                        img.set(x, y, 0.2);
                    }
                }
                let ox = (t * 2) % 24;
                for y in 4..12 {
                    for x in ox..ox + 8 {
                        img.set(x, y, 0.9);
                    }
                }
                img
            })
            .collect()
    }

    fn close(a: &GrayImage, b: &GrayImage, tol: f32) -> bool {
        a.w == b.w
            && a.h == b.h
            && a.data
                .iter()
                .zip(&b.data)
                .all(|(x, y)| (x - y).abs() <= tol)
    }

    #[test]
    fn lossless_roundtrip_with_zero_threshold() {
        let fs = frames(20);
        let enc = EncodedClip::encode(
            &fs,
            10,
            EncoderConfig {
                gop: 5,
                skip_threshold: 0,
            },
        );
        let mut dec = Decoder::new(&enc);
        for (t, f) in fs.iter().enumerate() {
            let got = dec.decode(t);
            assert!(close(&got, f, 1.0 / 255.0 + 1e-6), "frame {t}");
        }
    }

    #[test]
    fn lossy_roundtrip_within_threshold() {
        let fs = frames(20);
        let th = 10u8;
        let enc = EncodedClip::encode(
            &fs,
            10,
            EncoderConfig {
                gop: 10,
                skip_threshold: th,
            },
        );
        let mut dec = Decoder::new(&enc);
        for (t, f) in fs.iter().enumerate() {
            let got = dec.decode(t);
            assert!(
                close(&got, f, th as f32 / 255.0 + 1.0 / 255.0 + 1e-6),
                "frame {t}"
            );
        }
    }

    #[test]
    fn random_seek_matches_sequential() {
        let fs = frames(30);
        let enc = EncodedClip::encode(
            &fs,
            10,
            EncoderConfig {
                gop: 7,
                skip_threshold: 0,
            },
        );
        let mut seq = Decoder::new(&enc);
        let sequential: Vec<GrayImage> = (0..30).map(|t| seq.decode(t)).collect();
        let mut rnd = Decoder::new(&enc);
        for &t in &[17usize, 3, 29, 0, 12, 12, 11] {
            let got = rnd.decode(t);
            assert!(close(&got, &sequential[t], 1e-6), "seek to {t}");
        }
    }

    #[test]
    fn sampling_gap_decodes_fewer_blocks_sublinearly() {
        let fs = frames(60);
        let enc = EncodedClip::encode(
            &fs,
            10,
            EncoderConfig {
                gop: 15,
                skip_threshold: 0,
            },
        );

        let cost_at_gap = |g: usize| -> u64 {
            let mut d = Decoder::new(&enc);
            let mut t = 0;
            while t < 60 {
                d.decode(t);
                t += g;
            }
            d.stats.blocks_processed
        };
        let c1 = cost_at_gap(1);
        let c4 = cost_at_gap(4);
        let c16 = cost_at_gap(16);
        assert!(c4 < c1, "gap 4 should cost less than gap 1");
        assert!(c16 < c4);
        // but not proportionally less: chains from keyframes still decode
        assert!(
            (c16 as f64) > (c1 as f64) / 16.0,
            "c1={c1} c16={c16}: gap-16 should pay chain overhead"
        );
    }

    #[test]
    fn decode_scaled_halves_dimensions() {
        let fs = frames(5);
        let enc = EncodedClip::encode(
            &fs,
            10,
            EncoderConfig {
                gop: 5,
                skip_threshold: 0,
            },
        );
        let mut dec = Decoder::new(&enc);
        let img = dec.decode_scaled(2, 16, 8);
        assert_eq!((img.w, img.h), (16, 8));
        // object region still brighter than background in downsampled frame
        let obj = img.mean_in(2, 2, 8, 6);
        let bg = img.mean_in(13, 0, 16, 2);
        assert!(obj > bg);
    }

    #[test]
    fn stats_count_requests() {
        let fs = frames(10);
        let enc = EncodedClip::encode(
            &fs,
            10,
            EncoderConfig {
                gop: 5,
                skip_threshold: 0,
            },
        );
        let mut dec = Decoder::new(&enc);
        dec.decode(0);
        dec.decode(1);
        dec.decode(9);
        assert_eq!(dec.stats.frames_requested, 3);
        // 0, 1, then keyframe 5 + chain 6..=9 → 2 + 5 = 7 decoded
        assert_eq!(dec.stats.frames_decoded, 7);
        assert!(dec.stats.blocks_processed > 0);
        assert_eq!(
            dec.stats.pixels_processed(),
            dec.stats.blocks_processed * 64
        );
    }
}
