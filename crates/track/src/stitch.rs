//! Track stitching: merge fragments of the same object.
//!
//! Occlusions (queued vehicles suppressing each other under NMS) and
//! detector miss-streaks fragment tracks faster than a tracker's miss
//! tolerance can bridge. Stitching is the standard post-processing
//! remedy: a track that *ends* shortly before another *starts*, at a
//! position consistent with the first track's velocity and with similar
//! appearance, is the same object.
//!
//! The paper's tracker (a full CNN appearance model) fragments less; this
//! pass compensates for our compact appearance embeddings and keeps the
//! extracted track counts faithful (see DESIGN.md §2).

use crate::types::Track;
use otif_cv::Detection;

/// Stitching thresholds.
#[derive(Debug, Clone, Copy)]
pub struct StitchConfig {
    /// Maximum frames between one track's end and another's start.
    pub max_frame_gap: usize,
    /// Position tolerance in units of the endpoint box diagonal, plus a
    /// per-elapsed-frame allowance.
    pub base_dist_diag: f32,
    /// Additional tolerance per elapsed frame, in diagonals.
    pub per_frame_dist_diag: f32,
    /// Minimum appearance cosine similarity between the endpoint
    /// detections.
    pub min_app_cos: f32,
    /// Frame bounds: endpoints within `boundary_margin` of the frame edge
    /// are genuine entries/exits, not fragments, and never stitch. `None`
    /// disables the check.
    pub frame: Option<otif_geom::Rect>,
    /// Margin (px) within which an endpoint counts as at the boundary.
    pub boundary_margin: f32,
}

impl Default for StitchConfig {
    fn default() -> Self {
        StitchConfig {
            max_frame_gap: 14,
            base_dist_diag: 1.2,
            per_frame_dist_diag: 0.35,
            min_app_cos: 0.45,
            frame: None,
            boundary_margin: 28.0,
        }
    }
}

fn appearance_cos(a: &Detection, b: &Detection) -> f32 {
    let n = a.appearance.len().min(b.appearance.len());
    if n == 0 {
        return 1.0; // no appearance signal — don't veto
    }
    let dot: f32 = (0..n).map(|i| a.appearance[i] * b.appearance[i]).sum();
    let na: f32 = a.appearance.iter().map(|x| x * x).sum::<f32>().sqrt();
    let nb: f32 = b.appearance.iter().map(|x| x * x).sum::<f32>().sqrt();
    if na * nb < 1e-6 {
        1.0
    } else {
        dot / (na * nb)
    }
}

/// Ending velocity of a track in px/frame (last two detections).
fn end_velocity(t: &Track) -> (f32, f32) {
    if t.len() < 2 {
        return (0.0, 0.0);
    }
    let (f0, d0) = &t.dets[t.len() - 2];
    let (f1, d1) = &t.dets[t.len() - 1];
    let df = (f1 - f0).max(1) as f32;
    let c0 = d0.rect.center();
    let c1 = d1.rect.center();
    ((c1.x - c0.x) / df, (c1.y - c0.y) / df)
}

/// Score a potential stitch of `b` onto the end of `a`; `None` if the
/// pair is implausible, else the prediction error in diagonals (lower is
/// better).
fn stitch_score(a: &Track, b: &Track, cfg: &StitchConfig) -> Option<f32> {
    if a.class != b.class {
        return None;
    }
    let (end_f, end_d) = a.dets.last()?;
    let (start_f, start_d) = b.dets.first()?;
    if *start_f <= *end_f || start_f - end_f > cfg.max_frame_gap {
        return None;
    }
    // endpoints at the frame boundary are real exits/entries
    if let Some(frame) = &cfg.frame {
        let m = cfg.boundary_margin;
        let interior = otif_geom::Rect::new(
            frame.x + m,
            frame.y + m,
            (frame.w - 2.0 * m).max(0.0),
            (frame.h - 2.0 * m).max(0.0),
        );
        if !interior.contains_point(&end_d.rect.center())
            || !interior.contains_point(&start_d.rect.center())
        {
            return None;
        }
    }
    let gap = (start_f - end_f) as f32;
    let (vx, vy) = end_velocity(a);
    let ec = end_d.rect.center();
    let predicted = otif_geom::Point::new(ec.x + vx * gap, ec.y + vy * gap);
    let diag = (end_d.rect.w * end_d.rect.w + end_d.rect.h * end_d.rect.h)
        .sqrt()
        .max(8.0);
    let dist = predicted.dist(&start_d.rect.center());
    let max_dist = diag * (cfg.base_dist_diag + cfg.per_frame_dist_diag * gap);
    if dist > max_dist {
        return None;
    }
    if appearance_cos(end_d, start_d) < cfg.min_app_cos {
        return None;
    }
    Some(dist / diag)
}

/// Merge track fragments. Greedy: repeatedly join the best-scoring
/// (end, start) pair until none qualifies. Track ids of merged results
/// keep the earlier fragment's id; output is sorted by id.
pub fn stitch_tracks(tracks: Vec<Track>, cfg: StitchConfig) -> Vec<Track> {
    let mut pool: Vec<Option<Track>> = tracks.into_iter().map(Some).collect();
    loop {
        // find the best stitch across all live pairs
        let mut best: Option<(usize, usize, f32)> = None;
        for i in 0..pool.len() {
            let Some(a) = &pool[i] else { continue };
            for (j, slot) in pool.iter().enumerate() {
                if i == j {
                    continue;
                }
                let Some(b) = slot else { continue };
                if let Some(s) = stitch_score(a, b, &cfg) {
                    if best.map(|(_, _, bs)| s < bs).unwrap_or(true) {
                        best = Some((i, j, s));
                    }
                }
            }
        }
        match best {
            Some((i, j, _)) => {
                let b = pool[j].take().unwrap();
                let a = pool[i].as_mut().unwrap();
                a.dets.extend(b.dets);
            }
            None => break,
        }
    }
    let mut out: Vec<Track> = pool.into_iter().flatten().collect();
    out.sort_by_key(|t| t.id);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use otif_geom::Rect;
    use otif_sim::ObjectClass;

    fn det(x: f32, y: f32, app: f32) -> Detection {
        Detection {
            rect: Rect::new(x, y, 24.0, 14.0),
            class: ObjectClass::Car,
            confidence: 0.9,
            appearance: vec![app; otif_cv::APPEARANCE_DIM],
            debug_gt: None,
        }
    }

    fn track(id: u32, frames: &[usize], x0: f32, v: f32, y: f32, app: f32) -> Track {
        let mut t = Track::new(id, ObjectClass::Car);
        for &f in frames {
            t.push(f, det(x0 + v * f as f32, y, app));
        }
        t
    }

    #[test]
    fn fragments_of_one_object_merge() {
        // object at 5 px/frame, occluded frames 10-15
        let a = track(0, &[0, 2, 4, 6, 8, 10], 0.0, 5.0, 50.0, 0.6);
        let b = track(1, &[16, 18, 20, 22], 0.0, 5.0, 50.0, 0.6);
        let out = stitch_tracks(vec![a, b], StitchConfig::default());
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].len(), 10);
        assert_eq!(out[0].first_frame(), 0);
        assert_eq!(out[0].last_frame(), 22);
        // frames strictly increasing after merge
        assert!(out[0].dets.windows(2).all(|w| w[0].0 < w[1].0));
    }

    #[test]
    fn distinct_objects_stay_separate() {
        // same timing but spatially incompatible
        let a = track(0, &[0, 2, 4, 6, 8, 10], 0.0, 5.0, 50.0, 0.6);
        let b = track(1, &[16, 18, 20], 300.0, 5.0, 180.0, 0.6);
        let out = stitch_tracks(vec![a, b], StitchConfig::default());
        assert_eq!(out.len(), 2);
    }

    #[test]
    fn appearance_mismatch_blocks_stitch() {
        let a = track(0, &[0, 2, 4, 6, 8, 10], 0.0, 5.0, 50.0, 0.9);
        let b = track(1, &[14, 16, 18], 70.0, 5.0, 50.0, -0.9);
        let out = stitch_tracks(vec![a, b], StitchConfig::default());
        assert_eq!(out.len(), 2, "opposite appearance must not merge");
    }

    #[test]
    fn long_temporal_gap_blocks_stitch() {
        let a = track(0, &[0, 2, 4], 0.0, 5.0, 50.0, 0.6);
        let b = track(1, &[40, 42, 44], 200.0, 5.0, 50.0, 0.6);
        let out = stitch_tracks(vec![a, b], StitchConfig::default());
        assert_eq!(out.len(), 2);
    }

    #[test]
    fn chain_of_three_fragments_merges_fully() {
        let a = track(0, &[0, 2, 4], 0.0, 5.0, 50.0, 0.6);
        let b = track(1, &[10, 12, 14], 0.0, 5.0, 50.0, 0.6);
        let c = track(2, &[20, 22, 24], 0.0, 5.0, 50.0, 0.6);
        let out = stitch_tracks(vec![a, b, c], StitchConfig::default());
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].len(), 9);
    }

    #[test]
    fn overlapping_time_ranges_never_merge() {
        let a = track(0, &[0, 2, 4, 6], 0.0, 5.0, 50.0, 0.6);
        let b = track(1, &[4, 6, 8], 22.0, 5.0, 50.0, 0.6);
        let out = stitch_tracks(vec![a, b], StitchConfig::default());
        assert_eq!(out.len(), 2, "temporal overlap means distinct objects");
    }

    #[test]
    fn different_classes_never_merge() {
        let a = track(0, &[0, 2, 4], 0.0, 5.0, 50.0, 0.6);
        let mut b = track(1, &[10, 12], 0.0, 5.0, 50.0, 0.6);
        b.class = ObjectClass::Pedestrian;
        let out = stitch_tracks(vec![a, b], StitchConfig::default());
        assert_eq!(out.len(), 2);
    }
}
