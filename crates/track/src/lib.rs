#![warn(missing_docs)]

//! Multi-object tracking: SORT and OTIF's recurrent reduced-rate tracker.
//!
//! Two trackers are provided:
//!
//! - [`SortTracker`] — the heuristic SORT baseline \[Bewley et al. 2016\]:
//!   a constant-velocity Kalman filter per track, IoU cost matrix, and
//!   Hungarian assignment. The paper uses SORT inside the best-accuracy
//!   configuration θ_best (§3.3) and in the "+ Sampling Rate" ablation
//!   (Table 4).
//! - [`RecurrentTracker`] — the paper's contribution (§3.4): detection
//!   features (normalized box, elapsed frames, appearance embedding) are
//!   summarized per track by a GRU; an MLP matching head scores
//!   (track-prefix, detection) pairs; Hungarian assignment on the scores.
//!   The model is trained with the paper's **gap-sampling** scheme
//!   ([`train::TrainConfig`]): track prefixes are sub-sampled at random
//!   power-of-two gaps so the model stays robust at any reduced sampling
//!   rate the tuner later picks.

pub mod kalman;
pub mod recurrent;
pub mod sort;
pub mod stitch;
pub mod train;
pub mod types;

pub use kalman::KalmanBox;
pub use recurrent::{RecurrentTracker, TrackerModel, DET_FEAT_DIM};
pub use sort::SortTracker;
pub use stitch::{stitch_tracks, StitchConfig};
pub use train::{train_tracker_model, TrainConfig};
pub use types::{Track, TrackId};
