//! A constant-velocity Kalman filter over bounding boxes, as used by SORT.
//!
//! State is `[cx, cy, s, r, vcx, vcy, vs]` where `s` is box area and `r`
//! the (assumed constant) aspect ratio, following Bewley et al. 2016. A
//! full 7×7 covariance implementation is overkill for the simulator's
//! measurement model, so this uses the standard decoupled per-component
//! scalar Kalman form (each of `cx, cy, s` is an independent
//! position+velocity filter; `r` is position-only), which preserves the
//! predict/update behaviour SORT depends on.

use otif_geom::Rect;

/// One independent position+velocity scalar filter.
#[derive(Debug, Clone, Copy)]
struct Pv {
    x: f32,
    v: f32,
    // covariance entries [p_xx, p_xv, p_vv]
    pxx: f32,
    pxv: f32,
    pvv: f32,
}

impl Pv {
    fn new(x: f32, pos_var: f32, vel_var: f32) -> Self {
        Pv {
            x,
            v: 0.0,
            pxx: pos_var,
            pxv: 0.0,
            pvv: vel_var,
        }
    }

    fn predict(&mut self, dt: f32, q_pos: f32, q_vel: f32) {
        self.x += self.v * dt;
        // P = F P Fᵀ + Q with F = [[1, dt], [0, 1]]
        let pxx = self.pxx + dt * (2.0 * self.pxv + dt * self.pvv) + q_pos;
        let pxv = self.pxv + dt * self.pvv;
        let pvv = self.pvv + q_vel;
        self.pxx = pxx;
        self.pxv = pxv;
        self.pvv = pvv;
    }

    fn update(&mut self, z: f32, r: f32) {
        let s = self.pxx + r;
        let kx = self.pxx / s;
        let kv = self.pxv / s;
        let innov = z - self.x;
        self.x += kx * innov;
        self.v += kv * innov;
        let pxx = (1.0 - kx) * self.pxx;
        let pxv = (1.0 - kx) * self.pxv;
        let pvv = self.pvv - kv * self.pxv;
        self.pxx = pxx;
        self.pxv = pxv;
        self.pvv = pvv.max(1e-6);
    }
}

/// Kalman-filtered bounding-box state.
#[derive(Debug, Clone)]
pub struct KalmanBox {
    cx: Pv,
    cy: Pv,
    s: Pv,
    r: f32,
}

impl KalmanBox {
    /// Initialize from a first observation.
    pub fn new(rect: &Rect) -> Self {
        let s = rect.area().max(1.0);
        KalmanBox {
            cx: Pv::new(rect.center().x, 10.0, 100.0),
            cy: Pv::new(rect.center().y, 10.0, 100.0),
            s: Pv::new(s, 50.0, 400.0),
            r: (rect.w / rect.h.max(1e-3)).max(1e-3),
        }
    }

    /// Advance the state `dt` frames and return the predicted box.
    pub fn predict(&mut self, dt: f32) -> Rect {
        self.cx.predict(dt, 1.0 * dt, 0.5 * dt);
        self.cy.predict(dt, 1.0 * dt, 0.5 * dt);
        self.s.predict(dt, 10.0 * dt, 5.0 * dt);
        self.rect()
    }

    /// Incorporate an observation.
    pub fn update(&mut self, rect: &Rect) {
        self.cx.update(rect.center().x, 4.0);
        self.cy.update(rect.center().y, 4.0);
        self.s.update(rect.area().max(1.0), 40.0);
        // aspect ratio tracked with simple exponential smoothing
        let obs_r = (rect.w / rect.h.max(1e-3)).max(1e-3);
        self.r = 0.7 * self.r + 0.3 * obs_r;
    }

    /// Current state as a rectangle.
    pub fn rect(&self) -> Rect {
        let s = self.s.x.max(1.0);
        let w = (s * self.r).sqrt();
        let h = (s / self.r).sqrt();
        Rect::new(self.cx.x - w / 2.0, self.cy.x - h / 2.0, w, h)
    }

    /// Estimated velocity of the box center (px/frame).
    pub fn velocity(&self) -> (f32, f32) {
        (self.cx.v, self.cy.v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn initial_rect_matches_observation() {
        let r = Rect::new(10.0, 20.0, 30.0, 15.0);
        let k = KalmanBox::new(&r);
        let got = k.rect();
        assert!(got.center().dist(&r.center()) < 1e-3);
        assert!((got.area() - r.area()).abs() < 1.0);
    }

    #[test]
    fn learns_constant_velocity() {
        // Object moving +5 px/frame in x.
        let mut k = KalmanBox::new(&Rect::new(0.0, 0.0, 10.0, 10.0));
        for i in 1..=20 {
            k.predict(1.0);
            k.update(&Rect::new(5.0 * i as f32, 0.0, 10.0, 10.0));
        }
        let (vx, vy) = k.velocity();
        assert!((vx - 5.0).abs() < 1.0, "vx = {vx}");
        assert!(vy.abs() < 0.5, "vy = {vy}");
        // prediction extrapolates
        let p = k.predict(4.0);
        let expected_x = 5.0 * 24.0 + 5.0; // center
        assert!(
            (p.center().x - expected_x).abs() < 6.0,
            "predicted {} expected {expected_x}",
            p.center().x
        );
    }

    #[test]
    fn update_pulls_toward_observation() {
        let mut k = KalmanBox::new(&Rect::new(0.0, 0.0, 10.0, 10.0));
        k.predict(1.0);
        k.update(&Rect::new(8.0, 0.0, 10.0, 10.0));
        let c = k.rect().center();
        assert!(c.x > 5.0 && c.x < 13.0, "cx = {}", c.x);
    }

    #[test]
    fn aspect_ratio_adapts() {
        let mut k = KalmanBox::new(&Rect::new(0.0, 0.0, 10.0, 10.0));
        for _ in 0..20 {
            k.predict(1.0);
            k.update(&Rect::new(0.0, 0.0, 20.0, 10.0));
        }
        let r = k.rect();
        let ratio = r.w / r.h;
        assert!((ratio - 2.0).abs() < 0.3, "ratio {ratio}");
    }

    #[test]
    fn uncertainty_grows_without_updates() {
        let mut k = KalmanBox::new(&Rect::new(0.0, 0.0, 10.0, 10.0));
        let p0 = k.cx.pxx;
        for _ in 0..10 {
            k.predict(1.0);
        }
        assert!(k.cx.pxx > p0);
    }
}
