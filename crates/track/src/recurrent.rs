//! The recurrent reduced-rate tracking model (§3.4).
//!
//! Per-detection features (normalized box geometry, elapsed frames since
//! the previous detection, appearance embedding) are fed through a GRU to
//! produce track-level features; an MLP matching head scores how likely a
//! new detection continues a given track prefix. Matching is solved with
//! the Hungarian algorithm over the score matrix.
//!
//! The `t_elapsed` input is what makes the model *reduced-rate aware*: the
//! head can scale the track's learned velocity by the actual frame gap, so
//! one model serves every sampling gap the tuner may choose.

use crate::types::{Track, TrackId};
use otif_cv::Detection;
use otif_geom::hungarian;
use otif_nn::kernels;
use otif_nn::{Activation, GruCell, Mlp, OptimKind, XavierInit};
use serde::{Deserialize, Serialize};

/// Per-detection feature dimension: 4 box + 1 elapsed + 8 appearance.
pub const DET_FEAT_DIM: usize = 5 + otif_cv::APPEARANCE_DIM;

/// GRU hidden width (track-level feature dimension).
pub const HIDDEN: usize = 24;

/// Pairwise features fed to the matching head alongside the track state
/// and candidate features: Δx, Δy, Δlog w, Δlog h, appearance cosine.
pub const PAIR_FEAT_DIM: usize = 5;

/// Build the per-detection feature vector.
///
/// `t_elapsed` is the number of frames since the previous detection of the
/// track (or 0 for a track's first detection), normalized by 16 frames.
pub fn det_features(det: &Detection, t_elapsed: usize, frame_w: f32, frame_h: f32) -> Vec<f32> {
    let mut f = Vec::with_capacity(DET_FEAT_DIM);
    det_features_into(det, t_elapsed, frame_w, frame_h, &mut f);
    f
}

/// [`det_features`] into a caller-owned buffer (cleared and refilled),
/// for allocation-free scoring loops.
pub fn det_features_into(
    det: &Detection,
    t_elapsed: usize,
    frame_w: f32,
    frame_h: f32,
    f: &mut Vec<f32>,
) {
    let c = det.rect.center();
    f.clear();
    f.push(c.x / frame_w);
    f.push(c.y / frame_h);
    f.push(det.rect.w / frame_w);
    f.push(det.rect.h / frame_h);
    f.push(t_elapsed as f32 / 16.0);
    for i in 0..otif_cv::APPEARANCE_DIM {
        f.push(det.appearance.get(i).copied().unwrap_or(0.0));
    }
}

fn pair_features(
    last: &Detection,
    cand: &Detection,
    frame_w: f32,
    frame_h: f32,
) -> [f32; PAIR_FEAT_DIM] {
    let lc = last.rect.center();
    let cc = cand.rect.center();
    let dx = (cc.x - lc.x) / frame_w * 8.0;
    let dy = (cc.y - lc.y) / frame_h * 8.0;
    let dlw = (cand.rect.w.max(1.0) / last.rect.w.max(1.0)).ln();
    let dlh = (cand.rect.h.max(1.0) / last.rect.h.max(1.0)).ln();
    let cos = {
        let a = &last.appearance;
        let b = &cand.appearance;
        let n = a.len().min(b.len());
        if n == 0 {
            0.0
        } else {
            let dot: f32 = (0..n).map(|i| a[i] * b[i]).sum();
            let na: f32 = a.iter().map(|x| x * x).sum::<f32>().sqrt();
            let nb: f32 = b.iter().map(|x| x * x).sum::<f32>().sqrt();
            if na * nb > 1e-6 {
                dot / (na * nb)
            } else {
                0.0
            }
        }
    };
    [dx, dy, dlw, dlh, cos]
}

/// The trainable tracker model: GRU over detection features + matching
/// head over (track state, candidate, pairwise) features.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TrackerModel {
    /// Track-prefix summarizer.
    pub gru: GruCell,
    /// Matching head producing logits.
    pub head: Mlp,
    /// Frame width used for feature normalization.
    pub frame_w: f32,
    /// Frame height used for feature normalization.
    pub frame_h: f32,
}

impl TrackerModel {
    /// Initialize an untrained model.
    pub fn new(frame_w: f32, frame_h: f32, seed: u64) -> Self {
        let mut init = XavierInit::new(seed);
        let gru = GruCell::new(DET_FEAT_DIM, HIDDEN, &mut init);
        let head = Mlp::new(
            &[HIDDEN + DET_FEAT_DIM + PAIR_FEAT_DIM, 32, 1],
            Activation::Relu,
            Activation::Linear,
            &mut init,
        );
        TrackerModel {
            gru,
            head,
            frame_w,
            frame_h,
        }
    }

    fn head_input(&self, h: &[f32], cand_feat: &[f32], pair: &[f32; PAIR_FEAT_DIM]) -> Vec<f32> {
        let mut x = Vec::with_capacity(HIDDEN + DET_FEAT_DIM + PAIR_FEAT_DIM);
        x.extend_from_slice(h);
        x.extend_from_slice(cand_feat);
        x.extend_from_slice(pair);
        x
    }

    /// Inference: matching logit for (track state, candidate detection).
    ///
    /// This is the hot loop of reduced-rate tracking (one call per
    /// (detection, active track) pair per processed frame); the feature
    /// vector, head input and head activations all live in the
    /// thread-local scratch pool, so a call performs zero heap
    /// allocations after warm-up.
    pub fn score(
        &self,
        h: &[f32],
        last_det: &Detection,
        cand: &Detection,
        t_elapsed: usize,
    ) -> f32 {
        let mut cf = kernels::take_buf(0);
        det_features_into(cand, t_elapsed, self.frame_w, self.frame_h, &mut cf);
        let pf = pair_features(last_det, cand, self.frame_w, self.frame_h);
        let mut x = kernels::take_buf(0);
        x.clear();
        x.extend_from_slice(h);
        x.extend_from_slice(&cf);
        x.extend_from_slice(&pf);
        let mut y = kernels::take_buf(0);
        self.head.infer_into(&x, &mut y);
        let logit = y[0];
        kernels::put_buf(cf);
        kernels::put_buf(x);
        kernels::put_buf(y);
        logit
    }

    /// Matching probability: sigmoid of the learned logit, gated by
    /// spatial plausibility.
    ///
    /// The gate zeroes candidates farther from the track's last position
    /// than an object could plausibly travel in `t_elapsed` frames
    /// (relative to its box size). This is a standard assignment-pruning
    /// step; it keeps the matcher robust where the learned score is
    /// uncertain without constraining legitimate reduced-rate motion.
    pub fn match_prob(
        &self,
        h: &[f32],
        last_det: &Detection,
        cand: &Detection,
        t_elapsed: usize,
    ) -> f32 {
        let diag = (last_det.rect.w * last_det.rect.w + last_det.rect.h * last_det.rect.h)
            .sqrt()
            .max(8.0);
        let max_dist = diag * (1.5 + 0.6 * t_elapsed as f32);
        let dist = last_det.rect.center().dist(&cand.rect.center());
        if dist > max_dist {
            return 0.0;
        }
        otif_nn::sigmoid(self.score(h, last_det, cand, t_elapsed))
    }

    /// Advance a track's hidden state with a newly appended detection.
    pub fn advance(&self, h: &[f32], det: &Detection, t_elapsed: usize) -> Vec<f32> {
        let mut out = Vec::with_capacity(h.len());
        self.advance_into(h, det, t_elapsed, &mut out);
        out
    }

    /// [`Self::advance`] into a caller-owned state buffer; together with
    /// the GRU's scratch-pooled gate temporaries the step performs zero
    /// heap allocations after warm-up.
    pub fn advance_into(&self, h: &[f32], det: &Detection, t_elapsed: usize, out: &mut Vec<f32>) {
        let mut f = kernels::take_buf(0);
        det_features_into(det, t_elapsed, self.frame_w, self.frame_h, &mut f);
        self.gru.infer_into(&f, h, out);
        kernels::put_buf(f);
    }

    /// Training: run the GRU over a prefix (caching), then score each
    /// candidate against the final state with BCE targets, backprop, and
    /// return the mean loss. One optimizer step per call when `step`.
    #[allow(clippy::too_many_arguments)]
    pub fn train_example(
        &mut self,
        prefix: &[(usize, Detection)],
        candidates: &[(&Detection, usize, bool)], // (det, t_elapsed, is_match)
        lr: f32,
        step: bool,
    ) -> f32 {
        // GRU forward over the prefix.
        let mut feats = Vec::with_capacity(prefix.len());
        let mut prev_frame: Option<usize> = None;
        for (f, d) in prefix {
            let te = prev_frame.map(|p| f - p).unwrap_or(0);
            feats.push(det_features(d, te, self.frame_w, self.frame_h));
            prev_frame = Some(*f);
        }
        let h = self.gru.forward_sequence(&feats);
        let last_det = &prefix.last().unwrap().1;

        let mut grad_h = vec![0.0; HIDDEN];
        let mut total_loss = 0.0;
        for (cand, te, is_match) in candidates {
            let cf = det_features(cand, *te, self.frame_w, self.frame_h);
            let pf = pair_features(last_det, cand, self.frame_w, self.frame_h);
            let x = self.head_input(&h, &cf, &pf);
            let logit = self.head.forward(&x)[0];
            let target = if *is_match { 1.0 } else { 0.0 };
            total_loss += otif_nn::bce_with_logits(&[logit], &[target]);
            let g = otif_nn::bce_with_logits_grad(&[logit], &[target]);
            let gx = self.head.backward(&g);
            for i in 0..HIDDEN {
                grad_h[i] += gx[i];
            }
        }
        self.gru.backward_sequence(&grad_h);
        if step {
            self.gru.step(lr, OptimKind::Adam);
            self.head.step(lr, OptimKind::Adam);
        }
        total_loss / candidates.len().max(1) as f32
    }
}

struct ActiveRt {
    track: Track,
    h: Vec<f32>,
    last_frame: usize,
    misses: u32,
}

/// Online tracker driving [`TrackerModel`] over a frame stream.
pub struct RecurrentTracker {
    model: TrackerModel,
    /// Minimum matching probability to accept an assignment.
    pub match_threshold: f32,
    /// Processed frames a track survives unmatched.
    pub max_misses: u32,
    active: Vec<ActiveRt>,
    done: Vec<Track>,
    next_id: TrackId,
}

impl RecurrentTracker {
    /// Build a tracker around a (trained) model.
    pub fn new(model: TrackerModel) -> Self {
        RecurrentTracker {
            model,
            match_threshold: 0.5,
            max_misses: 4,
            active: Vec::new(),
            done: Vec::new(),
            next_id: 0,
        }
    }

    /// Number of active track prefixes.
    pub fn num_active(&self) -> usize {
        self.active.len()
    }

    /// The best matching probability of a detection against any active
    /// track, without mutating tracker state. Used by variable-rate
    /// controllers to gauge matching confidence.
    pub fn best_match_prob(&self, frame: usize, det: &Detection) -> f32 {
        self.active
            .iter()
            .map(|t| {
                let te = frame.saturating_sub(t.last_frame);
                let last = &t.track.dets.last().unwrap().1;
                self.model.match_prob(&t.h, last, det, te)
            })
            .fold(0.0f32, f32::max)
    }

    /// Process the detections of `frame` (frames fed in increasing order,
    /// any gaps allowed).
    pub fn step(&mut self, frame: usize, dets: Vec<Detection>) {
        let assignment = if !dets.is_empty() && !self.active.is_empty() {
            let probs: Vec<Vec<f32>> = dets
                .iter()
                .map(|d| {
                    self.active
                        .iter()
                        .map(|t| {
                            let te = frame - t.last_frame;
                            let last = &t.track.dets.last().unwrap().1;
                            self.model.match_prob(&t.h, last, d, te)
                        })
                        .collect()
                })
                .collect();
            let cost: Vec<Vec<f32>> = probs
                .iter()
                .map(|row| row.iter().map(|p| 1.0 - p).collect())
                .collect();
            let assign = hungarian(&cost);
            assign
                .into_iter()
                .enumerate()
                .map(|(di, a)| a.filter(|&ti| probs[di][ti] >= self.match_threshold))
                .collect()
        } else {
            vec![None; dets.len()]
        };

        let mut matched = vec![false; self.active.len()];
        let mut unmatched = Vec::new();
        for (di, det) in dets.into_iter().enumerate() {
            match assignment[di] {
                Some(ti) => {
                    let t = &mut self.active[ti];
                    let te = frame - t.last_frame;
                    let mut next_h = kernels::take_buf(0);
                    self.model.advance_into(&t.h, &det, te, &mut next_h);
                    std::mem::swap(&mut t.h, &mut next_h);
                    kernels::put_buf(next_h);
                    t.track.push(frame, det);
                    t.last_frame = frame;
                    t.misses = 0;
                    matched[ti] = true;
                }
                None => unmatched.push(det),
            }
        }

        let max_misses = self.max_misses;
        let mut idx = 0;
        self.active.retain_mut(|t| {
            let was = matched[idx];
            idx += 1;
            if was {
                return true;
            }
            t.misses += 1;
            if t.misses > max_misses {
                self.done.push(std::mem::replace(
                    &mut t.track,
                    Track::new(0, otif_sim::ObjectClass::Car),
                ));
                false
            } else {
                true
            }
        });

        for det in unmatched {
            let id = self.next_id;
            self.next_id += 1;
            let h = self.model.advance(&self.model.gru.zero_state(), &det, 0);
            let mut track = Track::new(id, det.class);
            track.push(frame, det);
            self.active.push(ActiveRt {
                track,
                h,
                last_frame: frame,
                misses: 0,
            });
        }
    }

    /// Flush remaining tracks; prune single-detection tracks (§3.4).
    pub fn finish(mut self) -> Vec<Track> {
        for t in self.active {
            self.done.push(t.track);
        }
        self.done.retain(|t| t.len() >= 2);
        self.done.sort_by_key(|t| t.id);
        self.done
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use otif_geom::Rect;
    use otif_sim::ObjectClass;

    fn det(x: f32, y: f32, app: f32) -> Detection {
        Detection {
            rect: Rect::new(x, y, 20.0, 12.0),
            class: ObjectClass::Car,
            confidence: 0.9,
            appearance: vec![app; otif_cv::APPEARANCE_DIM],
            debug_gt: None,
        }
    }

    #[test]
    fn det_features_dimension_and_normalization() {
        let d = det(100.0, 50.0, 0.5);
        let f = det_features(&d, 8, 200.0, 100.0);
        assert_eq!(f.len(), DET_FEAT_DIM);
        assert!((f[0] - 0.55).abs() < 1e-5); // (100+10)/200
        assert!((f[4] - 0.5).abs() < 1e-5); // 8/16
    }

    #[test]
    fn untrained_model_runs_end_to_end() {
        let model = TrackerModel::new(320.0, 192.0, 3);
        let mut t = RecurrentTracker::new(model);
        t.match_threshold = 0.0; // untrained: accept best assignment
        for f in 0..8 {
            t.step(f, vec![det(f as f32 * 5.0, 50.0, 0.2)]);
        }
        let tracks = t.finish();
        assert_eq!(tracks.len(), 1);
        assert_eq!(tracks[0].len(), 8);
    }

    #[test]
    fn train_example_reduces_loss() {
        let mut model = TrackerModel::new(320.0, 192.0, 7);
        // A track moving right; positive = continuation, negative = a
        // detection far away with different appearance.
        let prefix: Vec<(usize, Detection)> = (0..4)
            .map(|i| (i * 4, det(10.0 + i as f32 * 20.0, 50.0, 0.8)))
            .collect();
        let pos = det(10.0 + 4.0 * 20.0, 50.0, 0.8);
        let neg = det(250.0, 150.0, -0.7);
        let mut first = None;
        let mut last = 0.0;
        for _ in 0..200 {
            let loss =
                model.train_example(&prefix, &[(&pos, 4, true), (&neg, 4, false)], 0.01, true);
            if first.is_none() {
                first = Some(loss);
            }
            last = loss;
        }
        assert!(
            last < first.unwrap() * 0.5,
            "loss {} -> {last}",
            first.unwrap()
        );
        // after training, the positive should outscore the negative
        let mut h = model.gru.zero_state();
        let mut prev = None;
        for (f, d) in &prefix {
            let te = prev.map(|p: usize| f - p).unwrap_or(0);
            h = model.advance(&h, d, te);
            prev = Some(*f);
        }
        let last_det = &prefix.last().unwrap().1;
        let p_pos = model.match_prob(&h, last_det, &pos, 4);
        let p_neg = model.match_prob(&h, last_det, &neg, 4);
        assert!(p_pos > p_neg, "pos {p_pos} vs neg {p_neg}");
    }

    #[test]
    fn unmatched_detections_start_new_tracks() {
        let model = TrackerModel::new(320.0, 192.0, 3);
        let mut t = RecurrentTracker::new(model);
        t.match_threshold = 1.1; // nothing ever matches
        t.step(0, vec![det(0.0, 0.0, 0.0)]);
        t.step(1, vec![det(5.0, 0.0, 0.0)]);
        assert_eq!(t.num_active(), 2, "each detection starts a track");
    }

    #[test]
    fn stale_tracks_terminate() {
        let model = TrackerModel::new(320.0, 192.0, 3);
        let mut t = RecurrentTracker::new(model);
        t.match_threshold = 0.0;
        t.step(0, vec![det(0.0, 0.0, 0.0)]);
        t.step(1, vec![det(5.0, 0.0, 0.0)]);
        for f in 2..8 {
            t.step(f, vec![]);
        }
        assert_eq!(t.num_active(), 0);
        let tracks = t.finish();
        assert_eq!(tracks.len(), 1);
    }
}
