//! Gap-sampled training of the recurrent tracker (§3.4, "Training").
//!
//! Ground-truth labels are unavailable in the paper's setting, so training
//! examples are drawn from tracks computed by the best-accuracy
//! configuration θ_best. To make the model robust at reduced sampling
//! rates, each example sub-samples a source track at a random power-of-two
//! gap `g ∈ G = ⟨1, 2, 4, …, 2^n⟩`, starting from its first detection and
//! requiring each following detection to be at least `g` frames after the
//! previous one.

use crate::recurrent::TrackerModel;
use crate::types::Track;
use otif_cv::Detection;
use rand::Rng;
use rand_chacha::rand_core::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Tracker training hyper-parameters.
#[derive(Debug, Clone, Copy)]
pub struct TrainConfig {
    /// `n` in `G = ⟨1, 2, …, 2^n⟩`: the largest gap exponent the model
    /// must handle.
    pub max_gap_pow: u32,
    /// Number of gradient steps.
    pub steps: usize,
    /// Examples accumulated per optimizer step.
    pub batch: usize,
    /// Adam learning rate.
    pub lr: f32,
    /// Negative candidates sampled per positive.
    pub negatives: usize,
    /// Seed for sampling and initialization.
    pub seed: u64,
}

impl Default for TrainConfig {
    fn default() -> Self {
        TrainConfig {
            max_gap_pow: 5,
            steps: 400,
            batch: 8,
            lr: 0.01,
            negatives: 3,
            seed: 0,
        }
    }
}

/// Sub-sample a track at gap `g`: starting from the first detection, keep
/// each detection at least `g` frames after the previously kept one.
pub fn subsample_track(track: &Track, g: usize) -> Vec<(usize, Detection)> {
    let mut out: Vec<(usize, Detection)> = Vec::new();
    for (f, d) in &track.dets {
        match out.last() {
            None => out.push((*f, d.clone())),
            Some((lf, _)) if f - lf >= g => out.push((*f, d.clone())),
            _ => {}
        }
    }
    out
}

/// Train a [`TrackerModel`] from per-clip track sets (tracks computed by
/// θ_best on the training split). Returns the trained model and the mean
/// loss of the final 10 % of steps (for diagnostics).
pub fn train_tracker_model(
    tracks_by_clip: &[Vec<Track>],
    frame_w: f32,
    frame_h: f32,
    cfg: TrainConfig,
) -> (TrackerModel, f32) {
    let mut model = TrackerModel::new(frame_w, frame_h, cfg.seed ^ 0x7ac4);
    let mut rng = ChaCha8Rng::seed_from_u64(cfg.seed);

    // Usable (clip, track) pairs: tracks long enough to split.
    let pool: Vec<(usize, usize)> = tracks_by_clip
        .iter()
        .enumerate()
        .flat_map(|(ci, ts)| {
            ts.iter()
                .enumerate()
                .filter(|(_, t)| t.len() >= 3)
                .map(move |(ti, _)| (ci, ti))
        })
        .collect();
    if pool.is_empty() {
        return (model, f32::NAN);
    }

    let mut tail_losses = Vec::new();
    let tail_from = cfg.steps.saturating_sub(cfg.steps / 10).max(1);
    for step in 0..cfg.steps {
        let mut loss_acc = 0.0;
        let mut n_ex = 0;
        for b in 0..cfg.batch {
            let (ci, ti) = pool[rng.gen_range(0..pool.len())];
            let track = &tracks_by_clip[ci][ti];
            let g = 1usize << rng.gen_range(0..=cfg.max_gap_pow);
            let sub = subsample_track(track, g);
            if sub.len() < 2 {
                continue;
            }
            // Split into prefix + positive continuation.
            let split = rng.gen_range(1..sub.len());
            let prefix = &sub[..split];
            let (pos_frame, pos_det) = &sub[split];
            let last_frame = prefix.last().unwrap().0;
            let te = pos_frame - last_frame;

            // Negatives: detections from *other* tracks in the same clip,
            // preferring ones temporally close to the positive frame (the
            // distractors the tracker actually faces).
            let mut cands: Vec<(&Detection, usize, bool)> = vec![(pos_det, te, true)];
            let others: Vec<&Track> = tracks_by_clip[ci]
                .iter()
                .filter(|t| t.id != track.id && !t.is_empty())
                .collect();
            for _ in 0..cfg.negatives {
                if others.is_empty() {
                    break;
                }
                let ot = others[rng.gen_range(0..others.len())];
                // detection nearest in time to pos_frame
                let idx = ot
                    .dets
                    .partition_point(|(f, _)| f < pos_frame)
                    .min(ot.dets.len() - 1);
                let (_, nd) = &ot.dets[idx];
                cands.push((nd, te, false));
            }

            let do_step = b + 1 == cfg.batch;
            loss_acc += model.train_example(prefix, &cands, cfg.lr, do_step);
            n_ex += 1;
        }
        if n_ex > 0 && step >= tail_from {
            tail_losses.push(loss_acc / n_ex as f32);
        }
    }
    let final_loss = if tail_losses.is_empty() {
        f32::NAN
    } else {
        tail_losses.iter().sum::<f32>() / tail_losses.len() as f32
    };
    (model, final_loss)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recurrent::RecurrentTracker;
    use otif_geom::Rect;
    use otif_sim::ObjectClass;

    fn mk_det(x: f32, y: f32, sig: f32) -> Detection {
        Detection {
            rect: Rect::new(x, y, 24.0, 14.0),
            class: ObjectClass::Car,
            confidence: 0.9,
            appearance: (0..otif_cv::APPEARANCE_DIM)
                .map(|i| (sig + i as f32 * 0.13).sin())
                .collect(),
            debug_gt: None,
        }
    }

    /// Synthetic "θ_best" tracks: K objects per clip moving at distinct
    /// speeds/rows.
    fn synthetic_clips(n_clips: usize) -> Vec<Vec<Track>> {
        (0..n_clips)
            .map(|c| {
                (0..4u32)
                    .map(|k| {
                        let mut t = Track::new(k, ObjectClass::Car);
                        let y = 30.0 + k as f32 * 40.0;
                        let v = 3.0 + k as f32 + c as f32 * 0.3;
                        let sig = k as f32 * 1.7 + c as f32;
                        for f in 0..40usize {
                            t.push(f, mk_det(5.0 + v * f as f32, y, sig));
                        }
                        t
                    })
                    .collect()
            })
            .collect()
    }

    #[test]
    fn subsample_respects_gap() {
        let clips = synthetic_clips(1);
        let t = &clips[0][0];
        let sub = subsample_track(t, 8);
        assert!(sub.len() >= 4);
        for w in sub.windows(2) {
            assert!(w[1].0 - w[0].0 >= 8);
        }
        // gap 1 keeps everything
        assert_eq!(subsample_track(t, 1).len(), t.len());
    }

    #[test]
    fn training_learns_and_tracks_at_high_gap() {
        let clips = synthetic_clips(3);
        let cfg = TrainConfig {
            steps: 150,
            max_gap_pow: 4,
            seed: 5,
            ..TrainConfig::default()
        };
        let (model, final_loss) = train_tracker_model(&clips, 320.0, 192.0, cfg);
        assert!(final_loss < 0.45, "final loss {final_loss}");

        // Track two objects sampled at gap 8 (large inter-frame motion).
        let mut tracker = RecurrentTracker::new(model);
        let mut f = 0usize;
        while f < 40 {
            let dets = vec![
                mk_det(5.0 + 3.0 * f as f32, 30.0, 0.0),
                mk_det(5.0 + 6.0 * f as f32, 150.0, 5.1),
            ];
            tracker.step(f, dets);
            f += 8;
        }
        let tracks = tracker.finish();
        assert_eq!(tracks.len(), 2, "two objects at gap 8 → two tracks");
        assert!(tracks.iter().all(|t| t.len() == 5));
        // no identity switches: y stays on one row per track
        for t in &tracks {
            let ys: Vec<f32> = t.dets.iter().map(|(_, d)| d.rect.y).collect();
            assert!(ys.windows(2).all(|w| (w[0] - w[1]).abs() < 1.0));
        }
    }

    #[test]
    fn empty_track_pool_returns_untrained_model() {
        let (model, loss) = train_tracker_model(&[], 320.0, 192.0, TrainConfig::default());
        assert!(loss.is_nan());
        // model still usable
        let d = mk_det(0.0, 0.0, 0.0);
        let h = model.advance(&model.gru.zero_state(), &d, 0);
        assert_eq!(h.len(), crate::recurrent::HIDDEN);
    }
}
