//! SORT: Simple Online and Realtime Tracking (Bewley et al. 2016).
//!
//! Kalman prediction + IoU cost + Hungarian assignment. The paper uses
//! SORT as the tracker inside θ_best (§3.3, because the recurrent model is
//! not yet trained at that stage) and as the "+ Sampling Rate" ablation
//! tracker in Table 4.

use crate::kalman::KalmanBox;
use crate::types::{Track, TrackId};
use otif_cv::Detection;
use otif_geom::hungarian;

struct ActiveTrack {
    track: Track,
    kf: KalmanBox,
    last_processed_frame: usize,
    misses: u32,
}

/// SORT tracker configuration.
#[derive(Debug, Clone, Copy)]
pub struct SortConfig {
    /// Minimum IoU between the Kalman-predicted box and a detection for a
    /// match to be accepted.
    pub iou_threshold: f32,
    /// Number of consecutive processed frames a track may go unmatched
    /// before it is terminated.
    pub max_misses: u32,
}

impl Default for SortConfig {
    fn default() -> Self {
        SortConfig {
            iou_threshold: 0.15,
            max_misses: 4,
        }
    }
}

/// The SORT tracker. Feed it frames (possibly at a reduced sampling rate)
/// via [`SortTracker::step`]; retrieve completed tracks with
/// [`SortTracker::finish`].
pub struct SortTracker {
    config: SortConfig,
    active: Vec<ActiveTrack>,
    done: Vec<Track>,
    next_id: TrackId,
}

impl Default for SortTracker {
    fn default() -> Self {
        SortTracker::new(SortConfig::default())
    }
}

impl SortTracker {
    /// Build a tracker with the given configuration.
    pub fn new(config: SortConfig) -> Self {
        SortTracker {
            config,
            active: Vec::new(),
            done: Vec::new(),
            next_id: 0,
        }
    }

    /// Number of active tracks.
    pub fn num_active(&self) -> usize {
        self.active.len()
    }

    /// Process the detections of frame `frame` (frames must be fed in
    /// increasing order; gaps are handled by Kalman extrapolation).
    pub fn step(&mut self, frame: usize, dets: Vec<Detection>) {
        // Predict each active track to the current frame.
        let predicted: Vec<otif_geom::Rect> = self
            .active
            .iter_mut()
            .map(|t| {
                let dt = (frame - t.last_processed_frame).max(1) as f32;
                t.kf.predict(dt)
            })
            .collect();

        // IoU cost matrix (rows = detections, cols = active tracks).
        let assignment = if !dets.is_empty() && !self.active.is_empty() {
            let cost: Vec<Vec<f32>> = dets
                .iter()
                .map(|d| predicted.iter().map(|p| 1.0 - d.rect.iou(p)).collect())
                .collect();
            hungarian(&cost)
        } else {
            vec![None; dets.len()]
        };

        let mut matched_tracks = vec![false; self.active.len()];
        let mut unmatched_dets = Vec::new();
        for (di, det) in dets.into_iter().enumerate() {
            let ti = assignment[di]
                .filter(|&ti| det.rect.iou(&predicted[ti]) >= self.config.iou_threshold);
            match ti {
                Some(ti) => {
                    let t = &mut self.active[ti];
                    t.kf.update(&det.rect);
                    t.track.push(frame, det);
                    t.last_processed_frame = frame;
                    t.misses = 0;
                    matched_tracks[ti] = true;
                }
                None => unmatched_dets.push(det),
            }
        }

        // Age out unmatched tracks.
        let max_misses = self.config.max_misses;
        let mut idx = 0;
        self.active.retain_mut(|t| {
            let was_matched = matched_tracks[idx];
            idx += 1;
            if was_matched {
                return true;
            }
            t.misses += 1;
            t.last_processed_frame = frame;
            if t.misses > max_misses {
                self.done.push(std::mem::replace(
                    &mut t.track,
                    Track::new(0, otif_sim::ObjectClass::Car),
                ));
                false
            } else {
                true
            }
        });

        // New tracks from unmatched detections.
        for det in unmatched_dets {
            let id = self.next_id;
            self.next_id += 1;
            let mut track = Track::new(id, det.class);
            let kf = KalmanBox::new(&det.rect);
            track.push(frame, det);
            self.active.push(ActiveTrack {
                track,
                kf,
                last_processed_frame: frame,
                misses: 0,
            });
        }
    }

    /// Flush all remaining tracks and return the complete set, pruning
    /// single-detection tracks (likely detector noise, §3.4).
    pub fn finish(mut self) -> Vec<Track> {
        for t in self.active {
            self.done.push(t.track);
        }
        self.done.retain(|t| t.len() >= 2);
        self.done.sort_by_key(|t| t.id);
        self.done
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use otif_geom::Rect;
    use otif_sim::ObjectClass;

    fn det(x: f32, y: f32) -> Detection {
        Detection {
            rect: Rect::new(x, y, 20.0, 12.0),
            class: ObjectClass::Car,
            confidence: 0.9,
            appearance: vec![],
            debug_gt: None,
        }
    }

    #[test]
    fn single_object_yields_single_track() {
        let mut t = SortTracker::default();
        for f in 0..10 {
            t.step(f, vec![det(f as f32 * 5.0, 50.0)]);
        }
        let tracks = t.finish();
        assert_eq!(tracks.len(), 1);
        assert_eq!(tracks[0].len(), 10);
    }

    #[test]
    fn two_parallel_objects_stay_separate() {
        let mut t = SortTracker::default();
        for f in 0..10 {
            t.step(
                f,
                vec![det(f as f32 * 5.0, 20.0), det(f as f32 * 5.0, 120.0)],
            );
        }
        let tracks = t.finish();
        assert_eq!(tracks.len(), 2);
        assert!(tracks.iter().all(|t| t.len() == 10));
        // tracks do not mix rows
        for tr in &tracks {
            let ys: Vec<f32> = tr.dets.iter().map(|(_, d)| d.rect.y).collect();
            assert!(ys.windows(2).all(|w| (w[0] - w[1]).abs() < 1.0));
        }
    }

    #[test]
    fn missed_frame_bridged_by_prediction() {
        let mut t = SortTracker::default();
        for f in 0..10 {
            if f == 5 {
                t.step(f, vec![]); // detector missed the object
            } else {
                t.step(f, vec![det(f as f32 * 5.0, 50.0)]);
            }
        }
        let tracks = t.finish();
        assert_eq!(tracks.len(), 1, "miss within max_misses must not split");
        assert_eq!(tracks[0].len(), 9);
    }

    #[test]
    fn long_absence_terminates_track() {
        let mut t = SortTracker::default();
        for f in 0..5 {
            t.step(f, vec![det(f as f32 * 5.0, 50.0)]);
        }
        for f in 5..12 {
            t.step(f, vec![]);
        }
        for f in 12..17 {
            t.step(f, vec![det(200.0 + f as f32 * 5.0, 50.0)]);
        }
        let tracks = t.finish();
        assert_eq!(tracks.len(), 2, "gap beyond max_misses splits tracks");
    }

    #[test]
    fn reduced_rate_tracking_with_kalman_extrapolation() {
        // Feed every 4th frame; object moves 2 px/frame = 8 px/step, small
        // enough for the first IoU association, after which the Kalman
        // velocity estimate carries the matches.
        let mut t = SortTracker::default();
        let mut f = 0;
        while f < 40 {
            t.step(f, vec![det(f as f32 * 2.0, 50.0)]);
            f += 4;
        }
        let tracks = t.finish();
        assert_eq!(tracks.len(), 1, "Kalman should bridge 8 px steps");
        assert_eq!(tracks[0].len(), 10);
    }

    #[test]
    fn sort_fragments_at_large_inter_frame_motion() {
        // The failure mode that motivates the recurrent tracker (§3.4):
        // displacement per processed frame exceeds the box size, IoU
        // association never fires, and SORT shatters the track.
        let mut t = SortTracker::default();
        let mut f = 0;
        while f < 40 {
            t.step(f, vec![det(f as f32 * 8.0, 50.0)]); // 32 px per step
            f += 4;
        }
        let tracks = t.finish();
        assert!(
            tracks.len() != 1,
            "expected SORT to fragment at 32 px steps"
        );
    }

    #[test]
    fn single_detection_tracks_pruned() {
        let mut t = SortTracker::default();
        t.step(0, vec![det(0.0, 0.0), det(300.0, 300.0)]);
        t.step(1, vec![det(5.0, 0.0)]);
        t.step(2, vec![det(10.0, 0.0)]);
        let tracks = t.finish();
        assert_eq!(tracks.len(), 1, "length-1 track must be pruned");
    }
}
