//! Track data structures: the output format of every tracker and the
//! input format of every query.

use otif_cv::Detection;
use otif_geom::{Point, Polyline};
use otif_sim::ObjectClass;
use serde::{Deserialize, Serialize};

/// Identifier of an extracted track (unique within a clip).
pub type TrackId = u32;

/// An extracted object track: a category plus a time-ordered sequence of
/// detections — `s_i = (C_k, ⟨d_1, …, d_m⟩)` in the paper's notation.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Track {
    /// Track identifier.
    pub id: TrackId,
    /// Object category of the track.
    pub class: ObjectClass,
    /// `(frame index, detection)`, strictly increasing in frame index.
    pub dets: Vec<(usize, Detection)>,
}

impl Track {
    /// Create an empty track.
    pub fn new(id: TrackId, class: ObjectClass) -> Self {
        Track {
            id,
            class,
            dets: Vec::new(),
        }
    }

    /// Number of detections.
    pub fn len(&self) -> usize {
        self.dets.len()
    }

    /// Whether the track holds no detections.
    pub fn is_empty(&self) -> bool {
        self.dets.is_empty()
    }

    /// Frame of the first detection.
    pub fn first_frame(&self) -> usize {
        self.dets.first().map(|(f, _)| *f).unwrap_or(0)
    }

    /// Frame of the last detection.
    pub fn last_frame(&self) -> usize {
        self.dets.last().map(|(f, _)| *f).unwrap_or(0)
    }

    /// Whether the track has a detection at (or spans) the given frame.
    pub fn alive_at(&self, frame: usize) -> bool {
        !self.is_empty() && self.first_frame() <= frame && frame <= self.last_frame()
    }

    /// Interpolated center position at an arbitrary frame within the
    /// track's span.
    pub fn center_at(&self, frame: usize) -> Option<Point> {
        if !self.alive_at(frame) {
            return None;
        }
        // find surrounding detections
        let pos = self.dets.partition_point(|(f, _)| *f <= frame);
        if pos > 0 && self.dets[pos - 1].0 == frame {
            return Some(self.dets[pos - 1].1.rect.center());
        }
        let (f0, d0) = &self.dets[pos - 1];
        let (f1, d1) = &self.dets[pos];
        let t = (frame - f0) as f32 / (f1 - f0) as f32;
        Some(d0.rect.center().lerp(&d1.rect.center(), t))
    }

    /// Track centers as a polyline (for path classification and
    /// refinement clustering).
    pub fn center_polyline(&self) -> Polyline {
        Polyline::new(self.dets.iter().map(|(_, d)| d.rect.center()).collect())
    }

    /// Mean speed in px/frame over the track.
    pub fn mean_speed(&self) -> f32 {
        if self.dets.len() < 2 {
            return 0.0;
        }
        let dist = self.center_polyline().length();
        let frames = (self.last_frame() - self.first_frame()) as f32;
        if frames > 0.0 {
            dist / frames
        } else {
            0.0
        }
    }

    /// Per-interval speeds (px/s) between consecutive detections, given
    /// the clip frame rate. Used by the hard-braking query.
    pub fn interval_speeds(&self, fps: f32) -> Vec<f32> {
        self.dets
            .windows(2)
            .map(|w| {
                let (f0, d0) = &w[0];
                let (f1, d1) = &w[1];
                let dt = (*f1 - *f0) as f32 / fps;
                if dt > 0.0 {
                    d0.rect.center().dist(&d1.rect.center()) / dt
                } else {
                    0.0
                }
            })
            .collect()
    }

    /// Append a detection (frames must increase).
    pub fn push(&mut self, frame: usize, det: Detection) {
        debug_assert!(
            self.dets.last().map(|(f, _)| *f < frame).unwrap_or(true),
            "detections must be appended in frame order"
        );
        self.dets.push((frame, det));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use otif_geom::Rect;

    fn det(x: f32, y: f32) -> Detection {
        Detection {
            rect: Rect::new(x, y, 10.0, 10.0),
            class: ObjectClass::Car,
            confidence: 0.9,
            appearance: vec![],
            debug_gt: None,
        }
    }

    fn track() -> Track {
        let mut t = Track::new(1, ObjectClass::Car);
        t.push(10, det(0.0, 0.0));
        t.push(14, det(40.0, 0.0));
        t.push(18, det(80.0, 0.0));
        t
    }

    #[test]
    fn span_and_alive() {
        let t = track();
        assert_eq!(t.first_frame(), 10);
        assert_eq!(t.last_frame(), 18);
        assert!(t.alive_at(10));
        assert!(t.alive_at(13));
        assert!(t.alive_at(18));
        assert!(!t.alive_at(9));
        assert!(!t.alive_at(19));
    }

    #[test]
    fn center_interpolates_between_detections() {
        let t = track();
        // frame 12 is halfway between 10 and 14
        let c = t.center_at(12).unwrap();
        assert!((c.x - 25.0).abs() < 1e-4); // centers at 5 and 45
                                            // exactly at a detection
        let c = t.center_at(14).unwrap();
        assert!((c.x - 45.0).abs() < 1e-4);
        assert!(t.center_at(5).is_none());
    }

    #[test]
    fn mean_speed_px_per_frame() {
        let t = track();
        // 80 px over 8 frames
        assert!((t.mean_speed() - 10.0).abs() < 1e-4);
    }

    #[test]
    fn interval_speeds_reflect_deceleration() {
        let mut t = Track::new(2, ObjectClass::Car);
        t.push(0, det(0.0, 0.0));
        t.push(10, det(100.0, 0.0)); // 10 px/frame
        t.push(20, det(120.0, 0.0)); // 2 px/frame
        let v = t.interval_speeds(10.0);
        assert_eq!(v.len(), 2);
        assert!((v[0] - 100.0).abs() < 1e-3); // 100 px/s
        assert!((v[1] - 20.0).abs() < 1e-3);
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "frame order")]
    fn push_out_of_order_panics() {
        let mut t = track();
        t.push(15, det(0.0, 0.0));
    }
}
