//! Mean average precision (mAP@IoU), the detection metric of Figure 7.

use crate::detection::Detection;
use otif_geom::Rect;

/// Compute average precision at the given IoU threshold for one set of
/// frames.
///
/// `per_frame` pairs each frame's detections with its ground-truth boxes.
/// Uses the standard all-point interpolation (area under the
/// precision–recall curve with precision made monotonically
/// non-increasing), class-agnostic, as the paper's Figure 7 evaluates cars
/// only.
pub fn average_precision(per_frame: &[(Vec<Detection>, Vec<Rect>)], iou_threshold: f32) -> f32 {
    // Flatten detections with frame indices, sort by confidence.
    let mut dets: Vec<(usize, &Detection)> = Vec::new();
    let mut total_gt = 0usize;
    for (f, (ds, gts)) in per_frame.iter().enumerate() {
        total_gt += gts.len();
        for d in ds {
            dets.push((f, d));
        }
    }
    if total_gt == 0 {
        return if dets.is_empty() { 1.0 } else { 0.0 };
    }
    dets.sort_by(|a, b| {
        b.1.confidence
            .partial_cmp(&a.1.confidence)
            .unwrap_or(std::cmp::Ordering::Equal)
    });

    let mut matched: Vec<Vec<bool>> = per_frame
        .iter()
        .map(|(_, g)| vec![false; g.len()])
        .collect();
    let mut tp = 0usize;
    let mut fp = 0usize;
    let mut curve: Vec<(f32, f32)> = Vec::with_capacity(dets.len()); // (recall, precision)
    for (f, d) in dets {
        let gts = &per_frame[f].1;
        let mut best = None;
        let mut best_iou = iou_threshold;
        for (gi, g) in gts.iter().enumerate() {
            if matched[f][gi] {
                continue;
            }
            let iou = d.rect.iou(g);
            if iou >= best_iou {
                best_iou = iou;
                best = Some(gi);
            }
        }
        match best {
            Some(gi) => {
                matched[f][gi] = true;
                tp += 1;
            }
            None => fp += 1,
        }
        curve.push((tp as f32 / total_gt as f32, tp as f32 / (tp + fp) as f32));
    }

    // All-point interpolation.
    let mut ap = 0.0;
    let mut prev_recall = 0.0;
    let mut i = 0;
    while i < curve.len() {
        let r = curve[i].0;
        // max precision at recall >= r
        let pmax = curve[i..].iter().map(|&(_, p)| p).fold(0.0_f32, f32::max);
        ap += (r - prev_recall) * pmax;
        prev_recall = r;
        // skip to the next distinct recall level
        while i < curve.len() && curve[i].0 <= r {
            i += 1;
        }
    }
    ap
}

#[cfg(test)]
mod tests {
    use super::*;
    use otif_sim::ObjectClass;

    fn d(x: f32, conf: f32) -> Detection {
        Detection {
            rect: Rect::new(x, 0.0, 10.0, 10.0),
            class: ObjectClass::Car,
            confidence: conf,
            appearance: vec![],
            debug_gt: None,
        }
    }

    #[test]
    fn perfect_detections_score_one() {
        let frames = vec![(
            vec![d(0.0, 0.9), d(50.0, 0.8)],
            vec![
                Rect::new(0.0, 0.0, 10.0, 10.0),
                Rect::new(50.0, 0.0, 10.0, 10.0),
            ],
        )];
        assert!((average_precision(&frames, 0.5) - 1.0).abs() < 1e-6);
    }

    #[test]
    fn all_misses_score_zero() {
        let frames = vec![(vec![d(200.0, 0.9)], vec![Rect::new(0.0, 0.0, 10.0, 10.0)])];
        assert_eq!(average_precision(&frames, 0.5), 0.0);
    }

    #[test]
    fn false_positive_lowers_ap_below_missed_gt_case() {
        // one TP, one FP with higher confidence → precision hit
        let frames = vec![(
            vec![d(200.0, 0.95), d(0.0, 0.9)],
            vec![Rect::new(0.0, 0.0, 10.0, 10.0)],
        )];
        let ap = average_precision(&frames, 0.5);
        assert!(ap > 0.4 && ap < 0.75, "ap = {ap}");
    }

    #[test]
    fn duplicate_detection_counts_as_fp() {
        let frames = vec![(
            vec![d(0.0, 0.9), d(1.0, 0.8)],
            vec![Rect::new(0.0, 0.0, 10.0, 10.0)],
        )];
        let ap = average_precision(&frames, 0.5);
        // TP at rank 1 gives full recall with precision 1 → AP 1.0; the
        // duplicate arrives later and cannot reduce the interpolated AP.
        assert!((ap - 1.0).abs() < 1e-6);
    }

    #[test]
    fn empty_everything_is_perfect() {
        let frames: Vec<(Vec<Detection>, Vec<Rect>)> = vec![(vec![], vec![])];
        assert_eq!(average_precision(&frames, 0.5), 1.0);
    }

    #[test]
    fn detections_without_gt_score_zero() {
        let frames = vec![(vec![d(0.0, 0.9)], vec![])];
        assert_eq!(average_precision(&frames, 0.5), 0.0);
    }

    #[test]
    fn higher_iou_threshold_is_stricter() {
        // box offset by 3 px: IoU ≈ 0.52
        let frames = vec![(vec![d(3.0, 0.9)], vec![Rect::new(0.0, 0.0, 10.0, 10.0)])];
        assert!(average_precision(&frames, 0.5) > 0.9);
        assert_eq!(average_precision(&frames, 0.75), 0.0);
    }
}
