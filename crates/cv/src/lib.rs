#![warn(missing_docs)]

//! Computer-vision substrate: detections, simulated detectors, cost
//! accounting and detection metrics.
//!
//! # The detector substitution
//!
//! The paper runs YOLOv3 and Mask R-CNN on an NVIDIA V100. Neither GPU
//! inference nor pretrained CNN weights are available in this pure-Rust
//! reproduction, so detectors are simulated with two coupled models:
//!
//! - a **fidelity model**: each ground-truth object is detected with a
//!   probability that falls off as its apparent size (pixels at the
//!   detector's input resolution) shrinks, with resolution-dependent
//!   bounding-box jitter, classification confusion and false positives.
//!   All draws are deterministic hashes of `(seed, clip, frame, object)`,
//!   so repeated executions are reproducible and configuration comparisons
//!   are paired;
//! - a **cost model**: detector GPU time scales with input pixels plus a
//!   per-invocation launch overhead amortized across batched equal-size
//!   windows — the effect that motivates OTIF's fixed window sizes (§3.3).
//!   Constants are calibrated to the paper's anchors (YOLOv3 ≈ 100 fps at
//!   960×540 on a V100; Table 4's 299 s Detector-Only runtime on Caldot1).
//!
//! Every "runtime" reported by the experiment harnesses is accumulated in
//! a [`CostLedger`], broken down by [`Component`] as in the paper's
//! Figure 6.

pub mod costs;
pub mod detection;
pub mod detector;
pub mod map;

pub use costs::{BatchStats, Component, CostLedger, CostModel};
pub use detection::{nms, Detection};
pub use detector::{DetectorArch, DetectorConfig, SimDetector, APPEARANCE_DIM};
pub use map::average_precision;
