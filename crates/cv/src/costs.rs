//! Simulated-time cost accounting.
//!
//! The paper reports runtimes on a V100 GPU + Xeon CPU. This reproduction
//! replaces wall-clock with *simulated seconds* charged by each pipeline
//! component against a shared ledger, using a cost model calibrated to the
//! paper's published anchors:
//!
//! - YOLOv3 processes 960×540 frames at ~100 fps on a V100 (§1) →
//!   ≈ `10 ms` per 518 k-pixel frame;
//! - Mask R-CNN is ~3× slower than YOLOv3 at the same resolution;
//! - video decoding occupies ≈⅓ of CPU time once inference is cheap
//!   (§4.2);
//! - Table 4's Detector-Only runtime on Caldot1 is 299 s/hour of video.
//!
//! Our native frames have ¼ the pixels of the paper's (linear ½ scale), so
//! per-pixel constants are 4× the V100-derived values, keeping reported
//! seconds directly comparable to the paper's tables.

use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::sync::Arc;

/// Pipeline components, mirroring the cost breakdown in Figure 6.
///
/// `Ord` (declaration order) fixes the ledger's iteration order, so f64
/// summations in [`CostLedger::total`] are reproducible across runs and
/// thread counts.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Component {
    /// Video decoding (CPU).
    Decode,
    /// Segmentation proxy model inference (GPU).
    Proxy,
    /// Object detector inference (GPU).
    Detector,
    /// Tracker model inference + matching (CPU).
    Tracker,
    /// Track refinement lookups (CPU).
    Refinement,
    /// Query post-processing (CPU).
    Query,
    /// One-time: detector fine-tuning (pre-processing, Fig 6).
    TrainDetector,
    /// One-time: proxy model training.
    TrainProxy,
    /// One-time: recurrent tracker training.
    TrainTracker,
    /// One-time: window-size selection.
    WindowSelect,
    /// One-time: parameter tuning trials.
    Tuner,
}

impl Component {
    /// Whether this cost grows linearly with the dataset ("execution") or
    /// is a one-time pre-processing cost — the split used in Figure 6.
    pub fn is_execution(&self) -> bool {
        matches!(
            self,
            Component::Decode
                | Component::Proxy
                | Component::Detector
                | Component::Tracker
                | Component::Refinement
                | Component::Query
        )
    }

    /// Short lowercase label used in reports.
    pub fn name(&self) -> &'static str {
        match self {
            Component::Decode => "decode",
            Component::Proxy => "proxy",
            Component::Detector => "detector",
            Component::Tracker => "tracker",
            Component::Refinement => "refinement",
            Component::Query => "query",
            Component::TrainDetector => "train-detector",
            Component::TrainProxy => "train-proxy",
            Component::TrainTracker => "train-tracker",
            Component::WindowSelect => "window-select",
            Component::Tuner => "tuner",
        }
    }
}

/// Global cost-model constants (simulated seconds).
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct CostModel {
    /// CPU decode seconds per decoded pixel (codec block accounting).
    pub decode_per_px: f64,
    /// Fixed CPU seconds per decoded frame (container/demux overhead).
    pub decode_per_frame: f64,
    /// GPU seconds per input pixel for the segmentation proxy model.
    pub proxy_per_px: f64,
    /// Fixed GPU seconds per proxy invocation.
    pub proxy_per_call: f64,
    /// CPU seconds per detection for tracker feature + matching work.
    pub tracker_per_det: f64,
    /// Fixed CPU seconds per processed frame for the tracker.
    pub tracker_per_frame: f64,
    /// CPU seconds per refinement lookup (cluster kNN + extension).
    pub refine_per_track: f64,
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel {
            decode_per_px: 1.6e-8,
            decode_per_frame: 1.0e-4,
            proxy_per_px: 1.0e-8,
            proxy_per_call: 3.0e-4,
            tracker_per_det: 4.0e-5,
            tracker_per_frame: 1.0e-4,
            refine_per_track: 2.0e-4,
        }
    }
}

/// Occupancy statistics for batched invocations charged through
/// [`CostLedger::charge_batch`] — how many batches ran and how many
/// items they carried in total. Mean occupancy is the headline metric
/// for cross-stream detector batching (§3.2): higher means the fixed
/// per-call launch overhead is amortized over more windows.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct BatchStats {
    /// Number of batched invocations.
    pub batches: u64,
    /// Total items (windows) across all batches.
    pub items: u64,
    /// Submitted-then-abandoned batch requests that were never flushed
    /// or charged (e.g. a stream dying with a ticket pending). Counted
    /// so their exclusion from `mean_occupancy` is explicit, not an
    /// accounting leak.
    pub discarded_tickets: u64,
    /// Items carried by those discarded requests.
    pub discarded_items: u64,
}

impl BatchStats {
    /// Mean items per *flushed* batch (0 if no batches ran). Discarded
    /// tickets are excluded by construction — they never became a batch
    /// — and reported separately via `discarded_tickets`/`discarded_items`
    /// so they cannot silently skew this metric.
    pub fn mean_occupancy(&self) -> f64 {
        if self.batches == 0 {
            0.0
        } else {
            self.items as f64 / self.batches as f64
        }
    }

    /// Fold another set of counters into this one.
    pub fn merge(&mut self, other: &BatchStats) {
        self.batches += other.batches;
        self.items += other.items;
        self.discarded_tickets += other.discarded_tickets;
        self.discarded_items += other.discarded_items;
    }
}

/// Thread-safe accumulator of simulated seconds per component.
///
/// Cheap to clone (shared interior); the execution pipeline threads one
/// ledger through every component, and experiment harnesses read the
/// breakdown at the end. A `BTreeMap` (not `HashMap`) keys the charges:
/// component iteration order is then deterministic, so the floating-point
/// sums in [`total`](Self::total) / [`execution_total`](Self::execution_total)
/// are bit-stable regardless of insertion order or map instance — a
/// prerequisite for the parallel tuner returning byte-identical results.
#[derive(Debug, Clone, Default)]
pub struct CostLedger {
    inner: Arc<Mutex<BTreeMap<Component, f64>>>,
    batches: Arc<Mutex<BatchStats>>,
}

impl CostLedger {
    /// Empty ledger.
    pub fn new() -> Self {
        Self::default()
    }

    /// Charge `seconds` of simulated time to `component`.
    pub fn charge(&self, component: Component, seconds: f64) {
        debug_assert!(seconds >= 0.0, "negative charge");
        *self.inner.lock().entry(component).or_insert(0.0) += seconds;
    }

    /// Total simulated seconds across all components.
    pub fn total(&self) -> f64 {
        self.inner.lock().values().sum()
    }

    /// Total for costs that grow with dataset size.
    pub fn execution_total(&self) -> f64 {
        self.inner
            .lock()
            .iter()
            .filter(|(c, _)| c.is_execution())
            .map(|(_, v)| v)
            .sum()
    }

    /// Total one-time pre-processing cost.
    pub fn preprocessing_total(&self) -> f64 {
        self.total() - self.execution_total()
    }

    /// Accumulated seconds for one component.
    pub fn get(&self, component: Component) -> f64 {
        self.inner.lock().get(&component).copied().unwrap_or(0.0)
    }

    /// Snapshot of all non-zero entries, sorted by descending cost.
    pub fn breakdown(&self) -> Vec<(Component, f64)> {
        let mut v: Vec<(Component, f64)> =
            self.inner.lock().iter().map(|(c, s)| (*c, *s)).collect();
        v.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));
        v
    }

    /// Charge one batched invocation carrying `occupancy` items:
    /// `seconds` accrue to `component` like [`Self::charge`], and the
    /// batch occupancy counters are updated.
    pub fn charge_batch(&self, component: Component, seconds: f64, occupancy: usize) {
        self.charge(component, seconds);
        let mut b = self.batches.lock();
        b.batches += 1;
        b.items += occupancy as u64;
    }

    /// Record a batch request that was submitted but abandoned before
    /// it could flush (no seconds are charged): the request and its
    /// `items` are excluded from occupancy and counted explicitly.
    pub fn record_batch_discard(&self, items: usize) {
        let mut b = self.batches.lock();
        b.discarded_tickets += 1;
        b.discarded_items += items as u64;
    }

    /// Snapshot of the batched-invocation counters.
    pub fn batch_stats(&self) -> BatchStats {
        *self.batches.lock()
    }

    /// Fold every charge and batch counter from `other` into this
    /// ledger. The streaming engine accounts into a private ledger and
    /// absorbs it into the caller's at the end of a run.
    pub fn absorb(&self, other: &CostLedger) {
        for (c, s) in other.inner.lock().iter() {
            self.charge(*c, *s);
        }
        self.batches.lock().merge(&other.batch_stats());
    }

    /// Reset all counters (e.g. between tuner trials).
    pub fn reset(&self) {
        self.inner.lock().clear();
        *self.batches.lock() = BatchStats::default();
    }

    /// Exact snapshot of every entry as `(component, f64 bit pattern)`,
    /// in component order. Together with [`Self::charge_slice_bits`]
    /// this round-trips a ledger through serialization without any
    /// floating-point re-summation: restoring charges each recorded
    /// total once, so a later [`Self::absorb`] adds bit-identical f64s
    /// in the identical order a live run would have produced.
    pub fn slice_bits(&self) -> Vec<(Component, u64)> {
        self.inner
            .lock()
            .iter()
            .map(|(c, s)| (*c, s.to_bits()))
            .collect()
    }

    /// Restore a [`Self::slice_bits`] snapshot by charging each
    /// component total exactly once. Intended for empty ledgers; on a
    /// non-empty ledger the totals accumulate like any other charge.
    pub fn charge_slice_bits(&self, slice: &[(Component, u64)]) {
        for &(c, bits) in slice {
            self.charge(c, f64::from_bits(bits));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn charges_accumulate_per_component() {
        let l = CostLedger::new();
        l.charge(Component::Detector, 1.5);
        l.charge(Component::Detector, 0.5);
        l.charge(Component::Decode, 1.0);
        assert!((l.get(Component::Detector) - 2.0).abs() < 1e-12);
        assert!((l.total() - 3.0).abs() < 1e-12);
    }

    #[test]
    fn execution_vs_preprocessing_split() {
        let l = CostLedger::new();
        l.charge(Component::Detector, 2.0);
        l.charge(Component::TrainProxy, 5.0);
        l.charge(Component::Tuner, 3.0);
        assert!((l.execution_total() - 2.0).abs() < 1e-12);
        assert!((l.preprocessing_total() - 8.0).abs() < 1e-12);
    }

    #[test]
    fn clones_share_state() {
        let a = CostLedger::new();
        let b = a.clone();
        b.charge(Component::Proxy, 1.0);
        assert!((a.get(Component::Proxy) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn breakdown_sorted_descending() {
        let l = CostLedger::new();
        l.charge(Component::Decode, 1.0);
        l.charge(Component::Detector, 3.0);
        l.charge(Component::Tracker, 2.0);
        let b = l.breakdown();
        assert_eq!(b[0].0, Component::Detector);
        assert_eq!(b[2].0, Component::Decode);
    }

    #[test]
    fn reset_clears() {
        let l = CostLedger::new();
        l.charge(Component::Query, 1.0);
        l.reset();
        assert_eq!(l.total(), 0.0);
    }

    #[test]
    fn charge_batch_tracks_occupancy() {
        let l = CostLedger::new();
        l.charge_batch(Component::Detector, 1.0, 3);
        l.charge_batch(Component::Detector, 1.0, 5);
        let b = l.batch_stats();
        assert_eq!(b.batches, 2);
        assert_eq!(b.items, 8);
        assert!((b.mean_occupancy() - 4.0).abs() < 1e-12);
        assert!((l.get(Component::Detector) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn discards_are_counted_but_never_averaged() {
        let l = CostLedger::new();
        l.charge_batch(Component::Detector, 1.0, 4);
        l.record_batch_discard(9);
        let b = l.batch_stats();
        assert_eq!(b.discarded_tickets, 1);
        assert_eq!(b.discarded_items, 9);
        // occupancy is over flushed batches only
        assert!((b.mean_occupancy() - 4.0).abs() < 1e-12);
        // no seconds accrued for the discard
        assert!((l.total() - 1.0).abs() < 1e-12);
        // discards survive an absorb
        let outer = CostLedger::new();
        outer.absorb(&l);
        assert_eq!(outer.batch_stats().discarded_items, 9);
    }

    #[test]
    fn absorb_merges_charges_and_batches() {
        let outer = CostLedger::new();
        outer.charge(Component::Decode, 1.0);
        let inner = CostLedger::new();
        inner.charge(Component::Decode, 2.0);
        inner.charge_batch(Component::Detector, 0.5, 4);
        outer.absorb(&inner);
        assert!((outer.get(Component::Decode) - 3.0).abs() < 1e-12);
        assert!((outer.get(Component::Detector) - 0.5).abs() < 1e-12);
        assert_eq!(outer.batch_stats().items, 4);
        // absorbing leaves the source untouched
        assert!((inner.total() - 2.5).abs() < 1e-12);
    }

    #[test]
    fn slice_bits_round_trip_is_bitwise_exact() {
        let l = CostLedger::new();
        // accumulate awkward floats the way a pipeline would
        for k in 1..=37u32 {
            l.charge(Component::Decode, 0.1 / k as f64);
            l.charge(Component::Detector, 1.0 / 3.0 / k as f64);
        }
        let restored = CostLedger::new();
        restored.charge_slice_bits(&l.slice_bits());
        for c in [Component::Decode, Component::Detector] {
            assert_eq!(l.get(c).to_bits(), restored.get(c).to_bits());
        }
        // absorbing the restored ledger equals absorbing the original
        let (a, b) = (CostLedger::new(), CostLedger::new());
        a.charge(Component::Decode, 0.7);
        b.charge(Component::Decode, 0.7);
        a.absorb(&l);
        b.absorb(&restored);
        assert_eq!(
            a.get(Component::Decode).to_bits(),
            b.get(Component::Decode).to_bits()
        );
        assert_eq!(a.total().to_bits(), b.total().to_bits());
    }

    #[test]
    fn every_component_classified() {
        // pre-processing components must not count as execution
        assert!(!Component::TrainDetector.is_execution());
        assert!(!Component::WindowSelect.is_execution());
        assert!(Component::Decode.is_execution());
        assert!(Component::Query.is_execution());
    }
}
