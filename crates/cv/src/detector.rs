//! Simulated object detectors (fidelity + cost model).

use crate::costs::{Component, CostLedger};
use crate::detection::{nms, Detection};
use otif_geom::Rect;
use otif_sim::render::hash01;
use otif_sim::{Clip, ObjectClass};
use serde::{Deserialize, Serialize};

/// Dimension of the simulated appearance embedding attached to detections.
pub const APPEARANCE_DIM: usize = 8;

/// Detector architectures from the paper's evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DetectorArch {
    /// Fast single-stage detector (YOLOv3 stand-in).
    YoloV3,
    /// Slower, more accurate two-stage detector (Mask R-CNN stand-in).
    MaskRcnn,
}

impl DetectorArch {
    /// Both simulated architectures.
    pub const ALL: [DetectorArch; 2] = [DetectorArch::YoloV3, DetectorArch::MaskRcnn];

    /// Architecture name as used in the paper.
    pub fn name(&self) -> &'static str {
        match self {
            DetectorArch::YoloV3 => "yolov3",
            DetectorArch::MaskRcnn => "mask-rcnn",
        }
    }

    /// Simulated GPU seconds per input pixel.
    ///
    /// Calibrated from "YOLOv3 … 960×540 at 100 fps on a V100" (§1), ×4
    /// because our native frames hold ¼ of the paper's pixels.
    pub fn per_px(&self) -> f64 {
        match self {
            DetectorArch::YoloV3 => 6.2e-8,
            DetectorArch::MaskRcnn => 1.9e-7,
        }
    }

    /// Fixed GPU seconds per (batched) invocation at one window size —
    /// the launch/sync overhead that batching equal-size windows amortizes.
    pub fn per_call(&self) -> f64 {
        match self {
            DetectorArch::YoloV3 => 8.0e-4,
            DetectorArch::MaskRcnn => 2.4e-3,
        }
    }

    /// Recall on large, clearly visible objects.
    fn base_recall(&self) -> f32 {
        match self {
            DetectorArch::YoloV3 => 0.93,
            DetectorArch::MaskRcnn => 0.975,
        }
    }

    /// Apparent side length (input pixels) at which detection probability
    /// halves.
    fn min_side(&self) -> f32 {
        match self {
            DetectorArch::YoloV3 => 6.0,
            DetectorArch::MaskRcnn => 4.5,
        }
    }

    /// Logistic falloff scale for apparent size.
    fn sharpness(&self) -> f32 {
        2.0
    }

    /// Bounding-box localization noise coefficient.
    fn jitter(&self) -> f32 {
        match self {
            DetectorArch::YoloV3 => 0.9,
            DetectorArch::MaskRcnn => 0.5,
        }
    }

    /// Expected false positives per full frame at native resolution.
    fn fp_per_frame(&self) -> f32 {
        match self {
            DetectorArch::YoloV3 => 0.10,
            DetectorArch::MaskRcnn => 0.05,
        }
    }

    /// Probability of classifying a vehicle as the wrong vehicle class.
    fn class_confusion(&self) -> f32 {
        match self {
            DetectorArch::YoloV3 => 0.06,
            DetectorArch::MaskRcnn => 0.03,
        }
    }
}

/// A detector configuration: architecture + input scale + confidence
/// threshold (three of the six OTIF parameters, §3.5).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DetectorConfig {
    /// Detector architecture.
    pub arch: DetectorArch,
    /// Input resolution as a fraction of native resolution in each linear
    /// dimension (1.0 = native). Windows are processed at the same scale.
    pub scale: f32,
    /// Detections below this confidence are discarded.
    pub conf_threshold: f32,
}

impl DetectorConfig {
    /// Configuration with the default confidence threshold (0.25).
    pub fn new(arch: DetectorArch, scale: f32) -> Self {
        DetectorConfig {
            arch,
            scale,
            conf_threshold: 0.25,
        }
    }

    /// The input-resolution lattice the tuner searches over (§3.5.1).
    pub const SCALES: [f32; 5] = [1.0, 0.75, 0.5, 0.375, 0.25];
}

/// The simulated detector.
#[derive(Debug, Clone)]
pub struct SimDetector {
    /// Active configuration.
    pub config: DetectorConfig,
    /// Seed decorrelating detector noise between experiments.
    pub seed: u64,
}

impl SimDetector {
    /// Build a detector with the given noise seed.
    pub fn new(config: DetectorConfig, seed: u64) -> Self {
        SimDetector { config, seed }
    }

    /// Simulated GPU cost of one window of native size `w × h` pixels,
    /// excluding the per-size launch overhead.
    pub fn window_px_cost(&self, w: f32, h: f32) -> f64 {
        let s = self.config.scale as f64;
        (w as f64 * s) * (h as f64 * s) * self.config.arch.per_px()
    }

    /// Total cost of running the given windows in one frame: pixel cost
    /// plus one launch overhead per distinct window size (batching).
    pub fn windows_cost(&self, windows: &[Rect]) -> f64 {
        let mut sizes: Vec<(u32, u32)> = windows
            .iter()
            .map(|r| (r.w.round() as u32, r.h.round() as u32))
            .collect();
        sizes.sort_unstable();
        sizes.dedup();
        let px: f64 = windows.iter().map(|r| self.window_px_cost(r.w, r.h)).sum();
        px + sizes.len() as f64 * self.config.arch.per_call()
    }

    /// Cost of a whole-frame invocation.
    pub fn frame_cost(&self, clip: &Clip) -> f64 {
        self.windows_cost(&[clip.scene.frame_rect()])
    }

    /// Detect objects across the entire frame.
    pub fn detect_frame(&self, clip: &Clip, frame: usize, ledger: &CostLedger) -> Vec<Detection> {
        self.detect_windows(clip, frame, &[clip.scene.frame_rect()], ledger)
    }

    /// Detect objects inside the given windows (native coordinates).
    /// Detections from overlapping windows are merged with NMS. Charges
    /// the ledger for GPU time.
    pub fn detect_windows(
        &self,
        clip: &Clip,
        frame: usize,
        windows: &[Rect],
        ledger: &CostLedger,
    ) -> Vec<Detection> {
        ledger.charge(Component::Detector, self.windows_cost(windows));
        self.detect_windows_pure(clip, frame, windows)
    }

    /// Detection fidelity only, with no cost accounting. The streaming
    /// engine uses this under its cross-stream batcher, which charges
    /// pixel cost per window and launch overhead per *batch* instead of
    /// per frame; results are identical to [`Self::detect_windows`].
    pub fn detect_windows_pure(
        &self,
        clip: &Clip,
        frame: usize,
        windows: &[Rect],
    ) -> Vec<Detection> {
        let mut dets = Vec::new();
        let fs = &clip.frames[frame];
        let fkey = clip.seed ^ (frame as u64).wrapping_mul(0x517C_C1B7_2722_0A95);

        for o in &fs.objs {
            let c = o.rect.center();
            if !windows.iter().any(|w| w.contains_point(&c)) {
                continue;
            }
            if let Some(d) = self.try_detect(o.track_id, o.class, o.rect, fkey) {
                dets.push(d);
            }
        }

        // False positives, thrown uniformly over the covered area.
        let cover: f32 = {
            let frame_area = clip.scene.frame_rect().area();
            let win_area: f32 = windows
                .iter()
                .map(|w| w.clamp_to(&clip.scene.frame_rect()).area())
                .sum();
            (win_area / frame_area).min(1.0)
        };
        let fp_lambda = self.config.arch.fp_per_frame() * cover * (1.0 / self.config.scale).sqrt();
        let n_fp = {
            let base = fp_lambda.floor();
            let frac = fp_lambda - base;
            base as usize + usize::from(hash01(fkey, self.seed ^ 0xFA15E, 1) < frac)
        };
        for k in 0..n_fp {
            let kk = k as u64 + 2;
            let w = clip.scene.width as f32;
            let h = clip.scene.height as f32;
            let bw = 14.0 + 30.0 * hash01(fkey, self.seed ^ 0xFA15E, kk * 5 + 1);
            let bh = bw * (0.5 + 0.3 * hash01(fkey, self.seed ^ 0xFA15E, kk * 5 + 2));
            let x = hash01(fkey, self.seed ^ 0xFA15E, kk * 5 + 3) * (w - bw);
            let y = hash01(fkey, self.seed ^ 0xFA15E, kk * 5 + 4) * (h - bh);
            let rect = Rect::new(x, y, bw, bh);
            if !windows.iter().any(|win| win.contains_point(&rect.center())) {
                continue;
            }
            let conf = 0.25 + 0.3 * hash01(fkey, self.seed ^ 0xFA15E, kk * 5 + 5);
            if conf < self.config.conf_threshold {
                continue;
            }
            let appearance = (0..APPEARANCE_DIM)
                .map(|i| 2.0 * hash01(fkey, kk * 31 + i as u64, self.seed ^ 0xAB) - 1.0)
                .collect();
            dets.push(Detection {
                rect,
                class: ObjectClass::Car,
                confidence: conf,
                appearance,
                debug_gt: None,
            });
        }

        nms(dets, 0.7)
    }

    /// Fidelity model for a single ground-truth object.
    fn try_detect(
        &self,
        track_id: u32,
        class: ObjectClass,
        rect: Rect,
        fkey: u64,
    ) -> Option<Detection> {
        let arch = self.config.arch;
        // Apparent size at the detector input.
        let side_native = (rect.w * rect.h).max(0.0).sqrt();
        let side = side_native * self.config.scale;
        let q = 1.0 / (1.0 + (-(side - arch.min_side()) / arch.sharpness()).exp());
        let p = arch.base_recall() * q;
        let tid = track_id as u64;
        if hash01(fkey, tid, self.seed) >= p {
            return None;
        }
        // Confidence correlated with apparent size, plus noise.
        let conf = (q * (0.78 + 0.4 * (hash01(fkey, tid, self.seed ^ 1) - 0.5))).clamp(0.05, 0.99);
        if conf < self.config.conf_threshold {
            return None;
        }
        // Localization jitter grows as apparent size shrinks.
        let jit = arch.jitter() * (1.0 + 6.0 / side.max(1.0));
        let dx = (hash01(fkey, tid, self.seed ^ 2) - 0.5) * 2.0 * jit;
        let dy = (hash01(fkey, tid, self.seed ^ 3) - 0.5) * 2.0 * jit;
        let dw = 1.0 + (hash01(fkey, tid, self.seed ^ 4) - 0.5) * 0.2 * (1.0 + 3.0 / side.max(1.0));
        let dh = 1.0 + (hash01(fkey, tid, self.seed ^ 5) - 0.5) * 0.2 * (1.0 + 3.0 / side.max(1.0));
        let out_rect = Rect::new(
            rect.x + dx,
            rect.y + dy,
            (rect.w * dw).max(2.0),
            (rect.h * dh).max(2.0),
        );
        // Classification: vehicles occasionally confused among themselves.
        let out_class = if class != ObjectClass::Pedestrian
            && hash01(fkey, tid, self.seed ^ 6) < arch.class_confusion()
        {
            match class {
                ObjectClass::Car => ObjectClass::Truck,
                ObjectClass::Truck => ObjectClass::Car,
                ObjectClass::Bus => ObjectClass::Truck,
                ObjectClass::Pedestrian => unreachable!(),
            }
        } else {
            class
        };
        // Appearance: stable per-object signature + per-observation noise
        // that grows at low apparent resolution (blurrier crops).
        let noise_amp = 0.12 + 0.5 * (1.0 - q);
        let appearance = (0..APPEARANCE_DIM)
            .map(|i| {
                let stable = 2.0 * hash01(tid, i as u64, 0xA11CE) - 1.0;
                let class_bias = class.intensity() * if i % 2 == 0 { 0.4 } else { -0.4 };
                let noise = (hash01(fkey, tid * 131 + i as u64, self.seed ^ 7) - 0.5) * 2.0;
                (stable + class_bias + noise_amp * noise).tanh()
            })
            .collect();
        Some(Detection {
            rect: out_rect,
            class: out_class,
            confidence: conf,
            appearance,
            debug_gt: Some(track_id),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use otif_sim::{DatasetConfig, DatasetKind};

    fn clip() -> Clip {
        let d = DatasetConfig::small(DatasetKind::Caldot1, 77).generate();
        d.test.into_iter().next().unwrap()
    }

    fn det(scale: f32) -> SimDetector {
        SimDetector::new(DetectorConfig::new(DetectorArch::YoloV3, scale), 5)
    }

    #[test]
    fn detection_is_deterministic() {
        let c = clip();
        let l = CostLedger::new();
        let d = det(1.0);
        let a = d.detect_frame(&c, 3, &l);
        let b = d.detect_frame(&c, 3, &l);
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.rect, y.rect);
            assert_eq!(x.confidence, y.confidence);
        }
    }

    fn recall_at(scale: f32, arch: DetectorArch) -> f32 {
        let c = clip();
        let l = CostLedger::new();
        let d = SimDetector::new(DetectorConfig::new(arch, scale), 5);
        let mut hits = 0usize;
        let mut total = 0usize;
        for f in 0..c.num_frames() {
            let dets = d.detect_frame(&c, f, &l);
            for (gt_id, _, _) in c.gt_boxes(f) {
                total += 1;
                if dets.iter().any(|d| d.debug_gt == Some(gt_id)) {
                    hits += 1;
                }
            }
        }
        hits as f32 / total.max(1) as f32
    }

    #[test]
    fn recall_degrades_with_resolution() {
        let hi = recall_at(1.0, DetectorArch::YoloV3);
        let lo = recall_at(0.25, DetectorArch::YoloV3);
        assert!(hi > 0.80, "native recall {hi}");
        assert!(lo < hi - 0.05, "hi {hi} lo {lo}");
    }

    #[test]
    fn mask_rcnn_more_accurate_but_slower() {
        let y = recall_at(0.375, DetectorArch::YoloV3);
        let m = recall_at(0.375, DetectorArch::MaskRcnn);
        assert!(m > y, "mask {m} vs yolo {y}");
        assert!(DetectorArch::MaskRcnn.per_px() > DetectorArch::YoloV3.per_px());
    }

    #[test]
    fn cost_scales_with_resolution_and_windows() {
        let c = clip();
        let d1 = det(1.0);
        let d2 = det(0.5);
        assert!(d2.frame_cost(&c) < d1.frame_cost(&c) * 0.35);
        // two distinct window sizes pay two launch overheads
        let w_same = vec![
            Rect::new(0.0, 0.0, 64.0, 64.0),
            Rect::new(100.0, 0.0, 64.0, 64.0),
        ];
        let w_diff = vec![
            Rect::new(0.0, 0.0, 64.0, 64.0),
            Rect::new(100.0, 0.0, 96.0, 64.0),
        ];
        let same = d1.windows_cost(&w_same);
        let diff = d1.windows_cost(&w_diff);
        assert!(diff > same, "distinct sizes must cost extra overhead");
    }

    #[test]
    fn ledger_is_charged() {
        let c = clip();
        let l = CostLedger::new();
        det(1.0).detect_frame(&c, 0, &l);
        assert!(l.get(Component::Detector) > 0.0);
    }

    #[test]
    fn window_restricts_detections() {
        let c = clip();
        let l = CostLedger::new();
        let d = det(1.0);
        // find a frame with at least 2 objects
        let f = (0..c.num_frames())
            .find(|&f| c.frames[f].objs.len() >= 2)
            .expect("busy frame");
        let target = c.frames[f].objs[0].rect;
        let win = Rect::new(
            target.x - 10.0,
            target.y - 10.0,
            target.w + 20.0,
            target.h + 20.0,
        );
        let dets = d.detect_windows(&c, f, &[win], &l);
        for det in &dets {
            assert!(win.contains_point(&det.rect.center()) || det.debug_gt.is_none());
        }
    }

    #[test]
    fn overlapping_windows_do_not_duplicate() {
        let c = clip();
        let l = CostLedger::new();
        let d = det(1.0);
        let full = c.scene.frame_rect();
        let single = d.detect_windows(&c, 2, &[full], &l);
        let double = d.detect_windows(&c, 2, &[full, full], &l);
        assert_eq!(single.len(), double.len(), "NMS must merge duplicates");
    }

    #[test]
    fn confidence_threshold_filters() {
        let c = clip();
        let l = CostLedger::new();
        let mut cfg = DetectorConfig::new(DetectorArch::YoloV3, 1.0);
        cfg.conf_threshold = 0.0;
        let all = SimDetector::new(cfg, 5).detect_frame(&c, 1, &l);
        cfg.conf_threshold = 0.9;
        let few = SimDetector::new(cfg, 5).detect_frame(&c, 1, &l);
        assert!(few.len() <= all.len());
        assert!(few.iter().all(|d| d.confidence >= 0.9));
    }

    #[test]
    fn jitter_larger_at_low_resolution() {
        let c = clip();
        let l = CostLedger::new();
        let err = |scale: f32| -> f32 {
            let d = det(scale);
            let mut total = 0.0;
            let mut n = 0;
            for f in 0..c.num_frames() {
                let dets = d.detect_frame(&c, f, &l);
                for (gt_id, _, gt_rect) in c.gt_boxes(f) {
                    if let Some(det) = dets.iter().find(|d| d.debug_gt == Some(gt_id)) {
                        total += det.rect.center().dist(&gt_rect.center());
                        n += 1;
                    }
                }
            }
            total / n.max(1) as f32
        };
        let e_hi = err(1.0);
        let e_lo = err(0.25);
        assert!(e_lo > e_hi, "jitter hi-res {e_hi} vs low-res {e_lo}");
    }
}
