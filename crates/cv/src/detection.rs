//! Detection types and non-maximum suppression.

use otif_geom::Rect;
use otif_sim::ObjectClass;
use serde::{Deserialize, Serialize};

/// One object detection in one frame.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Detection {
    /// Bounding box in native frame coordinates.
    pub rect: Rect,
    /// Predicted object category.
    pub class: ObjectClass,
    /// Detector confidence in [0, 1].
    pub confidence: f32,
    /// Appearance embedding — stands in for the CNN crop features the
    /// paper's recurrent tracker computes from frame pixels (§3.4). The
    /// simulated detector derives it from the object's stable appearance
    /// plus per-observation noise that grows at low resolution.
    pub appearance: Vec<f32>,
    /// Ground-truth object id, for evaluation and diagnostics only.
    /// Trackers and queries must not read this (tests enforce that
    /// accuracy is computed against ground truth separately).
    #[doc(hidden)]
    pub debug_gt: Option<u32>,
}

impl Detection {
    /// Center of the bounding box.
    pub fn center(&self) -> otif_geom::Point {
        self.rect.center()
    }
}

/// Greedy non-maximum suppression: keep highest-confidence detections,
/// drop any remaining detection of the same class with IoU above
/// `iou_threshold` against a kept one.
///
/// Used to merge duplicate detections when detector windows overlap.
pub fn nms(mut dets: Vec<Detection>, iou_threshold: f32) -> Vec<Detection> {
    dets.sort_by(|a, b| {
        b.confidence
            .partial_cmp(&a.confidence)
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    let mut kept: Vec<Detection> = Vec::with_capacity(dets.len());
    for d in dets {
        let suppressed = kept
            .iter()
            .any(|k| k.class == d.class && k.rect.iou(&d.rect) > iou_threshold);
        if !suppressed {
            kept.push(d);
        }
    }
    kept
}

#[cfg(test)]
mod tests {
    use super::*;

    fn det(x: f32, conf: f32, class: ObjectClass) -> Detection {
        Detection {
            rect: Rect::new(x, 0.0, 10.0, 10.0),
            class,
            confidence: conf,
            appearance: vec![],
            debug_gt: None,
        }
    }

    #[test]
    fn duplicates_suppressed_keeping_highest_confidence() {
        let dets = vec![
            det(0.0, 0.6, ObjectClass::Car),
            det(1.0, 0.9, ObjectClass::Car), // overlaps the first heavily
            det(50.0, 0.5, ObjectClass::Car),
        ];
        let kept = nms(dets, 0.5);
        assert_eq!(kept.len(), 2);
        assert_eq!(kept[0].confidence, 0.9);
        assert_eq!(kept[1].rect.x, 50.0);
    }

    #[test]
    fn different_classes_not_suppressed() {
        let dets = vec![
            det(0.0, 0.9, ObjectClass::Car),
            det(0.0, 0.8, ObjectClass::Bus),
        ];
        assert_eq!(nms(dets, 0.5).len(), 2);
    }

    #[test]
    fn threshold_controls_suppression() {
        // ~43 % IoU between boxes offset by 4 of width 10
        let dets = vec![
            det(0.0, 0.9, ObjectClass::Car),
            det(4.0, 0.8, ObjectClass::Car),
        ];
        assert_eq!(nms(dets.clone(), 0.5).len(), 2);
        assert_eq!(nms(dets, 0.3).len(), 1);
    }

    #[test]
    fn empty_input() {
        assert!(nms(Vec::new(), 0.5).is_empty());
    }
}
