//! Criterion microbenchmarks for the hot algorithmic paths of the OTIF
//! pipeline: cell grouping, window-size selection, tracker matching
//! steps, refinement index construction/lookup, codec decode, and
//! track-query post-processing latency (the "answer queries in
//! milliseconds" claim from §1).

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use otif_codec::{Decoder, EncodedClip, EncoderConfig};
use otif_core::grouping::group_cells;
use otif_core::refine::RefineIndex;
use otif_core::windows::{select_window_sizes, WindowSet};
use otif_cv::{CostLedger, Detection, DetectorArch, DetectorConfig, SimDetector};
use otif_geom::Rect;
use otif_query::{FrameLimitQuery, FrameQueryKind, TrackQuery};
use otif_sim::{DatasetConfig, DatasetKind, DatasetScale, ObjectClass};
use otif_track::{RecurrentTracker, SortTracker, Track, TrackerModel};

fn det(x: f32, y: f32) -> Detection {
    Detection {
        rect: Rect::new(x, y, 24.0, 14.0),
        class: ObjectClass::Car,
        confidence: 0.9,
        appearance: vec![0.3; otif_cv::APPEARANCE_DIM],
        debug_gt: None,
    }
}

fn window_set() -> WindowSet {
    WindowSet::new(
        384.0,
        224.0,
        vec![(384.0, 224.0), (128.0, 96.0), (64.0, 64.0)],
        6.2e-8,
        8.0e-4,
    )
}

fn bench_grouping(c: &mut Criterion) {
    let ws = window_set();
    let sparse: Vec<(usize, usize)> = vec![(1, 1), (2, 1), (8, 5), (11, 2)];
    let dense: Vec<(usize, usize)> = (0..12).flat_map(|x| (0..7).map(move |y| (x, y))).collect();
    c.bench_function("group_cells/sparse_4_cells", |b| {
        b.iter(|| group_cells(std::hint::black_box(&sparse), &ws))
    });
    c.bench_function("group_cells/dense_84_cells", |b| {
        b.iter(|| group_cells(std::hint::black_box(&dense), &ws))
    });
}

fn bench_window_selection(c: &mut Criterion) {
    let frames: Vec<Vec<(usize, usize)>> = (0..30)
        .map(|i| {
            vec![
                ((i * 3) % 12, (i * 2) % 7),
                ((i * 5 + 3) % 12, (i * 3 + 1) % 7),
            ]
        })
        .collect();
    c.bench_function("select_window_sizes/k3_30_frames", |b| {
        b.iter(|| {
            select_window_sizes(
                384.0,
                224.0,
                std::hint::black_box(&frames),
                3,
                6.2e-8,
                8.0e-4,
            )
        })
    });
}

fn bench_trackers(c: &mut Criterion) {
    // 12 objects per frame
    let frame_dets = |f: usize| -> Vec<Detection> {
        (0..12)
            .map(|k| {
                det(
                    10.0 + (f * 4 + k * 30) as f32 % 360.0,
                    10.0 + (k * 17) as f32 % 200.0,
                )
            })
            .collect()
    };
    c.bench_function("sort_tracker/step_12_dets", |b| {
        b.iter_batched(
            || {
                let mut t = SortTracker::default();
                for f in 0..5 {
                    t.step(f, frame_dets(f));
                }
                t
            },
            |mut t| t.step(5, frame_dets(5)),
            BatchSize::SmallInput,
        )
    });
    let model = TrackerModel::new(384.0, 224.0, 1);
    c.bench_function("recurrent_tracker/step_12_dets", |b| {
        b.iter_batched(
            || {
                let mut t = RecurrentTracker::new(model.clone());
                t.match_threshold = 0.0;
                for f in 0..5 {
                    t.step(f, frame_dets(f));
                }
                t
            },
            |mut t| t.step(5, frame_dets(5)),
            BatchSize::SmallInput,
        )
    });
}

fn training_tracks() -> Vec<Track> {
    let mut out = Vec::new();
    for i in 0..120u32 {
        let mut t = Track::new(i, ObjectClass::Car);
        let y = 40.0 + (i % 5) as f32 * 35.0;
        for f in 0..20usize {
            t.push(f, det(f as f32 * 18.0, y + (i % 3) as f32));
        }
        out.push(t);
    }
    out
}

fn bench_refinement(c: &mut Criterion) {
    let tracks = training_tracks();
    c.bench_function("refine_index/build_120_tracks", |b| {
        b.iter(|| RefineIndex::build(std::hint::black_box(&tracks), 384.0, 224.0, None))
    });
    let idx = RefineIndex::build(&tracks, 384.0, 224.0, None);
    let mut partial = Track::new(999, ObjectClass::Car);
    for f in 0..5usize {
        partial.push(f * 4, det(100.0 + f as f32 * 40.0, 75.0));
    }
    c.bench_function("refine_index/refine_one_track", |b| {
        b.iter_batched(
            || partial.clone(),
            |mut t| idx.refine(&mut t),
            BatchSize::SmallInput,
        )
    });
}

fn bench_detector(c: &mut Criterion) {
    let d = DatasetConfig::small(DatasetKind::Caldot1, 5).generate();
    let clip = &d.test[0];
    let detector = SimDetector::new(DetectorConfig::new(DetectorArch::YoloV3, 1.0), 5);
    let ledger = CostLedger::new();
    c.bench_function("sim_detector/full_frame", |b| {
        b.iter(|| detector.detect_frame(std::hint::black_box(clip), 3, &ledger))
    });
}

fn bench_codec(c: &mut Criterion) {
    let d = DatasetConfig::new(
        DatasetKind::Caldot2,
        DatasetScale {
            clips_per_split: 1,
            clip_seconds: 4.0,
        },
        5,
    )
    .generate();
    let enc = EncodedClip::encode_clip(&d.test[0], EncoderConfig::default());
    c.bench_function("codec/decode_sequential_40_frames", |b| {
        b.iter(|| {
            let mut dec = Decoder::new(&enc);
            for f in 0..enc.num_frames() {
                std::hint::black_box(dec.decode(f));
            }
        })
    });
    c.bench_function("codec/seek_decode_every_8th", |b| {
        b.iter(|| {
            let mut dec = Decoder::new(&enc);
            let mut f = 0;
            while f < enc.num_frames() {
                std::hint::black_box(dec.decode(f));
                f += 8;
            }
        })
    });
}

fn bench_query_latency(c: &mut Criterion) {
    // the sub-second query claim: post-process a realistic track set
    let d = DatasetConfig::new(
        DatasetKind::Caldot1,
        DatasetScale {
            clips_per_split: 4,
            clip_seconds: 10.0,
        },
        5,
    )
    .generate();
    // ground-truth tracks as stand-ins for extracted tracks
    let tracks: Vec<Vec<Track>> = d
        .test
        .iter()
        .map(|c| {
            c.gt_tracks
                .iter()
                .map(|g| {
                    let mut t = Track::new(g.id, g.class);
                    for (f, r) in &g.states {
                        t.push(*f, det(r.x, r.y));
                    }
                    t
                })
                .collect()
        })
        .collect();
    let q = TrackQuery::path_breakdown(&d.scene);
    c.bench_function("query/path_breakdown_split", |b| {
        b.iter(|| q.accuracy(std::hint::black_box(&tracks), &d.test))
    });
    let fq = FrameLimitQuery {
        kind: FrameQueryKind::Count,
        n: 3,
        limit: 25,
        min_separation_s: 5.0,
    };
    c.bench_function("query/frame_limit_split", |b| {
        b.iter(|| fq.execute_on_tracks(std::hint::black_box(&tracks), &d.test))
    });
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_grouping,
        bench_window_selection,
        bench_trackers,
        bench_refinement,
        bench_detector,
        bench_codec,
        bench_query_latency
);
criterion_main!(benches);
