//! Output helpers: markdown tables on stdout plus JSON result files under
//! `results/` so EXPERIMENTS.md can be regenerated mechanically.

use serde::Serialize;
use std::fs;
use std::path::PathBuf;

/// Directory all experiment binaries write their JSON results into.
pub fn results_dir() -> PathBuf {
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join("results");
    fs::create_dir_all(&dir).expect("create results dir");
    dir
}

/// Serialize a result value to `results/<name>.json`.
pub fn write_json<T: Serialize>(name: &str, value: &T) {
    let path = results_dir().join(format!("{name}.json"));
    let json = serde_json::to_string_pretty(value).expect("serialize results");
    fs::write(&path, json).expect("write results file");
    eprintln!("[results] wrote {}", path.display());
}

/// Print a markdown table.
pub fn print_table(title: &str, headers: &[&str], rows: &[Vec<String>]) {
    println!("\n### {title}\n");
    println!("| {} |", headers.join(" | "));
    println!(
        "|{}|",
        headers.iter().map(|_| "---").collect::<Vec<_>>().join("|")
    );
    for row in rows {
        println!("| {} |", row.join(" | "));
    }
}

/// Format simulated seconds compactly.
pub fn secs(v: f64) -> String {
    if v >= 100.0 {
        format!("{v:.0}")
    } else if v >= 10.0 {
        format!("{v:.1}")
    } else {
        format!("{v:.2}")
    }
}

/// Format an accuracy as a percentage.
pub fn pct(v: f32) -> String {
    format!("{:.1}%", v * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn formatting_helpers() {
        assert_eq!(secs(123.4), "123");
        assert_eq!(secs(12.34), "12.3");
        assert_eq!(secs(1.234), "1.23");
        assert_eq!(pct(0.876), "87.6%");
    }

    #[test]
    fn json_roundtrip() {
        #[derive(Serialize)]
        struct T {
            x: u32,
        }
        write_json("test-report", &T { x: 7 });
        let path = results_dir().join("test-report.json");
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.contains("\"x\": 7"));
        std::fs::remove_file(path).ok();
    }
}
