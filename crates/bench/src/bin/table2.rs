//! Table 2: runtime (simulated seconds per hour of video) of each method
//! on the test set of each dataset, using the fastest configuration within
//! 5 % of the best achieved accuracy; 1 query and 5 queries (estimated).
//!
//! Usage: `cargo run --release -p otif-bench --bin table2 [tiny|small|experiment]`

use otif_bench::harness::{
    best_overall_accuracy, scale_from_args, track_query_comparison, MethodCurve,
};
use otif_bench::report::{print_table, secs, write_json};
use otif_sim::DatasetKind;
use serde::Serialize;

#[derive(Serialize)]
struct Table2Row {
    dataset: String,
    /// (method, 1-query seconds, 5-query seconds, test accuracy) —
    /// `None` seconds when the method has no configuration within 5 %.
    methods: Vec<Table2Cell>,
    best_accuracy: f32,
}

#[derive(Serialize)]
struct Table2Cell {
    method: String,
    one_query: Option<f64>,
    five_queries: Option<f64>,
    accuracy: Option<f32>,
}

fn main() {
    let scale = scale_from_args();
    let slack = 0.05;
    let mut rows = Vec::new();
    let mut curves_by_dataset: Vec<(String, Vec<MethodCurve>)> = Vec::new();

    for kind in DatasetKind::ALL {
        eprintln!("[table2] running {}", kind.name());
        let curves = track_query_comparison(kind, scale);
        let best = best_overall_accuracy(&curves);
        let methods = curves
            .iter()
            .map(|c| {
                let p = c.fastest_within(best, slack);
                Table2Cell {
                    method: c.method.clone(),
                    one_query: p.map(|p| p.test_seconds_hour),
                    five_queries: p.map(|p| {
                        if c.per_query {
                            p.test_seconds_hour * 5.0
                        } else {
                            p.test_seconds_hour
                        }
                    }),
                    accuracy: p.map(|p| p.test_accuracy),
                }
            })
            .collect();
        rows.push(Table2Row {
            dataset: kind.name().to_string(),
            methods,
            best_accuracy: best,
        });
        curves_by_dataset.push((kind.name().to_string(), curves));
    }

    // print both table halves
    let method_names: Vec<String> = rows[0].methods.iter().map(|m| m.method.clone()).collect();
    for (title, five) in [
        ("Table 2 — 1 query", false),
        ("Table 2 — 5 queries (estimated)", true),
    ] {
        let mut headers: Vec<&str> = vec!["Dataset"];
        headers.extend(method_names.iter().map(|s| s.as_str()));
        let table_rows: Vec<Vec<String>> = rows
            .iter()
            .map(|r| {
                let mut row = vec![r.dataset.clone()];
                for m in &r.methods {
                    let v = if five { m.five_queries } else { m.one_query };
                    row.push(v.map(secs).unwrap_or_else(|| "-".to_string()));
                }
                row
            })
            .collect();
        print_table(title, &headers, &table_rows);
    }

    // speedup summary (the paper's headline claims)
    let mut miris_speedups_5q = Vec::new();
    let mut next_best_speedups = Vec::new();
    for r in &rows {
        let otif = r.methods.iter().find(|m| m.method == "otif").unwrap();
        if let Some(o1) = otif.one_query {
            if let Some(m5) = r
                .methods
                .iter()
                .find(|m| m.method == "miris")
                .and_then(|m| m.five_queries)
            {
                miris_speedups_5q.push(m5 / o1);
            }
            let next = r
                .methods
                .iter()
                .filter(|m| m.method != "otif" && m.method != "miris")
                .filter_map(|m| m.one_query)
                .fold(f64::INFINITY, f64::min);
            if next.is_finite() {
                next_best_speedups.push(next / o1);
            }
        }
    }
    let avg = |v: &[f64]| v.iter().sum::<f64>() / v.len().max(1) as f64;
    println!(
        "\nAverage speedup over Miris at 5 queries: {:.1}x (paper: 25x)",
        avg(&miris_speedups_5q)
    );
    println!(
        "Average speedup over next-best baseline (1 query): {:.1}x (paper: 3.4x)",
        avg(&next_best_speedups)
    );

    write_json("table2", &rows);
    write_json("table2_curves", &curves_by_dataset);
}
