//! Figure 8 / §4.6: implementation-fidelity validation.
//!
//! The paper validates its BlazeIt re-implementation against the authors'
//! release, finding the original's detector "unreasonably poor" (3 of 6
//! cars found on a busy Taipei frame, vs 6 of 6 + 1 FP for theirs), while
//! proxy throughput matches (85 s vs 100 s over the 33-hour dataset).
//!
//! We reproduce both checks: (a) a degraded detector tier (standing in
//! for the original implementation's weights) vs our standard tier on a
//! busy frame — counting detections against ground truth; and (b) proxy
//! throughput consistency between our BlazeIt proxy pass and the cost
//! model's prediction.
//!
//! Usage: `cargo run --release -p otif-bench --bin fig8 [tiny|small|experiment]`

use otif_baselines::BlazeItBaseline;
use otif_bench::harness::{make_dataset, otif_options, prepare_otif, scale_from_args, SEED};
use otif_bench::report::{print_table, write_json};
use otif_cv::{CostLedger, CostModel, DetectorArch, DetectorConfig, SimDetector};
use otif_query::{FrameLimitQuery, FrameQueryKind};
use otif_sim::DatasetKind;
use serde::Serialize;

#[derive(Serialize)]
struct Fig8Result {
    impl_name: String,
    busy_frame_gt: usize,
    detected_true: usize,
    false_positives: usize,
    proxy_seconds_hour: Option<f64>,
}

fn main() {
    let scale = scale_from_args();
    let dataset = make_dataset(DatasetKind::Warsaw, scale);
    let hour = dataset.scale.hour_scale();

    // Busiest test frame.
    let (ci, f) = dataset
        .test
        .iter()
        .enumerate()
        .flat_map(|(ci, c)| (0..c.num_frames()).map(move |f| (ci, f)))
        .max_by_key(|&(ci, f)| dataset.test[ci].frames[f].objs.len())
        .unwrap();
    let clip = &dataset.test[ci];
    let gt = clip.gt_boxes(f);
    eprintln!("[fig8] busiest frame has {} objects", gt.len());

    let ledger = CostLedger::new();
    let mut results = Vec::new();
    for (name, cfg) in [
        (
            // the "original implementation": a low-fidelity operating
            // point (aggressively low resolution + high threshold)
            "original-impl (degraded)",
            DetectorConfig {
                conf_threshold: 0.6,
                ..DetectorConfig::new(DetectorArch::YoloV3, 0.25)
            },
        ),
        ("our-impl", DetectorConfig::new(DetectorArch::MaskRcnn, 1.0)),
    ] {
        let det = SimDetector::new(cfg, SEED);
        let dets = det.detect_frame(clip, f, &ledger);
        let detected_true = gt
            .iter()
            .filter(|(id, _, _)| dets.iter().any(|d| d.debug_gt == Some(*id)))
            .count();
        let false_positives = dets.iter().filter(|d| d.debug_gt.is_none()).count();
        results.push(Fig8Result {
            impl_name: name.to_string(),
            busy_frame_gt: gt.len(),
            detected_true,
            false_positives,
            proxy_seconds_hour: None,
        });
    }

    // Proxy throughput consistency: measured BlazeIt proxy pass vs the
    // cost model's closed-form prediction.
    let otif = prepare_otif(&dataset, otif_options(scale));
    let low = otif.proxies.last().unwrap();
    let blazeit = BlazeItBaseline::new(otif.theta_best.detector, SEED, CostModel::default(), low);
    let q = FrameLimitQuery {
        kind: FrameQueryKind::Count,
        n: 3,
        limit: 10,
        min_separation_s: 5.0,
    };
    let (_, measured) = blazeit.score_frames(&q, &dataset.test);
    let cm = CostModel::default();
    let frames: usize = dataset.test.iter().map(|c| c.num_frames()).sum();
    let native_px = (dataset.scene.width as f64) * (dataset.scene.height as f64);
    let proxy_scale = low.in_w as f32 / dataset.scene.width as f32;
    let predicted = frames as f64
        * (low.inference_cost(&cm)
            + otif_core::pipeline::decode_cost(&cm, native_px, proxy_scale, 1));
    results.push(Fig8Result {
        impl_name: "blazeit-proxy measured".into(),
        busy_frame_gt: 0,
        detected_true: 0,
        false_positives: 0,
        proxy_seconds_hour: Some(measured * hour),
    });
    results.push(Fig8Result {
        impl_name: "blazeit-proxy predicted".into(),
        busy_frame_gt: 0,
        detected_true: 0,
        false_positives: 0,
        proxy_seconds_hour: Some(predicted * hour),
    });

    let rows: Vec<Vec<String>> = results
        .iter()
        .map(|r| {
            vec![
                r.impl_name.clone(),
                if r.busy_frame_gt > 0 {
                    format!("{}/{}", r.detected_true, r.busy_frame_gt)
                } else {
                    "-".into()
                },
                if r.busy_frame_gt > 0 {
                    r.false_positives.to_string()
                } else {
                    "-".into()
                },
                r.proxy_seconds_hour
                    .map(|s| format!("{s:.1}"))
                    .unwrap_or_else(|| "-".into()),
            ]
        })
        .collect();
    print_table(
        "Figure 8 / §4.6 — implementation validation (busy Warsaw frame)",
        &[
            "implementation",
            "cars detected",
            "false positives",
            "proxy s/hr",
        ],
        &rows,
    );

    write_json("fig8", &results);
}
