//! Design-choice ablation (§3.5): the tuning coarseness C.
//!
//! The paper picks C = 30 % as the balance between curve fidelity
//! (fine-grained steps) and tuning cost (few iterations). This binary
//! sweeps C and reports, per setting: the number of curve points, the
//! simulated tuning cost, and the curve's quality — the accuracy of the
//! fastest configuration within 5 % of the best validation accuracy.
//!
//! Usage: `cargo run --release -p otif-bench --bin ablation_tuner [tiny|small|experiment]`

use otif_bench::harness::{make_dataset, otif_options, scale_from_args, track_query_for};
use otif_bench::report::{pct, print_table, secs, write_json};
use otif_core::{Otif, TunerOptions};
use otif_sim::DatasetKind;
use otif_track::Track;
use serde::Serialize;

#[derive(Serialize)]
struct TunerRow {
    c: f32,
    curve_points: usize,
    tuning_seconds: f64,
    picked_seconds_hour: f64,
    picked_accuracy: f32,
}

fn main() {
    let scale = scale_from_args();
    let dataset = make_dataset(DatasetKind::Caldot1, scale);
    let hour = dataset.scale.hour_scale();
    let query = track_query_for(&dataset);

    let mut rows = Vec::new();
    for c in [0.15f32, 0.30, 0.50] {
        eprintln!("[ablation_tuner] C = {c}");
        let mut opts = otif_options(scale);
        opts.tuner = TunerOptions {
            c,
            // finer C needs more iterations to cover the same speed range
            max_iters: ((3.0 / c) as usize).clamp(6, 24),
            ..opts.tuner
        };
        let val = dataset.val.clone();
        let q = query.clone();
        let metric = move |tracks: &[Vec<Track>]| q.accuracy(tracks, &val);
        let otif = Otif::prepare(&dataset, &metric, opts);

        let point = otif.pick_config(0.05);
        let (tracks, ledger) = otif.execute(&point.config, &dataset.test);
        rows.push(TunerRow {
            c,
            curve_points: otif.curve.len(),
            tuning_seconds: otif.prep_ledger.get(otif_cv::Component::Tuner),
            picked_seconds_hour: ledger.execution_total() * hour,
            picked_accuracy: query.accuracy(&tracks, &dataset.test),
        });
    }

    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                format!("{:.0}%", r.c * 100.0),
                r.curve_points.to_string(),
                secs(r.tuning_seconds),
                secs(r.picked_seconds_hour),
                pct(r.picked_accuracy),
            ]
        })
        .collect();
    print_table(
        "Ablation — tuning coarseness C (caldot1)",
        &[
            "C",
            "curve points",
            "tuning cost (s)",
            "picked config s/hr",
            "test acc",
        ],
        &table,
    );

    write_json("ablation_tuner", &rows);
}
