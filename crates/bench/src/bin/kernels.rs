//! Wall-clock micro-bench of the `otif_nn::kernels` layer: naive
//! reference loops vs the im2col/GEMM and blocked-matmul fast paths.
//!
//! Unlike every other bench binary, this one reports **wall-clock
//! seconds on the current machine** — the kernels are a real-CPU
//! optimization, invisible to the simulated V100 cost model. The
//! headline number is the speedup of the GEMM path over the naive path
//! on one full proxy forward pass at the native 384×224 input, the
//! exact shape `SegProxyModel` runs in production.
//!
//! Both paths are verified bit-identical on every run before timing, so
//! the speedup never comes at the cost of divergent results.
//!
//! Usage: `cargo run --release -p otif-bench --bin kernels [tiny|small|experiment]`
//!
//! `tiny` is the CI smoke mode: a reduced input and rep count, written
//! to `results/BENCH_kernels_smoke.json` so it never clobbers the real
//! `results/BENCH_kernels.json` produced by the full mode.

use otif_bench::report::{print_table, write_json};
use otif_core::{SegProxyModel, WindowNet};
use otif_cv::{DetectorArch, DetectorConfig};
use otif_nn::kernels::{matmul_blocked, matmul_naive};
use otif_nn::{BatchTensor3, KernelPath, Tensor3};
use otif_sim::GrayImage;
use serde::Serialize;
use std::time::Instant;

#[derive(Serialize)]
struct ProxyBench {
    in_w: usize,
    in_h: usize,
    reps: usize,
    naive_seconds_per_pass: f64,
    gemm_seconds_per_pass: f64,
    auto_seconds_per_pass: f64,
    speedup_gemm_over_naive: f64,
}

#[derive(Serialize)]
struct MatmulBench {
    m: usize,
    k: usize,
    n: usize,
    reps: usize,
    naive_seconds: f64,
    blocked_seconds: f64,
    speedup: f64,
}

#[derive(Serialize)]
struct BatchedBench {
    shape: String,
    in_w: usize,
    in_h: usize,
    batch: usize,
    reps: usize,
    looped_seconds_per_window: f64,
    batched_seconds_per_window: f64,
    speedup_batched_over_looped: f64,
}

#[derive(Serialize)]
struct KernelsReport {
    mode: String,
    proxy: ProxyBench,
    matmul: Vec<MatmulBench>,
    batched_vs_looped: Vec<BatchedBench>,
}

/// Best-of-3 timing of `reps` calls to `f`, in seconds per call.
fn time_per_call(reps: usize, mut f: impl FnMut()) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..3 {
        let t = Instant::now();
        for _ in 0..reps {
            f();
        }
        best = best.min(t.elapsed().as_secs_f64() / reps.max(1) as f64);
    }
    best
}

fn bench_proxy(native_w: usize, native_h: usize, reps: usize) -> ProxyBench {
    let model = SegProxyModel::new(native_w, native_h, 1.0, 42);
    let mut img = GrayImage::new(model.in_w, model.in_h);
    for (i, v) in img.data.iter_mut().enumerate() {
        *v = ((i % 251) as f32) / 251.0;
    }

    // Correctness gate before timing: the two paths must agree bitwise.
    let mut naive_out = Tensor3::zeros(0, 0, 0);
    let mut gemm_out = Tensor3::zeros(0, 0, 0);
    model.infer_logits_into(&img, KernelPath::Naive, &mut naive_out);
    model.infer_logits_into(&img, KernelPath::Gemm, &mut gemm_out);
    assert_eq!(
        naive_out, gemm_out,
        "GEMM proxy forward diverged from the naive reference"
    );

    let mut out = Tensor3::zeros(0, 0, 0);
    let naive = time_per_call(reps, || {
        model.infer_logits_into(&img, KernelPath::Naive, &mut out)
    });
    let gemm = time_per_call(reps, || {
        model.infer_logits_into(&img, KernelPath::Gemm, &mut out)
    });
    let auto = time_per_call(reps, || {
        model.infer_logits_into(&img, KernelPath::Auto, &mut out)
    });
    ProxyBench {
        in_w: model.in_w,
        in_h: model.in_h,
        reps,
        naive_seconds_per_pass: naive,
        gemm_seconds_per_pass: gemm,
        auto_seconds_per_pass: auto,
        speedup_gemm_over_naive: naive / gemm,
    }
}

fn bench_matmul(m: usize, k: usize, n: usize, reps: usize) -> MatmulBench {
    let fill = |len: usize, salt: u64| -> Vec<f32> {
        let mut state = salt | 1;
        (0..len)
            .map(|_| {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                ((state >> 40) as f32) / (1u64 << 24) as f32 - 0.5
            })
            .collect()
    };
    let a = fill(m * k, 3);
    let b = fill(k * n, 5);
    let mut c_naive = vec![0.0f32; m * n];
    let mut c_blocked = vec![0.0f32; m * n];
    matmul_naive(&a, &b, &mut c_naive, m, k, n);
    matmul_blocked(&a, &b, &mut c_blocked, m, k, n);
    assert_eq!(
        c_naive, c_blocked,
        "blocked matmul diverged from the naive reference at {m}x{k}x{n}"
    );

    let naive = time_per_call(reps, || matmul_naive(&a, &b, &mut c_naive, m, k, n));
    let blocked = time_per_call(reps, || matmul_blocked(&a, &b, &mut c_blocked, m, k, n));
    MatmulBench {
        m,
        k,
        n,
        reps,
        naive_seconds: naive,
        blocked_seconds: blocked,
        speedup: naive / blocked,
    }
}

/// Batched vs looped forward of the segmentation-proxy architecture at
/// a window-scale input — the shape the engine's detect stages feed the
/// cross-stream batcher. Per-window wall-clock, bitwise-gated first.
fn bench_proxy_batched(
    native_w: usize,
    native_h: usize,
    batch: usize,
    reps: usize,
) -> BatchedBench {
    let model = SegProxyModel::new(native_w, native_h, 1.0, 42);
    let imgs: Vec<GrayImage> = (0..batch)
        .map(|i| {
            let mut img = GrayImage::new(model.in_w, model.in_h);
            for (j, v) in img.data.iter_mut().enumerate() {
                *v = (((j + 13 * i) % 251) as f32) / 251.0;
            }
            img
        })
        .collect();
    let refs: Vec<&GrayImage> = imgs.iter().collect();

    // Correctness gate: every batched item must equal its looped twin
    // bitwise before any timing happens.
    let mut batched_out = BatchTensor3::zeros(0, 0, 0, 0);
    model.infer_logits_batched_into(&refs, KernelPath::Auto, &mut batched_out);
    let mut item = Tensor3::zeros(0, 0, 0);
    let mut looped_out = Tensor3::zeros(0, 0, 0);
    for (i, img) in imgs.iter().enumerate() {
        model.infer_logits_into(img, KernelPath::Auto, &mut looped_out);
        batched_out.item_into(i, &mut item);
        assert_eq!(
            looped_out, item,
            "batched proxy forward diverged from looped at item {i} (batch {batch})"
        );
    }

    let looped = time_per_call(reps, || {
        for img in &imgs {
            model.infer_logits_into(img, KernelPath::Auto, &mut looped_out);
        }
    }) / batch as f64;
    let batched = time_per_call(reps, || {
        model.infer_logits_batched_into(&refs, KernelPath::Auto, &mut batched_out)
    }) / batch as f64;
    BatchedBench {
        shape: "proxy-window".to_string(),
        in_w: model.in_w,
        in_h: model.in_h,
        batch,
        reps,
        looped_seconds_per_window: looped,
        batched_seconds_per_window: batched,
        speedup_batched_over_looped: looped / batched,
    }
}

/// Batched vs looped forward of the detector surrogate (`WindowNet`) at
/// the input shape a YOLO window of the given rounded size produces.
fn bench_windownet_batched(window: (u32, u32), batch: usize, reps: usize) -> BatchedBench {
    let net = WindowNet::new(&DetectorConfig::new(DetectorArch::YoloV3, 0.5), 42);
    let (iw, ih) = net.input_dims(window);
    let xs: Vec<Tensor3> = (0..batch)
        .map(|i| {
            let mut t = Tensor3::zeros(1, ih, iw);
            for (j, v) in t.data.iter_mut().enumerate() {
                *v = (((j + 31 * i) % 257) as f32) / 257.0;
            }
            t
        })
        .collect();
    let refs: Vec<&Tensor3> = xs.iter().collect();

    let outs = net.forward_batched(&refs);
    let mut y = Tensor3::zeros(0, 0, 0);
    for (i, x) in xs.iter().enumerate() {
        net.forward_into(x, &mut y);
        assert_eq!(
            y, outs[i],
            "batched WindowNet forward diverged from looped at item {i} (batch {batch})"
        );
    }

    let looped = time_per_call(reps, || {
        for x in &xs {
            net.forward_into(x, &mut y);
        }
    }) / batch as f64;
    let batched = time_per_call(reps, || {
        let _ = net.forward_batched(&refs);
    }) / batch as f64;
    BatchedBench {
        shape: format!("yolo-window-{}x{}", window.0, window.1),
        in_w: iw,
        in_h: ih,
        batch,
        reps,
        looped_seconds_per_window: looped,
        batched_seconds_per_window: batched,
        speedup_batched_over_looped: looped / batched,
    }
}

fn main() {
    let smoke = matches!(std::env::args().nth(1).as_deref(), Some("tiny"));
    let (report_name, mode, proxy, matmul_shapes, reps) = if smoke {
        (
            "BENCH_kernels_smoke",
            "smoke",
            bench_proxy(96, 64, 3),
            vec![(6, 27, 256), (16, 64, 128)],
            3,
        )
    } else {
        (
            "BENCH_kernels",
            "full",
            bench_proxy(384, 224, 100),
            // The proxy's own GEMM shapes (encoder layers 1–3 at native
            // input) plus a larger square for headroom.
            vec![(3, 9, 21504), (6, 27, 5376), (6, 54, 1344), (64, 64, 4096)],
            200,
        )
    };
    let matmul: Vec<MatmulBench> = matmul_shapes
        .into_iter()
        .map(|(m, k, n)| bench_matmul(m, k, n, reps))
        .collect();

    // Batched-vs-looped sweep: per-window wall-clock of one batched
    // forward over N same-size windows against N single forwards, at
    // the proxy architecture (window-scale input) and the detector
    // surrogate at a typical YOLO window. Smoke mode shrinks shapes and
    // reps; the sweep itself covers the same batch sizes.
    // The gated proxy entry runs at the window-scale 32×32 input (a
    // 64×64 detector window at scale 0.5): small per-item problems are
    // where looped forwards can't amortize and batching genuinely pays.
    let (proxy_window, yolo_window, batched_reps) = if smoke {
        ((48usize, 32usize), (96u32, 64u32), 3usize)
    } else {
        ((48usize, 32usize), (128u32, 96u32), 30usize)
    };
    let mut batched_vs_looped: Vec<BatchedBench> = Vec::new();
    for &batch in &[1usize, 2, 4, 8, 16] {
        batched_vs_looped.push(bench_proxy_batched(
            proxy_window.0,
            proxy_window.1,
            batch,
            batched_reps,
        ));
    }
    for &batch in &[1usize, 2, 4, 8, 16] {
        batched_vs_looped.push(bench_windownet_batched(yolo_window, batch, batched_reps));
    }

    print_table(
        "Proxy forward pass — naive vs GEMM kernel path (wall clock)",
        &["input", "reps", "naive s", "gemm s", "auto s", "speedup"],
        &[vec![
            format!("{}x{}", proxy.in_w, proxy.in_h),
            proxy.reps.to_string(),
            format!("{:.6}", proxy.naive_seconds_per_pass),
            format!("{:.6}", proxy.gemm_seconds_per_pass),
            format!("{:.6}", proxy.auto_seconds_per_pass),
            format!("{:.2}x", proxy.speedup_gemm_over_naive),
        ]],
    );
    let rows: Vec<Vec<String>> = matmul
        .iter()
        .map(|b| {
            vec![
                format!("{}x{}x{}", b.m, b.k, b.n),
                b.reps.to_string(),
                format!("{:.6}", b.naive_seconds),
                format!("{:.6}", b.blocked_seconds),
                format!("{:.2}x", b.speedup),
            ]
        })
        .collect();
    print_table(
        "Blocked matmul vs naive (wall clock)",
        &["m x k x n", "reps", "naive s", "blocked s", "speedup"],
        &rows,
    );
    let rows: Vec<Vec<String>> = batched_vs_looped
        .iter()
        .map(|b| {
            vec![
                b.shape.clone(),
                format!("{}x{}", b.in_w, b.in_h),
                b.batch.to_string(),
                format!("{:.6}", b.looped_seconds_per_window),
                format!("{:.6}", b.batched_seconds_per_window),
                format!("{:.2}x", b.speedup_batched_over_looped),
            ]
        })
        .collect();
    print_table(
        "Batched vs looped forward — per-window wall clock",
        &[
            "shape",
            "input",
            "batch",
            "looped s/win",
            "batched s/win",
            "speedup",
        ],
        &rows,
    );

    if !smoke {
        // Regression guard for the tentpole claim (the recorded full
        // runs show >3x; 1.5x allows for noisy shared machines).
        assert!(
            proxy.speedup_gemm_over_naive > 1.5,
            "GEMM proxy speedup regressed to {:.2}x",
            proxy.speedup_gemm_over_naive
        );
    }
    // Batched-vs-looped gate: at batch >= 4 the batched forward must
    // actually pay off per window. Full mode holds the tentpole claim
    // (>= 1.5x on the proxy shape); smoke mode only guards against the
    // batched path regressing below the looped one on tiny shapes and
    // rep counts, where timing noise dominates.
    let gate = if smoke { 1.0 } else { 1.5 };
    for b in &batched_vs_looped {
        if b.batch >= 4 && b.shape == "proxy-window" {
            assert!(
                b.speedup_batched_over_looped >= gate,
                "batched {} at batch {} regressed to {:.2}x (gate {:.1}x)",
                b.shape,
                b.batch,
                b.speedup_batched_over_looped,
                gate
            );
        }
    }

    write_json(
        report_name,
        &KernelsReport {
            mode: mode.to_string(),
            proxy,
            matmul,
            batched_vs_looped,
        },
    );
}
