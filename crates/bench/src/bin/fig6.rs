//! Figure 6: cost breakdown of OTIF on Caldot1 — one-time pre-processing
//! components vs execution components (which scale with dataset size),
//! at the fastest configuration within 5 % of the best achieved accuracy.
//!
//! Usage: `cargo run --release -p otif-bench --bin fig6 [tiny|small|experiment]`

use otif_bench::harness::{make_dataset, otif_options, prepare_otif, scale_from_args};
use otif_bench::report::{print_table, secs, write_json};
use otif_sim::DatasetKind;
use serde::Serialize;

#[derive(Serialize)]
struct BreakdownEntry {
    component: String,
    seconds: f64,
    phase: String,
}

fn main() {
    let scale = scale_from_args();
    eprintln!("[fig6] preparing OTIF on caldot1");
    let dataset = make_dataset(DatasetKind::Caldot1, scale);
    let hour = dataset.scale.hour_scale();
    let otif = prepare_otif(&dataset, otif_options(scale));

    let point = otif.pick_config(0.05);
    eprintln!("[fig6] executing {}", point.config.describe());
    let (_, exec_ledger) = otif.execute(&point.config, &dataset.test);

    let mut entries: Vec<BreakdownEntry> = Vec::new();
    for (c, s) in otif.prep_ledger.breakdown() {
        entries.push(BreakdownEntry {
            component: c.name().to_string(),
            seconds: s,
            phase: "pre-processing".into(),
        });
    }
    for (c, s) in exec_ledger.breakdown() {
        entries.push(BreakdownEntry {
            component: c.name().to_string(),
            seconds: s * hour,
            phase: "execution (per hour of video)".into(),
        });
    }

    let rows: Vec<Vec<String>> = entries
        .iter()
        .map(|e| vec![e.phase.clone(), e.component.clone(), secs(e.seconds)])
        .collect();
    print_table(
        &format!(
            "Figure 6 — OTIF cost breakdown, caldot1 ({})",
            point.config.describe()
        ),
        &["phase", "component", "seconds"],
        &rows,
    );
    println!(
        "\nTotal pre-processing: {} s; total execution: {} s per hour of video",
        secs(otif.prep_ledger.total()),
        secs(exec_ledger.execution_total() * hour)
    );

    write_json("fig6", &entries);
}
