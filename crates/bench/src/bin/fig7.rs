//! Figure 7: direct evaluation of the segmentation proxy model on Caldot1.
//!
//! Left panel: detection speed (simulated per-frame detector seconds) vs
//! mAP@50, for the detector alone at varying resolutions and for the
//! detector + proxy with k ∈ {1, 2, 3, 4} window sizes (k = 1 ≡ detector
//! only).
//!
//! Right panel: per-cell precision–recall curves of the proxy model at
//! the five trained input resolutions, against cells intersecting
//! ground-truth boxes on held-out frames.
//!
//! Usage: `cargo run --release -p otif-bench --bin fig7 [tiny|small|experiment]`

use otif_bench::harness::{make_dataset, otif_options, prepare_otif, scale_from_args, SEED};
use otif_bench::report::{print_table, write_json};
use otif_core::grouping::group_cells;
use otif_core::proxy::CellGrid;
use otif_core::windows::{cells_of_rects, select_window_sizes};
use otif_cv::{
    average_precision, CostLedger, CostModel, DetectorArch, DetectorConfig, SimDetector,
};
use otif_sim::{DatasetKind, Renderer};
use serde::Serialize;

#[derive(Serialize)]
struct SpeedMapPoint {
    method: String,
    config: String,
    per_frame_seconds: f64,
    map50: f32,
}

#[derive(Serialize)]
struct PrPoint {
    resolution: String,
    threshold: f32,
    precision: f32,
    recall: f32,
}

fn main() {
    let scale = scale_from_args();
    eprintln!("[fig7] preparing OTIF on caldot1");
    let dataset = make_dataset(DatasetKind::Caldot1, scale);
    let otif = prepare_otif(&dataset, otif_options(scale));
    let cost = CostModel::default();
    let (fw, fh) = otif.frame_dims();

    // Held-out labeled frames (the paper hand-labels 50): sample evenly
    // from the test split.
    let mut labeled: Vec<(usize, usize)> = Vec::new(); // (clip, frame)
    'outer: for (ci, clip) in dataset.test.iter().enumerate() {
        for f in (0..clip.num_frames()).step_by(7) {
            labeled.push((ci, f));
            if labeled.len() >= 50 {
                break 'outer;
            }
        }
    }

    // ---- Left panel: YOLOv3 alone vs + proxy with k window sizes ----
    let mut left: Vec<SpeedMapPoint> = Vec::new();
    let ledger = CostLedger::new();

    // detector alone at varying resolutions
    for s in DetectorConfig::SCALES {
        let det = SimDetector::new(DetectorConfig::new(DetectorArch::YoloV3, s), SEED);
        let per_frame: Vec<_> = labeled
            .iter()
            .map(|&(ci, f)| {
                let clip = &dataset.test[ci];
                let dets = det.detect_frame(clip, f, &ledger);
                let gts: Vec<otif_geom::Rect> =
                    clip.gt_boxes(f).into_iter().map(|(_, _, r)| r).collect();
                (dets, gts)
            })
            .collect();
        left.push(SpeedMapPoint {
            method: "yolov3".into(),
            config: format!("scale={s}"),
            per_frame_seconds: det.frame_cost(&dataset.test[0]),
            map50: average_precision(&per_frame, 0.5),
        });
    }

    // detector + proxy with k window sizes
    // window sets built from training-split ground-truth-equivalent cells
    let frames_cells: Vec<Vec<(usize, usize)>> = dataset
        .train
        .iter()
        .flat_map(|clip| {
            (0..clip.num_frames()).step_by(5).map(|f| {
                let rects: Vec<otif_geom::Rect> =
                    clip.gt_boxes(f).into_iter().map(|(_, _, r)| r).collect();
                cells_of_rects(&rects, fw, fh)
            })
        })
        .take(100)
        .collect();
    let proxy = &otif.proxies[otif.proxies.len() / 2]; // mid resolution
    for k in [1usize, 2, 3, 4] {
        let ws = select_window_sizes(
            fw,
            fh,
            &frames_cells,
            k,
            DetectorArch::YoloV3.per_px(),
            DetectorArch::YoloV3.per_call(),
        );
        let det = SimDetector::new(DetectorConfig::new(DetectorArch::YoloV3, 1.0), SEED);
        let mut time_acc = 0.0;
        let per_frame: Vec<_> = labeled
            .iter()
            .map(|&(ci, f)| {
                let clip = &dataset.test[ci];
                let img = Renderer::new(clip).render(f, proxy.in_w, proxy.in_h);
                let l = CostLedger::new();
                let grid = proxy.score_cells(&img, &cost, &l);
                // a recall-oriented threshold, as the tuner would select
                // (§3.5.2 picks by recall, not by a fixed 0.5 cut)
                let windows = group_cells(&grid.positive_cells(0.45), &ws);
                let dets = if windows.is_empty() {
                    Vec::new()
                } else {
                    det.detect_windows(clip, f, &windows, &l)
                };
                time_acc += l.total();
                let gts: Vec<otif_geom::Rect> =
                    clip.gt_boxes(f).into_iter().map(|(_, _, r)| r).collect();
                (dets, gts)
            })
            .collect();
        left.push(SpeedMapPoint {
            method: format!("yolov3+proxy(k={k})"),
            config: format!("|W|={}", ws.sizes.len()),
            per_frame_seconds: time_acc / labeled.len() as f64,
            map50: average_precision(&per_frame, 0.5),
        });
    }

    let rows: Vec<Vec<String>> = left
        .iter()
        .map(|p| {
            vec![
                p.method.clone(),
                p.config.clone(),
                format!("{:.2} ms", p.per_frame_seconds * 1e3),
                format!("{:.3}", p.map50),
            ]
        })
        .collect();
    print_table(
        "Figure 7 (left) — detection speed vs mAP@50 on caldot1",
        &["method", "config", "per-frame time", "mAP@50"],
        &rows,
    );

    // ---- Right panel: proxy per-cell precision–recall per resolution ----
    let mut right: Vec<PrPoint> = Vec::new();
    for proxy in &otif.proxies {
        // score and label every labeled frame's cells
        let mut scored: Vec<(f32, bool)> = Vec::new();
        for &(ci, f) in &labeled {
            let clip = &dataset.test[ci];
            let img = Renderer::new(clip).render(f, proxy.in_w, proxy.in_h);
            let grid = proxy.score_cells(&img, &cost, &ledger);
            let rects: Vec<otif_geom::Rect> =
                clip.gt_boxes(f).into_iter().map(|(_, _, r)| r).collect();
            let gt_cells: std::collections::HashSet<(usize, usize)> =
                cells_of_rects(&rects, fw, fh).into_iter().collect();
            let _ = CellGrid::zeros(1, 1);
            for cy in 0..grid.rows {
                for cx in 0..grid.cols {
                    scored.push((grid.get(cx, cy), gt_cells.contains(&(cx, cy))));
                }
            }
        }
        let total_pos = scored.iter().filter(|(_, l)| *l).count().max(1);
        for t in [0.1f32, 0.3, 0.5, 0.7, 0.8, 0.9, 0.95, 0.99] {
            let tp = scored.iter().filter(|(s, l)| *s > t && *l).count();
            let fp = scored.iter().filter(|(s, l)| *s > t && !*l).count();
            let precision = if tp + fp > 0 {
                tp as f32 / (tp + fp) as f32
            } else {
                1.0
            };
            right.push(PrPoint {
                resolution: format!("{}x{}", proxy.in_w, proxy.in_h),
                threshold: t,
                precision,
                recall: tp as f32 / total_pos as f32,
            });
        }
    }
    let rows: Vec<Vec<String>> = right
        .iter()
        .map(|p| {
            vec![
                p.resolution.clone(),
                format!("{:.2}", p.threshold),
                format!("{:.3}", p.precision),
                format!("{:.3}", p.recall),
            ]
        })
        .collect();
    print_table(
        "Figure 7 (right) — proxy per-cell precision–recall by input resolution",
        &["resolution", "B_proxy", "precision", "recall"],
        &rows,
    );

    write_json("fig7_left", &left);
    write_json("fig7_right", &right);
}
