//! Table 3: frame-level limit queries — OTIF vs BlazeIt vs TASTI.
//!
//! Six queries (§4.2): count queries on UAV and Tokyo, region queries on
//! Jackson and Caldot1, hot-spot queries on Warsaw and Amsterdam.
//! Reports average pre-processing / query / total time and accuracy, for
//! 1 query and for 5 queries (estimated): BlazeIt's proxy pass and both
//! methods' query phases are per-query; OTIF's and TASTI's pre-processing
//! are query-agnostic.
//!
//! Usage: `cargo run --release -p otif-bench --bin table3 [tiny|small|experiment]`

use otif_baselines::{BlazeItBaseline, TastiBaseline};
use otif_bench::harness::{make_dataset, otif_options, prepare_otif, scale_from_args, SEED};
use otif_bench::report::{pct, print_table, secs, write_json};
use otif_cv::CostModel;
use otif_geom::{Point, Polygon};
use otif_query::{FrameLimitQuery, FrameQueryKind};
use otif_sim::{Dataset, DatasetKind};
use serde::Serialize;
use std::time::Instant;

/// Build the six frame-level queries, with N calibrated per dataset so
/// matches exist but are not ubiquitous (the paper sizes parameters for
/// < 250 matching segments).
fn queries(dataset: &Dataset) -> Option<FrameLimitQuery> {
    let (w, h) = (dataset.scene.width as f32, dataset.scene.height as f32);
    let mk = |kind: FrameQueryKind, n: usize| FrameLimitQuery {
        kind,
        n,
        limit: 25,
        min_separation_s: 5.0,
    };
    let q = match dataset.kind {
        DatasetKind::Uav => mk(FrameQueryKind::Count, 4),
        DatasetKind::Tokyo => mk(FrameQueryKind::Count, 5),
        DatasetKind::Jackson => mk(
            FrameQueryKind::Region(Polygon::new(vec![
                Point::new(w * 0.3, h * 0.3),
                Point::new(w * 0.7, h * 0.3),
                Point::new(w * 0.7, h * 0.7),
                Point::new(w * 0.3, h * 0.7),
            ])),
            2,
        ),
        DatasetKind::Caldot1 => mk(
            FrameQueryKind::Region(Polygon::new(vec![
                Point::new(0.0, h * 0.4),
                Point::new(w * 0.5, h * 0.4),
                Point::new(w * 0.5, h * 0.85),
                Point::new(0.0, h * 0.85),
            ])),
            3,
        ),
        DatasetKind::Warsaw => mk(FrameQueryKind::HotSpot { radius: 80.0 }, 4),
        DatasetKind::Amsterdam => mk(FrameQueryKind::HotSpot { radius: 90.0 }, 2),
        _ => return None,
    };
    Some(q)
}

#[derive(Serialize)]
struct QueryResult {
    dataset: String,
    method: String,
    preprocess_seconds_hour: f64,
    query_seconds: f64,
    accuracy: f32,
    outputs: usize,
    detector_invocations: usize,
}

fn main() {
    let scale = scale_from_args();
    let cost = CostModel::default();
    let kinds = [
        DatasetKind::Uav,
        DatasetKind::Tokyo,
        DatasetKind::Jackson,
        DatasetKind::Caldot1,
        DatasetKind::Warsaw,
        DatasetKind::Amsterdam,
    ];

    let mut results: Vec<QueryResult> = Vec::new();
    for kind in kinds {
        eprintln!("[table3] running {}", kind.name());
        let dataset = make_dataset(kind, scale);
        let hour = dataset.scale.hour_scale();
        let query = queries(&dataset).unwrap();

        // ---- OTIF: pre-process all tracks once, post-process per query.
        let otif = prepare_otif(&dataset, otif_options(scale));
        let point = otif.pick_config(0.05);
        let (tracks, ledger) = otif.execute(&point.config, &dataset.test);
        let t0 = Instant::now();
        let outputs = query.execute_on_tracks(&tracks, &dataset.test);
        let otif_query_secs = t0.elapsed().as_secs_f64();
        results.push(QueryResult {
            dataset: kind.name().to_string(),
            method: "otif".into(),
            preprocess_seconds_hour: ledger.execution_total() * hour,
            query_seconds: otif_query_secs,
            accuracy: query.accuracy(&outputs, &dataset.test),
            outputs: outputs.len(),
            detector_invocations: 0,
        });

        // ---- BlazeIt: per-query proxy pass + detector at query time.
        let low_proxy = otif.proxies.last().expect("trained proxies");
        let blazeit = BlazeItBaseline::new(otif.theta_best.detector, SEED, cost, low_proxy);
        let run = blazeit.execute(&query, &dataset.test);
        results.push(QueryResult {
            dataset: kind.name().to_string(),
            method: "blazeit".into(),
            preprocess_seconds_hour: run.preprocess_seconds * hour,
            query_seconds: run.query_seconds,
            accuracy: query.accuracy(&run.outputs, &dataset.test),
            outputs: run.outputs.len(),
            detector_invocations: run.detector_invocations,
        });

        // ---- TASTI: query-agnostic index (mid-res extractor) + detector
        // at query time.
        let extractor = otif
            .proxies
            .iter()
            .find(|p| p.in_w * 2 >= otif.proxies[0].in_w)
            .unwrap_or(&otif.proxies[0]);
        let tasti = TastiBaseline::new(otif.theta_best.detector, SEED, cost, extractor);
        let index = tasti.build_index(&dataset.test);
        let (outs, qsecs, inv) = tasti.execute(&query, &index, &dataset.test);
        results.push(QueryResult {
            dataset: kind.name().to_string(),
            method: "tasti".into(),
            preprocess_seconds_hour: index.build_seconds * hour,
            query_seconds: qsecs,
            accuracy: query.accuracy(&outs, &dataset.test),
            outputs: outs.len(),
            detector_invocations: inv,
        });
    }

    // ---- aggregate into the paper's Table 3 shape
    let avg = |method: &str, f: &dyn Fn(&QueryResult) -> f64| -> f64 {
        let vals: Vec<f64> = results
            .iter()
            .filter(|r| r.method == method)
            .map(f)
            .collect();
        vals.iter().sum::<f64>() / vals.len().max(1) as f64
    };

    let mut rows = Vec::new();
    for (label, five) in [("1 query", false), ("5 queries (estimated)", true)] {
        for method in ["otif", "blazeit", "tasti"] {
            let pre = avg(method, &|r| r.preprocess_seconds_hour);
            let q = avg(method, &|r| r.query_seconds);
            let acc = avg(method, &|r| r.accuracy as f64);
            // per-query components scale ×5: BlazeIt's proxy pass is
            // query-specific; all query phases are per-query.
            let (pre5, q5) = if five {
                (if method == "blazeit" { pre * 5.0 } else { pre }, q * 5.0)
            } else {
                (pre, q)
            };
            rows.push(vec![
                label.to_string(),
                method.to_string(),
                secs(pre5),
                secs(q5),
                secs(pre5 + q5),
                pct(acc as f32),
            ]);
        }
    }
    print_table(
        "Table 3 — frame-level limit queries (averages over 6 queries)",
        &[
            "queries",
            "method",
            "pre-processing (s)",
            "query (s)",
            "total (s)",
            "accuracy",
        ],
        &rows,
    );
    println!(
        "\nNote: OTIF query time is real wall-clock post-processing of tracks;\n\
         BlazeIt/TASTI query times are simulated detector seconds (the paper\n\
         likewise excludes decode from their query times)."
    );

    write_json("table3", &results);
}
