//! Robustness benchmark: crash-consistency of the track store and
//! overload safety of the query server.
//!
//! **Crash sweep** — tracks are extracted once, then ingested into a
//! fresh store over and over, each run crashing at a different
//! `(operation, ordinal)` point of the store's I/O sequence (every
//! write, rename and append observed in a fault-free counting run, plus
//! a torn-append variant at every journal append). After each crash the
//! store is repaired with `fsck` and reopened. Hard assertions, at
//! every crash point:
//!
//! - **zero acknowledged-ingest loss** — the recovered store holds
//!   exactly the clips whose `ingest_clip` returned `Ok` before the
//!   crash, never fewer;
//! - **byte-identical answers** — the mixed workload over the recovered
//!   store fingerprints identically to a never-crashed reference store
//!   holding the same clip prefix, with zero degraded answers.
//!
//! **Transient reads** — a store opened through an I/O layer that fails
//! reads transiently must heal through the bounded deterministic
//! retry/backoff schedule and still answer byte-identically.
//!
//! **Overload** — the same workload is replayed against a saturating
//! 8-client burst under a tight `OverloadPolicy` (one evaluation slot,
//! a two-deep queue, a 50 ms deadline). Hard assertions: some queries
//! are shed; every *non-degraded* answer is byte-identical to the
//! unloaded reference, query for query; p99 latency stays bounded by
//! the deadline plus one slow evaluation; degraded answers decode to
//! self-marking [`Answer::Approximate`].
//!
//! Usage: `cargo run --release -p otif-bench --bin robustness
//! [tiny|small|experiment|smoke]` — `smoke` is the CI entry: tiny
//! scale, results to `BENCH_robustness_smoke.json` instead of
//! `BENCH_robustness.json`.

use otif_bench::harness::SEED;
use otif_bench::report::{print_table, write_json};
use otif_core::config::{OtifConfig, TrackerKind};
use otif_core::pipeline::ExecutionContext;
use otif_cv::{CostLedger, CostModel, DetectorArch, DetectorConfig};
use otif_engine::{Engine, EngineOptions};
use otif_serve::{
    fsck, mixed_workload, run_workload_traced, Answer, CacheMode, ClipInfo, FaultyIo,
    OverloadPolicy, QueryServer, RealIo, ServeOptions, StoreFaultPlan, StoreIo, StoreOp,
    StoreOptions, TrackStore, WorkloadRun,
};
use otif_sim::{Clip, DatasetConfig, DatasetKind, DatasetScale};
use otif_track::Track;
use serde::Serialize;
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Duration;

const JOURNAL_FILE: &str = "journal.log";

/// Cold-read budget for the overload scenario, spread over the store's
/// clips: a full cold evaluation takes ~30 ms — long enough that the
/// saturating burst genuinely overlaps in the server, short enough that
/// an admitted query still beats the 50 ms deadline.
fn slow_read_delay(clips: usize) -> Duration {
    Duration::from_secs_f64((0.030 / clips.max(1) as f64).clamp(0.002, 0.015))
}

/// An I/O layer that stands in for cold storage: every read sleeps a
/// fixed delay before delegating. This is what makes the overload
/// scenario deterministic at tiny dataset scales — without it, queries
/// finish faster than the burst arrives and the admission queue never
/// fills.
struct SlowIo {
    inner: RealIo,
    delay: Duration,
}

impl StoreIo for SlowIo {
    fn read(&self, path: &Path) -> Result<Vec<u8>, otif_serve::StoreError> {
        std::thread::sleep(self.delay);
        self.inner.read(path)
    }
    fn write(&self, path: &Path, bytes: &[u8]) -> Result<(), otif_serve::StoreError> {
        self.inner.write(path, bytes)
    }
    fn rename(&self, from: &Path, to: &Path) -> Result<(), otif_serve::StoreError> {
        self.inner.rename(from, to)
    }
    fn append(&self, path: &Path, bytes: &[u8]) -> Result<(), otif_serve::StoreError> {
        self.inner.append(path, bytes)
    }
    fn create_dir_all(&self, path: &Path) -> Result<(), otif_serve::StoreError> {
        self.inner.create_dir_all(path)
    }
    fn exists(&self, path: &Path) -> bool {
        self.inner.exists(path)
    }
    fn remove_file(&self, path: &Path) -> Result<(), otif_serve::StoreError> {
        self.inner.remove_file(path)
    }
    fn list(&self, dir: &Path) -> Result<Vec<String>, otif_serve::StoreError> {
        self.inner.list(dir)
    }
}

#[derive(Serialize)]
struct CrashPoint {
    op: &'static str,
    ordinal: u64,
    kind: &'static str,
    /// Ingests acknowledged (`Ok`) before the crash surfaced.
    acked: usize,
    /// Clips in the store after fsck --repair + reopen.
    recovered: usize,
    /// Whether fsck had anything to repair.
    repaired: bool,
    /// Workload over the recovered store fingerprints identically to
    /// the reference prefix store.
    answers_match: bool,
}

#[derive(Serialize)]
struct OverloadReport {
    reference: WorkloadRun,
    loaded: WorkloadRun,
    shed_queries: u64,
    shed_fraction: f64,
    /// Every non-degraded loaded answer matched the reference, per query.
    nondegraded_identical: bool,
    /// The p99 bound the loaded run was held to, in milliseconds.
    p99_bound_ms: f64,
}

#[derive(Serialize)]
struct RobustnessReport {
    scale: String,
    dataset: String,
    clips: usize,
    queries: usize,
    crash_points: usize,
    zero_acked_loss: bool,
    recovered_answers_identical: bool,
    transient_read_retries: u64,
    transient_backoff_seconds: f64,
    overload: OverloadReport,
    sweep: Vec<CrashPoint>,
}

/// Extract per-clip tracks once (untrained operating point: fast and
/// deterministic).
fn extract_tracks(scale: DatasetScale) -> (Vec<Clip>, Vec<Vec<Track>>) {
    let cfg = OtifConfig {
        detector: DetectorConfig::new(DetectorArch::YoloV3, 0.5),
        proxy: None,
        gap: 4,
        tracker: TrackerKind::Sort,
        refine: false,
    };
    let ctx = ExecutionContext::bare(CostModel::default(), SEED);
    let clips = DatasetConfig::new(DatasetKind::Caldot1, scale, SEED)
        .generate()
        .test;
    let run = Engine::run(
        &cfg,
        &ctx,
        &clips,
        &EngineOptions::with_streams(4),
        &CostLedger::new(),
    );
    let tracks: Vec<Vec<Track>> = run
        .tracks
        .iter()
        .map(|o| o.tracks().expect("healthy engine run").to_vec())
        .collect();
    (clips, tracks)
}

fn clip_info(clip: &Clip) -> ClipInfo {
    ClipInfo {
        num_frames: clip.num_frames(),
        fps: clip.scene.fps as f32,
        width: clip.scene.width as f32,
        height: clip.scene.height as f32,
    }
}

/// Workload fingerprint of a store: the deterministic mixed workload at
/// 2 clients, single-threaded evaluation, no degradation tolerated.
fn exact_fingerprint(store: Arc<TrackStore>, repeats: usize) -> u64 {
    let workload = mixed_workload(store.metas(), repeats, SEED);
    let server = QueryServer::new(store, 256);
    let opts = ServeOptions {
        threads: 1,
        pruning: true,
        cache: CacheMode::On,
    };
    let (run, _) = run_workload_traced(&server, &workload, 2, &opts).expect("exact workload");
    assert_eq!(run.degraded, 0, "reference runs must not degrade");
    run.answers_fingerprint
}

/// Never-crashed reference fingerprints for every clip-count prefix:
/// `prefix_fp[k]` is the workload fingerprint over a store holding the
/// first `k` clips.
fn prefix_fingerprints(
    base: &Path,
    clips: &[Clip],
    tracks: &[Vec<Track>],
    repeats: usize,
) -> Vec<u64> {
    let mut out = Vec::with_capacity(clips.len() + 1);
    for k in 0..=clips.len() {
        let dir = base.join(format!("ref-{k}"));
        let mut store = TrackStore::create(&dir).expect("create reference store");
        for (clip, ts) in clips.iter().take(k).zip(tracks) {
            store.ingest_clip(&clip_info(clip), ts).expect("ingest");
        }
        out.push(exact_fingerprint(Arc::new(store), repeats));
    }
    out
}

/// Ingest everything through a faulty I/O layer; the first error is
/// the simulated crash. Returns the number of acknowledged ingests.
fn ingest_until_crash(
    dir: &Path,
    io: Arc<dyn StoreIo>,
    clips: &[Clip],
    tracks: &[Vec<Track>],
) -> usize {
    let Ok(mut store) = TrackStore::create_with(dir, io, StoreOptions::default()) else {
        return 0;
    };
    let mut acked = 0usize;
    for (clip, ts) in clips.iter().zip(tracks) {
        match store.ingest_clip(&clip_info(clip), ts) {
            Ok(_) => acked += 1,
            Err(_) => break,
        }
    }
    acked
}

/// One `(operation, ordinal)` coordinate of the crash sweep.
#[derive(Clone, Copy)]
struct CrashSpec {
    op: StoreOp,
    ordinal: u64,
    /// Torn (partial) write instead of a clean crash — only meaningful
    /// for journal appends.
    torn: bool,
}

/// Run one crash point end to end: ingest-until-crash, repair, reopen,
/// compare against the reference prefix.
fn run_crash_point(
    base: &Path,
    clips: &[Clip],
    tracks: &[Vec<Track>],
    prefix_fp: &[u64],
    repeats: usize,
    spec: CrashSpec,
) -> CrashPoint {
    let CrashSpec { op, ordinal, torn } = spec;
    let dir = base.join(format!(
        "crash-{}-{}-{}",
        op.name(),
        ordinal,
        if torn { "torn" } else { "crash" }
    ));
    let plan = if torn {
        StoreFaultPlan::torn_at(op, ordinal)
    } else {
        StoreFaultPlan::crash_at(op, ordinal)
    };
    let acked = ingest_until_crash(&dir, Arc::new(FaultyIo::new(RealIo, plan)), clips, tracks);

    // recovery happens on the real filesystem: replay the journal,
    // truncate debris, remove orphans, rebuild the checkpoint
    let report = fsck(&dir, true).expect("fsck --repair");
    assert!(
        report.missing_clips.is_empty(),
        "{} @ {ordinal}: acknowledged clip(s) {:?} lost their payload",
        op.name(),
        report.missing_clips
    );
    let repaired = report.repaired;

    // a crash before the journal existed leaves an unborn store — legal
    // only when nothing was acknowledged
    let (recovered, answers_match) = if dir.join(JOURNAL_FILE).exists() {
        let store = TrackStore::open(&dir).expect("reopen repaired store");
        let n = store.len();
        let fp = exact_fingerprint(Arc::new(store), repeats);
        (n, fp == prefix_fp[n])
    } else {
        (0, true)
    };
    assert!(
        recovered >= acked,
        "{} @ {ordinal}: {acked} ingest(s) acknowledged but only {recovered} recovered",
        op.name()
    );
    assert!(
        answers_match,
        "{} @ {ordinal}: recovered store answers diverged from the reference prefix",
        op.name()
    );
    CrashPoint {
        op: op.name(),
        ordinal,
        kind: if torn { "torn" } else { "crash" },
        acked,
        recovered,
        repaired,
        answers_match,
    }
}

/// Transient read faults heal through the bounded deterministic
/// retry/backoff schedule without changing answer bytes.
fn transient_reads(dir: &Path, want_fp: u64, repeats: usize) -> (u64, f64) {
    let io: Arc<dyn StoreIo> = Arc::new(FaultyIo::new(
        RealIo,
        // read 0 is the journal on open; fail the next two clip reads
        // twice each — both within the default read_retries budget
        StoreFaultPlan::transient_reads(1, 2).with(otif_serve::StoreFaultSpec {
            op: StoreOp::Read,
            ordinal: 4,
            kind: otif_serve::StoreFaultKind::Transient { failures: 2 },
        }),
    ));
    let store =
        TrackStore::open_with(dir, io, StoreOptions::default()).expect("open through faulty reads");
    let store = Arc::new(store);
    let fp = exact_fingerprint(Arc::clone(&store), repeats);
    assert_eq!(fp, want_fp, "transient read faults must not change answers");
    let retries = store.read_retry_count();
    let backoff = store.retry_backoff_seconds();
    assert!(
        retries >= 2,
        "transient faults were injected but never retried"
    );
    assert!(backoff > 0.0, "retries must charge virtual backoff");
    (retries, backoff)
}

/// The step-load overload scenario: an 8-client burst against a
/// one-slot server with a tight deadline, compared per query against an
/// unloaded reference. Both servers read clips through [`SlowIo`]
/// (cold caches), so the burst's first admitted query holds the slot
/// long enough for the queue to provably overflow.
fn overload(dir: &Path, repeats: usize) -> OverloadReport {
    let slow = |delay| {
        Arc::new(
            TrackStore::open_with(
                dir,
                Arc::new(SlowIo {
                    inner: RealIo,
                    delay,
                }),
                StoreOptions::default(),
            )
            .expect("open through slow reads"),
        )
    };
    let opts = ServeOptions {
        threads: 1,
        pruning: true,
        cache: CacheMode::Off, // every query evaluates — sustained pressure
    };

    let ref_store = slow(slow_read_delay(TrackStore::open(dir).expect("probe").len()));
    let workload = mixed_workload(ref_store.metas(), repeats.max(4), SEED);
    let ref_server = QueryServer::new(Arc::clone(&ref_store), 0);
    let (reference, ref_traces) =
        run_workload_traced(&ref_server, &workload, 1, &opts).expect("reference run");
    assert_eq!(reference.degraded, 0, "unloaded run must not degrade");

    // Generous relative to the ~30 ms cold slot-hold, so admitted
    // queries finish exactly; shedding comes from the queue bound, not
    // the deadline.
    let deadline = Duration::from_millis(250);
    let policy = OverloadPolicy {
        max_concurrent: 1,
        max_queue: 2,
        deadline: Some(deadline),
    };
    let loaded_store = slow(slow_read_delay(ref_store.len()));
    let loaded_server = QueryServer::with_policy(Arc::clone(&loaded_store), 0, policy);
    let (loaded, loaded_traces) =
        run_workload_traced(&loaded_server, &workload, 8, &opts).expect("loaded run");
    let stats = loaded_server.stats();
    assert!(
        stats.shed_queries > 0,
        "an 8-client burst against one slot and a 2-deep queue must shed"
    );
    assert!(
        loaded.degraded < workload.len(),
        "at least one loaded query must be answered exactly, or the \
         byte-identity comparison is vacuous"
    );

    // which queries degrade is timing-dependent; non-degraded answer
    // bytes are not
    let nondegraded_identical = ref_traces
        .iter()
        .zip(&loaded_traces)
        .all(|(r, l)| l.degraded || l.fingerprint == r.fingerprint);
    assert!(
        nondegraded_identical,
        "a non-shed answer under load diverged from the unloaded reference"
    );

    // shed queries answer immediately and queue waits are cut by the
    // deadline, so the tail is bounded by the deadline plus one slow
    // admitted evaluation (plus scheduling slack)
    let p99_bound_ms = deadline.as_secs_f64() * 1e3 + 2.0 * reference.latency.max_ms + 250.0;
    assert!(
        loaded.latency.p99_ms <= p99_bound_ms,
        "p99 under shed ({:.3} ms) exceeded the bound ({p99_bound_ms:.3} ms)",
        loaded.latency.p99_ms
    );

    // degraded answers are self-marking in their canonical bytes
    let zero_deadline = QueryServer::with_policy(
        Arc::clone(&loaded_store),
        0,
        OverloadPolicy {
            max_concurrent: 0,
            max_queue: 0,
            deadline: Some(Duration::ZERO),
        },
    );
    let outcome = zero_deadline
        .execute_robust(&workload[0], &opts)
        .expect("degraded execute");
    assert!(outcome.degraded.is_some(), "zero deadline must degrade");
    assert!(
        Answer::from_bytes(&outcome.bytes).is_approximate(),
        "degraded bytes must decode to Answer::Approximate"
    );

    OverloadReport {
        shed_queries: stats.shed_queries,
        shed_fraction: stats.shed_queries as f64 / workload.len() as f64,
        nondegraded_identical,
        p99_bound_ms,
        reference,
        loaded,
    }
}

fn main() {
    let arg = std::env::args().nth(1);
    let (scale, smoke) = match arg.as_deref() {
        Some("tiny") => (DatasetScale::TINY, false),
        Some("smoke") => (DatasetScale::TINY, true),
        Some("small") => (
            DatasetScale {
                clips_per_split: 4,
                clip_seconds: 10.0,
            },
            false,
        ),
        Some("experiment") | None => (DatasetScale::EXPERIMENT, false),
        Some(other) => panic!("unknown scale '{other}' (expected tiny|small|experiment|smoke)"),
    };
    let scale_name = if smoke {
        "smoke".to_string()
    } else {
        format!("{}x{:.0}s", scale.clips_per_split, scale.clip_seconds)
    };
    let repeats = 3usize;

    let base: PathBuf =
        std::env::temp_dir().join(format!("otif-robustness-bench-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&base);
    let (clips, tracks) = extract_tracks(scale);

    // fault-free counting run: how many of each I/O op does a full
    // ingest perform? Every observed (op, ordinal) is a crash point.
    let counter = Arc::new(FaultyIo::new(RealIo, StoreFaultPlan::none()));
    let counted = ingest_until_crash(
        &base.join("count"),
        Arc::clone(&counter) as Arc<dyn StoreIo>,
        &clips,
        &tracks,
    );
    assert_eq!(
        counted,
        clips.len(),
        "fault-free ingest must ack every clip"
    );
    let op_counts = counter.ops();

    let prefix_fp = prefix_fingerprints(&base, &clips, &tracks, repeats);

    let mut sweep = Vec::new();
    for op in StoreOp::ALL {
        if op == StoreOp::Read {
            continue; // ingest never reads; read faults are swept below
        }
        let count = op_counts.get(&op).copied().unwrap_or(0);
        for ordinal in 0..count {
            let spec = CrashSpec {
                op,
                ordinal,
                torn: false,
            };
            sweep.push(run_crash_point(
                &base, &clips, &tracks, &prefix_fp, repeats, spec,
            ));
            if op == StoreOp::Append {
                // a torn journal append: half the record lands as tail
                // debris that replay + fsck must truncate
                sweep.push(run_crash_point(
                    &base,
                    &clips,
                    &tracks,
                    &prefix_fp,
                    repeats,
                    CrashSpec { torn: true, ..spec },
                ));
            }
        }
    }
    let zero_acked_loss = sweep.iter().all(|p| p.recovered >= p.acked);
    let recovered_answers_identical = sweep.iter().all(|p| p.answers_match);

    let full_ref = base.join(format!("ref-{}", clips.len()));
    let (retries, backoff) = transient_reads(&full_ref, prefix_fp[clips.len()], repeats);

    let store = Arc::new(TrackStore::open(&full_ref).expect("open full reference"));
    let workload_len = mixed_workload(store.metas(), repeats.max(4), SEED).len();
    let over = overload(&full_ref, repeats);

    let report = RobustnessReport {
        scale: scale_name,
        dataset: DatasetKind::Caldot1.name().to_string(),
        clips: clips.len(),
        queries: workload_len,
        crash_points: sweep.len(),
        zero_acked_loss,
        recovered_answers_identical,
        transient_read_retries: retries,
        transient_backoff_seconds: backoff,
        overload: over,
        sweep,
    };

    let rows: Vec<Vec<String>> = StoreOp::ALL
        .iter()
        .filter(|op| **op != StoreOp::Read)
        .map(|op| {
            let pts: Vec<&CrashPoint> = report.sweep.iter().filter(|p| p.op == op.name()).collect();
            vec![
                op.name().to_string(),
                pts.len().to_string(),
                pts.iter().filter(|p| p.repaired).count().to_string(),
                pts.iter().map(|p| p.acked).min().unwrap_or(0).to_string(),
                pts.iter().map(|p| p.acked).max().unwrap_or(0).to_string(),
                "yes".to_string(),
            ]
        })
        .collect();
    print_table(
        "Robustness: crash sweep (all points recovered, zero acked loss)",
        &[
            "op",
            "points",
            "repaired",
            "min acked",
            "max acked",
            "identical",
        ],
        &rows,
    );
    println!(
        "\noverload: shed {}/{} ({:.0}%), loaded p99 {:.3} ms (bound {:.3} ms), \
         non-degraded answers identical: {}; transient reads retried {} time(s) \
         ({:.3} s virtual backoff)",
        report.overload.shed_queries,
        report.queries,
        report.overload.shed_fraction * 100.0,
        report.overload.loaded.latency.p99_ms,
        report.overload.p99_bound_ms,
        report.overload.nondegraded_identical,
        report.transient_read_retries,
        report.transient_backoff_seconds
    );

    write_json(
        if smoke {
            "BENCH_robustness_smoke"
        } else {
            "BENCH_robustness"
        },
        &report,
    );
    std::fs::remove_dir_all(&base).ok();
}
