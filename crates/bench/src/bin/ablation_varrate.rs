//! Design-choice ablation (§3.4, "Inference"): fixed sampling gap vs
//! Miris-style variable-rate gap selection, both driving the recurrent
//! tracker.
//!
//! The paper: *"we found the accuracy of the variable gap method
//! comparable to simply using a fixed gap"* — so OTIF keeps the simpler
//! fixed gap. This binary measures both on the same datasets.
//!
//! Usage: `cargo run --release -p otif-bench --bin ablation_varrate [tiny|small|experiment]`

use otif_bench::harness::{
    make_dataset, otif_options, prepare_otif, scale_from_args, track_query_for,
};
use otif_bench::report::{pct, print_table, secs, write_json};
use otif_core::pipeline::Pipeline;
use otif_cv::CostLedger;
use otif_sim::DatasetKind;
use serde::Serialize;

#[derive(Serialize)]
struct VarRateRow {
    dataset: String,
    gap: usize,
    fixed_seconds_hour: f64,
    fixed_accuracy: f32,
    variable_seconds_hour: f64,
    variable_accuracy: f32,
}

fn main() {
    let scale = scale_from_args();
    let mut rows = Vec::new();
    for kind in [DatasetKind::Caldot1, DatasetKind::Warsaw] {
        eprintln!("[ablation_varrate] {}", kind.name());
        let dataset = make_dataset(kind, scale);
        let hour = dataset.scale.hour_scale();
        let query = track_query_for(&dataset);
        let otif = prepare_otif(&dataset, otif_options(scale));
        let ctx = otif.context();

        for gap in [4usize, 8, 16] {
            // fixed-gap configuration derived from θ_best
            let mut cfg = otif.theta_best;
            cfg.gap = gap;
            cfg.tracker = otif_core::config::TrackerKind::Recurrent;
            cfg.refine = otif.refine_index.is_some();

            let fixed_ledger = CostLedger::new();
            let fixed_tracks: Vec<_> = dataset
                .test
                .iter()
                .map(|c| Pipeline::run_clip(&cfg, &ctx, c, &fixed_ledger))
                .collect();
            let var_ledger = CostLedger::new();
            let var_tracks: Vec<_> = dataset
                .test
                .iter()
                .map(|c| Pipeline::run_clip_variable_rate(&cfg, &ctx, c, &var_ledger, 0.4))
                .collect();

            rows.push(VarRateRow {
                dataset: kind.name().to_string(),
                gap,
                fixed_seconds_hour: fixed_ledger.execution_total() * hour,
                fixed_accuracy: query.accuracy(&fixed_tracks, &dataset.test),
                variable_seconds_hour: var_ledger.execution_total() * hour,
                variable_accuracy: query.accuracy(&var_tracks, &dataset.test),
            });
        }
    }

    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.dataset.clone(),
                r.gap.to_string(),
                secs(r.fixed_seconds_hour),
                pct(r.fixed_accuracy),
                secs(r.variable_seconds_hour),
                pct(r.variable_accuracy),
            ]
        })
        .collect();
    print_table(
        "Ablation — fixed vs variable sampling gap (recurrent tracker)",
        &[
            "dataset",
            "max gap",
            "fixed s/hr",
            "fixed acc",
            "variable s/hr",
            "variable acc",
        ],
        &table,
    );

    write_json("ablation_varrate", &rows);
}
