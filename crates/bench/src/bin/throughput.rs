//! Streams-vs-throughput scaling of the multi-stream engine (§3.2's
//! cross-stream detector batching, the mechanism behind the paper's
//! "process many streams per GPU" deployment numbers).
//!
//! Runs the same clip pool through `otif_engine::Engine` at 1, 2, 4, 8
//! and 16 streams and reports simulated throughput, per-frame detector
//! cost and mean batch occupancy. Per-clip outputs are identical at
//! every stream count (the engine's determinism guarantee), so the
//! curve isolates pure scheduling/batching effects: as streams grow,
//! same-size windows from different streams share detector launches and
//! the per-frame launch overhead amortizes away.
//!
//! Simulated seconds come from the cost model (V100-calibrated); each
//! point also records `wall_seconds`, the wall-clock time the run took
//! on this machine, so kernel-level speedups show up alongside the
//! simulated numbers without being conflated with them.
//!
//! Usage: `cargo run --release -p otif-bench --bin throughput [tiny|small|experiment]`

use otif_bench::harness::{make_dataset, scale_from_args, SEED};
use otif_bench::report::{print_table, write_json};
use otif_core::config::{OtifConfig, TrackerKind};
use otif_core::pipeline::ExecutionContext;
use otif_cv::{CostLedger, CostModel, DetectorArch, DetectorConfig};
use otif_engine::{Engine, EngineOptions};
use otif_sim::{DatasetKind, DatasetScale};
use serde::Serialize;

const STREAM_COUNTS: [usize; 5] = [1, 2, 4, 8, 16];

#[derive(Serialize)]
struct ThroughputPoint {
    streams: usize,
    frames: u64,
    /// Total simulated seconds for the whole run.
    execution_seconds: f64,
    /// Wall-clock seconds the run actually took on this machine — the
    /// real cost of producing the simulated numbers, *not* comparable
    /// to the paper's V100 seconds.
    wall_seconds: f64,
    /// Simulated frames per simulated second.
    throughput_fps: f64,
    /// Detector seconds per processed frame (launch overhead + pixels).
    per_frame_detector_seconds: f64,
    detector_batches: u64,
    mean_batch_occupancy: f64,
    max_frames_in_flight: u64,
}

fn main() {
    // Fixed 16-clip pool so the largest stream count is fully occupied;
    // the scale argument only controls clip length.
    let scale = DatasetScale {
        clips_per_split: 16,
        clip_seconds: scale_from_args().clip_seconds,
    };
    let dataset = make_dataset(DatasetKind::Caldot1, scale);

    // A lean operating point (low detector resolution, moderate gap) so
    // the per-invocation launch overhead is a visible share of detector
    // cost — the share batching can actually remove.
    let config = OtifConfig {
        detector: DetectorConfig::new(DetectorArch::YoloV3, 0.25),
        proxy: None,
        gap: 2,
        tracker: TrackerKind::Sort,
        refine: false,
    };
    let ctx = ExecutionContext::bare(CostModel::default(), SEED);

    let mut points = Vec::new();
    for streams in STREAM_COUNTS {
        let ledger = CostLedger::new();
        let opts = EngineOptions {
            streams,
            ..EngineOptions::default()
        };
        let started = std::time::Instant::now();
        let run = Engine::run(&config, &ctx, &dataset.test, &opts, &ledger);
        let wall_seconds = started.elapsed().as_secs_f64();
        let frames = run.stats.frames;
        points.push(ThroughputPoint {
            streams: run.stats.streams,
            frames,
            execution_seconds: run.stats.execution_seconds,
            wall_seconds,
            throughput_fps: frames as f64 / run.stats.execution_seconds,
            per_frame_detector_seconds: run.stats.stage_seconds.detector / frames as f64,
            detector_batches: run.stats.batches,
            mean_batch_occupancy: run.stats.mean_batch_occupancy,
            max_frames_in_flight: run.stats.max_frames_in_flight,
        });
    }

    let rows: Vec<Vec<String>> = points
        .iter()
        .map(|p| {
            vec![
                p.streams.to_string(),
                p.frames.to_string(),
                format!("{:.2}", p.execution_seconds),
                format!("{:.3}", p.wall_seconds),
                format!("{:.1}", p.throughput_fps),
                format!("{:.6}", p.per_frame_detector_seconds),
                format!("{:.2}", p.mean_batch_occupancy),
                p.max_frames_in_flight.to_string(),
            ]
        })
        .collect();
    print_table(
        "Engine scaling — streams vs simulated throughput (Caldot1, 16 clips)",
        &[
            "streams",
            "frames",
            "sim seconds",
            "wall s",
            "frames/sim-s",
            "detector s/frame",
            "batch occupancy",
            "peak in-flight",
        ],
        &rows,
    );

    // The whole point of cross-stream batching: per-frame detector cost
    // must fall monotonically as streams share launches.
    for w in points.windows(2) {
        if w[1].streams <= 8 {
            assert!(
                w[1].per_frame_detector_seconds < w[0].per_frame_detector_seconds,
                "per-frame detector cost must strictly decrease from {} to {} streams \
                 ({} vs {})",
                w[0].streams,
                w[1].streams,
                w[0].per_frame_detector_seconds,
                w[1].per_frame_detector_seconds
            );
        }
    }

    write_json("BENCH_throughput", &points);
}
