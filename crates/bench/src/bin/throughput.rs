//! Streams-vs-throughput scaling of the multi-stream engine (§3.2's
//! cross-stream detector batching, the mechanism behind the paper's
//! "process many streams per GPU" deployment numbers), plus a decode
//! prefetch sweep exercising the pipelined virtual-time model.
//!
//! Part 1 runs the same clip pool through `otif_engine::Engine` at 1,
//! 2, 4, 8 and 16 streams and reports simulated throughput, per-frame
//! detector cost and mean batch occupancy. Per-clip outputs are
//! identical at every stream count (the engine's determinism
//! guarantee), so the curve isolates pure scheduling/batching effects:
//! as streams grow, same-size windows from different streams share
//! detector launches and the per-frame launch overhead amortizes away.
//!
//! Part 2 fixes 4 streams and sweeps `prefetch_frames` ∈ {1, 4, 16,
//! 64} at a decode-heavy proxy-enabled operating point (the paper's
//! Figure 6 regime, where per-stream CPU work — decode + proxy — is
//! comparable to the shared detector rounds). Charges never move:
//! every `CostLedger` component sum is asserted bitwise identical
//! across prefetch settings; only the critical-path makespan and the
//! per-stage stall accounts change.
//!
//! Simulated seconds come from the cost model (V100-calibrated); each
//! point also records `wall_seconds`, the wall-clock time the run took
//! on this machine, so kernel-level speedups show up alongside the
//! simulated numbers without being conflated with them.
//!
//! Usage: `cargo run --release -p otif-bench --bin throughput [tiny|small|experiment]`

use otif_bench::harness::{make_dataset, scale_from_args, SEED};
use otif_bench::report::{print_table, write_json};
use otif_core::config::{OtifConfig, ProxyParams, TrackerKind};
use otif_core::pipeline::ExecutionContext;
use otif_core::windows::cells_of_rects;
use otif_core::{select_window_sizes, SegProxyModel};
use otif_cv::{
    Component, CostLedger, CostModel, Detection, DetectorArch, DetectorConfig, SimDetector,
};
use otif_engine::{Engine, EngineOptions, StallSeconds};
use otif_sim::{Dataset, DatasetKind, DatasetScale};
use serde::Serialize;

const STREAM_COUNTS: [usize; 5] = [1, 2, 4, 8, 16];
const PREFETCH_WINDOWS: [usize; 4] = [1, 4, 16, 64];
const PREFETCH_STREAMS: usize = 4;

/// Part 3 (elastic scheduler): stream counts swept on a fixed worker
/// pool — the thousand-stream regime the task engine exists for.
const ELASTIC_STREAMS: [usize; 4] = [16, 64, 256, 1000];
const ELASTIC_WORKERS: usize = 4;
/// OS threads allowed beyond the pool: the main thread, the stall
/// watchdog, and a little platform slack.
const THREAD_SLACK: u64 = 4;

/// Makespan improvement the prefetch sweep must demonstrate at
/// `prefetch=16` over `prefetch=1` (the PR's acceptance bar).
const REQUIRED_PIPELINE_SPEEDUP: f64 = 1.5;

#[derive(Serialize)]
struct ThroughputPoint {
    streams: usize,
    frames: u64,
    /// Critical-path makespan of the pipelined virtual-time model.
    execution_seconds: f64,
    /// Plain sum of all stage charges (prefetch-independent).
    serial_seconds: f64,
    /// Wall-clock seconds the run actually took on this machine — the
    /// real cost of producing the simulated numbers, *not* comparable
    /// to the paper's V100 seconds.
    wall_seconds: f64,
    /// Simulated frames per simulated (makespan) second.
    throughput_fps: f64,
    /// Detector seconds per processed frame (launch overhead + pixels).
    per_frame_detector_seconds: f64,
    detector_batches: u64,
    mean_batch_occupancy: f64,
    max_frames_in_flight: u64,
    speedup_vs_serial: f64,
    stall_seconds: StallSeconds,
}

#[derive(Serialize)]
struct PrefetchPoint {
    prefetch_frames: usize,
    frames: u64,
    /// Plain sum of all stage charges — bitwise identical in every row.
    serial_seconds: f64,
    /// Critical-path makespan under this prefetch window.
    execution_seconds: f64,
    wall_seconds: f64,
    speedup_vs_serial: f64,
    stall_seconds: StallSeconds,
}

#[derive(Serialize)]
struct ElasticPoint {
    streams: usize,
    workers: usize,
    frames: u64,
    /// Critical-path makespan of the virtual-time model —
    /// worker-count-independent by construction.
    execution_seconds: f64,
    serial_seconds: f64,
    wall_seconds: f64,
    throughput_fps: f64,
    /// Peak length of the pool's runnable-task backlog.
    peak_runnable_tasks: u64,
    /// Peak `/proc/self/task` count sampled during the run — the
    /// oversubscription guard (must stay ≤ workers + `THREAD_SLACK`).
    peak_os_threads: u64,
    task_polls: u64,
    task_steals: u64,
    mean_batch_occupancy: f64,
}

#[derive(Serialize)]
struct ThroughputReport {
    stream_scaling: Vec<ThroughputPoint>,
    prefetch_sweep: Vec<PrefetchPoint>,
    elastic_scaling: Vec<ElasticPoint>,
}

fn main() {
    // Fixed 16-clip pool so the largest stream count is fully occupied;
    // the scale argument only controls clip length.
    let scale = DatasetScale {
        clips_per_split: 16,
        clip_seconds: scale_from_args().clip_seconds,
    };
    let dataset = make_dataset(DatasetKind::Caldot1, scale);

    let stream_scaling = stream_scaling_sweep(&dataset);
    let prefetch_sweep = prefetch_sweep(&dataset);
    let elastic_scaling = elastic_sweep();

    write_json(
        "BENCH_throughput",
        &ThroughputReport {
            stream_scaling,
            prefetch_sweep,
            elastic_scaling,
        },
    );
}

/// Part 3: up to a thousand streams on a fixed 4-thread worker pool.
/// Each row runs `streams` one-second clips, one clip per stream. Hard
/// gates: every clip completes, the OS thread count never exceeds the
/// pool (+ slack) at 64+ streams, all outputs are bitwise identical
/// across worker counts {1, 2, 8} at 64 streams, and the virtual-time
/// makespan at 16 streams is bit-equal between a 4-worker and a
/// 64-worker pool (worker count is an execution resource, not part of
/// the run's identity).
fn elastic_sweep() -> Vec<ElasticPoint> {
    let config = OtifConfig {
        detector: DetectorConfig::new(DetectorArch::YoloV3, 0.25),
        proxy: None,
        gap: 2,
        tracker: TrackerKind::Sort,
        refine: false,
    };
    let ctx = ExecutionContext::bare(CostModel::default(), SEED);
    let pool = make_dataset(
        DatasetKind::Caldot1,
        DatasetScale {
            clips_per_split: *ELASTIC_STREAMS.iter().max().unwrap(),
            clip_seconds: 1.0,
        },
    )
    .test;

    const COMPONENTS: [Component; 4] = [
        Component::Decode,
        Component::Proxy,
        Component::Detector,
        Component::Tracker,
    ];
    let run_at = |streams: usize, workers: usize| {
        let clips = &pool[..streams];
        let ledger = CostLedger::new();
        let opts = EngineOptions {
            streams,
            workers,
            ..EngineOptions::default()
        };
        let started = std::time::Instant::now();
        let run = Engine::run(&config, &ctx, clips, &opts, &ledger);
        let wall_seconds = started.elapsed().as_secs_f64();
        assert_eq!(
            run.stats.failed_clips, 0,
            "elastic sweep must run fault-free ({streams} streams, {workers} workers)"
        );
        let bits: Vec<u64> = COMPONENTS
            .iter()
            .map(|&c| ledger.get(c).to_bits())
            .collect();
        let tracks = serde_json::to_string(&run.tracks).expect("tracks serialize");
        (run, wall_seconds, bits, tracks)
    };

    let mut points = Vec::new();
    for streams in ELASTIC_STREAMS {
        let (run, wall_seconds, bits, tracks) = run_at(streams, ELASTIC_WORKERS);
        let cap = ELASTIC_WORKERS as u64 + THREAD_SLACK;
        if streams >= 64 {
            assert!(
                run.stats.peak_os_threads <= cap,
                "{streams} streams oversubscribed the pool: peak {} OS threads > cap {cap}",
                run.stats.peak_os_threads
            );
        }
        if streams == 64 {
            // Worker-count elasticity: same bits at 1, 2 and 8 workers.
            for workers in [1usize, 2, 8] {
                let (other, _, other_bits, other_tracks) = run_at(streams, workers);
                assert_eq!(
                    other_bits, bits,
                    "ledger bits diverged at {workers} workers (64 streams)"
                );
                assert_eq!(
                    other.rounds, run.rounds,
                    "round log diverged at {workers} workers (64 streams)"
                );
                assert_eq!(
                    other.stats.execution_seconds.to_bits(),
                    run.stats.execution_seconds.to_bits(),
                    "makespan diverged at {workers} workers (64 streams)"
                );
                assert_eq!(
                    other_tracks, tracks,
                    "tracks diverged at {workers} workers (64 streams)"
                );
            }
        }
        if streams == 16 {
            // Makespan neutrality: the virtual-time model must not see
            // the pool, even wildly oversubscribed.
            let (wide, _, _, _) = run_at(streams, 64);
            assert_eq!(
                wide.stats.execution_seconds.to_bits(),
                run.stats.execution_seconds.to_bits(),
                "virtual makespan at 16 streams must be bit-equal on 4 vs 64 workers"
            );
        }
        points.push(ElasticPoint {
            streams,
            workers: run.stats.workers,
            frames: run.stats.frames,
            execution_seconds: run.stats.execution_seconds,
            serial_seconds: run.stats.serial_seconds,
            wall_seconds,
            throughput_fps: run.stats.frames as f64 / run.stats.execution_seconds,
            peak_runnable_tasks: run.stats.peak_runnable_tasks,
            peak_os_threads: run.stats.peak_os_threads,
            task_polls: run.stats.task_polls,
            task_steals: run.stats.task_steals,
            mean_batch_occupancy: run.stats.mean_batch_occupancy,
        });
    }

    let rows: Vec<Vec<String>> = points
        .iter()
        .map(|p| {
            vec![
                p.streams.to_string(),
                p.workers.to_string(),
                p.frames.to_string(),
                format!("{:.2}", p.execution_seconds),
                format!("{:.1}", p.throughput_fps),
                p.peak_runnable_tasks.to_string(),
                p.peak_os_threads.to_string(),
                p.task_polls.to_string(),
                p.task_steals.to_string(),
                format!("{:.2}", p.mean_batch_occupancy),
                format!("{:.3}", p.wall_seconds),
            ]
        })
        .collect();
    print_table(
        "Elastic scheduler — streams on a fixed 4-worker pool (Caldot1, 1 s clips)",
        &[
            "streams",
            "workers",
            "frames",
            "makespan s",
            "frames/sim-s",
            "peak runnable",
            "peak OS threads",
            "polls",
            "steals",
            "batch occupancy",
            "wall s",
        ],
        &rows,
    );

    let big = points
        .iter()
        .find(|p| p.streams == 256)
        .expect("256-stream row");
    println!(
        "elastic smoke: 256 streams on {} workers, peak {} OS threads (cap {}), \
         outputs bitwise identical across 1/2/8 workers at 64 streams",
        big.workers,
        big.peak_os_threads,
        ELASTIC_WORKERS as u64 + THREAD_SLACK
    );

    points
}

fn stream_scaling_sweep(dataset: &Dataset) -> Vec<ThroughputPoint> {
    // A lean operating point (low detector resolution, moderate gap) so
    // the per-invocation launch overhead is a visible share of detector
    // cost — the share batching can actually remove.
    let config = OtifConfig {
        detector: DetectorConfig::new(DetectorArch::YoloV3, 0.25),
        proxy: None,
        gap: 2,
        tracker: TrackerKind::Sort,
        refine: false,
    };
    let ctx = ExecutionContext::bare(CostModel::default(), SEED);

    let mut points = Vec::new();
    for streams in STREAM_COUNTS {
        let ledger = CostLedger::new();
        let opts = EngineOptions {
            streams,
            ..EngineOptions::default()
        };
        let started = std::time::Instant::now();
        let run = Engine::run(&config, &ctx, &dataset.test, &opts, &ledger);
        let wall_seconds = started.elapsed().as_secs_f64();
        let frames = run.stats.frames;
        points.push(ThroughputPoint {
            streams: run.stats.streams,
            frames,
            execution_seconds: run.stats.execution_seconds,
            serial_seconds: run.stats.serial_seconds,
            wall_seconds,
            throughput_fps: frames as f64 / run.stats.execution_seconds,
            per_frame_detector_seconds: run.stats.stage_seconds.detector / frames as f64,
            detector_batches: run.stats.batches,
            mean_batch_occupancy: run.stats.mean_batch_occupancy,
            max_frames_in_flight: run.stats.max_frames_in_flight,
            speedup_vs_serial: run.stats.pipeline_speedup,
            stall_seconds: run.stats.stall_seconds,
        });
    }

    let rows: Vec<Vec<String>> = points
        .iter()
        .map(|p| {
            vec![
                p.streams.to_string(),
                p.frames.to_string(),
                format!("{:.2}", p.execution_seconds),
                format!("{:.3}", p.wall_seconds),
                format!("{:.1}", p.throughput_fps),
                format!("{:.6}", p.per_frame_detector_seconds),
                format!("{:.2}", p.mean_batch_occupancy),
                p.max_frames_in_flight.to_string(),
                format!("{:.2}", p.speedup_vs_serial),
            ]
        })
        .collect();
    print_table(
        "Engine scaling — streams vs simulated throughput (Caldot1, 16 clips)",
        &[
            "streams",
            "frames",
            "makespan s",
            "wall s",
            "frames/sim-s",
            "detector s/frame",
            "batch occupancy",
            "peak in-flight",
            "vs serial",
        ],
        &rows,
    );

    // The whole point of cross-stream batching: per-frame detector cost
    // must fall monotonically as streams share launches.
    for w in points.windows(2) {
        if w[1].streams <= 8 {
            assert!(
                w[1].per_frame_detector_seconds < w[0].per_frame_detector_seconds,
                "per-frame detector cost must strictly decrease from {} to {} streams \
                 ({} vs {})",
                w[0].streams,
                w[1].streams,
                w[0].per_frame_detector_seconds,
                w[1].per_frame_detector_seconds
            );
        }
    }

    points
}

/// Build the decode-heavy proxy operating point: a briefly trained
/// segmentation proxy plus a window set derived from full-resolution
/// detections on the training split — the same recipe as
/// `Otif::prepare`, but at a fixed configuration so the sweep measures
/// scheduling, not tuning.
fn proxy_operating_point(dataset: &Dataset) -> (SegProxyModel, otif_core::WindowSet, f32) {
    let scene = &dataset.scene;
    let (fw, fh) = (scene.width as f32, scene.height as f32);

    // Pseudo-labels from a full-resolution detector on a few training
    // clips (accuracy is irrelevant here; determinism and realistic
    // window geometry are what matter).
    let labeler = SimDetector::new(DetectorConfig::new(DetectorArch::YoloV3, 1.0), SEED);
    let scratch = CostLedger::new();
    let clips: Vec<_> = dataset.train.iter().take(4).collect();
    let labels: Vec<Vec<Vec<Detection>>> = clips
        .iter()
        .map(|clip| {
            (0..clip.num_frames())
                .map(|f| labeler.detect_frame(clip, f, &scratch))
                .collect()
        })
        .collect();

    let mut proxy = SegProxyModel::new(scene.width as usize, scene.height as usize, 0.375, SEED);
    proxy.train(&clips, &labels, 800, 0.01, SEED ^ 0x9E37);

    let frames_cells: Vec<Vec<(usize, usize)>> = labels
        .iter()
        .flat_map(|per_frame| {
            per_frame.iter().filter(|d| !d.is_empty()).map(|dets| {
                cells_of_rects(&dets.iter().map(|d| d.rect).collect::<Vec<_>>(), fw, fh)
            })
        })
        .take(120)
        .collect();
    let arch = DetectorArch::YoloV3;
    let ws = select_window_sizes(fw, fh, &frames_cells, 4, arch.per_px(), arch.per_call());

    // Calibrate the positive-cell threshold to the trained model's own
    // score distribution (the 85th percentile over sampled training
    // frames, i.e. ~15 % of cells fire). A fixed absolute threshold is
    // brittle: depending on how far this particular init converged it
    // can flip between "every cell positive" (full-frame windows, the
    // detector dominates and pipelining has nothing to overlap) and "no
    // cell positive" (the detector never runs at all).
    let cm = CostModel::default();
    let scratch2 = CostLedger::new();
    let mut scores: Vec<f32> = Vec::new();
    for clip in &clips {
        for f in (0..clip.num_frames()).step_by(7) {
            let img = otif_sim::Renderer::new(clip).render(f, proxy.in_w, proxy.in_h);
            let grid = proxy.score_cells(&img, &cm, &scratch2);
            for cy in 0..grid.rows {
                for cx in 0..grid.cols {
                    scores.push(grid.get(cx, cy));
                }
            }
        }
    }
    scores.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let threshold = scores[(scores.len() as f64 * 0.85) as usize];

    (proxy, ws, threshold)
}

fn prefetch_sweep(dataset: &Dataset) -> Vec<PrefetchPoint> {
    let (proxy, window_set, threshold) = proxy_operating_point(dataset);

    // Decode-heavy operating point: proxy on every frame plus a higher
    // detector input resolution keep per-stream CPU/proxy work
    // comparable to the shared detector rounds, so prefetch has real
    // overlap to expose (with a tiny detector the rounds dominate and
    // pipelining can only shave the fill/drain).
    let config = OtifConfig {
        detector: DetectorConfig::new(DetectorArch::YoloV3, 0.5),
        proxy: Some(ProxyParams {
            resolution_idx: 0,
            threshold,
        }),
        gap: 2,
        tracker: TrackerKind::Sort,
        refine: false,
    };
    let proxies = [proxy];
    let ctx = ExecutionContext {
        cost: CostModel::default(),
        detector_seed: SEED,
        proxies: Some(&proxies),
        window_set: Some(&window_set),
        tracker_model: None,
        refine_index: None,
    };

    const COMPONENTS: [Component; 4] = [
        Component::Decode,
        Component::Proxy,
        Component::Detector,
        Component::Tracker,
    ];

    let mut points: Vec<PrefetchPoint> = Vec::new();
    let mut baseline_bits: Option<(u64, Vec<u64>)> = None;
    for prefetch in PREFETCH_WINDOWS {
        let ledger = CostLedger::new();
        let opts = EngineOptions {
            streams: PREFETCH_STREAMS,
            prefetch_frames: prefetch,
            ..EngineOptions::default()
        };
        let started = std::time::Instant::now();
        let run = Engine::run(&config, &ctx, &dataset.test, &opts, &ledger);
        let wall_seconds = started.elapsed().as_secs_f64();
        assert!(
            run.stats.failed_clips == 0,
            "prefetch sweep must run fault-free"
        );

        // Charges never move: the serial sum and every component sum
        // must be bitwise identical across prefetch settings.
        let bits = (
            run.stats.serial_seconds.to_bits(),
            COMPONENTS
                .iter()
                .map(|&c| ledger.get(c).to_bits())
                .collect::<Vec<u64>>(),
        );
        match &baseline_bits {
            None => baseline_bits = Some(bits),
            Some(base) => assert_eq!(
                *base, bits,
                "ledger sums must be bitwise identical across prefetch settings"
            ),
        }

        points.push(PrefetchPoint {
            prefetch_frames: prefetch,
            frames: run.stats.frames,
            serial_seconds: run.stats.serial_seconds,
            execution_seconds: run.stats.execution_seconds,
            wall_seconds,
            speedup_vs_serial: run.stats.pipeline_speedup,
            stall_seconds: run.stats.stall_seconds,
        });
    }

    let rows: Vec<Vec<String>> = points
        .iter()
        .map(|p| {
            vec![
                p.prefetch_frames.to_string(),
                format!("{:.3}", p.serial_seconds),
                format!("{:.3}", p.execution_seconds),
                format!("{:.2}", p.speedup_vs_serial),
                format!("{:.3}", p.stall_seconds.decode_starved),
                format!("{:.3}", p.stall_seconds.batcher_wait),
                format!("{:.3}", p.stall_seconds.channel_backpressure),
                format!("{:.3}", p.wall_seconds),
            ]
        })
        .collect();
    print_table(
        "Pipelining — decode prefetch vs makespan (Caldot1, 4 streams, proxy on)",
        &[
            "prefetch",
            "serial s",
            "makespan s",
            "vs serial",
            "decode-starved s",
            "batcher-wait s",
            "backpressure s",
            "wall s",
        ],
        &rows,
    );

    // Deeper prefetch can only help (the replay model is monotone in
    // the decode-ahead budget).
    for w in points.windows(2) {
        assert!(
            w[1].execution_seconds <= w[0].execution_seconds,
            "makespan must not regress from prefetch {} to {} ({} vs {})",
            w[0].prefetch_frames,
            w[1].prefetch_frames,
            w[0].execution_seconds,
            w[1].execution_seconds
        );
    }
    let p1 = points
        .iter()
        .find(|p| p.prefetch_frames == 1)
        .expect("prefetch=1 row");
    let p16 = points
        .iter()
        .find(|p| p.prefetch_frames == 16)
        .expect("prefetch=16 row");
    let speedup = p1.execution_seconds / p16.execution_seconds;
    assert!(
        speedup >= REQUIRED_PIPELINE_SPEEDUP,
        "prefetch=16 must beat prefetch=1 by ≥{REQUIRED_PIPELINE_SPEEDUP}× (got {speedup:.3}×: \
         {} s vs {} s)",
        p1.execution_seconds,
        p16.execution_seconds
    );
    println!(
        "pipelining smoke: makespan prefetch=1 {:.6} s vs prefetch=16 {:.6} s \
         ({speedup:.2}x speedup), ledger sums bitwise identical",
        p1.execution_seconds, p16.execution_seconds
    );

    points
}
