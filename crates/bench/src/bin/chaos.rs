//! Chaos harness: crash/resume sweep over the engine's run journal.
//!
//! A reference engine run (no journal) fixes the expected outputs: the
//! per-clip tracks JSON, every cost-ledger component's exact `f64` bit
//! pattern, the batcher's round log and the deterministic stats
//! projection (which includes the detector digest). A journaled run
//! must reproduce all of them; then the run is killed at **every
//! checkpoint ordinal** — the journal is cut to its first `k`
//! acknowledged records, exactly what a crash between the `k`-th and
//! `k+1`-th acknowledgement leaves behind — and resumed. Two more
//! crash families ride along: **torn tails** (half of record `k+1`
//! lands as crash debris after the first `k`) and **mid-rename
//! crashes** (the serve tier's `FaultyIo` adapted onto the engine's
//! `RunIo`, killing the process at a payload rename so a stranded
//! `.tmp` and a journal prefix are what recovery sees).
//!
//! Hard assertions, at every crash point:
//!
//! - **zero acknowledged-clip loss** — every journaled record is
//!   recovered and ghost-replayed (`skipped == acked`);
//! - **byte-identical outputs** — resumed tracks, ledger bits, batcher
//!   rounds and the deterministic projection all equal the reference;
//! - **bounded recomputation** — clips recomputed ≤ unacknowledged
//!   clips + 1 (the `+1` is the clip mid-checkpoint at the kill);
//! - **zero duplicate store entries** — re-acknowledging the resumed
//!   run's clips into a keyed [`TrackStore`] dedupes every one.
//!
//! Usage: `cargo run --release -p otif-bench --bin chaos
//! [tiny|small|experiment|smoke]` — `smoke` is the CI entry: tiny
//! scale, a 3-kill + 1-torn + 1-rename subset, results to
//! `BENCH_chaos_smoke.json` instead of `BENCH_chaos.json`.

use otif_bench::harness::SEED;
use otif_bench::report::{print_table, write_json};
use otif_core::config::{OtifConfig, TrackerKind};
use otif_core::pipeline::ExecutionContext;
use otif_cv::{Component, CostLedger, CostModel, DetectorArch, DetectorConfig};
use otif_engine::{
    run_manifest, DetectorExec, Engine, EngineOptions, RealRunIo, RoundRecord, RunIo, RunJournal,
    RunManifest, RunSession, RUN_CLIPS_DIR, RUN_JOURNAL_FILE, RUN_MANIFEST_FILE,
};
use otif_serve::{ClipInfo, FaultyIo, RealIo, StoreFaultPlan, StoreIo, StoreOp, TrackStore};
use otif_sim::{Clip, DatasetConfig, DatasetKind, DatasetScale};
use otif_track::Track;
use serde::Serialize;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::Arc;

const COMPONENTS: [Component; 5] = [
    Component::Decode,
    Component::Proxy,
    Component::Detector,
    Component::Tracker,
    Component::Refinement,
];

/// The serve tier's deterministic fault injector, adapted onto the
/// engine's [`RunIo`] seam (the engine cannot depend on `otif-serve`,
/// so the adapter lives here): same `(operation, ordinal)` plans, same
/// process-death semantics after a crash fires.
struct ChaosRunIo {
    inner: FaultyIo<RealIo>,
}

fn to_io(e: otif_serve::StoreError) -> io::Error {
    io::Error::other(e.to_string())
}

impl RunIo for ChaosRunIo {
    fn read(&self, path: &Path) -> io::Result<Vec<u8>> {
        self.inner.read(path).map_err(to_io)
    }
    fn write(&self, path: &Path, bytes: &[u8]) -> io::Result<()> {
        self.inner.write(path, bytes).map_err(to_io)
    }
    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        self.inner.rename(from, to).map_err(to_io)
    }
    fn append(&self, path: &Path, bytes: &[u8]) -> io::Result<()> {
        self.inner.append(path, bytes).map_err(to_io)
    }
    fn create_dir_all(&self, path: &Path) -> io::Result<()> {
        self.inner.create_dir_all(path).map_err(to_io)
    }
    fn exists(&self, path: &Path) -> bool {
        self.inner.exists(path)
    }
}

/// Everything a resumed run must reproduce byte for byte.
struct Reference {
    projection: String,
    rounds: Vec<RoundRecord>,
    tracks_json: String,
    tracks: Vec<Vec<Track>>,
    ledger_bits: Vec<u64>,
}

fn ledger_bits(ledger: &CostLedger) -> Vec<u64> {
    COMPONENTS
        .iter()
        .map(|&c| ledger.get(c).to_bits())
        .collect()
}

fn clip_info(clip: &Clip) -> ClipInfo {
    ClipInfo {
        num_frames: clip.num_frames(),
        fps: clip.scene.fps as f32,
        width: clip.scene.width as f32,
        height: clip.scene.height as f32,
    }
}

#[derive(Serialize)]
struct ChaosPoint {
    kind: &'static str,
    ordinal: u64,
    /// Journal records on disk when recovery started (= clips durably
    /// acknowledged before the simulated crash).
    acked: usize,
    /// Clips the resume ghost-replayed from the journal.
    skipped: usize,
    /// Clips the resume computed live.
    recomputed: usize,
    /// Tracks, ledger bits, rounds and projection all matched.
    identical: bool,
}

#[derive(Serialize)]
struct ChaosReport {
    scale: String,
    dataset: String,
    clips: usize,
    /// Checkpoints one uninterrupted journaled run acknowledges.
    checkpoints: usize,
    crash_points: usize,
    zero_acked_loss: bool,
    outputs_identical: bool,
    bounded_recompute: bool,
    zero_duplicate_ingests: bool,
    sweep: Vec<ChaosPoint>,
}

/// Reconstruct a crashed run directory: the manifest, every payload
/// file (payloads land via rename *before* their journal record — at a
/// kill they may exist unacknowledged; recovery must ignore, never
/// trust them), and whatever journal bytes "survived".
fn clone_run_dir(src: &Path, dst: &Path, journal_bytes: &[u8]) {
    let _ = std::fs::remove_dir_all(dst);
    std::fs::create_dir_all(dst.join(RUN_CLIPS_DIR)).expect("clone run dir");
    std::fs::copy(src.join(RUN_MANIFEST_FILE), dst.join(RUN_MANIFEST_FILE)).expect("copy manifest");
    for entry in std::fs::read_dir(src.join(RUN_CLIPS_DIR)).expect("list payloads") {
        let entry = entry.expect("payload entry");
        std::fs::copy(
            entry.path(),
            dst.join(RUN_CLIPS_DIR).join(entry.file_name()),
        )
        .expect("copy payload");
    }
    std::fs::write(dst.join(RUN_JOURNAL_FILE), journal_bytes).expect("write journal");
}

/// Resume the run directory at `dir` and hard-assert the contract:
/// zero acked loss, byte-identical outputs, bounded recomputation,
/// zero duplicate keyed ingests. Returns the sweep row.
#[allow(clippy::too_many_arguments)]
fn resume_and_check(
    dir: &Path,
    kind: &'static str,
    ordinal: u64,
    cfg: &OtifConfig,
    ctx: &ExecutionContext,
    clips: &[Clip],
    opts: &EngineOptions,
    manifest: &RunManifest,
    reference: &Reference,
    store: &mut TrackStore,
) -> ChaosPoint {
    let io: Arc<dyn RunIo> = Arc::new(RealRunIo);
    let acked = {
        let bytes = std::fs::read(dir.join(RUN_JOURNAL_FILE)).expect("read crashed journal");
        otif_engine::replay_run_journal(&bytes).records.len()
    };
    let (journal, replayed) = RunJournal::open(dir, io, manifest).expect("open crashed run");
    let journal = Arc::new(journal);
    let recovered = journal.recover(&replayed, clips.len());
    let session = RunSession::resumed(journal, recovered);
    assert_eq!(
        session.recovered_clips(),
        acked,
        "{kind} @ {ordinal}: {acked} clip(s) acknowledged but only {} recovered",
        session.recovered_clips()
    );
    let ledger = CostLedger::new();
    let run = Engine::run_with_session(cfg, ctx, clips, opts, &ledger, Some(&session));
    let skipped = run.stats.resumed_clips_skipped;
    let recomputed = run.stats.resumed_clips_recomputed;
    assert_eq!(skipped, acked, "{kind} @ {ordinal}: acknowledged clip lost");
    assert!(
        recomputed <= clips.len() - acked + 1,
        "{kind} @ {ordinal}: recomputed {recomputed} clip(s), \
         more than the {} unacknowledged + 1",
        clips.len() - acked
    );
    let projection = run.stats.deterministic_projection();
    let rounds = run.rounds.clone();
    let tracks = run.expect_tracks();
    let identical = serde_json::to_string(&tracks).expect("tracks serialize")
        == reference.tracks_json
        && ledger_bits(&ledger) == reference.ledger_bits
        && rounds == reference.rounds
        && projection == reference.projection;
    assert!(
        identical,
        "{kind} @ {ordinal}: resumed outputs diverged from the reference run"
    );
    // Exactly-once handoff: re-acknowledging every resumed clip into
    // the keyed store must dedupe — the store never grows.
    let before = store.len();
    for (idx, (clip, ts)) in clips.iter().zip(&tracks).enumerate() {
        let source = format!("{}/{idx}", DatasetKind::Caldot1.name());
        let (_, fresh) = store
            .ingest_clip_keyed(&clip_info(clip), ts, &source)
            .expect("keyed re-ingest");
        assert!(
            !fresh,
            "{kind} @ {ordinal}: clip {idx} re-ingested as a duplicate store entry"
        );
    }
    assert_eq!(store.len(), before, "{kind} @ {ordinal}: store grew");
    ChaosPoint {
        kind,
        ordinal,
        acked,
        skipped,
        recomputed,
        identical,
    }
}

fn main() {
    let arg = std::env::args().nth(1);
    let (scale, smoke) = match arg.as_deref() {
        Some("tiny") => (DatasetScale::TINY, false),
        Some("smoke") => (DatasetScale::TINY, true),
        Some("small") | None => (
            DatasetScale {
                clips_per_split: 4,
                clip_seconds: 10.0,
            },
            false,
        ),
        Some("experiment") => (DatasetScale::EXPERIMENT, false),
        Some(other) => panic!("unknown scale '{other}' (expected tiny|small|experiment|smoke)"),
    };
    let scale_name = if smoke {
        "smoke".to_string()
    } else {
        format!("{}x{:.0}s", scale.clips_per_split, scale.clip_seconds)
    };

    let cfg = OtifConfig {
        detector: DetectorConfig::new(DetectorArch::YoloV3, 0.5),
        proxy: None,
        gap: 4,
        tracker: TrackerKind::Sort,
        refine: false,
    };
    let ctx = ExecutionContext::bare(CostModel::default(), SEED);
    let clips = DatasetConfig::new(DatasetKind::Caldot1, scale, SEED)
        .generate()
        .test;
    let n = clips.len();
    // Batched detector execution across streams: the hardest mode to
    // resume (ghost batcher tickets must reproduce the round log).
    let opts = EngineOptions {
        streams: 2,
        detector_exec: DetectorExec::Batched,
        ..EngineOptions::default()
    };

    let base: PathBuf =
        std::env::temp_dir().join(format!("otif-chaos-bench-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&base);
    std::fs::create_dir_all(&base).expect("create bench dir");

    // Reference: one uninterrupted, unjournaled run.
    let ref_ledger = CostLedger::new();
    let ref_run = Engine::run(&cfg, &ctx, &clips, &opts, &ref_ledger);
    let projection = ref_run.stats.deterministic_projection();
    let rounds = ref_run.rounds.clone();
    let ref_tracks = ref_run.expect_tracks();
    let reference = Reference {
        projection,
        rounds,
        tracks_json: serde_json::to_string(&ref_tracks).expect("tracks serialize"),
        tracks: ref_tracks,
        ledger_bits: ledger_bits(&ref_ledger),
    };

    // Uninterrupted journaled run: must match, and every clip must be
    // durably acknowledged. Its directory seeds every crash point.
    let manifest = run_manifest(&cfg, &ctx, &clips, &opts);
    let full_dir = base.join("full");
    let io: Arc<dyn RunIo> = Arc::new(RealRunIo);
    let journal =
        Arc::new(RunJournal::create(&full_dir, Arc::clone(&io), &manifest).expect("create run"));
    let session = RunSession::fresh(Arc::clone(&journal));
    let full_ledger = CostLedger::new();
    let full = Engine::run_with_session(&cfg, &ctx, &clips, &opts, &full_ledger, Some(&session));
    assert_eq!(full.stats.clips_checkpointed, n as u64);
    assert_eq!(full.stats.checkpoint_failures, 0);
    assert_eq!(full.stats.deterministic_projection(), reference.projection);
    assert_eq!(ledger_bits(&full_ledger), reference.ledger_bits);
    assert_eq!(
        serde_json::to_string(&full.expect_tracks()).expect("tracks serialize"),
        reference.tracks_json,
        "journaled run diverged from the unjournaled reference"
    );
    let full_journal = std::fs::read(full_dir.join(RUN_JOURNAL_FILE)).expect("read journal");
    let lines: Vec<&[u8]> = full_journal.split_inclusive(|&b| b == b'\n').collect();
    assert_eq!(lines.len(), n, "one acknowledgement per clip");

    // The exactly-once target store, seeded with the reference tracks
    // under their source keys.
    let mut store = TrackStore::create(&base.join("store")).expect("create store");
    for (idx, (clip, ts)) in clips.iter().zip(&reference.tracks).enumerate() {
        let source = format!("{}/{idx}", DatasetKind::Caldot1.name());
        let (_, fresh) = store
            .ingest_clip_keyed(&clip_info(clip), ts, &source)
            .expect("seed store");
        assert!(fresh);
    }

    let kill_ordinals: Vec<usize> = if smoke {
        // CI subset: first, middle and final checkpoint
        let mut v = vec![0, n / 2, n];
        v.dedup();
        v
    } else {
        (0..=n).collect()
    };
    let torn_ordinals: Vec<usize> = if smoke { vec![n / 2] } else { (0..n).collect() };

    let mut sweep = Vec::new();

    // Kill at every checkpoint ordinal: the journal holds exactly the
    // first k acknowledgements.
    for &k in &kill_ordinals {
        let dir = base.join(format!("kill-{k}"));
        clone_run_dir(&full_dir, &dir, &lines[..k].concat());
        sweep.push(resume_and_check(
            &dir, "kill", k as u64, &cfg, &ctx, &clips, &opts, &manifest, &reference, &mut store,
        ));
    }

    // Torn tail: half of record k+1 lands as crash debris after the
    // first k — replay must classify it as a tail and drop it.
    for &k in &torn_ordinals {
        let mut bytes = lines[..k].concat();
        bytes.extend_from_slice(&lines[k][..lines[k].len() / 2]);
        let dir = base.join(format!("torn-{k}"));
        clone_run_dir(&full_dir, &dir, &bytes);
        sweep.push(resume_and_check(
            &dir,
            "torn-tail",
            k as u64,
            &cfg,
            &ctx,
            &clips,
            &opts,
            &manifest,
            &reference,
            &mut store,
        ));
    }

    // Mid-rename crashes: the process dies at payload-rename ordinal r
    // (rename 0 is the manifest; 1..=n are clip payloads), leaving a
    // stranded tmp file and a journal prefix. The engine under the
    // faulty I/O swallows checkpoint failures — the clips still
    // compute; they are just never acknowledged.
    let rename_ordinals: Vec<u64> = if smoke {
        vec![1 + n as u64 / 2]
    } else {
        (0..=n as u64).collect()
    };
    for &r in &rename_ordinals {
        let dir = base.join(format!("rename-{r}"));
        let faulty: Arc<dyn RunIo> = Arc::new(ChaosRunIo {
            inner: FaultyIo::new(RealIo, StoreFaultPlan::crash_at(StoreOp::Rename, r)),
        });
        match RunJournal::create(&dir, Arc::clone(&faulty), &manifest) {
            Ok(j) => {
                let session = RunSession::fresh(Arc::new(j));
                let run = Engine::run_with_session(
                    &cfg,
                    &ctx,
                    &clips,
                    &opts,
                    &CostLedger::new(),
                    Some(&session),
                );
                assert!(
                    run.stats.checkpoint_failures > 0,
                    "rename @ {r}: the injected crash never fired"
                );
                sweep.push(resume_and_check(
                    &dir,
                    "crash-rename",
                    r,
                    &cfg,
                    &ctx,
                    &clips,
                    &opts,
                    &manifest,
                    &reference,
                    &mut store,
                ));
            }
            Err(_) => {
                // rename 0 = the manifest: the run never started, so
                // nothing was acknowledged — a fresh journaled run in
                // the same directory must succeed and match.
                assert_eq!(r, 0, "only the manifest rename may abort run creation");
                let j = RunJournal::create(&dir, Arc::new(RealRunIo), &manifest)
                    .expect("re-create after aborted run");
                let session = RunSession::fresh(Arc::new(j));
                let ledger = CostLedger::new();
                let run =
                    Engine::run_with_session(&cfg, &ctx, &clips, &opts, &ledger, Some(&session));
                let projection = run.stats.deterministic_projection();
                let identical = serde_json::to_string(&run.expect_tracks())
                    .expect("tracks serialize")
                    == reference.tracks_json
                    && ledger_bits(&ledger) == reference.ledger_bits
                    && projection == reference.projection;
                assert!(identical, "rename @ 0: restarted run diverged");
                sweep.push(ChaosPoint {
                    kind: "crash-rename",
                    ordinal: 0,
                    acked: 0,
                    skipped: 0,
                    recomputed: n,
                    identical,
                });
            }
        }
    }

    // Oversubscription guard: a 64-stream journaled kill/resume cycle
    // on a fixed 4-worker pool. The task engine must keep the OS thread
    // count at the pool size (+ main thread, watchdog and slack) no
    // matter how many streams are in flight, and the resume must stay
    // bitwise identical across worker counts.
    {
        const WORKERS: usize = 4;
        const THREAD_SLACK: u64 = 4;
        let wide_clips = DatasetConfig::new(
            DatasetKind::Caldot1,
            DatasetScale {
                clips_per_split: 64,
                clip_seconds: 1.0,
            },
            SEED ^ 0x40,
        )
        .generate()
        .test;
        let wide_opts = EngineOptions {
            streams: 64,
            workers: WORKERS,
            detector_exec: DetectorExec::Batched,
            ..EngineOptions::default()
        };
        let wide_ledger = CostLedger::new();
        let wide_ref = Engine::run(&cfg, &ctx, &wide_clips, &wide_opts, &wide_ledger);
        let cap = WORKERS as u64 + THREAD_SLACK;
        assert!(
            wide_ref.stats.peak_os_threads <= cap,
            "64 streams oversubscribed the pool: peak {} OS threads > cap {cap}",
            wide_ref.stats.peak_os_threads
        );
        assert_eq!(wide_ref.stats.failed_clips, 0);

        // Journal on 4 workers, cut the journal halfway, resume on 1
        // worker: byte identity and the thread cap both hold.
        let wide_manifest = run_manifest(&cfg, &ctx, &wide_clips, &wide_opts);
        let wide_dir = base.join("wide");
        let journal =
            Arc::new(RunJournal::create(&wide_dir, Arc::clone(&io), &wide_manifest).expect("wide"));
        let session = RunSession::fresh(Arc::clone(&journal));
        Engine::run_with_session(
            &cfg,
            &ctx,
            &wide_clips,
            &wide_opts,
            &CostLedger::new(),
            Some(&session),
        );
        let journal_bytes =
            std::fs::read(wide_dir.join(RUN_JOURNAL_FILE)).expect("read wide journal");
        let wide_lines: Vec<&[u8]> = journal_bytes.split_inclusive(|&b| b == b'\n').collect();
        std::fs::write(
            wide_dir.join(RUN_JOURNAL_FILE),
            wide_lines[..wide_lines.len() / 2].concat(),
        )
        .expect("cut wide journal");
        let narrow_opts = EngineOptions {
            workers: 1,
            ..wide_opts
        };
        let (reopened, replayed) =
            RunJournal::open(&wide_dir, Arc::clone(&io), &wide_manifest).expect("reopen wide");
        let reopened = Arc::new(reopened);
        let recovered = reopened.recover(&replayed, wide_clips.len());
        let session = RunSession::resumed(reopened, recovered);
        let resumed_ledger = CostLedger::new();
        let resumed = Engine::run_with_session(
            &cfg,
            &ctx,
            &wide_clips,
            &narrow_opts,
            &resumed_ledger,
            Some(&session),
        );
        assert!(
            resumed.stats.peak_os_threads <= 1 + THREAD_SLACK,
            "1-worker resume oversubscribed: peak {} OS threads",
            resumed.stats.peak_os_threads
        );
        assert_eq!(
            ledger_bits(&resumed_ledger),
            ledger_bits(&wide_ledger),
            "wide resume ledger diverged across worker counts"
        );
        assert_eq!(resumed.rounds, wide_ref.rounds);
        let wide_peak = wide_ref.stats.peak_os_threads;
        assert_eq!(
            serde_json::to_string(&resumed.expect_tracks()).expect("tracks serialize"),
            serde_json::to_string(&wide_ref.expect_tracks()).expect("tracks serialize"),
            "wide resume tracks diverged across worker counts"
        );
        println!(
            "oversubscription guard: 64 streams on {WORKERS} workers, peak {wide_peak} OS \
             threads (cap {cap}); half-journal resume on 1 worker bitwise identical"
        );
    }

    let report = ChaosReport {
        scale: scale_name,
        dataset: DatasetKind::Caldot1.name().to_string(),
        clips: n,
        checkpoints: n,
        crash_points: sweep.len(),
        zero_acked_loss: sweep.iter().all(|p| p.skipped == p.acked),
        outputs_identical: sweep.iter().all(|p| p.identical),
        bounded_recompute: sweep.iter().all(|p| p.recomputed <= n - p.acked + 1),
        zero_duplicate_ingests: store.len() == n,
        sweep,
    };
    assert!(report.zero_acked_loss && report.outputs_identical && report.bounded_recompute);
    assert!(report.zero_duplicate_ingests, "store grew past {n} clips");

    let rows: Vec<Vec<String>> = ["kill", "torn-tail", "crash-rename"]
        .iter()
        .map(|kind| {
            let pts: Vec<&ChaosPoint> = report.sweep.iter().filter(|p| p.kind == *kind).collect();
            vec![
                kind.to_string(),
                pts.len().to_string(),
                pts.iter().map(|p| p.acked).min().unwrap_or(0).to_string(),
                pts.iter().map(|p| p.acked).max().unwrap_or(0).to_string(),
                pts.iter()
                    .map(|p| p.recomputed)
                    .max()
                    .unwrap_or(0)
                    .to_string(),
                "yes".to_string(),
            ]
        })
        .collect();
    print_table(
        "Chaos: engine crash/resume sweep (outputs bitwise identical at every point)",
        &[
            "crash kind",
            "points",
            "min acked",
            "max acked",
            "max recomputed",
            "identical",
        ],
        &rows,
    );
    println!(
        "\n{} crash point(s) over {} checkpoint(s): zero acked loss, bitwise-identical \
         resumes, recomputation bounded, {} store clip(s) with zero duplicates",
        report.crash_points, report.checkpoints, n
    );

    write_json(
        if smoke {
            "BENCH_chaos_smoke"
        } else {
            "BENCH_chaos"
        },
        &report,
    );
    std::fs::remove_dir_all(&base).ok();
}
