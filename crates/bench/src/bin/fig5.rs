//! Figure 5: runtime–accuracy curves of every method on every dataset's
//! object-track query, evaluated on the hidden test split.
//!
//! Usage:
//!   `cargo run --release -p otif-bench --bin fig5 [tiny|small|experiment]`
//!   `cargo run --release -p otif-bench --bin fig5 cached`
//!
//! `cached` renders the curves from `results/table2_curves.json` (written
//! by the `table2` binary, which evaluates exactly the same sweep) instead
//! of recomputing them — the two artifacts share their underlying data, as
//! in the paper.

use otif_bench::harness::{scale_from_args, track_query_comparison, MethodCurve};
use otif_bench::report::{pct, print_table, results_dir, secs, write_json};
use otif_sim::DatasetKind;

fn print_curves(all: &[(String, Vec<MethodCurve>)]) {
    for (ds, curves) in all {
        for c in curves {
            let rows: Vec<Vec<String>> = c
                .points
                .iter()
                .map(|p| {
                    vec![
                        p.config.clone(),
                        secs(p.test_seconds_hour),
                        pct(p.test_accuracy),
                        secs(p.val_seconds_hour),
                        pct(p.val_accuracy),
                    ]
                })
                .collect();
            print_table(
                &format!("Figure 5 — {ds} / {}", c.method),
                &["config", "test s/hr", "test acc", "val s/hr", "val acc"],
                &rows,
            );
        }
    }
}

fn main() {
    if std::env::args().nth(1).as_deref() == Some("cached") {
        let path = results_dir().join("table2_curves.json");
        let json = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("{}: {e} — run the table2 binary first", path.display()));
        let all: Vec<(String, Vec<MethodCurve>)> =
            serde_json::from_str(&json).expect("parse table2_curves.json");
        print_curves(&all);
        write_json("fig5", &all);
        return;
    }
    let scale = scale_from_args();
    let mut all = Vec::new();
    for kind in DatasetKind::ALL {
        eprintln!("[fig5] running {}", kind.name());
        let curves = track_query_comparison(kind, scale);
        all.push((kind.name().to_string(), curves));
    }
    print_curves(&all);
    write_json("fig5", &all);
}
