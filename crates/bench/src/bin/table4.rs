//! Table 4: ablation study of OTIF on Caldot1 and Warsaw — runtime of the
//! fastest configuration within 5 % of the best achieved accuracy, for
//! increasingly complete OTIF implementations:
//!
//! 1. **Detector Only** — parameter tuning of the detection module only
//!    (gap fixed at 1, SORT, no proxy);
//! 2. **+ Sampling Rate** — adds gap tuning with the SORT tracker;
//! 3. **+ Recurrent Tracker** — replaces SORT with the trained recurrent
//!    reduced-rate tracker;
//! 4. **+ Segmentation Proxy Model** — the full method.
//!
//! Usage: `cargo run --release -p otif-bench --bin table4 [tiny|small|experiment]`

use otif_bench::harness::{make_dataset, otif_options, scale_from_args, track_query_for};
use otif_bench::report::{pct, print_table, secs, write_json};
use otif_core::{Otif, OtifOptions};
use otif_sim::DatasetKind;
use otif_track::Track;
use serde::Serialize;

#[derive(Serialize)]
struct AblationRow {
    level: String,
    dataset: String,
    seconds_hour: Option<f64>,
    accuracy: Option<f32>,
}

fn level_options(base: &OtifOptions, level: usize) -> OtifOptions {
    let mut o = base.clone();
    match level {
        0 => {
            o.enable_tracking = false;
            o.enable_recurrent = false;
            o.enable_proxy = false;
        }
        1 => {
            o.enable_recurrent = false;
            o.enable_proxy = false;
        }
        2 => {
            o.enable_proxy = false;
        }
        _ => {}
    }
    o
}

fn main() {
    let scale = scale_from_args();
    let levels = [
        "Detector Only",
        "+ Sampling Rate",
        "+ Recurrent Tracker",
        "+ Segmentation Proxy Model",
    ];
    let mut rows: Vec<AblationRow> = Vec::new();

    for kind in [DatasetKind::Caldot1, DatasetKind::Warsaw] {
        let dataset = make_dataset(kind, scale);
        let hour = dataset.scale.hour_scale();
        let query = track_query_for(&dataset);
        let base = otif_options(scale);

        // best accuracy across all levels defines the 5 % band, as in the
        // paper (best achieved accuracy)
        let mut per_level: Vec<Vec<(f64, f32)>> = Vec::new();
        for (li, level) in levels.iter().enumerate() {
            eprintln!("[table4] {} / {level}", kind.name());
            let val = &dataset.val;
            let q = query.clone();
            let metric = move |tracks: &[Vec<Track>]| q.accuracy(tracks, val);
            let otif = Otif::prepare(&dataset, &metric, level_options(&base, li));
            let points: Vec<(f64, f32)> = otif
                .curve
                .iter()
                .map(|p| {
                    let (tracks, ledger) = otif.execute(&p.config, &dataset.test);
                    (
                        ledger.execution_total() * hour,
                        query.accuracy(&tracks, &dataset.test),
                    )
                })
                .collect();
            per_level.push(points);
        }

        let best = per_level
            .iter()
            .flatten()
            .map(|(_, a)| *a)
            .fold(f32::NEG_INFINITY, f32::max);
        for (li, points) in per_level.iter().enumerate() {
            let pick = points
                .iter()
                .filter(|(_, a)| *a >= best - 0.05)
                .min_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
            rows.push(AblationRow {
                level: levels[li].to_string(),
                dataset: kind.name().to_string(),
                seconds_hour: pick.map(|(s, _)| *s),
                accuracy: pick.map(|(_, a)| *a),
            });
        }
    }

    let table_rows: Vec<Vec<String>> = levels
        .iter()
        .map(|level| {
            let mut row = vec![level.to_string()];
            for ds in ["caldot1", "warsaw"] {
                let r = rows
                    .iter()
                    .find(|r| r.level == *level && r.dataset == ds)
                    .unwrap();
                row.push(r.seconds_hour.map(secs).unwrap_or_else(|| "-".to_string()));
                row.push(r.accuracy.map(pct).unwrap_or_else(|| "-".to_string()));
            }
            row
        })
        .collect();
    print_table(
        "Table 4 — ablation study (runtime s/hour within 5 % of best accuracy)",
        &["Method", "Caldot1 (s)", "acc", "Warsaw (s)", "acc"],
        &table_rows,
    );

    write_json("table4", &rows);
}
