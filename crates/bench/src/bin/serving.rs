//! Serving-tier benchmark: latency percentiles and QPS of
//! `otif_serve::QueryServer` under a mixed read workload — repeated
//! aggregates, scan-heavy frame-limit queries, prunable region and
//! hot-spot queries — at 1, 4 and 8 concurrent clients, cold versus
//! warm answer cache, with index-driven clip pruning on versus off.
//!
//! Hard assertions (the PR's acceptance bar, checked at every client
//! count):
//!
//! - **byte identity** — every configuration (full scan, pruned, cold
//!   cache, warm cache, any concurrency) produces byte-identical
//!   answers, compared via a fingerprint over all answer bytes in
//!   workload order;
//! - **pruning beats full scans** — the pruned run evaluates strictly
//!   fewer clips than the full-scan run and skips at least one clip at
//!   the catalog (never deserializing it) and at least one per-frame
//!   scan via the spatial index; an isolated cold-store region query
//!   must also touch strictly fewer clip files with pruning on;
//! - **the warm cache is a cache** — the warm pass answers every query
//!   from the cache and completes faster than the cold pass.
//!
//! Tracks are extracted once by the multi-stream engine (untrained
//! operating point: no proxy, SORT, no refinement — deterministic and
//! fast) and ingested into a throwaway `TrackStore`; all reported time
//! is wall-clock over that store.
//!
//! Usage: `cargo run --release -p otif-bench --bin serving
//! [tiny|small|experiment|smoke]` — `smoke` is the CI entry: tiny
//! scale, results to `BENCH_serving_smoke.json` instead of
//! `BENCH_serving.json`.

use otif_bench::harness::SEED;
use otif_bench::report::{print_table, write_json};
use otif_core::config::{OtifConfig, TrackerKind};
use otif_core::pipeline::ExecutionContext;
use otif_cv::{CostLedger, CostModel, DetectorArch, DetectorConfig};
use otif_engine::{Engine, EngineOptions};
use otif_serve::{
    mixed_workload, run_workload, CacheMode, ClipInfo, QueryServer, ServeOptions, ServeQuery,
    TrackStore, WorkloadRun,
};
use otif_sim::{DatasetConfig, DatasetKind, DatasetScale};
use serde::Serialize;
use std::path::Path;
use std::sync::Arc;

const CLIENT_COUNTS: [usize; 3] = [1, 4, 8];

#[derive(Serialize)]
struct ClientPoint {
    clients: usize,
    /// Pruning off, cache off, cold clip cache — the full-scan baseline.
    full_scan: WorkloadRun,
    /// Pruning on, cache off, cold clip cache.
    pruned: WorkloadRun,
    /// Pruning on, cache on, cold caches.
    cache_cold: WorkloadRun,
    /// Same server again — every repeat served from the answer cache.
    cache_warm: WorkloadRun,
    /// Clips evaluated by the full-scan run (server counter).
    full_clips_evaluated: u64,
    /// Clips evaluated / pruned by the pruned run.
    pruned_clips_evaluated: u64,
    clips_pruned: u64,
    frame_scans_skipped: u64,
    cache_hits: u64,
    cache_misses: u64,
}

#[derive(Serialize)]
struct PruneMicro {
    /// Clip files read by the isolated cold-store region query, pruning off.
    full_scan_clip_loads: u64,
    /// Same query, cold store, pruning on.
    pruned_clip_loads: u64,
}

#[derive(Serialize)]
struct ServingReport {
    scale: String,
    datasets: Vec<String>,
    clips: usize,
    tracks: usize,
    queries: usize,
    /// All runs at all client counts produced byte-identical answers.
    answers_identical: bool,
    prune_micro: PruneMicro,
    points: Vec<ClientPoint>,
}

fn extract_into_store(dir: &Path, scale: DatasetScale) -> (TrackStore, Vec<String>, usize) {
    let cfg = OtifConfig {
        detector: DetectorConfig::new(DetectorArch::YoloV3, 0.5),
        proxy: None,
        gap: 4,
        tracker: TrackerKind::Sort,
        refine: false,
    };
    let ctx = ExecutionContext::bare(CostModel::default(), SEED);
    let mut store = TrackStore::create(dir).expect("create bench store");
    let mut names = Vec::new();
    let mut tracks_total = 0usize;
    for kind in [DatasetKind::Caldot1, DatasetKind::Amsterdam] {
        names.push(kind.name().to_string());
        let clips = DatasetConfig::new(kind, scale, SEED ^ kind.name().len() as u64)
            .generate()
            .test;
        let run = Engine::run(
            &cfg,
            &ctx,
            &clips,
            &EngineOptions::with_streams(4),
            &CostLedger::new(),
        );
        for (clip, outcome) in clips.iter().zip(&run.tracks) {
            let tracks = outcome.tracks().expect("healthy engine run");
            tracks_total += tracks.len();
            let info = ClipInfo {
                num_frames: clip.num_frames(),
                fps: clip.scene.fps as f32,
                width: clip.scene.width as f32,
                height: clip.scene.height as f32,
            };
            store.ingest_clip(&info, tracks).expect("ingest clip");
        }
    }
    (store, names, tracks_total)
}

/// The isolated pruning micro-comparison: one prunable corner-region
/// query against a cold store, counting clip files actually read.
fn prune_micro(store: &Arc<TrackStore>, workload: &[ServeQuery]) -> PruneMicro {
    let region = workload
        .iter()
        .find(|q| q.label().starts_with("frames:region"))
        .expect("mixed workload contains a region query")
        .clone();
    let mut loads = [0u64; 2];
    for (i, pruning) in [false, true].into_iter().enumerate() {
        store.evict_clips();
        let before = store.clip_loads();
        let server = QueryServer::new(Arc::clone(store), 0);
        server
            .execute_bytes(
                &region,
                &ServeOptions {
                    threads: 1,
                    pruning,
                    cache: CacheMode::Off,
                },
            )
            .expect("region query");
        loads[i] = store.clip_loads() - before;
    }
    PruneMicro {
        full_scan_clip_loads: loads[0],
        pruned_clip_loads: loads[1],
    }
}

fn main() {
    let arg = std::env::args().nth(1);
    let (scale, smoke) = match arg.as_deref() {
        Some("tiny") => (DatasetScale::TINY, false),
        Some("smoke") => (DatasetScale::TINY, true),
        Some("small") => (
            DatasetScale {
                clips_per_split: 4,
                clip_seconds: 10.0,
            },
            false,
        ),
        Some("experiment") | None => (DatasetScale::EXPERIMENT, false),
        Some(other) => panic!("unknown scale '{other}' (expected tiny|small|experiment|smoke)"),
    };
    let scale_name = if smoke {
        "smoke".to_string()
    } else {
        format!("{}x{:.0}s", scale.clips_per_split, scale.clip_seconds)
    };

    let dir = std::env::temp_dir().join(format!("otif-serving-bench-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let (store, datasets, tracks_total) = extract_into_store(&dir, scale);
    let store = Arc::new(store);

    let repeats = if smoke || scale.clips_per_split <= DatasetScale::TINY.clips_per_split {
        3
    } else {
        6
    };
    let workload = mixed_workload(store.metas(), repeats, SEED);
    let micro = prune_micro(&store, &workload);
    assert!(
        micro.pruned_clip_loads < micro.full_scan_clip_loads,
        "indexed pruning must beat the full scan: region query read {} clip files with \
         pruning on vs {} with pruning off",
        micro.pruned_clip_loads,
        micro.full_scan_clip_loads
    );

    let mut points = Vec::new();
    let mut fingerprints = Vec::new();
    for clients in CLIENT_COUNTS {
        // per-query evaluation stays single-threaded here so concurrency
        // comes purely from clients; intra-query par_map identity is
        // covered by the thread sweep in crates/serve/tests
        let opts = |pruning, cache| ServeOptions {
            threads: 1,
            pruning,
            cache,
        };

        store.evict_clips();
        let full_server = QueryServer::new(Arc::clone(&store), 0);
        let full_scan = run_workload(
            &full_server,
            &workload,
            clients,
            &opts(false, CacheMode::Off),
        )
        .expect("full-scan run");
        let full_clips_evaluated = full_server.stats().clips_evaluated;

        store.evict_clips();
        let pruned_server = QueryServer::new(Arc::clone(&store), 0);
        let pruned = run_workload(
            &pruned_server,
            &workload,
            clients,
            &opts(true, CacheMode::Off),
        )
        .expect("pruned run");
        let pstats = pruned_server.stats();

        store.evict_clips();
        let cache_server = QueryServer::new(Arc::clone(&store), 256);
        let cache_cold = run_workload(
            &cache_server,
            &workload,
            clients,
            &opts(true, CacheMode::On),
        )
        .expect("cold-cache run");
        let cache_warm = run_workload(
            &cache_server,
            &workload,
            clients,
            &opts(true, CacheMode::On),
        )
        .expect("warm-cache run");
        let cstats = cache_server.stats();

        // byte identity across every configuration at this client count
        for run in [&full_scan, &pruned, &cache_cold, &cache_warm] {
            fingerprints.push(run.answers_fingerprint);
        }
        // pruning strictly reduces evaluated clips and provably skips work
        assert!(
            pstats.clips_evaluated < full_clips_evaluated,
            "pruned run must evaluate fewer clips ({} vs {})",
            pstats.clips_evaluated,
            full_clips_evaluated
        );
        assert!(pstats.clips_pruned > 0, "catalog pruning never fired");
        assert!(
            pstats.frame_scans_skipped > 0,
            "spatial-index hot-spot prefilter never fired"
        );
        // the warm pass is answered from the cache, faster than cold
        assert!(
            cstats.cache.hits >= workload.len() as u64,
            "warm pass must hit the cache for every query (hits={})",
            cstats.cache.hits
        );
        assert!(
            cache_warm.latency.wall_seconds < cache_cold.latency.wall_seconds,
            "warm cache ({}s) must beat cold cache ({}s)",
            cache_warm.latency.wall_seconds,
            cache_cold.latency.wall_seconds
        );

        points.push(ClientPoint {
            clients,
            full_scan,
            pruned,
            cache_cold,
            cache_warm,
            full_clips_evaluated,
            pruned_clips_evaluated: pstats.clips_evaluated,
            clips_pruned: pstats.clips_pruned,
            frame_scans_skipped: pstats.frame_scans_skipped,
            cache_hits: cstats.cache.hits,
            cache_misses: cstats.cache.misses,
        });
    }

    assert!(
        fingerprints.windows(2).all(|w| w[0] == w[1]),
        "answers must be byte-identical across pruning, cache state and concurrency"
    );

    let report = ServingReport {
        scale: scale_name,
        datasets,
        clips: store.len(),
        tracks: tracks_total,
        queries: workload.len(),
        answers_identical: true,
        prune_micro: micro,
        points,
    };

    let rows: Vec<Vec<String>> = report
        .points
        .iter()
        .map(|p| {
            vec![
                p.clients.to_string(),
                format!("{:.1}", p.full_scan.latency.qps),
                format!("{:.1}", p.pruned.latency.qps),
                format!("{:.1}", p.cache_warm.latency.qps),
                format!("{:.3}", p.pruned.latency.p50_ms),
                format!("{:.3}", p.pruned.latency.p99_ms),
                format!("{:.3}", p.cache_warm.latency.p50_ms),
                format!("{}/{}", p.pruned_clips_evaluated, p.full_clips_evaluated),
            ]
        })
        .collect();
    print_table(
        "Serving: mixed workload (full scan vs pruned vs warm cache)",
        &[
            "clients",
            "full QPS",
            "pruned QPS",
            "warm QPS",
            "pruned p50 ms",
            "pruned p99 ms",
            "warm p50 ms",
            "clips eval (pruned/full)",
        ],
        &rows,
    );
    println!(
        "\nregion-query clip loads: {} pruned vs {} full; answers byte-identical: {}",
        report.prune_micro.pruned_clip_loads,
        report.prune_micro.full_scan_clip_loads,
        report.answers_identical
    );

    write_json(
        if smoke {
            "BENCH_serving_smoke"
        } else {
            "BENCH_serving"
        },
        &report,
    );
    std::fs::remove_dir_all(&dir).ok();
}
