//! Experiment harnesses reproducing every table and figure in the paper's
//! evaluation section.
//!
//! Each binary in `src/bin/` regenerates one artifact:
//!
//! | binary   | paper artifact | content |
//! |----------|----------------|---------|
//! | `table2` | Table 2        | runtime per method per dataset within 5 % of best accuracy, 1 & 5 queries |
//! | `fig5`   | Figure 5       | full runtime–accuracy curves per dataset |
//! | `table3` | Table 3        | frame-level limit queries: OTIF vs BlazeIt vs TASTI |
//! | `fig6`   | Figure 6       | OTIF cost breakdown on Caldot1 |
//! | `table4` | Table 4        | ablation study on Caldot1 and Warsaw |
//! | `fig7`   | Figure 7       | segmentation proxy: mAP–speed with k window sizes; per-cell precision–recall |
//! | `fig8`   | Figure 8 / §4.6| implementation-fidelity validation |
//!
//! All binaries accept an optional scale argument (`tiny`, `small`,
//! `experiment`) controlling dataset size; reported simulated seconds are
//! always scaled to the paper's one-hour-per-split datasets so numbers
//! are directly comparable to the published tables.

pub mod harness;
pub mod report;
