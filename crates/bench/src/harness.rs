//! Shared experiment machinery: dataset/query wiring, OTIF preparation,
//! baseline sweeps, and the paper's evaluation protocol (select on
//! validation, report on the hidden test split).

use otif_baselines::common::{pareto, sweep_configs, Baseline};
use otif_baselines::{
    CaTDetBaseline, CenterTrackBaseline, ChameleonBaseline, MirisBaseline, NoScopeBaseline,
};
use otif_core::{Otif, OtifOptions};
use otif_cv::{CostLedger, CostModel, DetectorArch, DetectorConfig};
use otif_query::TrackQuery;
use otif_sim::{Dataset, DatasetConfig, DatasetKind, DatasetScale};
use otif_track::Track;
use serde::Serialize;

/// Parse the scale argument all bench binaries accept.
pub fn scale_from_args() -> DatasetScale {
    match std::env::args().nth(1).as_deref() {
        Some("tiny") => DatasetScale::TINY,
        Some("small") => DatasetScale {
            clips_per_split: 4,
            clip_seconds: 10.0,
        },
        Some("experiment") | None => DatasetScale::EXPERIMENT,
        Some(other) => panic!("unknown scale '{other}' (expected tiny|small|experiment)"),
    }
}

/// The paper's per-dataset object-track query (§4.1): track counts on
/// Amsterdam and Jackson, path breakdowns elsewhere.
pub fn track_query_for(dataset: &Dataset) -> TrackQuery {
    match dataset.kind {
        DatasetKind::Amsterdam | DatasetKind::Jackson => TrackQuery::Count,
        _ => TrackQuery::path_breakdown(&dataset.scene),
    }
}

/// One evaluated configuration of one method.
#[derive(Debug, Clone, Serialize, serde::Deserialize)]
pub struct PointResult {
    pub config: String,
    pub val_accuracy: f32,
    /// Validation-split simulated seconds, scaled to one hour of video.
    pub val_seconds_hour: f64,
    pub test_accuracy: f32,
    /// Test-split simulated seconds, scaled to one hour of video.
    pub test_seconds_hour: f64,
}

/// A method's speed–accuracy curve on one dataset.
#[derive(Debug, Clone, Serialize, serde::Deserialize)]
pub struct MethodCurve {
    pub method: String,
    /// Whether the method's execution cost is re-paid per query (Miris).
    pub per_query: bool,
    pub points: Vec<PointResult>,
}

impl MethodCurve {
    /// Best test accuracy achieved by this method.
    pub fn best_accuracy(&self) -> f32 {
        self.points
            .iter()
            .map(|p| p.test_accuracy)
            .fold(f32::NEG_INFINITY, f32::max)
    }

    /// The paper's Table 2 selection: the fastest configuration whose test
    /// accuracy is within `slack` of `best_acc` (the best achieved by any
    /// method). `None` when no configuration qualifies.
    pub fn fastest_within(&self, best_acc: f32, slack: f32) -> Option<&PointResult> {
        self.points
            .iter()
            .filter(|p| p.test_accuracy >= best_acc - slack)
            .min_by(|a, b| {
                a.test_seconds_hour
                    .partial_cmp(&b.test_seconds_hour)
                    .unwrap()
            })
    }
}

/// Default experiment seed (paired across methods and datasets).
pub const SEED: u64 = 2022;

/// Generate a dataset at the given scale.
pub fn make_dataset(kind: DatasetKind, scale: DatasetScale) -> Dataset {
    DatasetConfig::new(kind, scale, SEED ^ kind.name().len() as u64).generate()
}

/// OTIF preparation options sized to the dataset scale.
pub fn otif_options(scale: DatasetScale) -> OtifOptions {
    if scale.split_seconds() <= DatasetScale::TINY.split_seconds() + 1.0 {
        OtifOptions::fast_test()
    } else {
        OtifOptions {
            proxy_train_steps: 500,
            ..OtifOptions::default()
        }
    }
}

/// Prepare OTIF on a dataset with the standard track-query metric.
pub fn prepare_otif(dataset: &Dataset, options: OtifOptions) -> Otif {
    let query = track_query_for(dataset);
    let val = &dataset.val;
    let metric = move |tracks: &[Vec<Track>]| query.accuracy(tracks, val);
    Otif::prepare(dataset, &metric, options)
}

/// Evaluate OTIF's tuned curve on the test split.
///
/// Curve points are independent executions, so they run on the
/// work-stealing evaluation pool; results are collected in curve order,
/// making the output identical to a sequential sweep.
pub fn otif_curve(otif: &Otif, dataset: &Dataset) -> MethodCurve {
    let query = track_query_for(dataset);
    let hour = dataset.scale.hour_scale();
    let points = otif_core::par_map(0, otif.curve.iter().collect(), |_, p| {
        let (tracks, ledger) = otif.execute(&p.config, &dataset.test);
        PointResult {
            config: p.config.describe(),
            val_accuracy: p.accuracy,
            val_seconds_hour: p.val_seconds * hour,
            test_accuracy: query.accuracy(&tracks, &dataset.test),
            test_seconds_hour: ledger.execution_total() * hour,
        }
    });
    MethodCurve {
        method: "otif".to_string(),
        per_query: false,
        points,
    }
}

/// Run a baseline's full protocol: sweep configurations on validation,
/// keep the Pareto set, evaluate those on test.
pub fn baseline_curve(baseline: &dyn Baseline, dataset: &Dataset) -> MethodCurve {
    let query = track_query_for(dataset);
    let hour = dataset.scale.hour_scale();
    let val = &dataset.val;
    let val_metric = |tracks: &[Vec<Track>]| query.accuracy(tracks, val);
    let sweep = sweep_configs(baseline, &dataset.val, &val_metric);
    let selected = pareto(&sweep);
    // Pareto-selected test evaluations are independent; fan them out on
    // the evaluation pool and collect in selection order.
    let points = otif_core::par_map(0, selected, |_, (i, val_acc, val_secs)| {
        let ledger = CostLedger::new();
        let tracks = baseline.run(i, &dataset.test, &ledger);
        PointResult {
            config: baseline.describe(i),
            val_accuracy: val_acc,
            val_seconds_hour: val_secs * hour,
            test_accuracy: query.accuracy(&tracks, &dataset.test),
            test_seconds_hour: ledger.execution_total() * hour,
        }
    });
    MethodCurve {
        method: baseline.name().to_string(),
        per_query: baseline.per_query_execution(),
        points,
    }
}

/// The full §4.1 comparison on one dataset: OTIF plus the five
/// track-extraction baselines.
pub fn track_query_comparison(kind: DatasetKind, scale: DatasetScale) -> Vec<MethodCurve> {
    let dataset = make_dataset(kind, scale);
    let cost = CostModel::default();
    let mut curves = Vec::new();

    // OTIF
    let otif = prepare_otif(&dataset, otif_options(scale));
    curves.push(otif_curve(&otif, &dataset));

    // Miris at a validated resolution (it tunes rate, not resolution; the
    // paper gives it θ_best's detector).
    let miris = MirisBaseline::new(otif.theta_best.detector, SEED, cost);
    curves.push(baseline_curve(&miris, &dataset));

    // Chameleon
    let chameleon = ChameleonBaseline::new(SEED, cost);
    curves.push(baseline_curve(&chameleon, &dataset));

    // NoScope: classification proxy = OTIF's lowest-resolution trained
    // proxy (training costs are excluded from runtime for all methods).
    if let Some(low) = otif.proxies.last() {
        let noscope = NoScopeBaseline::new(
            DetectorConfig::new(DetectorArch::YoloV3, 1.0),
            SEED,
            cost,
            low,
        );
        curves.push(baseline_curve(&noscope, &dataset));
    }

    // CaTDet
    let catdet = CaTDetBaseline::new(SEED, cost);
    curves.push(baseline_curve(&catdet, &dataset));

    // CenterTrack
    let ctrack = CenterTrackBaseline::new(SEED, cost);
    curves.push(baseline_curve(&ctrack, &dataset));

    curves
}

/// Best test accuracy achieved by any method.
pub fn best_overall_accuracy(curves: &[MethodCurve]) -> f32 {
    curves
        .iter()
        .map(|c| c.best_accuracy())
        .fold(f32::NEG_INFINITY, f32::max)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn queries_match_paper_assignment() {
        for kind in DatasetKind::ALL {
            let d = DatasetConfig::small(kind, 1).generate();
            let q = track_query_for(&d);
            let is_count = matches!(q, TrackQuery::Count);
            let expect_count = matches!(kind, DatasetKind::Amsterdam | DatasetKind::Jackson);
            assert_eq!(is_count, expect_count, "{kind:?}");
        }
    }

    #[test]
    fn fastest_within_selects_correctly() {
        let curve = MethodCurve {
            method: "x".into(),
            per_query: false,
            points: vec![
                PointResult {
                    config: "slow".into(),
                    val_accuracy: 0.9,
                    val_seconds_hour: 100.0,
                    test_accuracy: 0.9,
                    test_seconds_hour: 100.0,
                },
                PointResult {
                    config: "fast".into(),
                    val_accuracy: 0.87,
                    val_seconds_hour: 20.0,
                    test_accuracy: 0.87,
                    test_seconds_hour: 20.0,
                },
                PointResult {
                    config: "too-fast".into(),
                    val_accuracy: 0.5,
                    val_seconds_hour: 5.0,
                    test_accuracy: 0.5,
                    test_seconds_hour: 5.0,
                },
            ],
        };
        let p = curve.fastest_within(0.9, 0.05).unwrap();
        assert_eq!(p.config, "fast");
        assert!(curve.fastest_within(1.5, 0.05).is_none());
    }

    #[test]
    fn tiny_end_to_end_comparison_runs() {
        let curves = track_query_comparison(DatasetKind::Caldot2, DatasetScale::TINY);
        assert_eq!(curves.len(), 6);
        for c in &curves {
            assert!(!c.points.is_empty(), "{} has no points", c.method);
        }
        let best = best_overall_accuracy(&curves);
        assert!(best > 0.4, "best accuracy {best}");
        // OTIF should qualify within the 5 % band of the best accuracy at
        // a finite runtime
        let otif = &curves[0];
        assert_eq!(otif.method, "otif");
        assert!(otif.fastest_within(best, 0.15).is_some());
        // Miris is the only per-query method
        for c in &curves {
            assert_eq!(c.per_query, c.method == "miris", "{}", c.method);
        }
    }
}
