//! Miris (Bastani et al., SIGMOD 2020): fast object track queries with
//! variable-rate tracking.
//!
//! Miris processes video at a reduced sampling rate when the tracker is
//! confident, dropping to finer rates when matching is uncertain, and
//! *refines* tracks that may match the query by decoding extra frames
//! around their endpoints. Two properties matter for the comparison with
//! OTIF (§3.4, §4.1):
//!
//! - its matcher compares detections in **two consecutive processed
//!   frames only** (no recurrent state), so accuracy degrades at large
//!   gaps;
//! - refinement decodes and detects extra frames **per query**, which is
//!   cost-prohibitive when extracting all tracks — Miris's whole
//!   execution is query-driven, so multi-query workloads pay it again
//!   ([`Baseline::per_query_execution`] returns `true`).
//!
//! The original uses a GNN pairwise matcher; we use an equivalent
//! pairwise score (predicted-position distance + appearance cosine),
//! which shares the GNN's defining limitation of seeing only one frame
//! pair at a time.

use crate::common::Baseline;
use otif_cv::{Component, CostLedger, CostModel, Detection, DetectorConfig, SimDetector};
use otif_geom::{hungarian, Rect};
use otif_sim::Clip;
use otif_track::{Track, TrackId};

/// One Miris error-tolerance level.
#[derive(Debug, Clone, Copy)]
pub struct MirisConfig {
    /// Maximum sampling gap when confident.
    pub max_gap: usize,
    /// Pairwise-score threshold below which the gap is halved.
    pub uncertainty: f32,
}

/// The Miris baseline.
pub struct MirisBaseline {
    /// Detector configuration (Miris tunes rate, not resolution).
    pub detector: DetectorConfig,
    /// Detector noise seed.
    pub detector_seed: u64,
    /// Simulated cost-model constants.
    pub cost: CostModel,
    /// Error-tolerance levels forming the speed-accuracy curve.
    pub configs: Vec<MirisConfig>,
    /// Frames decoded around each track endpoint during refinement.
    pub refine_frames: usize,
}

impl MirisBaseline {
    /// Build Miris with the default tolerance ladder.
    pub fn new(detector: DetectorConfig, detector_seed: u64, cost: CostModel) -> Self {
        MirisBaseline {
            detector,
            detector_seed,
            cost,
            configs: vec![
                MirisConfig {
                    max_gap: 1,
                    uncertainty: 0.0,
                },
                MirisConfig {
                    max_gap: 2,
                    uncertainty: 0.4,
                },
                MirisConfig {
                    max_gap: 4,
                    uncertainty: 0.4,
                },
                MirisConfig {
                    max_gap: 8,
                    uncertainty: 0.35,
                },
                MirisConfig {
                    max_gap: 16,
                    uncertainty: 0.3,
                },
                MirisConfig {
                    max_gap: 32,
                    uncertainty: 0.25,
                },
            ],
            refine_frames: 6,
        }
    }

    /// Pairwise match score between a track's last detection and a new
    /// detection, `gap` frames later — the stand-in for the Miris GNN.
    fn pair_score(last: &Detection, vel: (f32, f32), cand: &Detection, gap: f32) -> f32 {
        let pred = otif_geom::Point::new(
            last.rect.center().x + vel.0 * gap,
            last.rect.center().y + vel.1 * gap,
        );
        let dist = pred.dist(&cand.rect.center());
        let scale = (last.rect.w + last.rect.h) * 0.75 + 8.0;
        let spatial = (-dist / scale).exp();
        let app = {
            let a = &last.appearance;
            let b = &cand.appearance;
            let n = a.len().min(b.len());
            if n == 0 {
                0.5
            } else {
                let dot: f32 = (0..n).map(|i| a[i] * b[i]).sum();
                let na: f32 = a.iter().map(|x| x * x).sum::<f32>().sqrt();
                let nb: f32 = b.iter().map(|x| x * x).sum::<f32>().sqrt();
                (dot / (na * nb + 1e-6) + 1.0) / 2.0
            }
        };
        0.7 * spatial + 0.3 * app
    }

    fn run_clip(&self, cfg: MirisConfig, clip: &Clip, ledger: &CostLedger) -> Vec<Track> {
        struct Active {
            track: Track,
            vel: (f32, f32),
            last_frame: usize,
            misses: u32,
        }
        let detector = SimDetector::new(self.detector, self.detector_seed);
        let native_px = (clip.scene.width as f64) * (clip.scene.height as f64);
        let mut active: Vec<Active> = Vec::new();
        let mut done: Vec<Track> = Vec::new();
        let mut next_id: TrackId = 0;
        let mut gap = cfg.max_gap;
        let mut f = 0usize;

        while f < clip.num_frames() {
            ledger.charge(
                Component::Decode,
                otif_core::pipeline::decode_cost(&self.cost, native_px, self.detector.scale, gap),
            );
            let dets = detector.detect_frame(clip, f, ledger);
            ledger.charge(
                Component::Tracker,
                self.cost.tracker_per_frame + dets.len() as f64 * self.cost.tracker_per_det,
            );

            // pairwise scores against active tracks
            let scores: Vec<Vec<f32>> = dets
                .iter()
                .map(|d| {
                    active
                        .iter()
                        .map(|t| {
                            let last = &t.track.dets.last().unwrap().1;
                            let g = (f - t.last_frame) as f32;
                            Self::pair_score(last, t.vel, d, g)
                        })
                        .collect()
                })
                .collect();
            let assign = if !dets.is_empty() && !active.is_empty() {
                let cost: Vec<Vec<f32>> = scores
                    .iter()
                    .map(|row| row.iter().map(|s| 1.0 - s).collect())
                    .collect();
                hungarian(&cost)
            } else {
                vec![None; dets.len()]
            };

            let mut matched = vec![false; active.len()];
            let mut min_accepted: f32 = 1.0;
            let mut new_dets = Vec::new();
            for (di, det) in dets.into_iter().enumerate() {
                let ti = assign[di].filter(|&ti| scores[di][ti] >= 0.25);
                match ti {
                    Some(ti) => {
                        min_accepted = min_accepted.min(scores[di][ti]);
                        let t = &mut active[ti];
                        let g = (f - t.last_frame).max(1) as f32;
                        let lc = t.track.dets.last().unwrap().1.rect.center();
                        let cc = det.rect.center();
                        t.vel = ((cc.x - lc.x) / g, (cc.y - lc.y) / g);
                        t.track.push(f, det);
                        t.last_frame = f;
                        t.misses = 0;
                        matched[ti] = true;
                    }
                    None => new_dets.push(det),
                }
            }
            let mut idx = 0;
            active.retain_mut(|t| {
                let was = matched[idx];
                idx += 1;
                if was {
                    return true;
                }
                t.misses += 1;
                if t.misses > 2 {
                    done.push(std::mem::replace(
                        &mut t.track,
                        Track::new(0, otif_sim::ObjectClass::Car),
                    ));
                    false
                } else {
                    true
                }
            });
            for det in new_dets {
                let id = next_id;
                next_id += 1;
                let mut track = Track::new(id, det.class);
                track.push(f, det);
                active.push(Active {
                    track,
                    vel: (0.0, 0.0),
                    last_frame: f,
                    misses: 0,
                });
            }

            // variable-rate control: uncertain matches → finer rate
            if min_accepted < cfg.uncertainty {
                gap = (gap / 2).max(1);
            } else {
                gap = (gap * 2).min(cfg.max_gap);
            }
            f += gap;
        }
        for t in active {
            done.push(t.track);
        }
        done.retain(|t| t.len() >= 2);

        // Query-driven refinement: decode extra frames around each
        // candidate track's endpoints and extend with detections there.
        let refine_window = 64.0;
        for t in done.iter_mut() {
            for end in [false, true] {
                let (frame0, det0) = if end {
                    t.dets.last().unwrap().clone()
                } else {
                    t.dets.first().unwrap().clone()
                };
                let mut anchor = det0.rect;
                let mut anchor_frame = frame0;
                for k in 1..=self.refine_frames {
                    let f = if end {
                        anchor_frame + 1
                    } else if anchor_frame == 0 {
                        break;
                    } else {
                        anchor_frame - 1
                    };
                    if f >= clip.num_frames() {
                        break;
                    }
                    ledger.charge(
                        Component::Decode,
                        otif_core::pipeline::decode_cost(
                            &self.cost,
                            native_px,
                            self.detector.scale,
                            1,
                        ),
                    );
                    let win = Rect::new(
                        anchor.center().x - refine_window / 2.0,
                        anchor.center().y - refine_window / 2.0,
                        refine_window,
                        refine_window,
                    )
                    .clamp_to(&clip.scene.frame_rect());
                    if win.is_empty() {
                        break;
                    }
                    let dets = detector.detect_windows(clip, f, &[win], ledger);
                    let best = dets
                        .into_iter()
                        .filter(|d| {
                            d.rect.iou(&anchor) > 0.1
                                || d.rect.center().dist(&anchor.center()) < 24.0
                        })
                        .max_by(|a, b| a.confidence.partial_cmp(&b.confidence).unwrap());
                    match best {
                        Some(d) => {
                            anchor = d.rect;
                            anchor_frame = f;
                            if end {
                                t.dets.push((f, d));
                            } else {
                                t.dets.insert(0, (f, d));
                            }
                        }
                        None => break,
                    }
                    let _ = k;
                }
            }
        }
        done.sort_by_key(|t| t.id);
        done
    }
}

impl Baseline for MirisBaseline {
    fn name(&self) -> &'static str {
        "miris"
    }

    fn num_configs(&self) -> usize {
        self.configs.len()
    }

    fn describe(&self, i: usize) -> String {
        let c = self.configs[i];
        format!("miris max_gap={} uncert={:.2}", c.max_gap, c.uncertainty)
    }

    fn run(&self, i: usize, clips: &[Clip], ledger: &CostLedger) -> Vec<Vec<Track>> {
        clips
            .iter()
            .map(|c| self.run_clip(self.configs[i], c, ledger))
            .collect()
    }

    fn per_query_execution(&self) -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use otif_cv::DetectorArch;
    use otif_sim::{DatasetConfig, DatasetKind};

    fn baseline() -> MirisBaseline {
        MirisBaseline::new(
            DetectorConfig::new(DetectorArch::YoloV3, 0.75),
            7,
            CostModel::default(),
        )
    }

    #[test]
    fn extracts_tracks_and_charges_costs() {
        let d = DatasetConfig::small(DatasetKind::Caldot1, 71).generate();
        let b = baseline();
        let ledger = CostLedger::new();
        let tracks = b.run(2, &d.test, &ledger);
        assert_eq!(tracks.len(), d.test.len());
        assert!(tracks.iter().any(|t| !t.is_empty()));
        assert!(ledger.get(Component::Detector) > 0.0);
        assert!(ledger.get(Component::Decode) > 0.0);
    }

    #[test]
    fn higher_tolerance_is_faster() {
        let d = DatasetConfig::small(DatasetKind::Caldot2, 72).generate();
        let b = baseline();
        let l0 = CostLedger::new();
        b.run(0, &d.test, &l0); // gap 1
        let l5 = CostLedger::new();
        b.run(5, &d.test, &l5); // gap 32
        assert!(
            l5.execution_total() < l0.execution_total() * 0.6,
            "gap32 {} vs gap1 {}",
            l5.execution_total(),
            l0.execution_total()
        );
    }

    #[test]
    fn refinement_extends_track_endpoints() {
        let d = DatasetConfig::small(DatasetKind::Caldot1, 73).generate();
        let mut with = baseline();
        with.configs = vec![MirisConfig {
            max_gap: 8,
            uncertainty: 0.0,
        }];
        let mut without = baseline();
        without.configs = vec![MirisConfig {
            max_gap: 8,
            uncertainty: 0.0,
        }];
        without.refine_frames = 0;
        let t_with = with.run(0, &d.test[..1], &CostLedger::new());
        let t_without = without.run(0, &d.test[..1], &CostLedger::new());
        let span = |ts: &Vec<Vec<Track>>| -> usize { ts[0].iter().map(|t| t.dets.len()).sum() };
        assert!(
            span(&t_with) > span(&t_without),
            "refinement should add detections: {} vs {}",
            span(&t_with),
            span(&t_without)
        );
    }

    #[test]
    fn is_marked_query_specific() {
        assert!(baseline().per_query_execution());
    }
}
