//! Chameleon (Jiang et al., SIGCOMM 2018): scalable adaptation of video
//! analytics configurations.
//!
//! Chameleon profiles detector configurations (architecture, input
//! resolution, sampling frame rate) and periodically re-profiles to adapt
//! to content drift. It is the strongest conventional baseline in the
//! paper's Table 2 (§4.1) because it does tune resolution *and*
//! framerate — what it lacks relative to OTIF is the segmentation proxy
//! model, the recurrent reduced-rate tracker and joint tuning.
//!
//! Our implementation sweeps the (arch × scale × gap) grid as candidate
//! configurations (the harness picks the validation Pareto set) and
//! charges a periodic re-profiling cost: every profiling interval, the
//! top-k candidate configurations are re-evaluated on a short segment.

use crate::common::Baseline;
use otif_core::config::{OtifConfig, TrackerKind};
use otif_core::pipeline::{ExecutionContext, Pipeline};
use otif_cv::{Component, CostLedger, CostModel, DetectorArch, DetectorConfig, SimDetector};
use otif_sim::Clip;
use otif_track::Track;

/// The Chameleon baseline.
pub struct ChameleonBaseline {
    /// Detector noise seed.
    pub detector_seed: u64,
    /// Simulated cost-model constants.
    pub cost: CostModel,
    configs: Vec<(DetectorArch, f32, usize)>,
    /// Seconds of video between re-profiling rounds.
    pub profile_interval_s: f64,
    /// Fraction of the interval spent profiling top-k configurations.
    pub profile_fraction: f64,
}

impl ChameleonBaseline {
    /// Build the full architecture x resolution x framerate grid.
    pub fn new(detector_seed: u64, cost: CostModel) -> Self {
        let mut configs = Vec::new();
        for arch in DetectorArch::ALL {
            for scale in [1.0, 0.75, 0.5, 0.25f32] {
                for gap in [1usize, 2, 4, 8, 16] {
                    configs.push((arch, scale, gap));
                }
            }
        }
        ChameleonBaseline {
            detector_seed,
            cost,
            configs,
            profile_interval_s: 60.0,
            profile_fraction: 0.05,
        }
    }
}

impl Baseline for ChameleonBaseline {
    fn name(&self) -> &'static str {
        "chameleon"
    }

    fn num_configs(&self) -> usize {
        self.configs.len()
    }

    fn describe(&self, i: usize) -> String {
        let (arch, scale, gap) = self.configs[i];
        format!("chameleon {}@{scale}x gap={gap}", arch.name())
    }

    fn run(&self, i: usize, clips: &[Clip], ledger: &CostLedger) -> Vec<Vec<Track>> {
        let (arch, scale, gap) = self.configs[i];
        let cfg = OtifConfig {
            detector: DetectorConfig::new(arch, scale),
            proxy: None,
            gap,
            tracker: TrackerKind::Sort,
            refine: false,
        };
        let ctx = ExecutionContext::bare(self.cost, self.detector_seed);
        let tracks = Pipeline::run_split(&cfg, &ctx, clips, ledger);

        // Periodic re-profiling: proportional share of full-cost detector
        // time over profiling segments.
        if let Some(clip) = clips.first() {
            let total_s: f64 = clips.iter().map(|c| c.duration_s() as f64).sum();
            let rounds = (total_s / self.profile_interval_s).ceil();
            let det = SimDetector::new(DetectorConfig::new(arch, 1.0), self.detector_seed);
            let profile_frames =
                self.profile_interval_s * self.profile_fraction * clip.scene.fps as f64;
            ledger.charge(
                Component::Detector,
                rounds * profile_frames * det.frame_cost(clip),
            );
        }
        tracks
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use otif_sim::{DatasetConfig, DatasetKind};

    #[test]
    fn grid_covers_arch_scale_gap() {
        let b = ChameleonBaseline::new(1, CostModel::default());
        assert_eq!(b.num_configs(), 2 * 4 * 5);
    }

    #[test]
    fn runs_and_charges_profiling_overhead() {
        let d = DatasetConfig::small(DatasetKind::Jackson, 81).generate();
        let b = ChameleonBaseline::new(1, CostModel::default());
        // find the cheapest config (yolo, 0.25, gap 16)
        let i = b
            .configs
            .iter()
            .position(|&(a, s, g)| a == DetectorArch::YoloV3 && s == 0.25 && g == 16)
            .unwrap();
        let ledger = CostLedger::new();
        let tracks = b.run(i, &d.test, &ledger);
        assert_eq!(tracks.len(), d.test.len());
        assert!(ledger.get(Component::Detector) > 0.0);
    }

    #[test]
    fn faster_config_costs_less_despite_profiling() {
        let d = DatasetConfig::small(DatasetKind::Caldot2, 82).generate();
        let b = ChameleonBaseline::new(1, CostModel::default());
        let slow = b
            .configs
            .iter()
            .position(|&(a, s, g)| a == DetectorArch::MaskRcnn && s == 1.0 && g == 1)
            .unwrap();
        let fast = b
            .configs
            .iter()
            .position(|&(a, s, g)| a == DetectorArch::YoloV3 && s == 0.25 && g == 16)
            .unwrap();
        let ls = CostLedger::new();
        b.run(slow, &d.test, &ls);
        let lf = CostLedger::new();
        b.run(fast, &d.test, &lf);
        assert!(lf.execution_total() < ls.execution_total() * 0.2);
    }
}
