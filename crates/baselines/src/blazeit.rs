//! BlazeIt (Kang et al.): per-query proxy models for frame-level limit
//! and aggregate queries.
//!
//! For a limit query, BlazeIt trains a cheap regression proxy that scores
//! every frame with how likely it is to satisfy the predicate, then
//! applies the expensive detector to frames in descending score order
//! until the desired output cardinality is reached (§4.2). Two cost
//! properties matter in Table 3:
//!
//! - the proxy is **query-specific**, so pre-processing (proxy inference
//!   over every frame) is re-paid per query — the ×5 scaling for the
//!   5-query column;
//! - query execution applies the full detector hundreds to thousands of
//!   times, so per-query latency is tens of seconds.
//!
//! Our proxy reuses the lowest-resolution segmentation network: its
//! per-cell scores aggregate into per-frame predicate scores (total count
//! for count queries, in-region sum for region queries, local-window sum
//! for hot-spot queries) — the same low-resolution signal BlazeIt's
//! specialized NN would compute.

use otif_core::proxy::SegProxyModel;
use otif_cv::{Component, CostLedger, CostModel, DetectorConfig, SimDetector};
use otif_query::{FrameLimitQuery, FrameQueryKind, FrameRef};
use otif_sim::{Clip, Renderer};

/// The BlazeIt baseline (frame-level limit queries).
pub struct BlazeItBaseline<'a> {
    /// Detector applied at query time.
    pub detector: DetectorConfig,
    /// Detector noise seed (paired with OTIF's).
    pub detector_seed: u64,
    /// Simulated cost-model constants.
    pub cost: CostModel,
    /// The low-resolution per-query proxy.
    pub proxy: &'a SegProxyModel,
}

/// Result of one BlazeIt query execution.
#[derive(Debug, Clone)]
pub struct LimitQueryRun {
    /// Matching frames, best-scored first.
    pub outputs: Vec<FrameRef>,
    /// Simulated seconds of query-agnostic-looking but per-query
    /// pre-processing (proxy over every frame + decode).
    pub preprocess_seconds: f64,
    /// Simulated seconds of query execution (detector invocations).
    pub query_seconds: f64,
    /// Number of detector invocations during query execution.
    pub detector_invocations: usize,
}

impl<'a> BlazeItBaseline<'a> {
    /// Build a BlazeIt instance around a trained low-resolution proxy.
    pub fn new(
        detector: DetectorConfig,
        detector_seed: u64,
        cost: CostModel,
        proxy: &'a SegProxyModel,
    ) -> Self {
        BlazeItBaseline {
            detector,
            detector_seed,
            cost,
            proxy,
        }
    }

    /// Score every frame of every clip with the query-specific proxy.
    /// Returns scores plus the simulated pre-processing cost.
    pub fn score_frames(&self, query: &FrameLimitQuery, clips: &[Clip]) -> (Vec<Vec<f32>>, f64) {
        let ledger = CostLedger::new();
        let scores: Vec<Vec<f32>> = clips
            .iter()
            .map(|clip| {
                let renderer = Renderer::new(clip);
                let native_px = (clip.scene.width as f64) * (clip.scene.height as f64);
                (0..clip.num_frames())
                    .map(|f| {
                        // decode at the proxy's (low) resolution
                        let proxy_scale = self.proxy.in_w as f32 / clip.scene.width as f32;
                        ledger.charge(
                            Component::Decode,
                            otif_core::pipeline::decode_cost(&self.cost, native_px, proxy_scale, 1),
                        );
                        let img = renderer.render(f, self.proxy.in_w, self.proxy.in_h);
                        let grid = self.proxy.score_cells(&img, &self.cost, &ledger);
                        self.grid_score(query, &grid, clip)
                    })
                    .collect()
            })
            .collect();
        (scores, ledger.execution_total())
    }

    /// Aggregate per-cell scores into a per-frame predicate score.
    fn grid_score(
        &self,
        query: &FrameLimitQuery,
        grid: &otif_core::proxy::CellGrid,
        clip: &Clip,
    ) -> f32 {
        match &query.kind {
            FrameQueryKind::Count => grid.scores.iter().sum(),
            FrameQueryKind::Region(poly) => {
                let mut acc = 0.0;
                for cy in 0..grid.rows {
                    for cx in 0..grid.cols {
                        let center =
                            otif_geom::Point::new(cx as f32 * 32.0 + 16.0, cy as f32 * 32.0 + 16.0);
                        if poly.contains(&center) {
                            acc += grid.get(cx, cy);
                        }
                    }
                }
                let _ = clip;
                acc
            }
            FrameQueryKind::HotSpot { radius } => {
                // max sum over a window of cells roughly covering the circle
                let span = ((radius / 32.0).ceil() as usize).max(1);
                let mut best = 0.0f32;
                for cy in 0..grid.rows {
                    for cx in 0..grid.cols {
                        let mut acc = 0.0;
                        for dy in 0..span {
                            for dx in 0..span {
                                if cy + dy < grid.rows && cx + dx < grid.cols {
                                    acc += grid.get(cx + dx, cy + dy);
                                }
                            }
                        }
                        best = best.max(acc);
                    }
                }
                best
            }
        }
    }

    /// Execute a limit query end to end.
    pub fn execute(&self, query: &FrameLimitQuery, clips: &[Clip]) -> LimitQueryRun {
        let (scores, preprocess_seconds) = self.score_frames(query, clips);

        // rank all frames by descending score
        let mut ranked: Vec<(f32, FrameRef)> = Vec::new();
        for (ci, clip_scores) in scores.iter().enumerate() {
            for (f, s) in clip_scores.iter().enumerate() {
                ranked.push((*s, FrameRef { clip: ci, frame: f }));
            }
        }
        ranked.sort_by(|a, b| b.0.partial_cmp(&a.0).unwrap_or(std::cmp::Ordering::Equal));

        // apply the detector in rank order until the limit is reached
        let detector = SimDetector::new(self.detector, self.detector_seed);
        let ledger = CostLedger::new();
        let mut outputs: Vec<FrameRef> = Vec::new();
        let mut invocations = 0usize;
        for (_, r) in ranked {
            if outputs.len() >= query.limit {
                break;
            }
            let clip = &clips[r.clip];
            let sep = (query.min_separation_s * clip.scene.fps as f32) as usize;
            if outputs
                .iter()
                .any(|o| o.clip == r.clip && o.frame.abs_diff(r.frame) < sep)
            {
                continue;
            }
            let dets = detector.detect_frame(clip, r.frame, &ledger);
            invocations += 1;
            let positions: Vec<otif_geom::Point> = dets.iter().map(|d| d.rect.center()).collect();
            if query.positions_match(&positions) {
                outputs.push(r);
            }
        }
        LimitQueryRun {
            outputs,
            preprocess_seconds,
            query_seconds: ledger.execution_total(),
            detector_invocations: invocations,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use otif_cv::{Detection, DetectorArch};
    use otif_sim::{DatasetConfig, DatasetKind, ObjectClass};

    fn trained_proxy(d: &otif_sim::Dataset, scale: f32) -> SegProxyModel {
        let clips: Vec<&Clip> = d.train.iter().collect();
        let labels: Vec<Vec<Vec<Detection>>> = d
            .train
            .iter()
            .map(|c| {
                (0..c.num_frames())
                    .map(|f| {
                        c.gt_boxes(f)
                            .into_iter()
                            .map(|(_, _, r)| Detection {
                                rect: r,
                                class: ObjectClass::Car,
                                confidence: 0.9,
                                appearance: vec![],
                                debug_gt: None,
                            })
                            .collect()
                    })
                    .collect()
            })
            .collect();
        let mut m = SegProxyModel::new(d.scene.width as usize, d.scene.height as usize, scale, 5);
        m.train(&clips, &labels, 800, 0.01, 5);
        m
    }

    #[test]
    fn limit_query_returns_mostly_true_frames() {
        let d = DatasetConfig::small(DatasetKind::Caldot1, 101).generate();
        let proxy = trained_proxy(&d, 0.375);
        let b = BlazeItBaseline::new(
            DetectorConfig::new(DetectorArch::YoloV3, 1.0),
            3,
            CostModel::default(),
            &proxy,
        );
        let q = FrameLimitQuery {
            kind: FrameQueryKind::Count,
            n: 2,
            limit: 5,
            min_separation_s: 2.0,
        };
        let run = b.execute(&q, &d.test);
        assert!(!run.outputs.is_empty());
        assert!(run.preprocess_seconds > 0.0);
        assert!(run.query_seconds > 0.0);
        assert!(run.detector_invocations >= run.outputs.len());
        let acc = q.accuracy(&run.outputs, &d.test);
        assert!(acc > 0.5, "accuracy {acc}");
    }

    #[test]
    fn proxy_scores_correlate_with_object_count() {
        let d = DatasetConfig::small(DatasetKind::Caldot1, 102).generate();
        let proxy = trained_proxy(&d, 0.375);
        let b = BlazeItBaseline::new(
            DetectorConfig::new(DetectorArch::YoloV3, 1.0),
            3,
            CostModel::default(),
            &proxy,
        );
        let q = FrameLimitQuery {
            kind: FrameQueryKind::Count,
            n: 1,
            limit: 5,
            min_separation_s: 2.0,
        };
        let (scores, _) = b.score_frames(&q, &d.test[..1]);
        let clip = &d.test[0];
        // average score of busy frames should exceed that of sparse frames
        let mut busy = Vec::new();
        let mut sparse = Vec::new();
        for (f, s) in scores[0].iter().enumerate() {
            if clip.frames[f].objs.len() >= 4 {
                busy.push(*s);
            } else if clip.frames[f].objs.len() <= 1 {
                sparse.push(*s);
            }
        }
        if !busy.is_empty() && !sparse.is_empty() {
            let m = |v: &[f32]| v.iter().sum::<f32>() / v.len() as f32;
            assert!(
                m(&busy) > m(&sparse),
                "busy {} sparse {}",
                m(&busy),
                m(&sparse)
            );
        }
    }
}
