//! NoScope (Kang et al., VLDB 2017): classification proxy models that
//! skip frames containing no objects.
//!
//! NoScope trains a cheap binary classifier over low-resolution frames;
//! when the classifier is confident a frame is empty, the expensive
//! detector is skipped entirely. The paper's §4.1 shows the limitation
//! OTIF's segmentation proxy removes: in busy scenes every frame has
//! objects, so frame-level skipping yields essentially two operating
//! points (run everything, or skip everything) — while on sparse scenes
//! like Amsterdam it provides a genuine trade-off.
//!
//! Our frame classifier is the max cell score of a trained segmentation
//! proxy at the lowest resolution — equivalent to a classification head
//! over the same features. NoScope does not optimize resolution or
//! framerate (the paper notes this drives its poor showing).

use crate::common::Baseline;
use otif_core::proxy::SegProxyModel;
use otif_cv::{Component, CostLedger, CostModel, DetectorConfig, SimDetector};
use otif_sim::{Clip, Renderer};
use otif_track::{SortTracker, Track};

/// The NoScope baseline.
pub struct NoScopeBaseline<'a> {
    /// Detector applied on non-skipped frames.
    pub detector: DetectorConfig,
    /// Detector noise seed.
    pub detector_seed: u64,
    /// Simulated cost-model constants.
    pub cost: CostModel,
    /// Low-resolution classification proxy.
    pub proxy: &'a SegProxyModel,
    /// Candidate skip thresholds; a frame is skipped when the max cell
    /// score is below the threshold. 0 disables skipping entirely.
    pub thresholds: Vec<f32>,
}

impl<'a> NoScopeBaseline<'a> {
    /// Build NoScope around a trained classification proxy.
    pub fn new(
        detector: DetectorConfig,
        detector_seed: u64,
        cost: CostModel,
        proxy: &'a SegProxyModel,
    ) -> Self {
        NoScopeBaseline {
            detector,
            detector_seed,
            cost,
            proxy,
            thresholds: vec![0.0, 0.3, 0.5, 0.7, 0.9, 1.01],
        }
    }

    fn run_clip(&self, threshold: f32, clip: &Clip, ledger: &CostLedger) -> Vec<Track> {
        let detector = SimDetector::new(self.detector, self.detector_seed);
        let native_px = (clip.scene.width as f64) * (clip.scene.height as f64);
        let renderer = Renderer::new(clip);
        let mut tracker = SortTracker::default();
        for f in 0..clip.num_frames() {
            ledger.charge(
                Component::Decode,
                otif_core::pipeline::decode_cost(&self.cost, native_px, self.detector.scale, 1),
            );
            let skip = if threshold > 0.0 {
                let img = renderer.render(f, self.proxy.in_w, self.proxy.in_h);
                let grid = self.proxy.score_cells(&img, &self.cost, ledger);
                let max = grid.scores.iter().cloned().fold(0.0f32, f32::max);
                max < threshold
            } else {
                false
            };
            let dets = if skip {
                Vec::new()
            } else {
                detector.detect_frame(clip, f, ledger)
            };
            ledger.charge(
                Component::Tracker,
                self.cost.tracker_per_frame + dets.len() as f64 * self.cost.tracker_per_det,
            );
            tracker.step(f, dets);
        }
        tracker.finish()
    }
}

impl Baseline for NoScopeBaseline<'_> {
    fn name(&self) -> &'static str {
        "noscope"
    }

    fn num_configs(&self) -> usize {
        self.thresholds.len()
    }

    fn describe(&self, i: usize) -> String {
        format!("noscope skip<{}", self.thresholds[i])
    }

    fn run(&self, i: usize, clips: &[Clip], ledger: &CostLedger) -> Vec<Vec<Track>> {
        clips
            .iter()
            .map(|c| self.run_clip(self.thresholds[i], c, ledger))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use otif_cv::{Detection, DetectorArch};
    use otif_sim::{DatasetConfig, DatasetKind, ObjectClass};

    fn trained_proxy(d: &otif_sim::Dataset, model_seed: u64) -> SegProxyModel {
        let clips: Vec<&Clip> = d.train.iter().collect();
        let labels: Vec<Vec<Vec<Detection>>> = d
            .train
            .iter()
            .map(|c| {
                (0..c.num_frames())
                    .map(|f| {
                        c.gt_boxes(f)
                            .into_iter()
                            .map(|(_, _, r)| Detection {
                                rect: r,
                                class: ObjectClass::Car,
                                confidence: 0.9,
                                appearance: vec![],
                                debug_gt: None,
                            })
                            .collect()
                    })
                    .collect()
            })
            .collect();
        let mut m = SegProxyModel::new(
            d.scene.width as usize,
            d.scene.height as usize,
            0.375,
            model_seed,
        );
        m.train(&clips, &labels, 800, 0.01, 5);
        m
    }

    #[test]
    fn skipping_saves_detector_time_on_sparse_scenes() {
        // Averaged over three fixed proxy inits instead of one
        // hand-picked lucky seed: whether the trained proxy dips below
        // the 0.5 threshold on this tiny dataset varies by init.
        // Measured fractional detector savings at seeds 1/2/3 are
        // 0.49 / 0.55 / 0.16 (mean ≈ 0.40); the mean bound 0.10 holds
        // even if one of the three inits degenerates to saving nothing
        // (worst observed single-seed saving is 0.07).
        let d = DatasetConfig::small(DatasetKind::Amsterdam, 100).generate();
        let mut savings = Vec::new();
        for model_seed in [1u64, 2, 3] {
            let proxy = trained_proxy(&d, model_seed);
            let b = NoScopeBaseline::new(
                DetectorConfig::new(DetectorArch::YoloV3, 1.0),
                3,
                CostModel::default(),
                &proxy,
            );
            let l_none = CostLedger::new();
            b.run(0, &d.test, &l_none); // threshold 0: never skip
            let l_skip = CostLedger::new();
            let i = b.thresholds.iter().position(|&t| t == 0.5).unwrap();
            b.run(i, &d.test, &l_skip);
            let none = l_none.get(Component::Detector);
            savings.push((none - l_skip.get(Component::Detector)) / none);
        }
        let mean = savings.iter().sum::<f64>() / savings.len() as f64;
        assert!(
            mean > 0.10,
            "mean fractional detector saving {mean} ({savings:?})"
        );
    }

    #[test]
    fn threshold_above_one_skips_everything() {
        let d = DatasetConfig::small(DatasetKind::Caldot1, 92).generate();
        let proxy = trained_proxy(&d, 5);
        let b = NoScopeBaseline::new(
            DetectorConfig::new(DetectorArch::YoloV3, 1.0),
            3,
            CostModel::default(),
            &proxy,
        );
        let ledger = CostLedger::new();
        let tracks = b.run(b.thresholds.len() - 1, &d.test, &ledger);
        assert!(tracks.iter().all(|t| t.is_empty()), "threshold>1 skips all");
        assert_eq!(ledger.get(Component::Detector), 0.0);
    }
}
