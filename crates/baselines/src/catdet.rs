//! CaTDet (Mao et al., SysML 2019): cascaded tracked detector.
//!
//! CaTDet accelerates per-frame detection with a two-stage cascade: a
//! cheap low-resolution *proposal* detector plus the tracker's predicted
//! object positions select regions of interest, and the expensive
//! refinement detector runs only inside those regions. Every frame is
//! still processed — CaTDet optimizes neither the sampling rate nor the
//! refinement resolution, which is why it trails OTIF and Chameleon in
//! the paper's Table 2.

use crate::common::Baseline;
use otif_cv::{Component, CostLedger, CostModel, DetectorArch, DetectorConfig, SimDetector};
use otif_geom::Rect;
use otif_sim::Clip;
use otif_track::{SortTracker, Track};

/// The CaTDet baseline.
pub struct CaTDetBaseline {
    /// Detector noise seed.
    pub detector_seed: u64,
    /// Simulated cost-model constants.
    pub cost: CostModel,
    /// (proposal scale, proposal confidence threshold) per configuration.
    pub configs: Vec<(f32, f32)>,
    /// Side of the square refinement windows around proposals (native px).
    pub window: f32,
    /// Refinement detector.
    pub refine_arch: DetectorArch,
}

impl CaTDetBaseline {
    /// Build the default configuration grid.
    pub fn new(detector_seed: u64, cost: CostModel) -> Self {
        CaTDetBaseline {
            detector_seed,
            cost,
            configs: vec![
                (1.0, 0.0),
                (0.5, 0.2),
                (0.375, 0.25),
                (0.25, 0.3),
                (0.25, 0.5),
            ],
            window: 96.0,
            refine_arch: DetectorArch::YoloV3,
        }
    }

    fn run_clip(&self, cfg: (f32, f32), clip: &Clip, ledger: &CostLedger) -> Vec<Track> {
        let (prop_scale, prop_conf) = cfg;
        let native_px = (clip.scene.width as f64) * (clip.scene.height as f64);
        let frame = clip.scene.frame_rect();
        let refine = SimDetector::new(
            DetectorConfig::new(self.refine_arch, 1.0),
            self.detector_seed,
        );
        let mut tracker = SortTracker::default();

        // configuration (1.0, _) degenerates to full-frame refinement on
        // every frame — the cascade's fallback operating point
        let full_frame_mode = prop_scale >= 1.0;
        let proposal = SimDetector::new(
            DetectorConfig {
                conf_threshold: prop_conf,
                ..DetectorConfig::new(DetectorArch::YoloV3, prop_scale)
            },
            self.detector_seed ^ 0xCA7,
        );

        let mut predicted: Vec<Rect> = Vec::new();
        for f in 0..clip.num_frames() {
            ledger.charge(
                Component::Decode,
                otif_core::pipeline::decode_cost(&self.cost, native_px, 1.0, 1),
            );
            let dets = if full_frame_mode {
                refine.detect_frame(clip, f, ledger)
            } else {
                // stage 1: cheap proposals + tracker predictions
                let proposals = proposal.detect_frame(clip, f, ledger);
                let mut regions: Vec<Rect> = proposals
                    .iter()
                    .map(|d| d.rect.center())
                    .chain(predicted.iter().map(|r| r.center()))
                    .map(|c| {
                        Rect::new(
                            c.x - self.window / 2.0,
                            c.y - self.window / 2.0,
                            self.window,
                            self.window,
                        )
                        .clamp_to(&frame)
                    })
                    .filter(|r| !r.is_empty())
                    .collect();
                // merge heavily-overlapping regions to bound cost
                regions.sort_by(|a, b| a.x.partial_cmp(&b.x).unwrap());
                let mut merged: Vec<Rect> = Vec::new();
                for r in regions {
                    match merged.iter_mut().find(|m| m.iou(&r) > 0.4) {
                        Some(m) => *m = m.union(&r),
                        None => merged.push(r),
                    }
                }
                if merged.is_empty() {
                    Vec::new()
                } else {
                    refine.detect_windows(clip, f, &merged, ledger)
                }
            };
            ledger.charge(
                Component::Tracker,
                self.cost.tracker_per_frame + dets.len() as f64 * self.cost.tracker_per_det,
            );
            predicted = dets.iter().map(|d| d.rect).collect();
            tracker.step(f, dets);
        }
        tracker.finish()
    }
}

impl Baseline for CaTDetBaseline {
    fn name(&self) -> &'static str {
        "catdet"
    }

    fn num_configs(&self) -> usize {
        self.configs.len()
    }

    fn describe(&self, i: usize) -> String {
        let (s, c) = self.configs[i];
        format!("catdet proposal@{s}x conf={c}")
    }

    fn run(&self, i: usize, clips: &[Clip], ledger: &CostLedger) -> Vec<Vec<Track>> {
        clips
            .iter()
            .map(|c| self.run_clip(self.configs[i], c, ledger))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use otif_sim::{DatasetConfig, DatasetKind};

    #[test]
    fn cascade_cheaper_than_full_frame_on_sparse_scenes() {
        let d = DatasetConfig::small(DatasetKind::Jackson, 95).generate();
        let b = CaTDetBaseline::new(5, CostModel::default());
        let l_full = CostLedger::new();
        b.run(0, &d.test, &l_full);
        let l_casc = CostLedger::new();
        b.run(3, &d.test, &l_casc);
        assert!(
            l_casc.get(Component::Detector) < l_full.get(Component::Detector),
            "cascade {} vs full {}",
            l_casc.get(Component::Detector),
            l_full.get(Component::Detector)
        );
    }

    #[test]
    fn cascade_still_finds_tracks() {
        let d = DatasetConfig::small(DatasetKind::Caldot1, 96).generate();
        let b = CaTDetBaseline::new(5, CostModel::default());
        let tracks = b.run(2, &d.test, &CostLedger::new());
        let total: usize = tracks.iter().map(|t| t.len()).sum();
        let gt: usize = d.test.iter().map(|c| c.gt_tracks.len()).sum();
        assert!(
            total as f32 > gt as f32 * 0.4,
            "cascade found {total} tracks vs {gt} gt"
        );
    }

    #[test]
    fn every_frame_is_decoded() {
        let d = DatasetConfig::small(DatasetKind::Caldot2, 97).generate();
        let b = CaTDetBaseline::new(5, CostModel::default());
        let ledger = CostLedger::new();
        b.run(3, &d.test[..1], &ledger);
        let frames = d.test[0].num_frames() as f64;
        let per_frame =
            otif_core::pipeline::decode_cost(&CostModel::default(), (384 * 224) as f64, 1.0, 1);
        assert!((ledger.get(Component::Decode) - frames * per_frame).abs() < 1e-9);
    }
}
