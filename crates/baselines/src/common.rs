//! The common interface track-extraction baselines expose to the
//! experiment harness.

use otif_cv::CostLedger;
use otif_sim::Clip;
use otif_track::Track;

/// A track-extraction method with a family of speed–accuracy
/// configurations.
///
/// The harness evaluates every configuration on the validation split,
/// keeps the Pareto-optimal ones, and re-evaluates those on the hidden
/// test split — the protocol of §4.1.
pub trait Baseline: Sync {
    /// Method name as used in the paper's tables.
    fn name(&self) -> &'static str;

    /// Number of candidate configurations.
    fn num_configs(&self) -> usize;

    /// Human-readable description of configuration `i`.
    fn describe(&self, i: usize) -> String;

    /// Execute configuration `i` over clips, charging simulated costs to
    /// the ledger. Returns extracted tracks per clip.
    fn run(&self, i: usize, clips: &[Clip], ledger: &CostLedger) -> Vec<Vec<Track>>;

    /// Whether the method's execution is query-specific, i.e. its runtime
    /// must be re-paid per query (Miris). Used to scale the "5 queries"
    /// estimates in Table 2.
    fn per_query_execution(&self) -> bool {
        false
    }
}

/// Evaluate all configurations of a baseline on a split: returns
/// `(config index, accuracy, simulated seconds)` per configuration.
///
/// Configurations are evaluated on the work-stealing evaluation pool;
/// each runs against its own ledger and results are collected in
/// configuration order, so the output is identical to a sequential
/// sweep.
pub fn sweep_configs(
    baseline: &dyn Baseline,
    clips: &[Clip],
    metric: &(dyn Fn(&[Vec<Track>]) -> f32 + Sync),
) -> Vec<(usize, f32, f64)> {
    otif_core::par_map(0, (0..baseline.num_configs()).collect(), |_, i| {
        let ledger = CostLedger::new();
        let tracks = baseline.run(i, clips, &ledger);
        (i, metric(&tracks), ledger.execution_total())
    })
}

/// Reduce sweep results to the Pareto-optimal set (no other config is
/// both faster and at least as accurate), sorted slowest-first.
pub fn pareto(points: &[(usize, f32, f64)]) -> Vec<(usize, f32, f64)> {
    let mut out: Vec<(usize, f32, f64)> = points
        .iter()
        .filter(|(_, acc, secs)| {
            !points
                .iter()
                .any(|(_, a2, s2)| *s2 < *secs && *a2 >= *acc && (*s2, *a2) != (*secs, *acc))
        })
        .copied()
        .collect();
    out.sort_by(|a, b| b.2.partial_cmp(&a.2).unwrap_or(std::cmp::Ordering::Equal));
    out.dedup_by(|a, b| a.2 == b.2 && a.1 == b.1);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pareto_removes_dominated_points() {
        let pts = vec![
            (0, 0.9, 100.0),
            (1, 0.8, 50.0),
            (2, 0.7, 60.0), // dominated by 1 (slower and less accurate)
            (3, 0.5, 10.0),
        ];
        let p = pareto(&pts);
        let ids: Vec<usize> = p.iter().map(|(i, _, _)| *i).collect();
        assert_eq!(ids, vec![0, 1, 3]);
    }

    #[test]
    fn pareto_sorted_slowest_first() {
        let pts = vec![(0, 0.5, 10.0), (1, 0.9, 100.0)];
        let p = pareto(&pts);
        assert!(p[0].2 > p[1].2);
    }

    #[test]
    fn pareto_of_empty_is_empty() {
        assert!(pareto(&[]).is_empty());
    }
}
